import os

from setuptools import setup

# Optional accelerated DES kernel: REPRO_BUILD_FAST=1 compiles a
# generated twin of repro/sim/kernel.py with mypyc during the build
# (see tools/build_fast_backend.py for the standalone / Cython path).
# The default build stays pure Python with zero extra requirements.
ext_modules = []
if os.environ.get("REPRO_BUILD_FAST") == "1":
    import sys

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "tools"))
    from build_fast_backend import generate_twin

    from mypyc.build import mypycify

    ext_modules = mypycify([str(generate_twin())])

setup(ext_modules=ext_modules)
