#!/usr/bin/env python3
"""Trace replay: tail latency across GC policies on an MSR-shaped trace.

Replays a write-heavy MSR-Cambridge-shaped trace (prn_0) through four
configurations -- Baseline, PreemptiveGC, TinyTail, and dSSD_f -- and
prints the latency distribution each achieves, the paper's Fig 11
comparison in miniature.

Also demonstrates loading a trace from CSV text via
``parse_csv_trace`` for users with their own traces.

Run:  python examples/trace_replay.py
"""

from repro.core import ArchPreset, build_ssd
from repro.workloads import TraceWorkload, make_msr_workload, \
    parse_csv_trace

CONFIGS = (
    ("baseline", ArchPreset.BASELINE, {}),
    ("preemptive", ArchPreset.BW, {"gc_policy": "preemptive"}),
    ("tinytail", ArchPreset.BW, {"gc_policy": "tinytail"}),
    ("dssd_f", ArchPreset.DSSD_F, {}),
)


def replay(trace_name: str):
    print(f"Replaying {trace_name} (synthetic MSR-shaped, QD 64)")
    print("config     | mean us | p50 us | p99 us | GC pages moved")
    print("-" * 60)
    for label, arch, overrides in CONFIGS:
        workload = make_msr_workload(trace_name, n_requests=1500, seed=21)
        ssd = build_ssd(arch, **overrides)
        result = ssd.run(workload, duration_us=30_000, warmup_us=10_000)
        stats = result.io_latency
        print(f"{label:10} | {stats.mean:7.1f} | {stats.p50:6.1f} "
              f"| {stats.p99:6.1f} | {result.gc.pages_moved:6d}")


def csv_demo():
    csv_text = """
# timestamp,op,offset_bytes,size_bytes
0.000,W,0,16384
0.001,R,4096,4096
0.002,W,65536,32768
"""
    records = parse_csv_trace(csv_text.strip().splitlines(), page_size=4096)
    workload = TraceWorkload(records, name="csv-demo", repeat=True)
    ssd = build_ssd(ArchPreset.DSSD_F)
    result = ssd.run(workload, duration_us=5_000)
    print(f"\nCSV demo trace: {len(records)} records, replayed "
          f"{result.requests_completed} requests, "
          f"mean latency {result.io_latency.mean:.1f} us")


if __name__ == "__main__":
    replay("prn_0")
    csv_demo()
