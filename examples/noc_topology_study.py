#!/usr/bin/env python3
"""fNoC topology study: mesh vs ring vs crossbar for flash controllers.

Uses the NoC simulator directly (no SSD around it) to compare the three
topologies under uniform-random copyback-style traffic at equal
bisection bandwidth, then shows the same fabrics inside a full dSSD_f
garbage-collection burst.

Run:  python examples/noc_topology_study.py
"""

from repro.core import ArchPreset
from repro.experiments.common import gc_burst_run
from repro.noc import Crossbar, FNoC, Mesh1D, Packet, Ring
from repro.sim import Simulator

BISECTION = 1000.0  # bytes/us == 1 GB/s
PAGE = 4096
K = 8


def raw_fabric(topology_cls):
    """Drive 256 uniform-random page packets through a bare fabric."""
    topology = topology_cls(K)
    channel_bw = topology.channel_bandwidth_for_bisection(BISECTION)
    sim = Simulator()
    noc = FNoC(sim, topology, channel_bw)
    packets = [
        Packet(src=index % K, dst=(index * 5 + 3) % K, payload_bytes=PAGE)
        for index in range(256)
    ]
    procs = [sim.process(noc.send(p)) for p in packets]
    sim.run()
    latencies = [p.value.total for p in procs if p.value is not None]
    return {
        "channel_bw": channel_bw,
        "finish_us": sim.now,
        "mean_latency": sum(latencies) / len(latencies),
        "max_channel_util": noc.max_channel_utilization(),
    }


def main():
    print(f"Bare fabric, 256 x 4KiB packets, bisection = "
          f"{BISECTION / 1000:.1f} GB/s")
    print("topology | ch BW (GB/s) | drain us | mean lat us | hottest link")
    print("-" * 66)
    for cls in (Mesh1D, Ring, Crossbar):
        stats = raw_fabric(cls)
        print(f"{cls.__name__:8} | {stats['channel_bw'] / 1000:12.2f} "
              f"| {stats['finish_us']:8.1f} "
              f"| {stats['mean_latency']:11.2f} "
              f"| {stats['max_channel_util']:.2f}")

    print("\nSame fabrics carrying a real GC burst inside dSSD_f:")
    print("topology | GC pages/us")
    print("-" * 26)
    for name in ("mesh1d", "ring", "crossbar"):
        topology = {"mesh1d": Mesh1D, "ring": Ring,
                    "crossbar": Crossbar}[name](K)
        _ssd, episode = gc_burst_run(
            ArchPreset.DSSD_F, quick=True,
            fnoc_topology=name,
            fnoc_channel_bw=topology.channel_bandwidth_for_bisection(
                BISECTION),
        )
        print(f"{name:8} | {episode['pages_per_us']:.3f}")


if __name__ == "__main__":
    main()
