#!/usr/bin/env python3
"""Quickstart: build a decoupled SSD, run a workload, read the results.

Builds the paper's dSSD_f (decoupled controllers + fNoC), drives 4 KiB
sequential writes at queue depth 64 until garbage collection kicks in,
and prints the headline metrics -- then does the same for the
conventional Baseline so you can see the decoupling win.

Run:  python examples/quickstart.py
"""

from repro.core import ArchPreset, build_ssd
from repro.workloads import SyntheticWorkload


def run_one(arch: ArchPreset):
    """Simulate 30 ms of write pressure on one architecture."""
    ssd = build_ssd(arch)
    workload = SyntheticWorkload(pattern="seq_write", io_size=4096)
    result = ssd.run(workload, duration_us=30_000, warmup_us=10_000)
    return result


def main():
    print("architecture | IO MB/s | mean us | p99 us | GC moved | bus util")
    print("-" * 68)
    for arch in (ArchPreset.BASELINE, ArchPreset.DSSD_F):
        result = run_one(arch)
        print(f"{arch.value:12} | {result.io_bandwidth:7.1f} "
              f"| {result.io_latency.mean:7.1f} "
              f"| {result.io_latency.p99:6.1f} "
              f"| {result.gc.pages_moved:8d} "
              f"| {result.bus_utilization:.2f}")
    print()
    print("dSSD_f moves GC pages controller-to-controller over the fNoC,")
    print("so the system bus serves host I/O instead of garbage collection.")


if __name__ == "__main__":
    main()
