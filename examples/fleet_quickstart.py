#!/usr/bin/env python3
"""Scaling one simulated SSD to a fleet of aged, sharded devices.

Walks through the three layers of the fleet story:

1. **Checkpoint** one device: build it, age it to 80 % of its P/E
   budget with :func:`~repro.core.fastforward_wear`, snapshot, and
   restore the snapshot into a brand-new device whose continued run is
   byte-identical to never having stopped.
2. **Shard** a small heterogeneous fleet: tenant streams hash onto
   devices through a consistent-hash ring, every device restores from
   its cached aged snapshot, shards fan out over the experiment
   runner's worker pool.
3. **Aggregate**: per-device latency recorders merge (raw samples
   included) into exact fleet-level p99/p999 -- percentiles over the
   union of all samples, not an average of per-device tails.

Run:  python examples/fleet_quickstart.py
"""

import json

from repro.core import (build_ssd, fastforward_wear, restore_ssd,
                        sim_geometry, snapshot_ssd)
from repro.experiments.runner import configured
from repro.fleet import DeviceSpec, FleetSpec, TenantStream, run_fleet
from repro.workloads import SyntheticWorkload


def checkpoint_one_device():
    print("== 1. checkpoint / fast-forward one device ==")
    ssd = build_ssd("dssd_f", geometry=sim_geometry(),
                    prefill_fraction=0.5, seed=42)
    ssd.prefill()
    erases = fastforward_wear(ssd, 0.8)
    print(f"aged the device: {erases} erase cycles applied analytically")

    state = snapshot_ssd(ssd)
    payload = json.dumps(state)
    print(f"snapshot: {len(payload) / 1024:.0f} KiB of canonical JSON")

    # The restored device continues exactly where the snapshot left off.
    resumed = restore_ssd(json.loads(payload))
    workload = SyntheticWorkload(pattern="mixed", io_size=4096)
    result = resumed.run(workload, max_requests=400)
    print(f"resumed run: {result.requests_completed} requests, "
          f"p99 = {result.io_latency.p99:.1f} us\n")


def run_small_fleet():
    print("== 2+3. shard a fleet and aggregate its tails ==")
    devices = [
        DeviceSpec(device_id=f"ssd{i}",
                   arch=("baseline", "dssd", "dssd_f")[i % 3],
                   age_pe_fraction=(0.0, 0.5, 0.8)[i % 3],
                   seed=7 + i,
                   overrides={"prefill_fraction": 0.5})
        for i in range(4)
    ]
    tenants = [
        TenantStream(name=f"tenant{i}", pattern="mixed", io_size=4096,
                     queue_depth=4, seed=100 + i)
        for i in range(8)
    ]
    spec = FleetSpec(devices=devices, tenants=tenants, duration_us=1500.0)

    for device_id, names in spec.placement().items():
        print(f"  {device_id}: {', '.join(names) if names else '(idle)'}")

    with configured(jobs=2):
        result = run_fleet(spec)
    fleet = result["fleet"]
    print(f"fleet of {fleet['devices']} devices "
          f"({fleet['active_devices']} active), "
          f"{fleet['tenants']} tenants: "
          f"{fleet['requests_completed']} requests, "
          f"p99 = {fleet['io_p99_us']:.1f} us, "
          f"p999 = {fleet['io_p999_us']:.1f} us")


def main():
    checkpoint_one_device()
    run_small_fleet()


if __name__ == "__main__":
    main()
