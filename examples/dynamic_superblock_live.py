#!/usr/bin/env python3
"""Live dynamic superblocks: hardware self-healing during host I/O.

Attaches the SRT/RBT machinery to a running dSSD_f, serves host I/O,
and injects uncorrectable errors mid-flight:

* the first failure retires its superblock the conventional way (FTL
  migrates the data, blocks go bad) and stocks the recycle tables;
* the second failure is healed *in hardware*: the controller erases a
  recycled block, copies the dying sub-block across via global
  copyback, and installs an SRT remap -- the FTL never finds out, and
  host reads keep completing through the remap.

Run:  python examples/dynamic_superblock_live.py
"""

from repro.core import ArchPreset, build_ssd, sim_geometry
from repro.superblock import LiveDynamicSuperblocks
from repro.workloads import SyntheticWorkload

GEOM = sim_geometry(channels=4, ways=2, planes=2, blocks_per_plane=8,
                    pages_per_block=8)


def find_full_superblock(ssd, live):
    for sb in range(live.manager.visible):
        if all(ssd.blocks.info(live.subblock_addr(sb, c)).state == "full"
               for c in range(GEOM.channels)):
            return sb
    raise RuntimeError("no fully-prefilled superblock")


def main():
    ssd = build_ssd(ArchPreset.DSSD_F, geometry=GEOM, queue_depth=8)
    live = LiveDynamicSuperblocks(ssd, srt_capacity=64)
    ssd.prefill()

    first = find_full_superblock(ssd, live)
    print(f"Injecting the FIRST uncorrectable error at superblock "
          f"{first}, channel 1...")
    live.inject_uncorrectable(first, channel=1)
    ssd.sim.run()
    print(f"  -> FTL migrations: {live.ftl_migrations}, "
          f"bad superblocks (FTL view): {live.bad_superblocks}, "
          f"recycled blocks banked: "
          f"{sum(len(r) for r in live.manager.rbt)}")

    second = find_full_superblock(ssd, live)
    print(f"Injecting the SECOND uncorrectable error at superblock "
          f"{second}, channel 2...")
    live.inject_uncorrectable(second, channel=2)
    ssd.sim.run()
    stats = live.stats()
    print(f"  -> healed in hardware: recycle copies = "
          f"{stats['recycle_copies']}, pages copied via global copyback "
          f"= {stats['recycled_pages_copied']}, bad superblocks still "
          f"{stats['bad_superblocks']}")
    original = live.subblock_addr(second, 2, page=0)
    print(f"  -> SRT redirect: {tuple(original)} now resolves to "
          f"{tuple(live.remap(original))}")

    print("\nServing host reads through the remap...")
    workload = SyntheticWorkload(pattern="rand_read", io_size=4096)
    result = ssd.run(workload, duration_us=10_000, trigger_gc=False)
    print(f"  -> {result.requests_completed} reads completed, mean "
          f"latency {result.io_latency.mean:.1f} us; the FTL never "
          "learned a second block died.")


if __name__ == "__main__":
    main()
