#!/usr/bin/env python3
"""Dynamic superblock endurance study (the paper's Sec 5 / Fig 14).

Part 1 replays the paper's Fig 6 walk-through on the
DynamicSuperblockManager: the first uncorrectable error sacrifices a
superblock and stocks the recycle tables; the second is remapped in
hardware without telling the FTL.

Part 2 runs the endurance simulator for BASELINE / RECYCLED / RESERV
and prints the bad-superblock-versus-data-written curves.

Run:  python examples/endurance_study.py
"""

from repro.superblock import DynamicSuperblockManager, run_endurance


def walkthrough():
    print("Fig 6 walk-through (4 superblocks x 3 channels)")
    mgr = DynamicSuperblockManager(n_superblocks=4, channels=3)
    outcome = mgr.on_uncorrectable(superblock=0, channel=1)
    print(f"  1st uncorrectable at (sb0, ch1): {outcome}; "
          f"FTL notified about {mgr.ftl_notifications}, "
          f"RBT sizes = {[len(r) for r in mgr.rbt]}")
    outcome = mgr.on_uncorrectable(superblock=3, channel=2)
    print(f"  2nd uncorrectable at (sb3, ch2): {outcome}; "
          f"sb3 ch2 now resolves to {mgr.resolve(3, 2)} via the SRT, "
          f"copyback queued: {mgr.copyback_requests}")
    print(f"  bad superblocks = {mgr.bad_superblocks} "
          "(the FTL only ever heard about one)\n")


def endurance_curves():
    print("Endurance: bad superblocks vs data written (512 superblocks)")
    results = {
        policy: run_endurance(policy=policy, n_superblocks=512, seed=3)
        for policy in ("baseline", "recycled", "reserv")
    }
    checkpoints = (1, 8, 26, 51, 128)   # ~0.2%..25% bad
    header = "bad blocks | " + " | ".join(
        f"{policy:>9}" for policy in results
    )
    print(header)
    print("-" * len(header))
    for n_bad in checkpoints:
        cells = []
        for result in results.values():
            tb = result.bytes_until_bad(n_bad)
            cells.append(f"{tb / 1e12:7.2f}TB" if tb else "    n/a ")
        print(f"{n_bad:10d} | " + " | ".join(cells))
    base = results["baseline"].bytes_until_bad(51)
    for policy in ("recycled", "reserv"):
        gain = results[policy].bytes_until_bad(51) / base
        print(f"  {policy}: {gain:.2f}x data written before 10% bad")


if __name__ == "__main__":
    walkthrough()
    endurance_curves()
