#!/usr/bin/env python3
"""GC interference study: the paper's Fig 2 motivation, interactively.

Runs the conventional Baseline and the decoupled dSSD_f under identical
high-bandwidth write pressure and prints an ASCII timeline of achieved
I/O bandwidth per millisecond, with GC episodes marked -- the Baseline
collapses while GC shares its front-end; dSSD_f keeps serving I/O.

Run:  python examples/gc_interference.py
"""

from repro.core import ArchPreset, build_ssd
from repro.workloads import SyntheticWorkload

DURATION_US = 30_000.0
BAR_SCALE = 60.0  # MB/s per character


def timeline(arch: ArchPreset):
    """Run one architecture; return (times, MB/s, gc windows)."""
    ssd = build_ssd(arch)
    workload = SyntheticWorkload(pattern="seq_write", io_size=32768)
    result = ssd.run(workload, duration_us=DURATION_US)
    episodes = [(e["start"], e["end"]) for e in ssd.gc.stats.episode_log]
    if ssd.gc.active and ssd.gc._episode_start is not None:
        episodes.append((ssd.gc._episode_start, ssd.sim.now))
    times, rates = result.bandwidth_timeline
    return times, rates, episodes


def render(name, times, rates, episodes):
    print(f"\n{name}: I/O bandwidth per ms ('#' = {BAR_SCALE:.0f} MB/s, "
          "'G' marks GC active)")
    for t, rate in zip(times, rates):
        in_gc = any(start <= t < end for start, end in episodes)
        bar = "#" * int(rate / BAR_SCALE)
        marker = "G" if in_gc else " "
        print(f"  {t / 1000:5.0f} ms {marker} |{bar} {rate:.0f}")


def main():
    for arch in (ArchPreset.BASELINE, ArchPreset.DSSD_F):
        times, rates, episodes = timeline(arch)
        render(arch.value, times, rates, episodes)
    print("\nBaseline GC routes every page copy through the system bus and")
    print("DRAM; dSSD_f keeps copies in the back-end via global copyback.")


if __name__ == "__main__":
    main()
