"""Benchmark-suite helpers.

Every benchmark regenerates one paper figure/table via its experiment
module (quick mode), prints the rendered table, and asserts the
paper's qualitative shape (who wins, where curves saturate).  Runs are
single-shot: the interesting number is the figure's content, not the
harness's wall time.
"""

import pytest


@pytest.fixture
def run_figure(benchmark):
    """Run an experiment module once under pytest-benchmark."""

    def _run(module, quick=True):
        result = benchmark.pedantic(
            lambda: module.run(quick=quick), rounds=1, iterations=1,
        )
        print()
        print(result["table"])
        return result

    return _run
