#!/usr/bin/env python
"""Standalone runner for the kernel hot-path benchmark suite.

Equivalent to ``python -m repro bench`` but runnable straight from a
checkout without installing the package::

    python benchmarks/bench_kernel.py                # full suite
    python benchmarks/bench_kernel.py --quick        # CI smoke mode
    python benchmarks/bench_kernel.py --check BENCH_kernel.json

Writes ``BENCH_kernel.json`` (override with ``--output``); exits
non-zero when ``--check`` finds a regression beyond ``--tolerance``.
The measured workloads are pinned-seed and fully deterministic -- event
counts are exact, only wall time varies with the host.  See
``src/repro/bench.py`` for the workload definitions.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.bench import BENCH_FILE, main as bench_main  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads and fewer repeats")
    parser.add_argument("--output", default=BENCH_FILE, metavar="FILE",
                        help=f"JSON report path (default: {BENCH_FILE})")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail on events/sec regression vs BASELINE")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        metavar="FRAC",
                        help="allowed fractional regression (default 0.30)")
    parser.add_argument("--repeats", type=int, default=None, metavar="N",
                        help="best-of-N wall measurement")
    args = parser.parse_args(argv)
    return bench_main(quick=args.quick, output=args.output, check=args.check,
                      tolerance=args.tolerance, repeats=args.repeats)


if __name__ == "__main__":
    sys.exit(main())
