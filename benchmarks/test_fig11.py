"""Bench: regenerate paper Fig 11 (tail latency across traces)."""

from repro.experiments import fig11_tail_latency


def test_fig11_tail_latency(run_figure):
    result = run_figure(fig11_tail_latency)
    p99 = result["p99"]
    improvements = result["improvements"]
    # On average across traces, dSSD_f has the best 99% tail latency
    # (ratios > 1 mean the other scheme's tail is worse).
    assert improvements["baseline"] > 1.0
    # dSSD_f wins the majority of individual traces against Baseline.
    wins = sum(1 for t in p99 if p99[t]["dssd_f"] <= p99[t]["baseline"])
    assert wins >= len(p99) / 2
