"""Bench: regenerate paper Fig 15 (SRT remap performance cost)."""

from repro.experiments import fig15_srt_performance


def test_fig15_srt_performance(run_figure):
    result = run_figure(fig15_srt_performance)
    grid = result["part_a"]["normalized_latency"]
    # Remapping never *improves* latency; cost grows (weakly) with the
    # number of populated entries, and writes suffer at least as much
    # as reads when both were measured.
    for label, series in grid.items():
        assert series[0] == 1.0
        assert max(series) >= 1.0
    # Part (b): the endurance-per-overhead metric favors dSSD for most
    # read-intensive traces (paper: ~21.7% average win).
    metric = result["part_b"]["metric"]
    assert result["part_b"]["endurance_gain"] > 1.0
    wins = sum(1 for value in metric.values() if value > 1.0)
    assert wins >= len(metric) / 2
