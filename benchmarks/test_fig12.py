"""Bench: regenerate paper Fig 12 (GC vs router channel bandwidth)."""

from repro.experiments import fig12_noc_bandwidth


def test_fig12_router_bandwidth(run_figure):
    result = run_figure(fig12_noc_bandwidth)
    # GC performance is non-decreasing in fabric bandwidth (small
    # saturation wiggle allowed) and saturates: the last doubling of
    # bandwidth buys much less than the first.
    for series in list(result["channels"].values()) + \
            list(result["ways"].values()):
        assert series[-1] >= series[0] * 0.95
        first_gain = series[1] / max(series[0], 1e-9)
        last_gain = series[-1] / max(series[-2], 1e-9)
        assert last_gain <= first_gain + 0.25
    # More channels -> more GC throughput at equal per-channel ratio.
    channels = sorted(result["channels"])
    assert (result["channels"][channels[-1]][-1]
            > result["channels"][channels[0]][-1])
