"""Bench: regenerate paper Fig 10 (DRAM-hit I/O + per-trace latency)."""

from repro.experiments import fig10_dram_hit


def test_fig10_dram_hit(run_figure):
    result = run_figure(fig10_dram_hit)
    part_a = result["part_a"]
    # With 100% DRAM-hit I/O, dSSD_f sustains at least the Baseline's
    # bandwidth and a far better tail (paper: 77x/39x vs BW/dSSD).
    assert (part_a["dssd_f"]["io_bandwidth"]
            >= part_a["baseline"]["io_bandwidth"])
    assert part_a["dssd_f"]["p99_us"] < part_a["baseline"]["p99_us"]
    # GC really ran during the DRAM-hit window.
    assert part_a["dssd_f"]["gc_pages"] > 0
    # Part (b): dSSD_f's mean latency beats Baseline on average.
    traces = result["part_b"]
    mean_base = sum(v["baseline"] for v in traces.values()) / len(traces)
    mean_dssd = sum(v["dssd_f"] for v in traces.values()) / len(traces)
    assert mean_dssd < mean_base
