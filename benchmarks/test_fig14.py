"""Bench: regenerate paper Fig 14 (lifetime / endurance / WAS overhead)."""

from repro.experiments import fig14_lifetime


def test_fig14_lifetime(run_figure):
    result = run_figure(fig14_lifetime)
    rows = {row[0]: row for row in result["part_a"]["rows"]}
    # RECYCLED cannot delay the first bad superblock; RESERV can.
    assert rows["RECYCLED"][1] == rows["BASELINE"][1]
    assert rows["RESERV"][1] > rows["BASELINE"][1] * 1.15
    # Both recycling policies extend endurance at the 10%-bad point.
    assert rows["RECYCLED"][3] > 1.05
    assert rows["RESERV"][3] > 1.05
    # (b) the recycling benefit grows with wear variation, and WAS is
    # at least as good as the hardware policies on endurance.
    series = result["part_b"]["series"]
    assert series["recycled"][-1] > series["recycled"][0]
    assert series["was"][-1] >= series["reserv"][-1] * 0.95
    # (c) WAS's RBER scans cost I/O latency, growing with block count.
    normalized = result["part_c"]["normalized"]
    assert normalized[-1] > 1.02
    assert normalized == sorted(normalized) or normalized[-1] >= \
        normalized[1]
