"""Bench: regenerate paper Table 3 (qualitative comparison)."""

from repro.experiments import table3_qualitative


def test_table3_qualitative(run_figure):
    result = run_figure(table3_qualitative)
    table = result["qualitative"]
    assert set(table) == {"preemptive", "tinytail", "pagc", "dssd"}
    # dSSD is the only scheme rated '++' on both bus interference and
    # FTL transparency -- the paper's core claim.
    assert table["dssd"]["bus_interference"] == "++"
    assert table["dssd"]["ftl_modification"] == "++"
    assert table["tinytail"]["tail"] == "++"
