"""Bench: regenerate paper Fig 2 (GC interference timelines)."""

from repro.experiments import fig02_motivation


def test_fig02_gc_interference(run_figure):
    result = run_figure(fig02_motivation)
    for scenario in ("low", "high"):
        data = result[scenario]
        assert data["gc_windows"], "GC must trigger during the run"
        # The paper's headline: I/O bandwidth drops while GC is active.
        assert data["bw_during_gc"] < data["bw_quiet"]
    # The high-bandwidth scenario loses more absolute bandwidth to GC.
    high_loss = result["high"]["bw_quiet"] - result["high"]["bw_during_gc"]
    low_loss = result["low"]["bw_quiet"] - result["low"]["bw_during_gc"]
    assert high_loss > 0 and low_loss >= 0
