"""Bench: design-choice ablations (beyond the paper's figures)."""

from repro.experiments import ablations


def test_ablations(run_figure):
    result = run_figure(ablations)
    # dBUF: more staging never hurts GC throughput.
    dbuf = result["dbuf"]["pages_per_us"]
    assert dbuf[-1] >= dbuf[0] * 0.95
    # GC pipeline depth: wider bursts collect at least as fast.
    pipeline = result["pipeline"]["pages_per_us"]
    assert pipeline[-1] >= pipeline[0] * 0.95
    # Legacy copyback skips ECC: at least as fast, but every copy is
    # unchecked (the reliability hazard the paper's design removes).
    ecc = result["copyback_ecc"]
    assert ecc["legacy_pages_per_us"] >= ecc["checked_pages_per_us"] * 0.9
    assert ecc["legacy_unchecked"] > 0
    # Both mesh dimensions deliver; record which wins at 16 controllers.
    mesh = result["mesh2d"]["perf"]
    assert mesh["mesh1d"] > 0 and mesh["mesh2d"] > 0
