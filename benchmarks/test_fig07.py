"""Bench: regenerate paper Fig 7 (normalized I/O + GC performance)."""

from repro.experiments import fig07_normalized


def test_fig07_normalized_performance(run_figure):
    result = run_figure(fig07_normalized)
    io = result["io_bandwidth"]
    gc = result["gc_rate"]
    # Paper shape: every decoupled design beats Baseline on I/O, and
    # decoupling beats merely widening the bus (dSSD vs BW).
    for arch in ("dssd", "dssd_b", "dssd_f"):
        assert io[arch] > io["baseline"]
    assert io["dssd"] > io["bw"]
    assert io["dssd_f"] > io["bw"]
    # GC burst service rate: back-end copyback beats the front-end path.
    for arch in ("dssd", "dssd_b", "dssd_f"):
        assert gc[arch] > gc["baseline"]
    # Per-move latency drops with decoupling.
    assert (result["gc_move_latency_us"]["dssd_f"]
            < result["gc_move_latency_us"]["baseline"])
