"""Bench: regenerate paper Fig 8 (on-chip bandwidth sensitivity)."""

from repro.experiments import fig08_bandwidth_sweep


def test_fig08_bandwidth_sweep(run_figure):
    result = run_figure(fig08_bandwidth_sweep)
    low = result["low"]
    high = result["high"]
    # Low-bandwidth flash barely benefits from more on-chip bandwidth.
    low_bw_gain = low["bw"][-1]["io"] / max(low["bw"][0]["io"], 1e-9)
    # High-bandwidth flash benefits substantially.
    high_bw_gain = high["bw"][-1]["io"] / max(high["bw"][0]["io"], 1e-9)
    assert high_bw_gain > low_bw_gain * 0.9
    # At modest extra bandwidth (x1.25-x1.5), decoupling beats widening
    # the bus on the high-bandwidth input (the paper's key comparison).
    assert high["dssd_f"][0]["io"] > high["bw"][0]["io"] * 0.95
