"""Bench: regenerate paper-style Fig 17 (multi-tenant QoS isolation)."""

from repro.experiments import fig17_multitenant


def test_fig17_multitenant(run_figure):
    result = run_figure(fig17_multitenant)
    # Acceptance bar: the rate-limited victim's shared p99 stays within
    # 2x of its solo run under both RR and WRR, on both architectures.
    for arch, per_arbiter in result["isolation"].items():
        assert set(per_arbiter) == {"rr", "wrr"}
        for arbiter, ratio in per_arbiter.items():
            assert ratio <= 2.0, (arch, arbiter)
    cells = result["cells"]
    for arch in ("baseline", "dssd_f"):
        solo_p99 = result["solo"][arch]["tenants"]["victim"]["latency_p99_us"]
        for arbiter in ("rr", "wrr"):
            qos = cells[f"{arch}/{arbiter}/shared"]
            noqos = cells[f"{arch}/{arbiter}/shared_noqos"]
            qos_p99 = qos["tenants"]["victim"]["latency_p99_us"]
            noqos_p99 = noqos["tenants"]["victim"]["latency_p99_us"]
            # Dropping the victim's QoS edge produces visible
            # interference -- the contrast the figure exists to show.
            assert noqos_p99 > qos_p99, (arch, arbiter)
            assert noqos_p99 > 1.2 * solo_p99, (arch, arbiter)
            # The victim's protection never starves the aggressor: it
            # still moves bulk data near link saturation.
            assert qos["tenants"]["aggressor"]["bandwidth_MBps"] > 1000.0
