"""Bench: regenerate paper Fig 13 (topology + buffer sensitivity)."""

from repro.experiments import fig13_topology


def test_fig13_topology(run_figure):
    result = run_figure(fig13_topology)
    topo = result["topologies"]
    # Equal bisection bandwidth: the mesh beats the ring (ring channels
    # are narrower), and approaches the crossbar as bandwidth grows.
    for index in range(len(result["bisections"])):
        assert topo["mesh1d"][index] > topo["ring"][index]
    gap_low = topo["crossbar"][0] / max(topo["mesh1d"][0], 1e-9)
    gap_high = topo["crossbar"][-1] / max(topo["mesh1d"][-1], 1e-9)
    assert gap_high <= gap_low + 0.05
    # Buffers: deep buffers help when bandwidth is scarce...
    scarce = result["buffers"]["scarce"]
    depths = sorted(scarce)
    scarce_gain = scarce[depths[-1]] / max(scarce[depths[0]], 1e-9)
    assert scarce_gain > 1.05
    # ...and matter much less when bandwidth is ample.
    ample = result["buffers"]["ample"]
    ample_gain = ample[depths[-1]] / max(ample[depths[0]], 1e-9)
    assert ample_gain < scarce_gain
