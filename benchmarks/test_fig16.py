"""Bench: regenerate paper Fig 16 (SRT sizing / occupancy)."""

from repro.experiments import fig16_srt_size


def test_fig16_srt_size(run_figure):
    result = run_figure(fig16_srt_size)
    grid = result["grid"]
    for device, series in grid.items():
        # Endurance improvement is non-decreasing in SRT capacity...
        for a, b in zip(series, series[1:]):
            assert b >= a - 1e-9
        # ...and saturates: the unbounded table matches the largest
        # bounded one.
        assert series[-1] <= series[-2] * 1.02 + 1e-9
    # Larger devices need more entries: the small device is closer to
    # its saturation point at the smallest capacity.
    small, large = sorted(grid)
    small_frac = grid[small][0] / max(grid[small][-1], 1e-9)
    large_frac = grid[large][0] / max(grid[large][-1], 1e-9)
    assert small_frac >= large_frac - 0.05
    # (b) occupancy grows and then plateaus; RESERV holds more entries.
    occupancy = result["occupancy_recycled"]
    assert occupancy[-1][1] >= occupancy[0][1]
    assert result["max_active_reserv"] >= result["max_active_recycled"]
