"""Bench: regenerate paper Fig 9 (latency breakdown vs plane count)."""

from repro.experiments import fig09_latency_breakdown


def test_fig09_latency_breakdown(run_figure):
    result = run_figure(fig09_latency_breakdown)
    io = result["io"]
    copyback = result["copyback"]
    # dSSD_f copybacks never use the system bus or DRAM at any plane count.
    for planes in (1, 8):
        dssd_cb = copyback[f"dssd_f/p{planes}"]
        assert dssd_cb["system_bus"] == 0.0
        assert dssd_cb["dram"] == 0.0
    # Baseline copybacks carry system-bus and DRAM time.
    base_cb = copyback["baseline/p8"]
    assert base_cb["system_bus"] > 0.0
    assert base_cb["dram"] > 0.0
    # With one plane, flash-chip time dominates I/O; with eight planes
    # the chip share shrinks relative to the bus components (paper: the
    # bottleneck shifts from the array to the buses).
    one = io["baseline/p1"]
    eight = io["baseline/p8"]
    chip_share_1 = one["flash_chip"] / max(sum(one.values()), 1e-9)
    chip_share_8 = eight["flash_chip"] / max(sum(eight.values()), 1e-9)
    assert chip_share_8 < chip_share_1
