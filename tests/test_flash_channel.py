"""Unit tests for the flash bus channel model."""

import pytest

from repro.errors import ConfigError
from repro.flash import FlashChannel
from repro.sim import Simulator


def test_transfer_includes_command_overhead():
    sim = Simulator()
    channel = FlashChannel(sim, 0, bandwidth=1000.0, cmd_overhead_us=0.2)
    done = []

    def mover(sim):
        yield from channel.transfer(4096)
        done.append(sim.now)

    sim.process(mover(sim))
    sim.run()
    assert done[0] == pytest.approx(4.096 + 0.2, abs=1e-3)


def test_occupancy_formula():
    sim = Simulator()
    channel = FlashChannel(sim, 0, bandwidth=1000.0, cmd_overhead_us=0.5)
    assert channel.occupancy(1000) == pytest.approx(1.5)


def test_channel_serializes_ways():
    """Two ways sharing the channel bus transfer one after the other."""
    sim = Simulator()
    channel = FlashChannel(sim, 0, bandwidth=1000.0, cmd_overhead_us=0.0)
    finish = []

    def mover(sim, tag):
        wait = yield from channel.transfer(1000)
        finish.append((tag, sim.now, wait))

    sim.process(mover(sim, "a"))
    sim.process(mover(sim, "b"))
    sim.run()
    assert finish[0][1] == pytest.approx(1.0)
    assert finish[1][1] == pytest.approx(2.0)
    assert finish[1][2] == pytest.approx(1.0)  # waited behind "a"


def test_utilization():
    sim = Simulator()
    channel = FlashChannel(sim, 0, bandwidth=100.0, cmd_overhead_us=0.0)

    def mover(sim):
        yield from channel.transfer(500)  # 5 us busy
        yield sim.timeout(5.0)            # 5 us idle

    sim.process(mover(sim))
    sim.run()
    assert channel.utilization() == pytest.approx(0.5)


def test_invalid_parameters():
    sim = Simulator()
    with pytest.raises(ConfigError):
        FlashChannel(sim, 0, bandwidth=0.0)
    with pytest.raises(ConfigError):
        FlashChannel(sim, 0, bandwidth=10.0, cmd_overhead_us=-1.0)


def test_gc_traffic_class_accounted_separately():
    sim = Simulator()
    channel = FlashChannel(sim, 0, bandwidth=1000.0, cmd_overhead_us=0.0)

    def mover(sim):
        yield from channel.transfer(1000, traffic_class="gc")
        yield from channel.transfer(2000, traffic_class="io")

    sim.process(mover(sim))
    sim.run()
    assert channel.link.bytes_moved["gc"] == 1000
    assert channel.link.bytes_moved["io"] == 2000
