"""Bench history log, the --check delta table, and the profiler."""

import json

import pytest

from repro.bench import (append_history, check_regression, delta_table,
                         load_history)
from repro.profile import run_profile, top_table, write_flamegraph_svg


def _report(ev_per_sec, quick=False):
    return {
        "schema": 2,
        "quick": quick,
        "provenance": {"cpu": "test-cpu"},
        "backends": {
            "pure": {"benchmarks": {
                "ssd_point": {"events": 100, "wall_s": 1.0,
                              "events_per_sec": ev_per_sec},
            }},
        },
    }


def test_history_roundtrip(tmp_path):
    path = str(tmp_path / "nested" / "history.jsonl")
    first = append_history(_report(100.0), path)
    append_history(_report(120.0), path)
    records = load_history(path)
    assert len(records) == 2
    assert records[0]["git_sha"] == first["git_sha"]
    assert records[0]["schema"] == 2
    assert [r["backends"]["pure"]["benchmarks"]["ssd_point"]
            ["events_per_sec"] for r in records] == [100.0, 120.0]
    # Append-only and line-oriented: every line parses independently.
    with open(path) as handle:
        for line in handle:
            json.loads(line)


def test_history_tolerates_blank_lines(tmp_path):
    path = tmp_path / "history.jsonl"
    append_history(_report(5.0), str(path))
    path.write_text(path.read_text() + "\n\n")
    append_history(_report(6.0), str(path))
    assert len(load_history(str(path))) == 2


def test_delta_table_states_pass_and_fail():
    baseline = _report(100.0)
    table = delta_table(_report(95.0), baseline, tolerance=0.30)
    assert "ssd_point" in table and "-5.0% ok" in table
    table = delta_table(_report(60.0), baseline, tolerance=0.30)
    assert "-40.0% FAIL" in table
    # The table's verdicts and the gate agree.
    assert check_regression(_report(60.0), baseline, 0.30)
    assert not check_regression(_report(95.0), baseline, 0.30)


def test_delta_table_skips_unmeasured_backend():
    baseline = _report(100.0)
    baseline["backends"]["fast"] = {"benchmarks": {
        "ssd_point": {"events": 100, "wall_s": 0.5,
                      "events_per_sec": 200.0}}}
    table = delta_table(_report(100.0), baseline)
    assert "skip (backend not measured)" in table
    assert "FAIL" not in table


@pytest.fixture(scope="module")
def fanout_stats():
    return run_profile("event_fanout", quick=True, backend="pure")


def test_profile_top_table(fanout_stats):
    table = top_table(fanout_stats, limit=10)
    lines = table.splitlines()
    assert lines[0].split("|")[0].strip() == "cumtime"
    assert len(lines) == 12  # header + rule + 10 rows
    assert "repro/sim/kernel.py" in table


def test_profile_flamegraph_svg(fanout_stats, tmp_path):
    path = tmp_path / "flame.svg"
    write_flamegraph_svg(fanout_stats, str(path))
    svg = path.read_text()
    assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
    assert "bench_event_fanout" in svg
