"""Unit tests for front-end components: bus, DRAM, ECC, host, breakdown."""

import pytest

from repro.controller import (
    Breakdown,
    COMPONENTS,
    Dram,
    EccEngine,
    HostInterface,
    SystemBus,
)
from repro.errors import ConfigError
from repro.sim import Simulator


def drive(sim, gen):
    proc = sim.process(gen)
    sim.run()
    return proc.value


# ---------------------------------------------------------------- SystemBus


def test_bus_transfer_and_utilization():
    sim = Simulator()
    bus = SystemBus(sim, bandwidth=8000.0)

    def mover(sim):
        yield from bus.transfer(4096, "io")
        yield from bus.transfer(4096, "gc")
        yield sim.timeout(2.0)

    sim.process(mover(sim))
    sim.run()
    expected_each = 4096 / 8000.0
    assert bus.class_utilization("io") == pytest.approx(
        expected_each / sim.now)
    assert bus.utilization() == pytest.approx(2 * expected_each / sim.now)


def test_bus_rejects_bad_bandwidth():
    with pytest.raises(ConfigError):
        SystemBus(Simulator(), bandwidth=-1.0)


def test_bus_timeline_split_by_class():
    sim = Simulator()
    bus = SystemBus(sim, bandwidth=1000.0, bin_width=10.0)

    def mover(sim):
        yield from bus.transfer(1000, "io")
        yield from bus.transfer(2000, "gc")

    sim.process(mover(sim))
    sim.run()
    _times, io_rates = bus.bandwidth_timeline("io")
    _times, gc_rates = bus.bandwidth_timeline("gc")
    assert sum(io_rates) * 10.0 == pytest.approx(1000)
    assert sum(gc_rates) * 10.0 == pytest.approx(2000)


# ---------------------------------------------------------------- Dram


def test_dram_ports_are_independent():
    sim = Simulator()
    dram = Dram(sim, bandwidth=1000.0)
    done = []

    def reader(sim):
        yield from dram.access(4000, direction="read")
        done.append(("r", sim.now))

    def writer(sim):
        yield from dram.access(4000, direction="write")
        done.append(("w", sim.now))

    sim.process(reader(sim))
    sim.process(writer(sim))
    sim.run()
    # Both finish at 4us: no cross-port queueing.
    assert [t for _op, t in done] == [pytest.approx(4.0), pytest.approx(4.0)]


def test_dram_buffer_slots_backpressure():
    sim = Simulator()
    dram = Dram(sim, write_buffer_pages=2)
    grants = [dram.reserve_buffer_page() for _ in range(3)]
    sim.run()
    assert grants[0].triggered and grants[1].triggered
    assert not grants[2].triggered
    assert dram.buffered_pages == 2
    dram.release_buffer_page()
    sim.run()
    assert grants[2].triggered


def test_dram_invalid_parameters():
    with pytest.raises(ConfigError):
        Dram(Simulator(), bandwidth=0.0)
    with pytest.raises(ConfigError):
        Dram(Simulator(), write_buffer_pages=0)


# ---------------------------------------------------------------- EccEngine


def test_ecc_decode_time_formula():
    sim = Simulator()
    ecc = EccEngine(sim, throughput=4096.0, fixed_latency_us=1.0)
    assert ecc.decode_time(4096) == pytest.approx(2.0)


def test_ecc_lanes_parallelism():
    sim = Simulator()
    ecc = EccEngine(sim, throughput=4096.0, fixed_latency_us=1.0, lanes=2)
    done = []

    def checker(sim, tag):
        yield from ecc.check(4096)
        done.append((tag, sim.now))

    for tag in range(3):
        sim.process(checker(sim, tag))
    sim.run()
    times = sorted(t for _tag, t in done)
    assert times[0] == pytest.approx(2.0)
    assert times[1] == pytest.approx(2.0)
    assert times[2] == pytest.approx(4.0)  # third waits for a lane
    assert ecc.pages_checked == 3
    assert 0.0 < ecc.utilization() <= 1.0


def test_ecc_invalid_parameters():
    sim = Simulator()
    with pytest.raises(ConfigError):
        EccEngine(sim, throughput=0.0)
    ecc = EccEngine(sim)
    with pytest.raises(ConfigError):
        drive(sim, ecc.check(0))


# ---------------------------------------------------------------- Host


def test_host_queue_depth_enforced():
    sim = Simulator()
    host = HostInterface(sim, queue_depth=2, cmd_latency_us=0.0)
    admitted = []

    def submitter(sim, tag):
        yield from host.submit()
        admitted.append(tag)

    for tag in range(3):
        sim.process(submitter(sim, tag))
    sim.run()
    assert admitted == [0, 1]
    assert host.outstanding == 2
    host.complete()
    sim.run()
    assert admitted == [0, 1, 2]
    assert host.submitted == 3
    assert host.completed == 1


def test_host_cmd_latency_paid():
    sim = Simulator()
    host = HostInterface(sim, cmd_latency_us=2.5)
    drive(sim, host.submit())
    assert sim.now == pytest.approx(2.5)


def test_host_submitted_counts_at_slot_acquisition():
    """A request is submitted once it owns a slot, not after the
    command overhead -- so submitted/outstanding agree mid-flight."""
    sim = Simulator()
    host = HostInterface(sim, queue_depth=4, cmd_latency_us=5.0)
    observed = []

    def submitter():
        yield from host.submit()

    def observer():
        # Mid-flight: after slot acquisition, before cmd_latency elapses.
        yield sim.timeout(2.0)
        observed.append((host.submitted, host.outstanding))

    for _ in range(3):
        sim.process(submitter())
    sim.process(observer())
    sim.run()
    assert observed == [(3, 3)]
    assert host.submitted - host.completed == host.outstanding


def test_host_invalid_parameters():
    with pytest.raises(ConfigError):
        HostInterface(Simulator(), queue_depth=0)
    with pytest.raises(ConfigError):
        HostInterface(Simulator(), bandwidth=0.0)


# ---------------------------------------------------------------- Breakdown


def test_breakdown_add_and_total():
    bd = Breakdown()
    bd.add("system_bus", 1.0)
    bd.add("system_bus", 2.0)
    bd.add("dram", 0.5)
    assert bd.get("system_bus") == 3.0
    assert bd.total == 3.5


def test_breakdown_rejects_unknown_component():
    bd = Breakdown()
    with pytest.raises(KeyError):
        bd.add("quantum_link", 1.0)
    with pytest.raises(ValueError):
        bd.add("dram", -1.0)


def test_breakdown_merge_and_mean():
    a = Breakdown()
    a.add("dram", 2.0)
    b = Breakdown()
    b.add("dram", 4.0)
    b.add("ecc", 1.0)
    mean = Breakdown.mean([a, b])
    assert mean.get("dram") == pytest.approx(3.0)
    assert mean.get("ecc") == pytest.approx(0.5)
    assert Breakdown.mean([]).total == 0.0


def test_breakdown_as_dict_ordered():
    bd = Breakdown()
    bd.add("fnoc", 1.0)
    d = bd.as_dict()
    assert list(d.keys()) == list(COMPONENTS)
    assert d["fnoc"] == 1.0
    assert d["dram"] == 0.0
