"""Unit and property tests for the page mapping table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.ftl import PageMappingTable


def test_bind_and_lookup():
    table = PageMappingTable()
    assert table.lookup(5) is None
    table.bind(5, 100)
    assert table.lookup(5) == 100
    assert table.reverse_lookup(100) == 5
    assert len(table) == 1


def test_rebind_invalidates_old_ppn():
    table = PageMappingTable()
    table.bind(5, 100)
    old = table.bind(5, 200)
    assert old == 100
    assert table.reverse_lookup(100) is None
    assert table.lookup(5) == 200


def test_bind_to_occupied_ppn_rejected():
    table = PageMappingTable()
    table.bind(1, 100)
    with pytest.raises(MappingError):
        table.bind(2, 100)


def test_rebind_same_pair_is_noop_like():
    table = PageMappingTable()
    table.bind(1, 100)
    old = table.bind(1, 100)
    assert old == 100
    assert table.lookup(1) == 100
    table.check_consistency()


def test_move_rebinds_lpn():
    table = PageMappingTable()
    table.bind(7, 100)
    lpn = table.move(100, 300)
    assert lpn == 7
    assert table.lookup(7) == 300
    assert table.reverse_lookup(100) is None
    table.check_consistency()


def test_move_from_invalid_ppn_rejected():
    table = PageMappingTable()
    with pytest.raises(MappingError):
        table.move(100, 200)


def test_move_to_occupied_ppn_rejected():
    table = PageMappingTable()
    table.bind(1, 100)
    table.bind(2, 200)
    with pytest.raises(MappingError):
        table.move(100, 200)


def test_unbind():
    table = PageMappingTable()
    table.bind(1, 100)
    assert table.unbind(1) == 100
    assert table.lookup(1) is None
    assert table.reverse_lookup(100) is None
    assert table.unbind(99) is None


@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 100)),
                min_size=1, max_size=200))
def test_mirror_invariant_under_random_binds(operations):
    """Property: forward and reverse maps stay exact mirrors."""
    table = PageMappingTable()
    used_ppns = {}
    for lpn, ppn in operations:
        holder = table.reverse_lookup(ppn)
        if holder is not None and holder != lpn:
            with pytest.raises(MappingError):
                table.bind(lpn, ppn)
        else:
            table.bind(lpn, ppn)
        table.check_consistency()


@given(st.lists(st.integers(0, 20), min_size=1, max_size=50))
def test_sequential_moves_preserve_lpn_set(lpns):
    table = PageMappingTable()
    next_ppn = 0
    for lpn in set(lpns):
        table.bind(lpn, next_ppn)
        next_ppn += 1
    original = {lpn: table.lookup(lpn) for lpn in set(lpns)}
    for lpn, ppn in original.items():
        table.move(ppn, next_ppn)
        next_ppn += 1
    for lpn in original:
        assert table.lookup(lpn) is not None
    table.check_consistency()
