"""Unit and property tests for fNoC topologies and routing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.noc import Crossbar, Mesh1D, Ring, XBAR_HUB


# ---------------------------------------------------------------- Mesh1D


def test_mesh_channels_are_bidirectional_line():
    mesh = Mesh1D(4)
    chans = set(mesh.channels())
    assert chans == {(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)}


def test_mesh_path_left_and_right():
    mesh = Mesh1D(8)
    assert mesh.path(2, 5) == [2, 3, 4, 5]
    assert mesh.path(5, 2) == [5, 4, 3, 2]
    assert mesh.path(3, 3) == [3]
    assert mesh.hop_count(0, 7) == 7


def test_mesh_vc_always_zero():
    mesh = Mesh1D(8)
    assert mesh.vc_of(mesh.path(0, 7)) == 0
    assert mesh.vc_count == 1


def test_mesh_bisection_bandwidth():
    mesh = Mesh1D(8)
    assert mesh.channel_bandwidth_for_bisection(2000.0) == pytest.approx(1000.0)


@given(st.integers(0, 7), st.integers(0, 7))
def test_mesh_path_valid_and_minimal(src, dst):
    mesh = Mesh1D(8)
    path = mesh.path(src, dst)
    assert path[0] == src and path[-1] == dst
    assert len(path) == abs(dst - src) + 1
    for cur, nxt in zip(path, path[1:]):
        assert abs(nxt - cur) == 1


# ---------------------------------------------------------------- Ring


def test_ring_channels_wrap():
    ring = Ring(4)
    chans = set(ring.channels())
    assert (3, 0) in chans and (0, 3) in chans
    assert len(chans) == 8


def test_ring_takes_shorter_direction():
    ring = Ring(8)
    assert ring.path(0, 2) == [0, 1, 2]
    assert ring.path(0, 6) == [0, 7, 6]
    assert ring.hop_count(0, 4) == 4  # tie -> clockwise


def test_ring_dateline_vc():
    ring = Ring(8)
    assert ring.vc_of(ring.path(1, 3)) == 0
    assert ring.vc_of(ring.path(6, 1)) == 1    # wraps 7 -> 0
    assert ring.vc_of(ring.path(1, 6)) == 1    # wraps 0 -> 7
    assert ring.vc_count == 2


def test_ring_bisection_bandwidth():
    ring = Ring(8)
    assert ring.channel_bandwidth_for_bisection(2000.0) == pytest.approx(500.0)


@given(st.integers(0, 7), st.integers(0, 7))
def test_ring_path_valid_and_minimal(src, dst):
    ring = Ring(8)
    path = ring.path(src, dst)
    assert path[0] == src and path[-1] == dst
    clockwise = (dst - src) % 8
    assert len(path) - 1 == min(clockwise, 8 - clockwise)
    for cur, nxt in zip(path, path[1:]):
        assert (nxt - cur) % 8 in (1, 7)


# ---------------------------------------------------------------- Crossbar


def test_crossbar_paths_via_hub():
    xbar = Crossbar(8)
    assert xbar.path(1, 5) == [1, XBAR_HUB, 5]
    assert xbar.path(2, 2) == [2]
    assert xbar.hop_count(0, 7) == 2


def test_crossbar_channels_star():
    xbar = Crossbar(4)
    chans = set(xbar.channels())
    assert (2, XBAR_HUB) in chans and (XBAR_HUB, 2) in chans
    assert len(chans) == 8


def test_crossbar_bisection_bandwidth():
    xbar = Crossbar(8)
    assert xbar.channel_bandwidth_for_bisection(2000.0) == pytest.approx(500.0)


# ---------------------------------------------------------------- validation


def test_topology_rejects_bad_k():
    with pytest.raises(ConfigError):
        Mesh1D(1)


def test_path_rejects_out_of_range_nodes():
    mesh = Mesh1D(4)
    with pytest.raises(ConfigError):
        mesh.path(0, 4)
    with pytest.raises(ConfigError):
        mesh.path(-1, 2)


def test_topology_names():
    assert Mesh1D(4).name == "mesh1d"
    assert Ring(4).name == "ring"
    assert Crossbar(4).name == "crossbar"
