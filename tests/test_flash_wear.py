"""Unit tests for the wear / process-variation model."""

import pytest

from repro.errors import ConfigError
from repro.flash import PAPER_PE_MEAN, PAPER_PE_SIGMA, WearModel


def test_limits_are_cached_and_deterministic():
    model = WearModel(seed=42)
    first = model.limit_for(10)
    assert model.limit_for(10) == first
    again = WearModel(seed=42)
    # Same seed, same order of queries -> same limits.
    assert again.limit_for(10) == model.limit_for(10)


def test_limits_distribution_is_plausible():
    model = WearModel(seed=3)
    limits = [model.limit_for(i) for i in range(2000)]
    mean = sum(limits) / len(limits)
    assert abs(mean - PAPER_PE_MEAN) < 3 * PAPER_PE_SIGMA / (2000 ** 0.5) * 4
    assert min(limits) >= 1


def test_zero_sigma_gives_constant_limits():
    model = WearModel(mean=100.0, sigma=0.0, seed=1)
    assert {model.limit_for(i) for i in range(50)} == {100}


def test_is_dead_threshold():
    model = WearModel(mean=10.0, sigma=0.0)
    assert not model.is_dead(0, 9)
    assert model.is_dead(0, 10)
    assert model.is_dead(0, 11)


def test_rber_monotone_in_wear():
    model = WearModel(mean=100.0, sigma=0.0)
    values = [model.rber(count, 0) for count in (0, 25, 50, 75, 100)]
    assert values == sorted(values)
    assert values[0] < values[-1]


def test_limits_array_matches_scalar_statistics():
    model = WearModel(seed=5)
    arr = model.limits_array(5000)
    assert arr.shape == (5000,)
    assert arr.min() >= 1
    assert abs(arr.mean() - PAPER_PE_MEAN) < 100.0
    assert abs(arr.std() - PAPER_PE_SIGMA) < 100.0


def test_limits_array_seeded_reproducible():
    model = WearModel(seed=9)
    a = model.limits_array(100, seed=123)
    b = model.limits_array(100, seed=123)
    assert (a == b).all()


def test_reset_restores_stream():
    model = WearModel(seed=11)
    sequence = [model.limit_for(i) for i in range(10)]
    model.reset()
    assert [model.limit_for(i) for i in range(10)] == sequence


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigError):
        WearModel(mean=0.0)
    with pytest.raises(ConfigError):
        WearModel(sigma=-1.0)
    with pytest.raises(ConfigError):
        WearModel(min_limit=0)
