"""The generated compiled-twin source, exercised without a compiler.

``tools/build_fast_backend.py`` concatenates kernel.py, resources.py
and noc/network.py into one module for compilation.  No compiler
toolchain is assumed here: the twin is generated to a temp path and
imported as plain Python, which checks the real product of the
generator -- import rewrites, ``__all__`` merging, future-import
hoisting -- and that a twin Simulator's factories hand out twin-local
classes with byte-identical behaviour to the canonical stack.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.noc.network import FNoC
from repro.noc.packet import Packet
from repro.noc.topology import Mesh1D
from repro.sim import Link, Resource, Simulator, compiled_layers
from repro.sim.backend import fast_backend_status

TOOLS = Path(__file__).resolve().parent.parent / "tools"


def _build_tool():
    sys.path.insert(0, str(TOOLS))
    try:
        import build_fast_backend
    finally:
        sys.path.remove(str(TOOLS))
    return build_fast_backend


@pytest.fixture(scope="module")
def twin(tmp_path_factory):
    """The generated twin, imported as an ordinary module."""
    tool = _build_tool()
    path = tool.generate_twin(tmp_path_factory.mktemp("twin") / "twin.py")
    spec = importlib.util.spec_from_file_location("repro_twin_under_test",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    # dataclass decorators resolve the defining module via sys.modules.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


def test_twin_exports_all_three_layers(twin):
    for name in ("Simulator", "Event", "Process", "Resource", "Link",
                 "Store", "TokenPool", "Transfer", "FNoC", "NocBreakdown"):
        assert hasattr(twin, name), name
        assert name in twin.__all__


def test_factories_prefer_twin_local_classes(twin):
    sim = twin.Simulator()
    assert type(sim.resource(2, name="r")) is twin.Resource
    assert type(sim.link(100.0, name="l")) is twin.Link
    assert type(sim.store(name="s")) is twin.Store
    assert type(sim.token_pool(4, name="t")) is twin.TokenPool
    assert type(sim.fnoc(Mesh1D(4), channel_bandwidth=1000.0)) is twin.FNoC
    # ...and none of them are the canonical classes.
    assert twin.Resource is not Resource
    assert twin.Link is not Link


def test_canonical_factories_fall_back_to_package_classes():
    sim = Simulator()
    assert type(sim.resource(1)) is Resource
    assert type(sim.link(10.0)) is Link
    assert type(sim.fnoc(Mesh1D(2), channel_bandwidth=100.0)) is FNoC


def _contended_point(simulator_cls):
    """A small DES point crossing every primitive the twin embeds."""
    sim = simulator_cls()
    plane = sim.resource(1, name="plane")
    bus = sim.link(500.0, name="bus")
    pool = sim.token_pool(2, name="pool")
    noc = sim.fnoc(Mesh1D(4), channel_bandwidth=1000.0)
    done = []

    def op(sim, index):
        yield pool.acquire(1)
        grant = plane.request(priority=index % 2)
        yield grant
        yield sim.timeout(3.0 + index * 0.5)
        plane.cancel(grant)
        yield bus.transfer(4096, "io", 0)
        yield sim.process(noc.send(
            Packet(src=index % 4, dst=(index + 1) % 4,
                   payload_bytes=2048)))
        pool.release(1)
        done.append((index, sim.now))

    for index in range(6):
        sim.process(op(sim, index))
    sim.run()
    return sim.now, sim._seq, done, noc.packets_sent


def test_twin_point_byte_identical_to_canonical(twin):
    assert _contended_point(twin.Simulator) == _contended_point(Simulator)


def test_generation_aborts_on_source_drift(tmp_path, monkeypatch):
    tool = _build_tool()
    drifted = {path: dict(rewrites)
               for path, rewrites in tool._REWRITES.items()}
    drifted[tool.RESOURCES]["from .kernel import Gone\n"] = None
    monkeypatch.setattr(tool, "_REWRITES", drifted)
    with pytest.raises(RuntimeError, match="drift"):
        tool.generate_twin(tmp_path / "twin.py")


def test_compiled_layers_matches_backend_status():
    available, _detail = fast_backend_status()
    layers = compiled_layers()
    if not available:
        assert layers == ()
    else:
        assert layers[0] == "kernel"
        assert set(layers) <= {"kernel", "resources", "noc"}
