"""Tests for the result-export utilities."""

import json

from repro.core import ArchPreset, build_ssd, sim_geometry
from repro.report import flatten, run_result_row, series_csv, to_csv, to_json
from repro.workloads import SyntheticWorkload


def test_flatten_nested():
    data = {"a": {"b": 1, "c": {"d": 2.5}}, "e": "x", "skip": object()}
    flat = flatten(data)
    assert flat == {"a.b": 1, "a.c.d": 2.5, "e": "x"}


def test_flatten_scalar_lists_indexed():
    flat = flatten({"series": [1, 2, 3], "mixed": [1, object()]})
    assert flat == {"series.0": 1, "series.1": 2, "series.2": 3}


def test_to_csv_union_header_and_quoting():
    rows = [{"a": 1, "b": "x,y"}, {"a": 2, "c": 3.14159}]
    csv_text = to_csv(rows)
    lines = csv_text.strip().splitlines()
    assert lines[0] == "a,b,c"
    assert '"x,y"' in lines[1]
    assert lines[2].startswith("2,,3.14159")
    assert to_csv([]) == ""


def test_to_csv_drops_nan_inf():
    csv_text = to_csv([{"v": float("nan"), "w": 1},
                       {"v": float("inf"), "w": 2}])
    lines = csv_text.splitlines()
    assert lines[0] == "v,w"
    assert lines[1] == ",1"   # nan dropped to an empty cell
    assert lines[2] == ",2"   # inf likewise


def test_to_json_handles_objects():
    text = to_json({"x": 1, "obj": object()})
    data = json.loads(text)
    assert data["x"] == 1
    assert isinstance(data["obj"], str)


def test_series_csv_pads_columns():
    text = series_csv({"t": [0.0, 1.0, 2.0], "y": [5.0]})
    lines = text.strip().splitlines()
    assert lines[0] == "t,y"
    assert lines[1] == "0,5"
    assert lines[3] == "2,"


def test_run_result_row_end_to_end():
    geometry = sim_geometry(channels=2, ways=2, planes=2,
                            blocks_per_plane=8)
    ssd = build_ssd(ArchPreset.DSSD_F, geometry=geometry, queue_depth=8)
    workload = SyntheticWorkload(pattern="seq_write", io_size=4096)
    result = ssd.run(workload, duration_us=10_000)
    row = run_result_row(result, label="demo")
    assert row["label"] == "demo"
    assert row["arch"] == "dssd_f"
    assert row["io_bandwidth_MBps"] > 0
    assert "io_breakdown.system_bus" in row
    # The whole row must CSV-render cleanly.
    csv_text = to_csv([row])
    assert csv_text.count("\n") == 2
