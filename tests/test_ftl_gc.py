"""GC engine tests on a miniature SSD with a stub datapath."""

import pytest

from repro.controller import Breakdown
from repro.errors import ConfigError
from repro.flash import FlashGeometry
from repro.ftl import BlockManager, GarbageCollector, PageMappingTable
from repro.sim import Simulator

GEOM = FlashGeometry(channels=2, ways=1, dies=1, planes=2,
                     blocks_per_plane=6, pages_per_block=4)


class StubDatapath:
    """Constant-latency datapath that records calls."""

    def __init__(self, sim, move_us=10.0, erase_us=100.0):
        self.sim = sim
        self.move_us = move_us
        self.erase_us = erase_us
        self.moves = []
        self.erases = []

    def gc_move(self, src, dst):
        yield self.sim.timeout(self.move_us)
        self.moves.append((src, dst))
        return Breakdown()

    def gc_erase(self, addr):
        yield self.sim.timeout(self.erase_us)
        self.erases.append(addr)
        return Breakdown()


class StubHost:
    outstanding = 0


def make_world(policy="pagc", valid_per_block=2, filled_fraction=0.9,
               **gc_kwargs):
    sim = Simulator()
    mapping = PageMappingTable()
    blocks = BlockManager(GEOM, gc_reserve_blocks=1)
    datapath = StubDatapath(sim)
    lpn = 0
    n_fill = int(GEOM.blocks_total * filled_fraction)
    filled = 0
    for plane in range(GEOM.planes_total):
        for offset in range(GEOM.blocks_per_plane):
            if filled >= n_fill:
                break
            addr = GEOM.block_addr_of(plane * GEOM.blocks_per_plane + offset)
            offsets = set(range(valid_per_block))
            blocks.prefill_block(addr, offsets)
            for page in offsets:
                mapping.bind(lpn, GEOM.ppn_of(addr._replace(page=page)))
                lpn += 1
            filled += 1
    gc = GarbageCollector(sim, mapping, blocks, datapath, host=StubHost(),
                          policy=policy, **gc_kwargs)
    return sim, mapping, blocks, datapath, gc


def test_gc_triggers_below_threshold():
    sim, _m, blocks, _d, gc = make_world(filled_fraction=0.95)
    assert blocks.free_fraction < gc.trigger_free_fraction
    assert gc.maybe_trigger()
    assert gc.active
    sim.run()
    assert not gc.active
    assert blocks.free_fraction >= gc.stop_free_fraction


def test_gc_does_not_trigger_above_threshold():
    sim, _m, _b, _d, gc = make_world(filled_fraction=0.5)
    assert not gc.maybe_trigger()
    assert not gc.active


def test_gc_force_trigger():
    sim, _m, _b, _d, gc = make_world(filled_fraction=0.5)
    assert gc.maybe_trigger(force=True)
    sim.run()


def test_gc_moves_valid_pages_and_preserves_mapping():
    sim, mapping, blocks, datapath, gc = make_world(filled_fraction=0.95)
    lpns_before = {}
    for lpn in range(200):
        ppn = mapping.lookup(lpn)
        if ppn is not None:
            lpns_before[lpn] = ppn
    gc.maybe_trigger()
    sim.run()
    # Every LPN that existed still resolves somewhere.
    for lpn in lpns_before:
        assert mapping.lookup(lpn) is not None
    mapping.check_consistency()
    assert gc.stats.pages_moved == len(datapath.moves)
    assert gc.stats.blocks_erased == len(datapath.erases)
    assert gc.stats.blocks_erased > 0


def test_gc_episode_log_records_work():
    sim, _m, _b, _d, gc = make_world(filled_fraction=0.95)
    gc.maybe_trigger()
    sim.run()
    assert len(gc.stats.episode_log) == 1
    episode = gc.stats.episode_log[0]
    assert episode["end"] > episode["start"]
    assert episode["blocks"] == gc.stats.blocks_erased
    assert gc.stats.busy_time == pytest.approx(
        episode["end"] - episode["start"])


def test_gc_skips_pages_invalidated_before_move():
    sim, mapping, blocks, datapath, gc = make_world(filled_fraction=0.95)
    # Invalidate a bunch of LPNs as a host overwrite would.
    for lpn in range(20):
        ppn = mapping.lookup(lpn)
        if ppn is not None:
            mapping.unbind(lpn)
            blocks.invalidate(GEOM.addr_of(ppn))
    gc.maybe_trigger()
    sim.run()
    mapping.check_consistency()


def test_preemptive_gc_waits_for_io():
    sim, _m, blocks, datapath, gc = make_world(
        policy="preemptive", filled_fraction=0.95, preempt_poll_us=5.0)
    gc.host.outstanding = 1

    def quiet_later(sim):
        yield sim.timeout(500.0)
        gc.host.outstanding = 0

    sim.process(quiet_later(sim))
    gc.maybe_trigger()
    sim.run()
    # No page move can complete before I/O went quiet (hard floor not hit).
    assert gc.stats.episode_log[0]["end"] > 500.0
    assert gc.stats.pages_moved > 0


def test_preemptive_gc_hard_floor_overrides_io():
    sim, _m, blocks, _d, gc = make_world(
        policy="preemptive", filled_fraction=0.95,
        hard_floor_fraction=0.5)  # floor above current free fraction
    gc.host.outstanding = 5      # I/O never goes quiet
    gc.maybe_trigger()
    sim.run()
    assert gc.stats.pages_moved > 0


def test_tinytail_limits_concurrent_channels():
    sim, _m, _b, datapath, gc = make_world(
        policy="tinytail", filled_fraction=0.95, tinytail_channels=1)
    gc.maybe_trigger()
    sim.run()
    assert gc.stats.pages_moved > 0
    assert gc.stats.blocks_erased > 0


def test_gc_invalid_configs():
    sim = Simulator()
    mapping = PageMappingTable()
    blocks = BlockManager(GEOM, gc_reserve_blocks=1)
    with pytest.raises(ConfigError):
        GarbageCollector(sim, mapping, blocks, None, policy="magic")
    with pytest.raises(ConfigError):
        GarbageCollector(sim, mapping, blocks, None,
                         trigger_free_fraction=0.5,
                         stop_free_fraction=0.4)
    with pytest.raises(ConfigError):
        GarbageCollector(sim, mapping, blocks, None, pipeline_depth=0)


def test_gc_throughput_metric():
    sim, _m, _b, _d, gc = make_world(filled_fraction=0.95)
    gc.maybe_trigger()
    sim.run()
    assert gc.stats.throughput_pages_per_us > 0.0
