"""Unit and property tests for the stats utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import LatencyStats, TimeBins, percentile
from repro.sim.stats import Counter


# ---------------------------------------------------------------- percentile


def test_percentile_basics():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 5.0
    assert percentile(values, 0.5) == 3.0
    assert percentile(values, 0.25) == 2.0


def test_percentile_interpolates():
    values = [0.0, 10.0]
    assert percentile(values, 0.75) == pytest.approx(7.5)


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)
    with pytest.raises(ValueError):
        percentile([1.0], -0.01)


def test_latency_stats_pct_validates_fraction():
    stats = LatencyStats()
    stats.add(1.0)
    with pytest.raises(ValueError):
        stats.pct(1.5)
    with pytest.raises(ValueError):
        stats.pct(-0.2)


def test_latency_stats_pct_validates_fraction_when_empty():
    """Out-of-range fractions are rejected even before any sample."""
    stats = LatencyStats()
    with pytest.raises(ValueError):
        stats.pct(99.0)
    assert stats.pct(0.99) == 0.0


def test_latency_stats_pct_without_samples_raises_named_error():
    """A sample-free recorder refuses exact percentiles with the named
    exception (still a ValueError subclass for old callers)."""
    from repro.errors import SamplesUnavailableError

    stats = LatencyStats("noc", keep_samples=False)
    stats.add(1.0)
    with pytest.raises(SamplesUnavailableError, match="noc.*no samples"):
        stats.pct(0.5)
    assert issubclass(SamplesUnavailableError, ValueError)


def test_latency_stats_pct_with_samples_still_works():
    stats = LatencyStats("io", keep_samples=True)
    stats.extend([1.0, 2.0, 3.0])
    assert stats.pct(0.5) == 2.0


@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=200),
       st.floats(min_value=0.0, max_value=1.0))
def test_percentile_bounded_by_extremes(values, fraction):
    values.sort()
    result = percentile(values, fraction)
    assert values[0] <= result <= values[-1]


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100))
def test_percentile_monotone_in_fraction(values):
    values.sort()
    fractions = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
    results = [percentile(values, f) for f in fractions]
    slack = 1e-9 * max(values[-1], 1.0)
    assert all(b >= a - slack for a, b in zip(results, results[1:]))


# ---------------------------------------------------------------- LatencyStats


def test_latency_stats_summary():
    stats = LatencyStats("io")
    stats.extend([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.min == 1.0
    assert stats.max == 4.0
    assert stats.p50 == pytest.approx(2.5)
    summary = stats.summary()
    assert summary["count"] == 4.0
    assert summary["p99"] == stats.pct(0.99)


def test_latency_stats_empty_is_zero():
    stats = LatencyStats()
    assert stats.mean == 0.0
    assert stats.p99 == 0.0
    assert stats.max == 0.0


def test_latency_stats_cache_invalidation():
    stats = LatencyStats()
    stats.add(10.0)
    assert stats.p99 == 10.0
    stats.add(100.0)
    assert stats.p99 > 10.0


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
def test_latency_p99_at_least_median(values):
    stats = LatencyStats()
    stats.extend(values)
    assert stats.p99 >= stats.p50


# ---------------------------------------------------------------- TimeBins


def test_timebins_add_and_series():
    bins = TimeBins(width=10.0)
    bins.add(5.0, 100.0)
    bins.add(12.0, 50.0)
    bins.add(14.0, 25.0)
    times, values = bins.series()
    assert times == [0.0, 10.0]
    assert values == [100.0, 75.0]
    assert bins.total() == 175.0


def test_timebins_interval_split_across_bins():
    bins = TimeBins(width=10.0)
    bins.add_interval(5.0, 25.0)  # spans three bins: 5, 10, 5
    assert bins.value_at(0.0) == pytest.approx(5.0)
    assert bins.value_at(10.0) == pytest.approx(10.0)
    assert bins.value_at(20.0) == pytest.approx(5.0)
    assert bins.total() == pytest.approx(20.0)


def test_timebins_interval_within_one_bin():
    bins = TimeBins(width=100.0)
    bins.add_interval(10.0, 30.0)
    assert bins.value_at(0.0) == pytest.approx(20.0)


def test_timebins_errors():
    with pytest.raises(ValueError):
        TimeBins(width=0.0)
    bins = TimeBins(width=10.0)
    with pytest.raises(ValueError):
        bins.add_interval(5.0, 1.0)


@given(st.floats(min_value=0, max_value=1e5), st.floats(min_value=0, max_value=1e4))
def test_timebins_interval_total_is_duration(start, duration):
    bins = TimeBins(width=7.0)
    bins.add_interval(start, start + duration)
    assert bins.total() == pytest.approx(duration, abs=1e-6)


def test_timebins_empty_series():
    bins = TimeBins(width=10.0)
    assert bins.series() == ([], [])


# ---------------------------------------------------------------- Counter


def test_counter_incr_and_get():
    counter = Counter()
    counter.incr("gc")
    counter.incr("gc", 2.0)
    assert counter.get("gc") == 3.0
    assert counter.get("absent") == 0.0
    assert counter.as_dict() == {"gc": 3.0}
