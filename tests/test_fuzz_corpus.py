"""Regression loader: replay every committed fuzz repro.

Each ``tests/fuzz_corpus/*.json`` file is a ddmin-minimized genome that
once tripped an invariant oracle.  The fixed code must replay every one
of them clean; a reappearing violation is a regression of the original
bug.  Cases marked ``"mode": "differential"`` replay on both the
baseline and dssd presets through the same end-state comparison that
found them.  The canary cases additionally prove their repro is *live*:
with the matching hidden canary flag set, the same genome must still
trip its oracle.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz.canary import CANARY_ENV, DIFF_CANARY_ENV
from repro.fuzz.cli import replay_case
from repro.fuzz.genome import Genome

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"
CASES = sorted(CORPUS_DIR.glob("*.json"))


def _case_id(path: Path) -> str:
    return path.stem


@pytest.mark.parametrize("path", CASES, ids=_case_id)
def test_committed_repro_replays_clean(path, monkeypatch):
    monkeypatch.delenv(CANARY_ENV, raising=False)
    monkeypatch.delenv(DIFF_CANARY_ENV, raising=False)
    case = json.loads(path.read_text())
    assert case["schema"] == 1
    assert case["oracle"]
    # The committed genome must parse and round-trip.
    genome = Genome.from_dict(case["genome"])
    assert genome.ops
    outcome = replay_case(path)
    violations = [v["oracle"] for v in outcome["violations"]]
    assert case["oracle"] not in violations, (
        f"regression: committed repro {path.name} trips "
        f"{case['oracle']} again: {outcome['violations']}"
    )


@pytest.mark.parametrize(
    "path",
    [p for p in CASES if "leaked_holds" in p.name],
    ids=_case_id,
)
def test_canary_repro_still_trips_with_flag(path, monkeypatch):
    """The committed canary case is live: flag on => oracle fires."""
    monkeypatch.setenv(CANARY_ENV, "1")
    case = json.loads(path.read_text())
    outcome = replay_case(path)
    violations = [v["oracle"] for v in outcome["violations"]]
    assert case["oracle"] in violations


@pytest.mark.parametrize(
    "path",
    [p for p in CASES if "arch_divergence_canary" in p.name],
    ids=_case_id,
)
def test_diff_canary_repro_still_trips_with_flag(path, monkeypatch):
    """The committed differential canary is live: with the hidden
    baseline-only trim off-by-one installed, the replayed comparison
    must report the divergence again."""
    monkeypatch.setenv(DIFF_CANARY_ENV, "1")
    case = json.loads(path.read_text())
    assert case["mode"] == "differential"
    outcome = replay_case(path)
    violations = [v["oracle"] for v in outcome["violations"]]
    assert "arch_divergence" in violations
