"""Fleet orchestration: placement, sharding, and tail aggregation."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments import fig_fleet
from repro.experiments.runner import configured
from repro.fleet import (
    ConsistentHashRing,
    DeviceSpec,
    FleetSpec,
    TenantStream,
    run_fleet,
    shard_point,
    stable_hash,
)
from repro.sim import LatencyStats


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Point both caches (point results + snapshots) at a fresh dir."""
    monkeypatch.setenv("REPRO_DSSD_CACHE_DIR", str(tmp_path / "cache"))


# -- consistent hashing -------------------------------------------------------

def test_stable_hash_is_process_independent():
    # SHA-256 prefix, not the salted builtin hash(): pinned forever.
    assert stable_hash("tenant00") == 0xE644DB4E36F45451
    assert stable_hash("a") != stable_hash("b")
    assert stable_hash("a") == stable_hash("a")


def test_ring_is_order_independent_and_total():
    ring_a = ConsistentHashRing(["d0", "d1", "d2"])
    ring_b = ConsistentHashRing(["d2", "d0", "d1"])
    keys = [f"k{i}" for i in range(64)]
    assert ring_a.assignments(keys) == ring_b.assignments(keys)
    placed = ring_a.assignments(keys)
    assert sorted(sum(placed.values(), [])) == sorted(keys)
    assert set(placed) == {"d0", "d1", "d2"}


def test_ring_removal_only_moves_lost_members_keys():
    keys = [f"k{i}" for i in range(128)]
    big = ConsistentHashRing(["d0", "d1", "d2", "d3"])
    small = ConsistentHashRing(["d0", "d1", "d2"])
    moved = sum(1 for key in keys
                if big.device_for(key) != small.device_for(key)
                and big.device_for(key) != "d3")
    # Consistency: keys not on the removed device overwhelmingly stay.
    assert moved == 0


def test_ring_rejects_bad_membership():
    with pytest.raises(ConfigError):
        ConsistentHashRing([])
    with pytest.raises(ConfigError):
        ConsistentHashRing(["d0", "d0"])
    with pytest.raises(ConfigError):
        ConsistentHashRing(["d0"], vnodes=0)


# -- specs --------------------------------------------------------------------

def test_fleet_spec_validation():
    device = DeviceSpec(device_id="d0")
    tenant = TenantStream(name="t0")
    with pytest.raises(ConfigError):
        FleetSpec(devices=[], tenants=[tenant])
    with pytest.raises(ConfigError):
        FleetSpec(devices=[device, device], tenants=[tenant])
    with pytest.raises(ConfigError):
        FleetSpec(devices=[device], tenants=[tenant, tenant])
    with pytest.raises(ConfigError):
        FleetSpec(devices=[device], tenants=[tenant], duration_us=0.0)
    with pytest.raises(ConfigError):
        DeviceSpec(device_id="d1", age_pe_fraction=1.0)
    with pytest.raises(ConfigError):
        DeviceSpec(device_id="d1", geometry="nope")


def test_placement_covers_every_device_and_tenant():
    spec = fig_fleet.fleet_spec(devices=8, quick=True)
    placement = spec.placement()
    assert set(placement) == {d.device_id for d in spec.devices}
    placed = sorted(sum(placement.values(), []))
    assert placed == sorted(t.name for t in spec.tenants)


# -- shards -------------------------------------------------------------------

def test_shard_without_tenants_reports_zero_without_simulating():
    row = shard_point(device_id="idle", arch="baseline",
                      age_pe_fraction=0.5, seed=3, geometry="sim",
                      overrides={}, tenants=[], duration_us=1000.0,
                      warmup_us=0.0)
    assert row["tenant_names"] == []
    assert row["requests_completed"] == 0
    assert LatencyStats.from_state(row["io_latency"]).count == 0


def test_shard_snapshot_cache_does_not_change_results(tmp_path,
                                                      monkeypatch):
    params = dict(device_id="d0", arch="dssd", age_pe_fraction=0.6,
                  seed=5, geometry="sim",
                  overrides={"prefill_fraction": 0.5},
                  tenants=[TenantStream(name="t0").params()],
                  duration_us=800.0, warmup_us=0.0)
    cold = shard_point(**params)   # ages + writes the snapshot
    warm = shard_point(**params)   # restores the cached snapshot
    monkeypatch.setenv("REPRO_DSSD_CACHE", "0")
    uncached = shard_point(**params)  # ages again, no disk involved
    assert json.loads(json.dumps(cold)) \
        == json.loads(json.dumps(warm)) \
        == json.loads(json.dumps(uncached))


# -- fleet runs ---------------------------------------------------------------

def _tiny_spec():
    devices = [
        DeviceSpec(device_id=f"d{i}",
                   arch=("baseline", "dssd_f")[i % 2],
                   age_pe_fraction=(0.0, 0.7)[i % 2],
                   seed=11 + i,
                   overrides={"prefill_fraction": 0.5})
        for i in range(3)
    ]
    tenants = [TenantStream(name=f"t{i}", queue_depth=2, seed=31 + i)
               for i in range(6)]
    return FleetSpec(devices=devices, tenants=tenants, duration_us=600.0)


def test_run_fleet_aggregates_exact_union_percentiles():
    with configured(jobs=1, cache=False):
        result = run_fleet(_tiny_spec())
    merged = LatencyStats("check")
    for shard in result["shards"]:
        merged.merge(LatencyStats.from_state(shard["io_latency"]))
    fleet = result["fleet"]
    assert fleet["requests_completed"] == merged.count > 0
    assert fleet["io_p99_us"] == merged.p99
    assert fleet["io_p999_us"] == merged.pct(0.999)
    assert fleet["devices"] == 3
    assert [s["device_id"] for s in result["shards"]] == ["d0", "d1", "d2"]


def test_run_fleet_deterministic_across_jobs():
    spec = _tiny_spec()
    with configured(jobs=1, cache=False):
        serial = run_fleet(spec)
    with configured(jobs=2, cache=False):
        parallel = run_fleet(spec)
    assert json.loads(json.dumps(serial)) == json.loads(json.dumps(parallel))


def test_fleet_experiment_runs_and_tabulates():
    with configured(jobs=1, cache=False):
        result = fig_fleet.run(quick=True, devices=2)
    assert "FLEET" in result["table"]
    assert result["fleet"]["devices"] == 2
    assert result["spec"]["tenants"] == 4
