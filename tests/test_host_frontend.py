"""Unit tests for the multi-queue host frontend building blocks.

Queue pairs, token buckets, QoS policies, and -- most importantly --
the ordering guarantees of the three NVMe arbitration policies, driven
directly (no simulator) since arbiters are deterministic over queue
state plus their own bookkeeping.
"""

import pytest

from repro.errors import ConfigError
from repro.host import (
    ARBITERS,
    QosPolicy,
    QueuePair,
    RoundRobinArbiter,
    Sqe,
    StrictPriorityArbiter,
    TenantSpec,
    TokenBucket,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from repro.sim import Simulator
from repro.workloads import SyntheticWorkload


# ---------------------------------------------------------------- stand-ins


class FakeQueue:
    """Arbiter-facing queue stand-in: a counter with arbitration attrs."""

    def __init__(self, pending=0, weight=1, priority=0):
        self.pending = pending
        self.weight = weight
        self.priority = priority

    def __len__(self):
        return self.pending


def drain(arbiter, queues, rounds):
    """Ask the arbiter for *rounds* picks, consuming one entry each."""
    picks = []
    for _ in range(rounds):
        eligible = [len(q) > 0 for q in queues]
        choice = arbiter.select(eligible)
        if choice is None:
            break
        queues[choice].pending -= 1
        picks.append(choice)
    return picks


# ---------------------------------------------------------------- QueuePair


def test_queue_pair_doorbell_and_slot_lifecycle():
    sim = Simulator()
    qp = QueuePair(sim, qid=0, depth=2)
    first = Sqe("r1", 0, sim.now)
    second = Sqe("r2", 0, sim.now)
    third = Sqe("r3", 0, sim.now)
    assert qp.post(first) and qp.post(second)
    assert not qp.post(third)          # ring full
    assert len(qp) == 2 and qp.occupancy == 2
    fetched = qp.pop()
    assert fetched is first
    # The slot stays occupied while the command is in flight.
    assert len(qp) == 1 and qp.occupancy == 2
    assert not qp.post(third)
    qp.complete(fetched)
    assert qp.occupancy == 1
    assert qp.post(third)
    assert qp.doorbells == 3


def test_queue_pair_space_waiters_fifo():
    sim = Simulator()
    qp = QueuePair(sim, qid=0, depth=1)
    sqe = Sqe("r", 0, sim.now)
    assert qp.post(sqe)
    granted = []
    for tag in ("a", "b"):
        def waiter(tag=tag):
            yield qp.wait_for_space()
            granted.append(tag)
        sim.process(waiter())
    sim.run()
    assert granted == []               # ring still full
    fetched = qp.pop()
    qp.complete(fetched)               # frees one slot -> one grant
    sim.run()
    assert granted == ["a"]


def test_queue_pair_guards():
    sim = Simulator()
    with pytest.raises(ConfigError):
        QueuePair(sim, 0, depth=0)
    with pytest.raises(ConfigError):
        QueuePair(sim, 0, depth=4, weight=0)
    qp = QueuePair(sim, 0, depth=4)
    with pytest.raises(ConfigError):
        qp.pop()
    with pytest.raises(ConfigError):
        qp.complete(Sqe("r", 0, 0.0))


def test_sqe_wait_split():
    sim = Simulator()
    qp = QueuePair(sim, 0, depth=4)
    sqe = Sqe("r", 0, arrival=sim.now)
    qp.post(sqe)
    with pytest.raises(ConfigError):
        _ = sqe.sq_wait              # not dispatched yet

    def later():
        yield sim.timeout(3.0)
        qp.pop()

    sim.process(later())
    sim.run()
    assert sqe.sq_wait == pytest.approx(3.0)


# ---------------------------------------------------------------- TokenBucket


def test_token_bucket_refills_over_sim_time():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_per_us=0.5, burst=2.0)   # 1 token / 2 us
    assert bucket.ready(2.0)
    bucket.take(2.0)
    assert not bucket.ready(1.0)
    assert bucket.ready_at(1.0) == pytest.approx(2.0)
    sim.run(until=2.0)
    assert bucket.ready(1.0)
    assert not bucket.ready(2.0)
    sim.run(until=100.0)
    assert bucket.available() == pytest.approx(2.0)          # capped at burst


def test_token_bucket_unlimited_and_guards():
    sim = Simulator()
    unlimited = TokenBucket(sim, rate_per_us=None)
    assert unlimited.ready(1e9)
    unlimited.take(1e9)                                       # no-op
    with pytest.raises(ConfigError):
        TokenBucket(sim, rate_per_us=0.0)
    with pytest.raises(ConfigError):
        TokenBucket(sim, rate_per_us=1.0, burst=0.5)
    bucket = TokenBucket(sim, rate_per_us=1.0, burst=2.0)
    with pytest.raises(ConfigError):
        bucket.ready_at(3.0)                                  # above burst
    bucket.take(2.0)
    with pytest.raises(ConfigError):
        bucket.take(1.0)                                      # underflow


# ---------------------------------------------------------------- QosPolicy


def test_qos_policy_validation_and_bucket():
    with pytest.raises(ConfigError):
        QosPolicy(rate_iops=-5.0)
    with pytest.raises(ConfigError):
        QosPolicy(weight=0)
    with pytest.raises(ConfigError):
        QosPolicy(sq_depth=0)
    with pytest.raises(ConfigError):
        QosPolicy(burst_ops=0.0)
    policy = QosPolicy(rate_iops=1_000_000.0, burst_ops=2.0)
    assert policy.rate_per_us == pytest.approx(1.0)
    bucket = policy.make_bucket(Simulator())
    assert bucket.burst == 2.0
    assert QosPolicy().rate_per_us is None


# ---------------------------------------------------------------- TenantSpec


def test_tenant_spec_validation():
    workload = SyntheticWorkload()
    with pytest.raises(ConfigError):
        TenantSpec(name="", workload=workload)
    with pytest.raises(ConfigError):
        TenantSpec(name="t", workload=workload, driver="fuzz")
    with pytest.raises(ConfigError):
        TenantSpec(name="t", workload=workload, driver="poisson")
    with pytest.raises(ConfigError):
        TenantSpec(name="t", workload=workload, queue_depth=0)
    spec = TenantSpec(name="t", workload=workload, driver="poisson",
                      rate_iops=1e6)
    assert spec.arrival_interval_us == pytest.approx(1.0)


# ---------------------------------------------------------------- arbiters


def test_round_robin_cycles_fairly():
    queues = [FakeQueue(pending=10) for _ in range(3)]
    arbiter = RoundRobinArbiter(queues)
    picks = drain(arbiter, queues, 9)
    assert picks == [0, 1, 2, 0, 1, 2, 0, 1, 2]


def test_round_robin_skips_empty_queues():
    queues = [FakeQueue(pending=0), FakeQueue(pending=2),
              FakeQueue(pending=0), FakeQueue(pending=2)]
    arbiter = RoundRobinArbiter(queues)
    assert drain(arbiter, queues, 10) == [1, 3, 1, 3]
    assert arbiter.select([False] * 4) is None


def test_round_robin_burst_continuation():
    queues = [FakeQueue(pending=5), FakeQueue(pending=5)]
    arbiter = RoundRobinArbiter(queues, burst=3)
    assert drain(arbiter, queues, 8) == [0, 0, 0, 1, 1, 1, 0, 0]


def test_wrr_converges_to_weight_ratio():
    queues = [FakeQueue(pending=300, weight=3),
              FakeQueue(pending=300, weight=1)]
    arbiter = WeightedRoundRobinArbiter(queues)
    picks = drain(arbiter, queues, 200)
    assert picks.count(0) == 150 and picks.count(1) == 50
    # Weight ratio holds over every full round (4 picks).
    for start in range(0, 200, 4):
        window = picks[start:start + 4]
        assert window.count(0) == 3 and window.count(1) == 1


def test_wrr_gives_leftover_service_to_backlogged_queue():
    queues = [FakeQueue(pending=2, weight=3), FakeQueue(pending=50, weight=1)]
    arbiter = WeightedRoundRobinArbiter(queues)
    picks = drain(arbiter, queues, 12)
    # Once queue 0 drains, queue 1 gets every remaining fetch.
    assert picks.count(0) == 2
    assert picks.count(1) == 10


def test_strict_priority_starves_lower_class():
    queues = [FakeQueue(pending=5, priority=2),
              FakeQueue(pending=5, priority=0),
              FakeQueue(pending=5, priority=1)]
    arbiter = StrictPriorityArbiter(queues)
    picks = drain(arbiter, queues, 15)
    assert picks[:5] == [1] * 5          # highest class first
    assert picks[5:10] == [2] * 5        # then the middle one
    assert picks[10:] == [0] * 5


def test_strict_priority_round_robins_within_class():
    queues = [FakeQueue(pending=4, priority=0),
              FakeQueue(pending=4, priority=0),
              FakeQueue(pending=4, priority=5)]
    arbiter = StrictPriorityArbiter(queues)
    picks = drain(arbiter, queues, 8)
    assert picks == [0, 1, 0, 1, 0, 1, 0, 1]


def test_make_arbiter_registry():
    queues = [FakeQueue(pending=1)]
    assert isinstance(make_arbiter("rr", queues), RoundRobinArbiter)
    assert isinstance(make_arbiter("wrr", queues),
                      WeightedRoundRobinArbiter)
    assert isinstance(make_arbiter("prio", queues), StrictPriorityArbiter)
    assert set(ARBITERS) == {"rr", "wrr", "prio"}
    with pytest.raises(ConfigError):
        make_arbiter("lottery", queues)
    with pytest.raises(ConfigError):
        make_arbiter("rr", [])
    with pytest.raises(ConfigError):
        make_arbiter("rr", queues, burst=0)
