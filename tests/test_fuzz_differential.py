"""Tests for differential fuzzing, power-loss genomes, and the repro CLI.

Covers the baseline-vs-dssd differential executor and its
``arch_divergence`` oracle, the :mod:`repro.fuzz.diffcheck`
canonicalizer's freedom from timing/wear false positives (self-diffs
are always empty), the ``powercut_at`` power-loss pass built on
``durable_state``/``recover_ssd``, the seeded differential canary, and
the hardened ``repro fuzz repro`` case loader's exit codes.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checkpoint import (DURABLE_SCHEMA, durable_state,
                                   recover_ssd)
from repro.errors import SnapshotError
from repro.fuzz import diffcheck
from repro.fuzz.canary import DIFF_CANARY_ENV
from repro.fuzz.cli import CaseFileError, load_case, main, replay_case
from repro.fuzz.engine import SMOKE_DIFF_EXECS, run_fuzz
from repro.fuzz.executor import (DIFF_ARCHES, build_config, execute,
                                 _differential_pair)
from repro.fuzz.genome import (ARCHES, MAX_PAGES_PER_OP, FuzzOp, Genome,
                               GenomeConfig)
from repro.fuzz.seeds import make_seeds


def _simple_ops():
    return [FuzzOp(kind="write", lpn_frac=0.3, n_pages=2),
            FuzzOp(kind="trim", lpn_frac=0.3, n_pages=2, gap_us=40.0),
            FuzzOp(kind="write", lpn_frac=0.7, n_pages=1, gap_us=10.0),
            FuzzOp(kind="flush"),
            FuzzOp(kind="read", lpn_frac=0.7)]


# ---------------------------------------------------------- diffcheck


def test_self_diff_is_empty_for_every_arch_preset():
    """Same device diffed against itself: always empty, every preset."""
    for arch in ARCHES:
        genome = Genome(config=GenomeConfig(arch=arch), ops=_simple_ops())
        outcome = execute(genome, collect_coverage=False)
        canon = outcome["canonical"]
        assert diffcheck.diff(canon, canon) == []


_SELF_OP = st.builds(
    FuzzOp,
    kind=st.sampled_from(["read", "write", "trim", "flush"]),
    lpn_frac=st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
    n_pages=st.integers(min_value=1, max_value=MAX_PAGES_PER_OP),
    gap_us=st.floats(min_value=0.0, max_value=150.0, allow_nan=False),
    dram_hit=st.booleans(),
)


@settings(max_examples=40, deadline=None, derandomize=True)
@given(arch=st.sampled_from(["baseline", "dssd"]),
       write_policy=st.sampled_from(["writeback", "writethrough"]),
       ops=st.lists(_SELF_OP, min_size=1, max_size=12))
def test_same_arch_runs_never_diverge(arch, write_policy, ops):
    """baseline-vs-baseline and dssd-vs-dssd: no arch_divergence false
    positives from timing or wear noise -- two executions of the same
    genome on the same preset canonicalize identically."""
    genome = Genome(config=GenomeConfig(arch=arch,
                                        write_policy=write_policy),
                    ops=ops).normalized()
    first = execute(genome, collect_coverage=False)
    second = execute(genome, collect_coverage=False)
    assert diffcheck.diff(first["canonical"], second["canonical"]) == []


def test_diff_reports_mismatches_with_labels():
    a = {"mapped_lpns": [1, 2, 3], "requests_completed": 5}
    b = {"mapped_lpns": [1, 2], "requests_completed": 7}
    lines = diffcheck.diff(a, b, labels=("baseline", "dssd"))
    assert len(lines) == 2
    assert any("only in baseline [3]" in line for line in lines)
    assert any("baseline=5 != dssd=7" in line for line in lines)


def test_exception_detail_normalized_to_type():
    canon = diffcheck.canonical_state.__module__  # module import sanity
    assert canon == "repro.fuzz.diffcheck"
    assert diffcheck._exception_type(
        "MappingError: ppn 42 at t=133.7us") == "MappingError"


# ------------------------------------------------- differential executor


def test_differential_outcome_shape_and_determinism():
    genome = Genome(config=GenomeConfig(arch="dssd_f"), ops=_simple_ops())
    first = execute(genome, differential=True)
    second = execute(genome, differential=True)
    assert first == second
    assert first["status"] == "ok"
    assert not first["violations"]
    assert set(first["canonical"]) == set(DIFF_ARCHES)
    assert set(first["metrics"]) == set(DIFF_ARCHES)
    assert first["edges"]


def test_differential_pair_zeroes_arch_dependent_noise():
    genome = Genome(
        config=GenomeConfig(arch="dssd_f", base_rber=1e-4, fault_rate=0.1,
                            snapshot_at=0.5, powercut_at=0.5),
        ops=_simple_ops())
    pair = _differential_pair(genome.normalized())
    assert [g.config.arch for g in pair] == list(DIFF_ARCHES)
    for arch_genome in pair:
        assert arch_genome.config.base_rber == 0.0
        assert arch_genome.config.fault_rate == 0.0
        assert arch_genome.config.snapshot_at == 0.0
        # Power loss is architecture-invariant behaviour; it stays.
        assert arch_genome.config.powercut_at == 0.5


def test_differential_seeds_all_clean():
    """No arch_divergence false positives across the seed corpus."""
    for genome in make_seeds():
        outcome = execute(genome, collect_coverage=False,
                          differential=True)
        assert outcome["status"] == "ok", (genome.origin,
                                           outcome["detail"])
        assert not outcome["violations"], (genome.origin,
                                           outcome["violations"])


# ---------------------------------------------------------- power loss


def test_powercut_pass_is_clean_on_fixed_model():
    for policy in ("writeback", "writethrough"):
        for cut in (0.2, 0.5, 0.8):
            genome = Genome(
                config=GenomeConfig(write_policy=policy, powercut_at=cut),
                ops=_simple_ops())
            outcome = execute(genome, collect_coverage=False)
            assert outcome["status"] == "ok"
            assert not outcome["violations"], (policy, cut,
                                               outcome["violations"])


def test_durable_state_roundtrip_preserves_logical_contents():
    from repro.core.ssd import SimulatedSSD

    genome = Genome(config=GenomeConfig(), ops=_simple_ops()).normalized()
    ssd = SimulatedSSD(build_config(genome.config))
    ssd.prefill()
    ssd.ftl.start()
    ssd.sim.run()
    state = json.loads(json.dumps(durable_state(ssd)))
    assert state["schema"] == DURABLE_SCHEMA
    recovered = recover_ssd(state)
    # The recovered device serves the same logical contents...
    assert (recovered.ftl.mapping.state_dict()
            == ssd.ftl.mapping.state_dict())
    # ...from a consistent mapping/valid-page mirror at clock zero.
    recovered.ftl.audit()
    assert recovered.sim.now == 0.0


def test_recover_ssd_rejects_wrong_schema():
    with pytest.raises(SnapshotError):
        recover_ssd({"schema": DURABLE_SCHEMA + 1})


# ------------------------------------------------- differential canary


def test_fuzzer_finds_and_shrinks_seeded_divergence(tmp_path, monkeypatch):
    """The seeded baseline-only trim off-by-one is found by the
    differential fuzzer within the smoke budget and ddmin-shrunk to at
    most 3 ops; the minimized repro replays clean with the flag off."""
    monkeypatch.setenv(DIFF_CANARY_ENV, "1")
    report = run_fuzz(seed=7, execs=SMOKE_DIFF_EXECS, jobs=1,
                      repro_dir=tmp_path, differential=True)
    divergences = [v for v in report.violations
                   if v["oracle"] == "arch_divergence"]
    assert divergences, report.violations
    for violation in divergences:
        assert violation["minimized_ops"] <= 3, violation
        assert violation["path"] is not None
        case = json.loads(open(violation["path"]).read())
        assert case["mode"] == "differential"
        genome = Genome.from_dict(case["genome"])
        # Flag still on: the minimized repro reproduces the divergence.
        outcome = execute(genome, collect_coverage=False,
                          differential=True)
        assert "arch_divergence" in {v["oracle"]
                                     for v in outcome["violations"]}
        # Flag off: same genome replays clean.
        monkeypatch.delenv(DIFF_CANARY_ENV)
        clean = execute(genome, collect_coverage=False, differential=True)
        assert not clean["violations"], clean["violations"]
        monkeypatch.setenv(DIFF_CANARY_ENV, "1")


def test_differential_fuzz_deterministic_across_jobs(monkeypatch):
    monkeypatch.delenv(DIFF_CANARY_ENV, raising=False)
    reports = [run_fuzz(seed=7, execs=16, jobs=jobs, differential=True)
               for jobs in (1, 2)]
    assert reports[0].corpus_hash == reports[1].corpus_hash
    assert reports[0].distinct_edges == reports[1].distinct_edges


# ------------------------------------------------------- repro CLI

_GOOD_CASE = {
    "schema": 1,
    "oracle": "arch_divergence",
    "mode": "differential",
    "genome": Genome(config=GenomeConfig(),
                     ops=[FuzzOp(kind="read")]).normalized().to_dict(),
}


def test_load_case_accepts_valid_file(tmp_path):
    path = tmp_path / "case.json"
    path.write_text(json.dumps(_GOOD_CASE))
    case = load_case(path)
    assert case["_genome"].ops[0].kind == "read"
    outcome = replay_case(path)
    assert outcome["status"] == "ok"


@pytest.mark.parametrize("content,match", [
    (None, "cannot read"),
    ('{"schema": 1, "genome"', "not valid JSON"),
    ('[1, 2, 3]', "not a JSON object"),
    ('{"schema": 99, "genome": {}}', "unsupported schema"),
    ('{"schema": 1}', "missing its genome"),
    ('{"schema": 1, "genome": {"config": {"arch": []}, "ops": "x"}}',
     "malformed genome"),
])
def test_load_case_diagnoses_every_failure_mode(tmp_path, content, match):
    path = tmp_path / "case.json"
    if content is not None:
        path.write_text(content)
    with pytest.raises(CaseFileError, match=match):
        load_case(path)


def test_repro_subcommand_exit_codes(tmp_path, capsys):
    # Clean replay (no oracle trips on fixed code): exit 0.
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_GOOD_CASE))
    assert main(["repro", str(good)]) == 0

    # Missing file: exit 2 with a one-line diagnostic, no traceback.
    assert main(["repro", str(tmp_path / "nope.json")]) == 2
    err = capsys.readouterr().err
    assert "error: cannot read" in err
    assert "Traceback" not in err

    # Truncated JSON: exit 2.
    bad = tmp_path / "trunc.json"
    bad.write_text('{"schema": 1, "genome"')
    assert main(["repro", str(bad)]) == 2
    assert "not valid JSON" in capsys.readouterr().err

    # Usage error: exit 2.
    assert main(["repro"]) == 2
