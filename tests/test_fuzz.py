"""Tests for the coverage-guided workload fuzzer (``repro.fuzz``)."""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz.canary import CANARY_ENV
from repro.fuzz.corpus import Corpus
from repro.fuzz.engine import SMOKE_EXECS, SMOKE_MIN_EDGES, run_fuzz
from repro.fuzz.executor import execute
from repro.fuzz.genome import (ARCHES, GC_POLICIES, MAX_OPS,
                               MAX_PAGES_PER_OP, WRITE_POLICIES, FuzzOp,
                               Genome, GenomeConfig)
from repro.fuzz.minimize import ddmin, minimize_for_oracle
from repro.fuzz.mutate import mutate
from repro.fuzz.seeds import make_seeds


# ---------------------------------------------------------------- genome


def test_genome_json_roundtrip():
    genome = Genome(
        config=GenomeConfig(arch="dssd_f", tenants=2, base_rber=1e-4),
        ops=[FuzzOp(kind="write", lpn_frac=0.5, n_pages=3, gap_us=10.0),
             FuzzOp(kind="trim", lpn_frac=0.25, n_pages=6, tenant=1)],
        origin="test",
    ).normalized()
    again = Genome.from_json(genome.to_json())
    assert again.to_dict() == genome.to_dict()
    assert again.content_hash() == genome.content_hash()


def test_content_hash_ignores_origin():
    ops = [FuzzOp(kind="read", lpn_frac=0.1)]
    a = Genome(config=GenomeConfig(), ops=ops, origin="seed:x")
    b = Genome(config=GenomeConfig(), ops=ops, origin="mutate:havoc")
    assert a.content_hash() == b.content_hash()
    c = Genome(config=GenomeConfig(arch="baseline"), ops=ops)
    assert c.content_hash() != a.content_hash()


def test_normalized_clamps_everything():
    genome = Genome(
        config=GenomeConfig(arch="nonsense", tenants=99, queue_depth=1000,
                            base_rber=1.0, snapshot_at=5.0,
                            powercut_at=3.0),
        ops=[FuzzOp(kind="bogus", lpn_frac=7.5, n_pages=10 ** 6,
                    gap_us=-3.0, tenant=-4)] * (MAX_OPS + 50),
    ).normalized()
    assert genome.config.arch in ARCHES
    assert genome.config.tenants <= 3
    assert genome.config.queue_depth <= 32
    assert genome.config.base_rber <= 1e-3
    assert genome.config.snapshot_at <= 0.9
    assert genome.config.powercut_at <= 0.9
    assert len(genome.ops) == MAX_OPS
    op = genome.ops[0]
    assert op.kind == "read"
    assert 0.0 <= op.lpn_frac < 1.0
    assert 1 <= op.n_pages <= MAX_PAGES_PER_OP
    assert op.gap_us >= 0.0
    assert 0 <= op.tenant <= 2


def test_empty_genome_gets_default_op():
    assert len(Genome(config=GenomeConfig(), ops=[]).normalized().ops) == 1


# ---------------------------------------------------------------- mutate


def test_mutation_schedule_is_seed_deterministic():
    parent = make_seeds()[0]
    donor = make_seeds()[5]

    def schedule(seed):
        rng = random.Random(seed)
        return [mutate(rng, parent, donor).content_hash()
                for _ in range(50)]

    assert schedule(7) == schedule(7)
    assert schedule(7) != schedule(8)


def test_mutants_are_always_valid():
    rng = random.Random(3)
    genome = make_seeds()[2]
    for _ in range(200):
        genome = mutate(rng, genome, donor=make_seeds()[1])
        assert genome.to_dict() == genome.normalized().to_dict()
        assert 1 <= len(genome.ops) <= MAX_OPS
        assert genome.config.gc_policy in GC_POLICIES
        assert genome.config.write_policy in WRITE_POLICIES


def test_mutate_never_modifies_input():
    rng = random.Random(5)
    genome = make_seeds()[0]
    before = genome.to_json()
    for _ in range(50):
        mutate(rng, genome, donor=genome)
    assert genome.to_json() == before


# ---------------------------------------------------------------- corpus


def test_corpus_keeps_only_novel_coverage(tmp_path):
    corpus = Corpus(root=tmp_path)
    seeds = make_seeds()
    assert corpus.consider(seeds[0], {"e1", "e2"})
    assert not corpus.consider(seeds[1], {"e1"})  # nothing new
    assert corpus.consider(seeds[1], {"e1", "e3"})
    assert not corpus.consider(seeds[1], {"e4"})  # duplicate genome hash
    assert len(corpus) == 2
    assert corpus.coverage_size == 4
    # Entries persisted content-addressed.
    on_disk = sorted(p.stem for p in tmp_path.glob("*.json"))
    assert on_disk == sorted(e.hash for e in corpus.entries)


def test_corpus_hash_is_order_independent():
    seeds = make_seeds()
    a, b = Corpus(), Corpus()
    a.consider(seeds[0], {"x"})
    a.consider(seeds[1], {"y"})
    b.consider(seeds[1], {"y"})
    b.consider(seeds[0], {"x"})
    assert a.content_hash() == b.content_hash()


def test_corpus_pick_weighted_and_deterministic():
    corpus = Corpus()
    seeds = make_seeds()
    corpus.consider(seeds[0], {"a"})
    corpus.consider(seeds[1], {"b", "c", "d"})
    picks1 = [corpus.pick(random.Random(1)).content_hash()
              for _ in range(5)]
    picks2 = [corpus.pick(random.Random(1)).content_hash()
              for _ in range(5)]
    assert picks1 == picks2
    with pytest.raises(IndexError):
        Corpus().pick(random.Random(1))


# ---------------------------------------------------------------- executor


def test_executor_is_deterministic_and_covers_watched_code():
    genome = make_seeds()[1]
    first = execute(genome)
    second = execute(genome)
    assert first == second
    assert first["status"] == "ok"
    assert not first["violations"]
    assert first["edges"], "no coverage edges collected"
    watched = ("ftl/", "host/qos", "reliability/", "core/datapath")
    for edge in first["edges"]:
        assert edge.startswith(watched), edge
    assert any(f.startswith("status:") for f in first["features"])
    assert first["metrics"]["requests_completed"] > 0


def test_executor_seeds_all_clean():
    """No oracle false-positives across the whole seed corpus."""
    for genome in make_seeds():
        outcome = execute(genome, collect_coverage=False)
        assert outcome["status"] == "ok", (genome.origin, outcome["detail"])
        assert not outcome["violations"], (genome.origin,
                                           outcome["violations"])


def test_space_pressure_workload_reaches_quiescence():
    """Regression for the GC livelock the differential fuzzer surfaced.

    At the worst legal pre-conditioning (0.95 fill, 0.8 valid) the
    prefill used to consume every block including the GC reserve, and
    host writes drained GC-opened active blocks; every plane worker then
    waited forever for an erase nobody could perform.  The fixed model
    must drain this workload to quiescence on both architectures.
    """
    for arch in ("baseline", "dssd"):
        config = GenomeConfig(arch=arch, prefill_fraction=0.95,
                              prefill_valid_ratio=0.8, drop_on_full=False,
                              snapshot_at=0.0, base_rber=0.0,
                              fault_rate=0.0)
        ops = [FuzzOp(kind="write", lpn_frac=i / 24.0, n_pages=8)
               for i in range(24)]
        genome = Genome(config=config, ops=ops).normalized()
        outcome = execute(genome, collect_coverage=False)
        assert outcome["status"] == "ok", (arch, outcome["detail"])
        assert not outcome["violations"], (arch, outcome["violations"])


# ---------------------------------------------------------------- ddmin


def test_ddmin_shrinks_to_minimal_core():
    ops = [FuzzOp(kind="read", lpn_frac=i / 40.0) for i in range(40)]
    ops[13] = FuzzOp(kind="trim", n_pages=6)
    ops[29] = FuzzOp(kind="flush")
    genome = Genome(config=GenomeConfig(), ops=ops).normalized()

    def predicate(candidate):
        kinds = [op.kind for op in candidate.ops]
        return "trim" in kinds and "flush" in kinds

    small = ddmin(genome, predicate, max_tests=400)
    assert predicate(small)
    assert len(small.ops) == 2


def test_minimize_for_oracle_uses_injected_executor():
    calls = {"n": 0}

    def fake_execute(genome, collect_coverage=True):
        calls["n"] += 1
        tripped = sum(op.kind == "write" for op in genome.ops) >= 2
        return {"violations": ([{"oracle": "fake", "detail": ""}]
                               if tripped else [])}

    ops = [FuzzOp(kind="write" if i % 3 == 0 else "read")
           for i in range(30)]
    genome = Genome(config=GenomeConfig(), ops=ops).normalized()
    small = minimize_for_oracle(genome, "fake", execute=fake_execute)
    assert len(small.ops) == 2
    assert all(op.kind == "write" for op in small.ops)
    assert calls["n"] > 1


# ------------------------------------------------- oracle false positives


_OP_STRATEGY = st.builds(
    FuzzOp,
    kind=st.sampled_from(["read", "write", "trim", "flush"]),
    lpn_frac=st.floats(min_value=0.0, max_value=0.999,
                       allow_nan=False, allow_infinity=False),
    n_pages=st.integers(min_value=1, max_value=MAX_PAGES_PER_OP),
    gap_us=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    tenant=st.integers(min_value=0, max_value=2),
    dram_hit=st.booleans(),
)

_CONFIG_STRATEGY = st.builds(
    GenomeConfig,
    arch=st.sampled_from(list(ARCHES)),
    tenants=st.integers(min_value=0, max_value=3),
    arbiter=st.sampled_from(["rr", "wrr", "prio"]),
    write_policy=st.sampled_from(list(WRITE_POLICIES)),
    gc_policy=st.sampled_from(list(GC_POLICIES)),
    drop_on_full=st.booleans(),
)


@settings(max_examples=120, deadline=None, derandomize=True)
@given(config=_CONFIG_STRATEGY,
       ops=st.lists(_OP_STRATEGY, min_size=1, max_size=24))
def test_oracles_have_no_false_positives(config, ops):
    """Mapping/hold/accounting oracles stay silent on any valid input."""
    genome = Genome(config=config, ops=ops, origin="hypothesis").normalized()
    outcome = execute(genome, collect_coverage=False)
    oracles = {v["oracle"] for v in outcome["violations"]}
    assert outcome["status"] == "ok", (outcome["detail"], genome.to_json())
    forbidden = oracles & {"mapping", "leaked_holds", "qos_accounting",
                           "progress", "exception"}
    assert not forbidden, (outcome["violations"], genome.to_json())


# ---------------------------------------------------------------- engine


def test_smoke_run_reaches_pinned_edge_floor(tmp_path):
    report = run_fuzz(seed=7, execs=SMOKE_EXECS, jobs=1,
                      corpus_root=tmp_path / "corpus")
    assert report.executions == SMOKE_EXECS
    assert not report.violations
    assert report.distinct_edges >= SMOKE_MIN_EDGES
    assert report.corpus_size == len(list((tmp_path / "corpus")
                                          .glob("*.json")))
    # The to_dict payload is what the CLI prints.
    payload = report.to_dict()
    assert payload["corpus_hash"] == report.corpus_hash


def test_fuzz_is_deterministic_across_runs_and_jobs():
    # 32 executions, not 24: the allocator's O(1) readiness cache
    # removed the plane-scan loop edges, so the first mutation
    # generation finds less *new* coverage than it used to and two
    # seeds only diverge once the mutants get a second generation.
    reports = [run_fuzz(seed=7, execs=32, jobs=jobs)
               for jobs in (1, 1, 2)]
    hashes = {r.corpus_hash for r in reports}
    assert len(hashes) == 1
    assert len({r.distinct_edges for r in reports}) == 1
    assert run_fuzz(seed=8, execs=32).corpus_hash not in hashes


def test_corpus_hash_is_backend_independent(monkeypatch):
    """The fuzzer pins the pure kernel whatever the environment says.

    Coverage tracing (settrace/sys.monitoring) cannot see compiled
    frames, so an execution on the fast backend would silently lose
    edges -- and the corpus hash would depend on which build the host
    happened to have.  ``build_config`` must therefore hard-pin "pure",
    and the campaign must hash identically under every backend request.
    """
    from repro.fuzz.executor import build_config
    from repro.fuzz.genome import GenomeConfig

    reports = {}
    for requested in ("fast", "pure", None):
        if requested is None:
            monkeypatch.delenv("REPRO_DSSD_BACKEND", raising=False)
        else:
            monkeypatch.setenv("REPRO_DSSD_BACKEND", requested)
        assert build_config(GenomeConfig()).backend == "pure"
        reports[requested] = run_fuzz(seed=7, execs=24, jobs=1)
    hashes = {r.corpus_hash for r in reports.values()}
    assert len(hashes) == 1, (
        f"corpus hash depends on REPRO_DSSD_BACKEND: "
        f"{ {k: r.corpus_hash[:16] for k, r in reports.items()} }")
    assert len({r.distinct_edges for r in reports.values()}) == 1


# ---------------------------------------------------------------- canary


def test_fuzzer_finds_and_minimizes_canary(tmp_path, monkeypatch):
    """The hidden leaked-hold bug is found within a bounded budget and
    ddmin-shrunk to a sub-20-op repro; the repro replays clean with the
    flag off."""
    monkeypatch.setenv(CANARY_ENV, "1")
    report = run_fuzz(seed=7, execs=60, jobs=1, repro_dir=tmp_path)
    oracles = {v["oracle"] for v in report.violations}
    assert "leaked_holds" in oracles or "progress" in oracles
    for violation in report.violations:
        assert violation["minimized_ops"] < 20, violation
        assert violation["path"] is not None
        case = json.loads(open(violation["path"]).read())
        genome = Genome.from_dict(case["genome"])
        # Flag still on: the minimized repro reproduces its oracle.
        outcome = execute(genome, collect_coverage=False)
        assert violation["oracle"] in {v["oracle"]
                                       for v in outcome["violations"]}
        # Flag off: same genome replays clean.
        monkeypatch.delenv(CANARY_ENV)
        clean = execute(genome, collect_coverage=False)
        assert not clean["violations"], clean["violations"]
        monkeypatch.setenv(CANARY_ENV, "1")
