"""Tests for the CLI and the experiment-harness plumbing."""

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS
from repro.experiments.common import format_table, normalized


def test_experiments_registry_covers_every_figure():
    expected = {"fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13", "fig14", "fig15", "fig16", "fig17", "table3",
                "ablations", "reliability", "fleet"}
    assert set(EXPERIMENTS) == expected


def test_every_experiment_module_has_run():
    for name, module in EXPERIMENTS.items():
        assert callable(module.run), name
        assert module.__doc__, name


def test_cli_runs_table3(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "dssd" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_accepts_runner_flags(capsys):
    assert main(["table3", "--jobs", "2", "--no-cache",
                 "--progress"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out


def test_cli_help_documents_runner_flags(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    assert "--jobs" in out
    assert "--no-cache" in out
    assert "repro-dssd" in out


def test_cli_rejects_bad_jobs_value():
    with pytest.raises(SystemExit):
        main(["table3", "--jobs", "many"])


def test_every_experiment_module_exposes_point_specs():
    """Each sweep module's point functions resolve through PointSpec."""
    import inspect

    from repro.experiments.runner import PointSpec

    for name, module in EXPERIMENTS.items():
        if name == "table3":  # static table, no simulation points
            continue
        points = [obj for obj_name, obj in vars(module).items()
                  if inspect.isfunction(obj)
                  and obj.__module__ == module.__name__
                  and obj_name.endswith("_point")]
        assert points, f"{name} declares no point functions"
        for func in points:
            spec = PointSpec.from_callable(func, {})
            assert spec.resolve() is func


def test_format_table_alignment():
    table = format_table(["a", "long_header"], [[1, 2.5], ["xx", 0.001]],
                         title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "long_header" in lines[1]
    widths = {len(line) for line in lines[1:]}
    assert len(widths) <= 2  # header/body aligned


def test_format_table_float_rendering():
    table = format_table(["v"], [[1234.5678], [0.00042], [0.0], [1.5]])
    assert "1.23e+03" in table or "1230" in table
    assert "0.00042" in table
    assert "1.5" in table


def test_normalized_helper():
    assert normalized([2.0, 4.0, 6.0]) == [1.0, 2.0, 3.0]
    assert normalized([2.0, 4.0], base=4.0) == [0.5, 1.0]
    assert normalized([0.0, 1.0]) == [0.0, 0.0]


# ---------------------------------------------------------------- exit codes


def test_cli_fuzz_clean_run_exits_zero(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_DSSD_FUZZ_CANARY", raising=False)
    rc = main(["fuzz", "--execs", "4", "--seed", "7", "--no-minimize",
               "--repro-dir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    payload = __import__("json").loads(out)
    assert payload["executions"] == 4
    assert payload["violations"] == []


def test_cli_fuzz_violation_exits_nonzero(tmp_path, monkeypatch, capsys):
    # The hidden canary bug leaks a queue slot on big TRIMs; the
    # trim-heavy seed trips it within the first dozen executions.
    monkeypatch.setenv("REPRO_DSSD_FUZZ_CANARY", "1")
    rc = main(["fuzz", "--execs", "12", "--seed", "7", "--no-minimize",
               "--repro-dir", str(tmp_path)])
    assert rc == 1
    payload = __import__("json").loads(capsys.readouterr().out)
    assert payload["violations"]


def test_cli_fuzz_repro_replay_exit_codes(monkeypatch, capsys):
    import pathlib

    case = sorted((pathlib.Path(__file__).parent / "fuzz_corpus")
                  .glob("repro_leaked_holds_*.json"))[0]
    monkeypatch.delenv("REPRO_DSSD_FUZZ_CANARY", raising=False)
    assert main(["fuzz", "repro", str(case)]) == 0
    monkeypatch.setenv("REPRO_DSSD_FUZZ_CANARY", "1")
    assert main(["fuzz", "repro", str(case)]) == 1
    capsys.readouterr()


def test_cli_fuzz_repro_usage_error():
    assert main(["fuzz", "repro"]) == 2


def _fake_bench_report():
    return {"benchmarks": {"drain": {"events": 10, "wall_s": 0.1,
                                     "events_per_sec": 100.0}}}


def test_cli_bench_check_regression_exits_nonzero(tmp_path, monkeypatch,
                                                  capsys):
    import json

    import repro.bench

    monkeypatch.setattr(repro.bench, "run_benchmarks",
                        lambda **kwargs: _fake_bench_report())
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"benchmarks": {"drain": {"events_per_sec": 1000.0}}}))
    out = tmp_path / "out.json"
    rc = main(["bench", "--quick", "--check", str(baseline),
               "--output", str(out)])
    assert rc == 1
    capsys.readouterr()


def test_cli_bench_check_within_tolerance_exits_zero(tmp_path, monkeypatch,
                                                     capsys):
    import json

    import repro.bench

    monkeypatch.setattr(repro.bench, "run_benchmarks",
                        lambda **kwargs: _fake_bench_report())
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"benchmarks": {"drain": {"events_per_sec": 100.0}}}))
    rc = main(["bench", "--quick", "--check", str(baseline),
               "--output", str(tmp_path / "out.json")])
    assert rc == 0
    capsys.readouterr()
