"""Kernel backend selection: resolution rules, config plumbing, bench.

The compiled extension is usually absent in dev checkouts -- these
tests pin the *fallback* behaviour precisely (auto -> pure, explicit
fast -> pure with a warning, never an exception) and the plumbing that
must hold regardless: config validation, env propagation, snapshot
round-trip, and like-for-like bench comparison across schemas.
"""

import json

import pytest

from repro.core import build_ssd
from repro.core.config import ConfigError, SSDConfig
from repro.sim import backend as backend_module
from repro.sim import fast_backend_status, make_simulator, resolve_backend
from repro.sim.kernel import Simulator

FAST_AVAILABLE = fast_backend_status()[0]


# ------------------------------------------------------------- resolution

def test_backend_names_are_stable():
    assert backend_module.BACKENDS == ("auto", "pure", "fast", "legacy")


def test_resolve_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("turbo")


def test_auto_resolves_to_concrete_backend():
    resolved = resolve_backend("auto")
    assert resolved in ("pure", "fast")
    assert resolved == ("fast" if FAST_AVAILABLE else "pure")


def test_env_overrides_auto_but_not_explicit(monkeypatch):
    monkeypatch.setenv(backend_module.ENV_VAR, "legacy")
    assert resolve_backend("auto") == "legacy"
    # Explicit pins beat the environment -- the fuzzer relies on this.
    assert resolve_backend("pure") == "pure"
    monkeypatch.setenv(backend_module.ENV_VAR, "")
    assert resolve_backend("auto") in ("pure", "fast")


def test_env_with_bad_name_raises(monkeypatch):
    monkeypatch.setenv(backend_module.ENV_VAR, "warp9")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("auto")


@pytest.mark.skipif(FAST_AVAILABLE, reason="compiled backend installed")
def test_fast_request_degrades_to_pure_when_absent(capsys):
    sim, resolved = make_simulator("fast")
    assert resolved == "pure"
    assert isinstance(sim, Simulator)


@pytest.mark.skipif(not FAST_AVAILABLE, reason="compiled backend absent")
def test_fast_simulator_is_compiled():
    sim, resolved = make_simulator("fast")
    assert resolved == "fast"
    # The twin lives in its own module, not the interpreted kernel.
    assert type(sim).__module__ == backend_module.FAST_MODULE


def test_make_simulator_legacy_uses_callback_path():
    sim, resolved = make_simulator("legacy")
    assert resolved == "legacy"
    assert sim.direct_resume is False


# ------------------------------------------------------------- config

def test_ssdconfig_validates_backend():
    assert SSDConfig().backend == "auto"
    SSDConfig(backend="legacy")
    with pytest.raises(ConfigError, match="unknown kernel backend"):
        SSDConfig(backend="turbo")


def test_build_ssd_records_resolved_backend():
    ssd = build_ssd("baseline", backend="pure")
    assert ssd.kernel_backend == "pure"
    ssd = build_ssd("baseline", backend="legacy")
    assert ssd.kernel_backend == "legacy"
    assert ssd.sim.direct_resume is False
    auto = build_ssd("baseline")
    assert auto.kernel_backend == ("fast" if FAST_AVAILABLE else "pure")


def test_backend_round_trips_through_config_state():
    from repro.core.checkpoint import config_from_state, config_to_state

    config = SSDConfig(backend="legacy")
    state = config_to_state(config)
    assert state["backend"] == "legacy"
    assert config_from_state(state).backend == "legacy"
    # Pre-PR snapshots have no backend key: default applies.
    state.pop("backend")
    assert config_from_state(state).backend == "auto"


def test_cli_backend_flag_exports_env(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.delenv("REPRO_DSSD_BACKEND", raising=False)
    import repro.bench

    monkeypatch.setattr(
        repro.bench, "run_benchmarks",
        lambda **kwargs: {"backends": {"pure": {"benchmarks": {
            "x": {"events": 1, "wall_s": 1.0, "events_per_sec": 1.0}}}}})
    import os

    assert main(["bench", "--quick", "--backend", "pure",
                 "--output", str(tmp_path / "out.json")]) == 0
    assert os.environ.get("REPRO_DSSD_BACKEND") == "pure"
    capsys.readouterr()


# ------------------------------------------------------------- bench

def _schema1(rate):
    return {"schema": 1,
            "benchmarks": {"w": {"events": 10, "wall_s": 0.1,
                                 "events_per_sec": rate}},
            "legacy_path": {"w": {"events": 10, "wall_s": 0.2,
                                  "events_per_sec": rate / 2}}}


def _schema2(rate, cpu="cpu-a"):
    return {"schema": 2,
            "provenance": {"cpu": cpu},
            "backends": {
                "pure": {"benchmarks": {
                    "w": {"events": 10, "wall_s": 0.1,
                          "events_per_sec": rate}}},
                "fast": {"benchmarks": {
                    "w": {"events": 10, "wall_s": 0.05,
                          "events_per_sec": rate * 2}}},
            }}


def test_check_regression_compares_like_for_like_across_schemas():
    from repro.bench import check_regression

    # Schema-2 current vs schema-1 baseline: pure maps to benchmarks,
    # the baseline's legacy table has no counterpart here and is skipped.
    assert check_regression(_schema2(100.0), _schema1(100.0)) == []
    failures = check_regression(_schema2(50.0), _schema1(100.0))
    assert failures and failures[0].startswith("pure/w")
    # A baseline backend the current host cannot run is not a failure...
    assert check_regression(_schema1(100.0), _schema2(100.0)) == []
    # ...but a missing workload within a shared backend is.
    broken = _schema2(100.0)
    del broken["backends"]["pure"]["benchmarks"]["w"]
    assert any("missing" in f
               for f in check_regression(broken, _schema2(100.0)))


def test_provenance_note_flags_cross_host_baselines():
    from repro.bench import provenance_note

    assert provenance_note(_schema2(1.0), _schema1(1.0)) is not None
    assert provenance_note(_schema2(1.0), _schema2(1.0)) is None
    note = provenance_note(_schema2(1.0, "cpu-a"), _schema2(1.0, "cpu-b"))
    assert note is not None and "cpu-b" in note


def test_committed_baseline_is_schema2_with_provenance():
    with open("BENCH_kernel.json") as handle:
        baseline = json.load(handle)
    assert baseline["schema"] == 2
    assert {"pure", "legacy"} <= set(baseline["backends"])
    assert baseline["provenance"]["cpu"]
    workloads = {name: set(entry["benchmarks"])
                 for name, entry in baseline["backends"].items()}
    # The schema-1 asymmetry (ssd_point missing from legacy) is gone:
    # every backend records every workload.
    assert len(set(map(frozenset, workloads.values()))) == 1
    assert "ssd_point" in baseline["backends"]["legacy"]["benchmarks"]
    # Event counts are backend-invariant -- byte-identity in miniature.
    for name in next(iter(workloads.values())):
        counts = {entry["benchmarks"][name]["events"]
                  for entry in baseline["backends"].values()}
        assert len(counts) == 1, f"{name}: {counts}"
