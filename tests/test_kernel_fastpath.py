"""Fast-path equivalence: direct-resume kernel vs legacy callback path.

The direct-resume scheduling path (``Simulator(direct_resume=True)``,
the default) must be observationally identical to the legacy
``Event.callbacks`` wiring (``direct_resume=False``): same event
orderings, same ``sim.now`` traces, same interrupt/preemption
semantics, same sequence-counter advance.  Every scenario here runs
once under each kernel flavour and asserts the recorded traces are
exactly equal -- the invariant that guarantees byte-identical
experiment outputs across the optimization.
"""

import pytest

from repro.controller import FlashController
from repro.flash import FlashBackend, FlashChannel, FlashGeometry
from repro.flash.timing import ULL_TIMING
from repro.flash.geometry import PhysAddr
from repro.reliability import FaultInjector
from repro.sim import Interrupt, Link, Resource, Simulator, Store, TokenPool
from repro.sim.kernel import SimulationError


def run_both(scenario):
    """Run *scenario* under both kernels; return (fast, legacy) traces."""
    results = []
    for direct in (True, False):
        sim = Simulator(direct_resume=direct)
        trace = []
        scenario(sim, trace)
        sim.run()
        results.append((trace, sim.now, sim._seq))
    fast, legacy = results
    return fast, legacy


def assert_equivalent(scenario):
    fast, legacy = run_both(scenario)
    assert fast[0] == legacy[0], "event-ordering trace diverged"
    assert fast[1] == legacy[1], "final sim.now diverged"
    assert fast[2] == legacy[2], "scheduled-entry count diverged"


# ---------------------------------------------------------------------------
# Kernel-level scenarios.
# ---------------------------------------------------------------------------

def test_flag_roundtrip():
    assert Simulator().direct_resume is True
    assert Simulator(direct_resume=False).direct_resume is False


def test_timeout_tie_ordering():
    """Same-timestamp wakeups must dispatch in identical order."""

    def scenario(sim, trace):
        def worker(name, delay, steps):
            for step in range(steps):
                yield sim.timeout(delay)
                trace.append((sim.now, name, step))

        # Delays chosen so many workers collide on the same timestamps.
        for index in range(12):
            sim.process(worker(f"w{index}", 0.5 * (1 + index % 3), 20))

    assert_equivalent(scenario)


def test_event_trigger_values_and_fail():
    def scenario(sim, trace):
        evt = sim.event()
        boom = sim.event()

        def waiter(name, event):
            try:
                value = yield event
                trace.append((sim.now, name, "ok", value))
            except RuntimeError as exc:
                trace.append((sim.now, name, "err", str(exc)))

        def firer():
            yield sim.timeout(1.0)
            evt.trigger("payload")
            yield sim.timeout(1.0)
            boom.fail(RuntimeError("deliberate"))

        sim.process(waiter("a", evt))
        sim.process(waiter("b", boom))
        sim.process(firer())

    assert_equivalent(scenario)


def test_multiple_waiters_one_event():
    """Second waiter forces the callbacks list even on the fast kernel."""

    def scenario(sim, trace):
        evt = sim.event()

        def waiter(name):
            value = yield evt
            trace.append((sim.now, name, value))

        for index in range(5):
            sim.process(waiter(f"w{index}"))

        def firer():
            yield sim.timeout(2.0)
            evt.trigger(42)

        sim.process(firer())

    assert_equivalent(scenario)


def test_late_add_callback_after_dispatch():
    """Waiting on an already-fired event resumes at the current time."""

    def scenario(sim, trace):
        evt = sim.event()

        def firer():
            yield sim.timeout(1.0)
            evt.trigger("early")

        def late():
            yield sim.timeout(5.0)
            value = yield evt  # fired 4us ago
            trace.append((sim.now, "late", value))

        sim.process(firer())
        sim.process(late())

    assert_equivalent(scenario)


def test_process_join_and_return_value():
    def scenario(sim, trace):
        def child(delay, result):
            yield sim.timeout(delay)
            return result

        def parent():
            first = sim.process(child(3.0, "slow"))
            second = sim.process(child(1.0, "quick"))
            value = yield first
            trace.append((sim.now, "joined-first", value))
            value = yield second  # already finished: post-dispatch wait
            trace.append((sim.now, "joined-second", value))

        sim.process(parent())

    assert_equivalent(scenario)


def test_allof_anyof_conditions():
    def scenario(sim, trace):
        def child(delay, result):
            yield sim.timeout(delay)
            return result

        def coordinator():
            procs = [sim.process(child(1.0 + i * 0.5, i)) for i in range(4)]
            values = yield sim.all_of(procs)
            trace.append((sim.now, "all", tuple(values)))
            racers = [sim.process(child(2.0 + i, 10 + i)) for i in range(4)]
            winner, value = yield sim.any_of(racers)
            trace.append((sim.now, "any", value, winner is racers[0]))
            yield sim.all_of(racers)
            trace.append((sim.now, "drained"))

        sim.process(coordinator())

    assert_equivalent(scenario)


def test_condition_failure_paths():
    def scenario(sim, trace):
        doomed = sim.event()

        def ok(delay):
            yield sim.timeout(delay)
            return delay

        def firer():
            yield sim.timeout(2.0)
            doomed.fail(RuntimeError("child failed"))

        def coordinator():
            survivor = sim.process(ok(3.0))
            events = [sim.process(ok(1.0)), doomed, survivor]
            try:
                yield sim.all_of(events)
            except RuntimeError as exc:
                trace.append((sim.now, "allof-failed", str(exc)))
            # Let the survivor finish so both kernels drain identically.
            yield survivor
            trace.append((sim.now, "survivor-done"))

        sim.process(firer())
        sim.process(coordinator())

    assert_equivalent(scenario)


# ---------------------------------------------------------------------------
# Interrupt / preemption semantics.
# ---------------------------------------------------------------------------

def test_interrupt_waiting_process():
    def scenario(sim, trace):
        def sleeper():
            try:
                yield sim.timeout(100.0)
                trace.append((sim.now, "slept"))
            except Interrupt as intr:
                trace.append((sim.now, "interrupted", intr.cause))
                yield sim.timeout(1.0)
                trace.append((sim.now, "recovered"))

        victim = sim.process(sleeper())

        def gc_like():
            yield sim.timeout(5.0)
            victim.interrupt("preempt")

        sim.process(gc_like())

    assert_equivalent(scenario)


def test_interrupt_resource_holder_releases_in_finally():
    """Preemptive-GC pattern: the held slot must not leak on interrupt."""

    def scenario(sim, trace):
        resource = Resource(sim, capacity=1)

        def holder():
            grant = resource.request()
            try:
                yield grant
                trace.append((sim.now, "holder-granted"))
                yield sim.timeout(50.0)
                trace.append((sim.now, "holder-finished"))
            except Interrupt:
                trace.append((sim.now, "holder-preempted"))
            finally:
                resource.cancel(grant)

        def contender():
            yield sim.timeout(1.0)
            grant = resource.request()
            yield grant
            trace.append((sim.now, "contender-granted"))
            resource.release()

        victim = sim.process(holder())
        sim.process(contender())

        def preemptor():
            yield sim.timeout(10.0)
            victim.interrupt()

        sim.process(preemptor())

    assert_equivalent(scenario)


def test_interrupt_finished_process_is_noop():
    def scenario(sim, trace):
        def quick():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(quick())

        def late_interrupter():
            yield sim.timeout(5.0)
            proc.interrupt("too late")
            value = yield proc
            trace.append((sim.now, "joined", value))

        sim.process(late_interrupter())

    assert_equivalent(scenario)


def test_fault_injection_retry_semantics():
    """Seeded channel/die faults must replay identically on both kernels."""

    def scenario(sim, trace):
        geometry = FlashGeometry(channels=1, ways=1, dies=1, planes=2,
                                 blocks_per_plane=8, pages_per_block=8)
        backend = FlashBackend(sim, geometry, ULL_TIMING)
        channel = FlashChannel(sim, 0, 1000.0)
        controller = FlashController(sim, 0, channel, backend)
        controller.fault_injector = FaultInjector(
            sim, channel_fault_rate=0.4, die_fault_rate=0.3, seed=7)

        def io():
            for page in range(6):
                addr = PhysAddr(0, 0, 0, 0, 0, page)
                breakdown = yield from controller.program_page(addr)
                trace.append((sim.now, "programmed", page,
                              round(breakdown.total, 9)))
            for page in range(6):
                addr = PhysAddr(0, 0, 0, 0, 0, page)
                breakdown = yield from controller.read_page(addr)
                trace.append((sim.now, "read", page,
                              round(breakdown.total, 9)))

        sim.process(io())

    assert_equivalent(scenario)


# ---------------------------------------------------------------------------
# Resource-layer scenarios.
# ---------------------------------------------------------------------------

def test_resource_priority_scheduling():
    def scenario(sim, trace):
        resource = Resource(sim, capacity=2)

        def user(name, priority, hold):
            grant = resource.request(priority)
            yield grant
            trace.append((sim.now, name, "granted"))
            yield sim.timeout(hold)
            resource.release()
            trace.append((sim.now, name, "released"))

        for index in range(8):
            sim.process(user(f"u{index}", priority=index % 3,
                             hold=1.0 + index * 0.25))

    assert_equivalent(scenario)


def test_tokenpool_credit_flow():
    def scenario(sim, trace):
        pool = TokenPool(sim, capacity=4)

        def borrower(name, count, hold):
            grant = pool.acquire(count)
            yield grant
            trace.append((sim.now, name, "got", count))
            yield sim.timeout(hold)
            pool.release(count)

        sim.process(borrower("a", 3, 2.0))
        sim.process(borrower("b", 2, 1.0))
        sim.process(borrower("c", 4, 0.5))
        sim.process(borrower("d", 1, 1.5))

    assert_equivalent(scenario)


def test_link_serialization_and_start_events():
    def scenario(sim, trace):
        link = Link(sim, bandwidth=100.0)

        def sender(name, nbytes, when):
            yield sim.timeout(when)
            start, done = link.transfer_with_start(nbytes, "io")
            yield start
            trace.append((sim.now, name, "start"))
            wait = yield done
            trace.append((sim.now, name, "done", wait))

        sim.process(sender("x", 500, 0.0))
        sim.process(sender("y", 300, 1.0))
        sim.process(sender("z", 700, 1.0))

    assert_equivalent(scenario)


def test_store_fifo_handoff():
    def scenario(sim, trace):
        store = Store(sim)

        def producer():
            for index in range(6):
                yield sim.timeout(1.0)
                store.put(index)

        def consumer(name):
            for _ in range(3):
                item = yield store.get()
                trace.append((sim.now, name, item))

        sim.process(producer())
        sim.process(consumer("c0"))
        sim.process(consumer("c1"))

    assert_equivalent(scenario)


def test_yield_non_event_raises_on_both_kernels():
    for direct in (True, False):
        sim = Simulator(direct_resume=direct)

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()


# ---------------------------------------------------------------------------
# End-to-end: a full SSD point must be bit-identical across kernels.
# ---------------------------------------------------------------------------

def _ssd_fingerprint(direct_resume, monkeypatch):
    import repro.core.ssd as ssd_module
    from repro.core import build_ssd
    from repro.workloads import SyntheticWorkload

    monkeypatch.setattr(
        ssd_module, "Simulator",
        lambda: Simulator(direct_resume=direct_resume))
    ssd = build_ssd("dssd_f")
    assert ssd.sim.direct_resume is direct_resume
    workload = SyntheticWorkload(pattern="mixed", io_size=4096,
                                 read_fraction=0.5)
    ssd.run(workload, duration_us=3000.0)
    ftl = ssd.ftl
    return {
        "now": ssd.sim.now,
        "seq": ssd.sim._seq,
        "requests": ftl.requests_completed,
        "read_latency": ftl.read_latency.summary(),
        "write_latency": ftl.write_latency.summary(),
        "fnoc_packets": ssd.fnoc.packets_sent,
        "fnoc_bytes": ssd.fnoc.bytes_sent,
        "copybacks": ssd.datapath.copybacks_completed,
    }


def test_end_to_end_ssd_point_identical(monkeypatch):
    fast = _ssd_fingerprint(True, monkeypatch)
    legacy = _ssd_fingerprint(False, monkeypatch)
    assert fast == legacy
