"""Kernel-backend equivalence: pure vs legacy vs optional compiled twin.

Every registered backend must be observationally identical: the
direct-resume scheduling path (``pure``, the default), the legacy
``Event.callbacks`` wiring (``legacy``, ``direct_resume=False``), and
— when the optional extension is installed — the mypyc/Cython-compiled
twin (``fast``).  Same event orderings, same ``sim.now`` traces, same
interrupt/preemption semantics, same sequence-counter advance.  Every
scenario here runs once under each available backend and asserts the
recorded traces are exactly equal -- the invariant that guarantees
byte-identical experiment outputs across the optimizations.

``fast`` cases are skipped (visibly, not silently passed) when the
compiled module is absent; CI's ``bench-compiled`` job builds it and
runs this file with all three.
"""

import pytest

from repro.controller import FlashController
from repro.flash import FlashBackend, FlashChannel, FlashGeometry
from repro.flash.timing import ULL_TIMING
from repro.flash.geometry import PhysAddr
from repro.reliability import FaultInjector
from repro.sim import (Interrupt, Link, Resource, Simulator, Store,
                       TokenPool, fast_backend_status, make_simulator)
from repro.sim.kernel import SimulationError

_FAST_AVAILABLE, _FAST_DETAIL = fast_backend_status()

#: Backends every scenario runs under.  "pure" is the reference.
EQ_BACKENDS = ["pure", "legacy"] + (["fast"] if _FAST_AVAILABLE else [])

#: Parametrization including a *visible skip* for the missing build.
BACKEND_PARAMS = [
    pytest.param(name) if name != "fast" or _FAST_AVAILABLE
    else pytest.param(name, marks=pytest.mark.skip(reason=_FAST_DETAIL))
    for name in ("pure", "legacy", "fast")
]


def run_backends(scenario):
    """Run *scenario* under every available backend; return traces."""
    results = {}
    for backend in EQ_BACKENDS:
        sim, resolved = make_simulator(backend)
        assert resolved == backend
        trace = []
        scenario(sim, trace)
        sim.run()
        results[backend] = (trace, sim.now, sim._seq)
    return results


def assert_equivalent(scenario):
    results = run_backends(scenario)
    reference = results["pure"]
    for backend, observed in results.items():
        if backend == "pure":
            continue
        label = f"pure vs {backend}"
        assert observed[0] == reference[0], \
            f"event-ordering trace diverged ({label})"
        assert observed[1] == reference[1], f"final sim.now diverged ({label})"
        assert observed[2] == reference[2], \
            f"scheduled-entry count diverged ({label})"


# ---------------------------------------------------------------------------
# Kernel-level scenarios.
# ---------------------------------------------------------------------------

def test_flag_roundtrip():
    assert Simulator().direct_resume is True
    assert Simulator(direct_resume=False).direct_resume is False


def test_timeout_tie_ordering():
    """Same-timestamp wakeups must dispatch in identical order."""

    def scenario(sim, trace):
        def worker(name, delay, steps):
            for step in range(steps):
                yield sim.timeout(delay)
                trace.append((sim.now, name, step))

        # Delays chosen so many workers collide on the same timestamps.
        for index in range(12):
            sim.process(worker(f"w{index}", 0.5 * (1 + index % 3), 20))

    assert_equivalent(scenario)


def test_event_trigger_values_and_fail():
    def scenario(sim, trace):
        evt = sim.event()
        boom = sim.event()

        def waiter(name, event):
            try:
                value = yield event
                trace.append((sim.now, name, "ok", value))
            except RuntimeError as exc:
                trace.append((sim.now, name, "err", str(exc)))

        def firer():
            yield sim.timeout(1.0)
            evt.trigger("payload")
            yield sim.timeout(1.0)
            boom.fail(RuntimeError("deliberate"))

        sim.process(waiter("a", evt))
        sim.process(waiter("b", boom))
        sim.process(firer())

    assert_equivalent(scenario)


def test_multiple_waiters_one_event():
    """Second waiter forces the callbacks list even on the fast kernel."""

    def scenario(sim, trace):
        evt = sim.event()

        def waiter(name):
            value = yield evt
            trace.append((sim.now, name, value))

        for index in range(5):
            sim.process(waiter(f"w{index}"))

        def firer():
            yield sim.timeout(2.0)
            evt.trigger(42)

        sim.process(firer())

    assert_equivalent(scenario)


def test_late_add_callback_after_dispatch():
    """Waiting on an already-fired event resumes at the current time."""

    def scenario(sim, trace):
        evt = sim.event()

        def firer():
            yield sim.timeout(1.0)
            evt.trigger("early")

        def late():
            yield sim.timeout(5.0)
            value = yield evt  # fired 4us ago
            trace.append((sim.now, "late", value))

        sim.process(firer())
        sim.process(late())

    assert_equivalent(scenario)


def test_process_join_and_return_value():
    def scenario(sim, trace):
        def child(delay, result):
            yield sim.timeout(delay)
            return result

        def parent():
            first = sim.process(child(3.0, "slow"))
            second = sim.process(child(1.0, "quick"))
            value = yield first
            trace.append((sim.now, "joined-first", value))
            value = yield second  # already finished: post-dispatch wait
            trace.append((sim.now, "joined-second", value))

        sim.process(parent())

    assert_equivalent(scenario)


def test_allof_anyof_conditions():
    def scenario(sim, trace):
        def child(delay, result):
            yield sim.timeout(delay)
            return result

        def coordinator():
            procs = [sim.process(child(1.0 + i * 0.5, i)) for i in range(4)]
            values = yield sim.all_of(procs)
            trace.append((sim.now, "all", tuple(values)))
            racers = [sim.process(child(2.0 + i, 10 + i)) for i in range(4)]
            winner, value = yield sim.any_of(racers)
            trace.append((sim.now, "any", value, winner is racers[0]))
            yield sim.all_of(racers)
            trace.append((sim.now, "drained"))

        sim.process(coordinator())

    assert_equivalent(scenario)


def test_condition_failure_paths():
    def scenario(sim, trace):
        doomed = sim.event()

        def ok(delay):
            yield sim.timeout(delay)
            return delay

        def firer():
            yield sim.timeout(2.0)
            doomed.fail(RuntimeError("child failed"))

        def coordinator():
            survivor = sim.process(ok(3.0))
            events = [sim.process(ok(1.0)), doomed, survivor]
            try:
                yield sim.all_of(events)
            except RuntimeError as exc:
                trace.append((sim.now, "allof-failed", str(exc)))
            # Let the survivor finish so both kernels drain identically.
            yield survivor
            trace.append((sim.now, "survivor-done"))

        sim.process(firer())
        sim.process(coordinator())

    assert_equivalent(scenario)


# ---------------------------------------------------------------------------
# Interrupt / preemption semantics.
# ---------------------------------------------------------------------------

def test_interrupt_waiting_process():
    def scenario(sim, trace):
        def sleeper():
            try:
                yield sim.timeout(100.0)
                trace.append((sim.now, "slept"))
            except Interrupt as intr:
                trace.append((sim.now, "interrupted", intr.cause))
                yield sim.timeout(1.0)
                trace.append((sim.now, "recovered"))

        victim = sim.process(sleeper())

        def gc_like():
            yield sim.timeout(5.0)
            victim.interrupt("preempt")

        sim.process(gc_like())

    assert_equivalent(scenario)


def test_interrupt_resource_holder_releases_in_finally():
    """Preemptive-GC pattern: the held slot must not leak on interrupt."""

    def scenario(sim, trace):
        resource = Resource(sim, capacity=1)

        def holder():
            grant = resource.request()
            try:
                yield grant
                trace.append((sim.now, "holder-granted"))
                yield sim.timeout(50.0)
                trace.append((sim.now, "holder-finished"))
            except Interrupt:
                trace.append((sim.now, "holder-preempted"))
            finally:
                resource.cancel(grant)

        def contender():
            yield sim.timeout(1.0)
            grant = resource.request()
            yield grant
            trace.append((sim.now, "contender-granted"))
            resource.release()

        victim = sim.process(holder())
        sim.process(contender())

        def preemptor():
            yield sim.timeout(10.0)
            victim.interrupt()

        sim.process(preemptor())

    assert_equivalent(scenario)


def test_interrupt_finished_process_is_noop():
    def scenario(sim, trace):
        def quick():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(quick())

        def late_interrupter():
            yield sim.timeout(5.0)
            proc.interrupt("too late")
            value = yield proc
            trace.append((sim.now, "joined", value))

        sim.process(late_interrupter())

    assert_equivalent(scenario)


def test_fault_injection_retry_semantics():
    """Seeded channel/die faults must replay identically on both kernels."""

    def scenario(sim, trace):
        geometry = FlashGeometry(channels=1, ways=1, dies=1, planes=2,
                                 blocks_per_plane=8, pages_per_block=8)
        backend = FlashBackend(sim, geometry, ULL_TIMING)
        channel = FlashChannel(sim, 0, 1000.0)
        controller = FlashController(sim, 0, channel, backend)
        controller.fault_injector = FaultInjector(
            sim, channel_fault_rate=0.4, die_fault_rate=0.3, seed=7)

        def io():
            for page in range(6):
                addr = PhysAddr(0, 0, 0, 0, 0, page)
                breakdown = yield from controller.program_page(addr)
                trace.append((sim.now, "programmed", page,
                              round(breakdown.total, 9)))
            for page in range(6):
                addr = PhysAddr(0, 0, 0, 0, 0, page)
                breakdown = yield from controller.read_page(addr)
                trace.append((sim.now, "read", page,
                              round(breakdown.total, 9)))

        sim.process(io())

    assert_equivalent(scenario)


# ---------------------------------------------------------------------------
# Resource-layer scenarios.
# ---------------------------------------------------------------------------

def test_resource_priority_scheduling():
    def scenario(sim, trace):
        resource = Resource(sim, capacity=2)

        def user(name, priority, hold):
            grant = resource.request(priority)
            yield grant
            trace.append((sim.now, name, "granted"))
            yield sim.timeout(hold)
            resource.release()
            trace.append((sim.now, name, "released"))

        for index in range(8):
            sim.process(user(f"u{index}", priority=index % 3,
                             hold=1.0 + index * 0.25))

    assert_equivalent(scenario)


def test_tokenpool_credit_flow():
    def scenario(sim, trace):
        pool = TokenPool(sim, capacity=4)

        def borrower(name, count, hold):
            grant = pool.acquire(count)
            yield grant
            trace.append((sim.now, name, "got", count))
            yield sim.timeout(hold)
            pool.release(count)

        sim.process(borrower("a", 3, 2.0))
        sim.process(borrower("b", 2, 1.0))
        sim.process(borrower("c", 4, 0.5))
        sim.process(borrower("d", 1, 1.5))

    assert_equivalent(scenario)


def test_link_serialization_and_start_events():
    def scenario(sim, trace):
        link = Link(sim, bandwidth=100.0)

        def sender(name, nbytes, when):
            yield sim.timeout(when)
            start, done = link.transfer_with_start(nbytes, "io")
            yield start
            trace.append((sim.now, name, "start"))
            wait = yield done
            trace.append((sim.now, name, "done", wait))

        sim.process(sender("x", 500, 0.0))
        sim.process(sender("y", 300, 1.0))
        sim.process(sender("z", 700, 1.0))

    assert_equivalent(scenario)


def test_store_fifo_handoff():
    def scenario(sim, trace):
        store = Store(sim)

        def producer():
            for index in range(6):
                yield sim.timeout(1.0)
                store.put(index)

        def consumer(name):
            for _ in range(3):
                item = yield store.get()
                trace.append((sim.now, name, item))

        sim.process(producer())
        sim.process(consumer("c0"))
        sim.process(consumer("c1"))

    assert_equivalent(scenario)


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_yield_non_event_raises_on_every_backend(backend):
    sim, _ = make_simulator(backend)

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(Exception) as excinfo:
        sim.run()
    # The compiled twin raises its own module's SimulationError; match
    # by name so the assertion is backend-agnostic.
    assert type(excinfo.value).__name__ == SimulationError.__name__


# ---------------------------------------------------------------------------
# Flat vs generator datapath: byte-identical under contention, per backend.
#
# The datapath/controller flat fast path (use_flat_path) collapses the
# layered generator chain into one frame for the no-contention common
# case and must *stay* byte-identical when the case is anything but
# common: operations blocking mid-op on busy planes/links, the
# wear-model's ECC retry ladder (which makes the dispatcher fall back
# to the layered path), and preemptive GC interrupting in-flight page
# moves.  Each scenario runs flat and layered under every backend.
# ---------------------------------------------------------------------------

def _tiny_geometry():
    """Small enough that a 3 ms write-leaning mix fills it and GC runs."""
    from repro.flash import FlashGeometry

    return FlashGeometry(channels=2, ways=1, dies=1, planes=2,
                         blocks_per_plane=12, pages_per_block=16)


def _datapath_fingerprint(backend, flat, arch, duration, **overrides):
    from repro.core import build_ssd
    from repro.workloads import SyntheticWorkload

    pattern = overrides.pop("pattern", "mixed")
    read_fraction = overrides.pop("read_fraction", 0.3)
    prefill = overrides.pop("prefill", False)
    if overrides.pop("tiny", False):
        overrides.update(geometry=_tiny_geometry(), prefill_fraction=0.92)
    ssd = build_ssd(arch, backend=backend, **overrides)
    if prefill:
        ssd.prefill()
    if not flat:
        ssd.datapath.use_flat_path = False
        for controller in ssd.controllers:
            controller.use_flat_path = False
    workload = SyntheticWorkload(pattern=pattern, io_size=4096,
                                 read_fraction=read_fraction)
    ssd.run(workload, duration_us=duration)
    ftl = ssd.ftl
    return {
        "now": ssd.sim.now,
        "seq": ssd.sim._seq,
        "requests": ftl.requests_completed,
        "read_latency": ftl.read_latency.summary(),
        "write_latency": ftl.write_latency.summary(),
        "io_latency": ftl.io_latency.summary(),
        "breakdown": ftl.mean_io_breakdown().as_dict(),
        "copybacks": ssd.datapath.copybacks_completed,
        "gc_episodes": ssd.gc.stats.episodes,
        "gc_pages_moved": ssd.gc.stats.pages_moved,
        "pages_read": sum(c.pages_read for c in ssd.controllers),
        "pages_programmed": sum(c.pages_programmed
                                for c in ssd.controllers),
    }


#: (scenario id, arch, duration_us, overrides).  The ``tiny`` scenarios
#: use a near-full small device so GC actually runs: flat page moves and
#: copybacks then contend with host I/O mid-operation.
_FLAT_SCENARIOS = [
    ("midop_blocking", "baseline", 2500.0, {"read_fraction": 0.2}),
    ("midop_blocking_dssd", "dssd_f", 2000.0, {"read_fraction": 0.3}),
    ("ecc_retry_ladder", "baseline", 2000.0,
     {"read_fraction": 0.7, "read_retry": True}),
    ("gc_page_moves", "baseline", 3000.0,
     {"read_fraction": 0.2, "tiny": True, "prefill": True}),
    ("gc_copybacks_fnoc", "dssd_f", 3000.0,
     {"read_fraction": 0.2, "tiny": True, "prefill": True}),
    ("gc_copybacks_dedicated_bus", "dssd_b", 3000.0,
     {"read_fraction": 0.2, "tiny": True, "prefill": True}),
    # The raised hard floor makes preemptive GC move pages *under* live
    # host I/O (its quiet-wait would otherwise stall all run long), so
    # flat page moves get preempt-polled and interleaved with host ops.
    ("preemptive_gc", "bw", 3000.0,
     {"read_fraction": 0.2, "gc_policy": "preemptive", "tiny": True,
      "prefill": True, "gc_hard_floor_fraction": 0.25}),
]


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
@pytest.mark.parametrize(
    "name,arch,duration,overrides", _FLAT_SCENARIOS,
    ids=[s[0] for s in _FLAT_SCENARIOS])
def test_flat_path_identical_under_contention(backend, name, arch,
                                              duration, overrides):
    flat = _datapath_fingerprint(backend, True, arch, duration,
                                 **dict(overrides))
    layered = _datapath_fingerprint(backend, False, arch, duration,
                                    **dict(overrides))
    assert flat == layered, f"flat vs layered diverged: {name}/{backend}"


def test_flat_scenarios_exercise_their_features():
    """The scenarios must actually hit GC/retry/copyback machinery, or
    the equivalence assertions above are vacuous."""
    from repro.core import build_ssd
    from repro.workloads import SyntheticWorkload

    ssd = build_ssd("baseline", read_retry=True)
    workload = SyntheticWorkload(pattern="mixed", io_size=4096,
                                 read_fraction=0.7)
    ssd.run(workload, duration_us=2000.0)
    assert ssd.datapath.wear_model is not None

    for name, arch, duration, overrides in _FLAT_SCENARIOS:
        if not overrides.get("tiny"):
            continue
        fp = _datapath_fingerprint("pure", True, arch, duration,
                                   **dict(overrides))
        assert fp["gc_pages_moved"] > 0, name
        if arch.startswith("dssd"):
            assert fp["copybacks"] > 0, name


# ---------------------------------------------------------------------------
# End-to-end: a full SSD point must be bit-identical across backends.
# ---------------------------------------------------------------------------

def _ssd_fingerprint(backend):
    from repro.core import build_ssd
    from repro.workloads import SyntheticWorkload

    ssd = build_ssd("dssd_f", backend=backend)
    assert ssd.kernel_backend == backend
    workload = SyntheticWorkload(pattern="mixed", io_size=4096,
                                 read_fraction=0.5)
    ssd.run(workload, duration_us=3000.0)
    ftl = ssd.ftl
    return {
        "now": ssd.sim.now,
        "seq": ssd.sim._seq,
        "requests": ftl.requests_completed,
        "read_latency": ftl.read_latency.summary(),
        "write_latency": ftl.write_latency.summary(),
        "fnoc_packets": ssd.fnoc.packets_sent,
        "fnoc_bytes": ssd.fnoc.bytes_sent,
        "copybacks": ssd.datapath.copybacks_completed,
    }


@pytest.fixture(scope="module")
def pure_ssd_fingerprint():
    return _ssd_fingerprint("pure")


@pytest.mark.parametrize("backend", [p for p in BACKEND_PARAMS
                                     if p.values[0] != "pure"])
def test_end_to_end_ssd_point_identical(backend, pure_ssd_fingerprint):
    assert _ssd_fingerprint(backend) == pure_ssd_fingerprint
