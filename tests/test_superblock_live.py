"""Tests for live (DES-integrated) dynamic superblock management."""

import pytest

from repro.core import ArchPreset, build_ssd, sim_geometry
from repro.errors import ConfigError, MappingError
from repro.flash import PhysAddr
from repro.superblock import LiveDynamicSuperblocks
from repro.workloads import SyntheticWorkload

GEOM = sim_geometry(channels=4, ways=2, planes=2, blocks_per_plane=8,
                    pages_per_block=8)


def make_live(reserved=0, srt_capacity=64):
    ssd = build_ssd(ArchPreset.DSSD_F, geometry=GEOM, queue_depth=8)
    live = LiveDynamicSuperblocks(ssd, srt_capacity=srt_capacity,
                                  reserved_superblocks=reserved)
    ssd.prefill()
    return ssd, live


def full_superblock(ssd, live):
    """Find a superblock whose sub-blocks are all FULL (prefilled)."""
    for sb in range(live.manager.visible):
        if all(ssd.blocks.info(live.subblock_addr(sb, c)).state == "full"
               for c in range(GEOM.channels)):
            return sb
    raise AssertionError("no fully-prefilled superblock found")


def test_addressing_roundtrip():
    ssd, live = make_live()
    for sb in (0, 7, live.n_superblocks - 1):
        for channel in range(GEOM.channels):
            addr = live.subblock_addr(sb, channel, page=3)
            assert live.superblock_of(addr) == sb
            assert addr.channel == channel
            assert addr.page == 3


def test_first_failure_migrates_and_marks_bad():
    ssd, live = make_live()
    sb = full_superblock(ssd, live)
    valid_before = sum(
        ssd.blocks.info(live.subblock_addr(sb, c)).valid_count
        for c in range(GEOM.channels)
    )
    assert valid_before > 0
    proc = live.inject_uncorrectable(sb, channel=1)
    ssd.sim.run()
    assert proc.triggered
    assert live.ftl_migrations == 1
    assert live.bad_superblocks == 1
    ssd.mapping.check_consistency()
    for channel in range(GEOM.channels):
        info = ssd.blocks.info(live.subblock_addr(sb, channel))
        assert info.state == "bad"
        assert info.valid_count == 0
    # Survivor sub-blocks were recycled (all channels except the failed).
    assert sum(len(r) for r in live.manager.rbt) == GEOM.channels - 1


def test_second_failure_heals_in_hardware():
    ssd, live = make_live()
    sb_first = full_superblock(ssd, live)
    live.inject_uncorrectable(sb_first, channel=0)
    ssd.sim.run()
    # Pick another fully-prefilled superblock and fail a channel that
    # now has a recycled block available (any channel except 0).
    sb_second = full_superblock(ssd, live)
    proc = live.inject_uncorrectable(sb_second, channel=2)
    ssd.sim.run()
    assert proc.triggered
    assert live.recycle_copies == 1
    assert live.bad_superblocks == 1          # still only the first
    assert live.recycled_pages_copied > 0
    # The remap now redirects accesses for (sb_second, ch2).
    original = live.subblock_addr(sb_second, 2, page=1)
    remapped = live.remap(original)
    assert remapped != original
    assert remapped.channel == 2              # within-channel remap
    assert live.superblock_of(remapped) == sb_first


def test_remap_identity_before_any_failure():
    ssd, live = make_live()
    addr = PhysAddr(1, 0, 0, 1, 3, 2)
    assert live.remap(addr) == addr


def test_reads_work_through_remap_under_io():
    """End-to-end: after a hardware heal, host reads still complete."""
    ssd, live = make_live()
    sb_first = full_superblock(ssd, live)
    live.inject_uncorrectable(sb_first, channel=0)
    ssd.sim.run()
    sb_second = full_superblock(ssd, live)
    live.inject_uncorrectable(sb_second, channel=1)
    ssd.sim.run()
    workload = SyntheticWorkload(pattern="rand_read", io_size=4096)
    result = ssd.run(workload, duration_us=5_000, trigger_gc=False)
    assert result.requests_completed > 0
    ssd.mapping.check_consistency()


def test_reserved_superblocks_invisible_and_absorb_first_failure():
    ssd, live = make_live(reserved=4)
    # Reserved sub-blocks are marked bad toward the FTL.
    assert ssd.blocks.bad_blocks == 4 * GEOM.channels
    sb = full_superblock(ssd, live)
    proc = live.inject_uncorrectable(sb, channel=0)
    ssd.sim.run()
    assert proc.triggered
    assert live.bad_superblocks == 0          # healed, not sacrificed
    assert live.recycle_copies == 1


def test_attach_after_prefill_rejected():
    ssd = build_ssd(ArchPreset.DSSD_F, geometry=GEOM)
    ssd.prefill()
    with pytest.raises(ConfigError):
        LiveDynamicSuperblocks(ssd)


def test_double_injection_rejected_after_death():
    ssd, live = make_live()
    sb = full_superblock(ssd, live)
    live.inject_uncorrectable(sb, channel=0)
    ssd.sim.run()
    with pytest.raises(MappingError):
        live.inject_uncorrectable(sb, channel=1)


def test_stats_keys():
    ssd, live = make_live()
    stats = live.stats()
    for key in ("bad_superblocks", "recycle_copies", "srt_active",
                "rbt_available"):
        assert key in stats
