"""Unit and property tests for the block manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.flash import FlashGeometry, PhysAddr
from repro.ftl import BlockManager
from repro.ftl.blocks import ACTIVE, BAD, FREE, FULL

GEOM = FlashGeometry(channels=2, ways=2, dies=1, planes=2,
                     blocks_per_plane=4, pages_per_block=4)


def make_manager(**kwargs):
    kwargs.setdefault("gc_reserve_blocks", 1)
    return BlockManager(GEOM, **kwargs)


def test_initial_state_all_free():
    mgr = make_manager()
    assert mgr.free_blocks == GEOM.blocks_total
    assert mgr.free_fraction == 1.0
    assert mgr.bad_blocks == 0


def test_allocation_round_robins_planes():
    mgr = make_manager()
    addrs = [mgr.allocate_page() for _ in range(GEOM.planes_total)]
    planes = [GEOM.plane_index(a) for a in addrs]
    assert sorted(planes) == list(range(GEOM.planes_total))


def test_allocation_fills_block_sequentially():
    mgr = make_manager()
    addrs = [mgr.allocate_page(plane=0) for _ in range(4)]
    assert [a.page for a in addrs] == [0, 1, 2, 3]
    info = mgr.info(addrs[0])
    assert info.state == FULL
    assert info.pending == 4


def test_commit_clears_pending_and_marks_valid():
    mgr = make_manager()
    addr = mgr.allocate_page()
    mgr.commit_page(addr, valid=True)
    info = mgr.info(addr)
    assert info.pending == 0
    assert addr.page in info.valid


def test_commit_without_allocation_rejected():
    mgr = make_manager()
    with pytest.raises(MappingError):
        mgr.commit_page(PhysAddr(0, 0, 0, 0, 0, 0), valid=False)


def test_host_allocation_respects_gc_reserve():
    mgr = BlockManager(
        FlashGeometry(channels=1, ways=1, dies=1, planes=1,
                      blocks_per_plane=3, pages_per_block=2),
        gc_reserve_blocks=2,
    )
    # Plane has 3 free blocks, 2 reserved: host can open only one block.
    a = mgr.allocate_page()
    b = mgr.allocate_page()
    assert a.block == b.block
    with pytest.raises(MappingError):
        mgr.allocate_page()          # host starved at the reserve
    gc_addr = mgr.allocate_page(for_gc=True)   # GC may dip into it
    assert gc_addr.block != a.block


def test_pick_victim_greedy_fewest_valid():
    mgr = make_manager()
    first = [mgr.allocate_page(plane=0) for _ in range(4)]
    second = [mgr.allocate_page(plane=0) for _ in range(4)]
    for addr in first:
        mgr.commit_page(addr, valid=True)
    for index, addr in enumerate(second):
        mgr.commit_page(addr, valid=index == 0)  # only one valid page
    victim = mgr.pick_victim(0)
    assert victim.block == second[0].block


def test_pick_victim_skips_pending_blocks():
    mgr = make_manager()
    addrs = [mgr.allocate_page(plane=0) for _ in range(4)]
    for addr in addrs[:-1]:
        mgr.commit_page(addr, valid=False)
    # One program still in flight: not an eligible victim.
    assert mgr.pick_victim(0) is None
    mgr.commit_page(addrs[-1], valid=False)
    assert mgr.pick_victim(0) is not None


def test_pick_victim_respects_valid_fraction_limit():
    mgr = make_manager()
    addrs = [mgr.allocate_page(plane=0) for _ in range(4)]
    for addr in addrs:
        mgr.commit_page(addr, valid=True)
    # 100% valid: never a victim, even at max_valid_fraction=1.0 --
    # collecting it frees nothing and burns the GC reserve.
    assert mgr.pick_victim(0, max_valid_fraction=1.0) is None
    addrs = [mgr.allocate_page(plane=0) for _ in range(4)]
    for addr in addrs[:3]:
        mgr.commit_page(addr, valid=True)
    mgr.commit_page(addrs[3], valid=False)  # 75% valid
    assert mgr.pick_victim(0, max_valid_fraction=0.5) is None
    assert mgr.pick_victim(0, max_valid_fraction=1.0) is not None


def test_release_block_returns_to_pool():
    mgr = make_manager()
    addrs = [mgr.allocate_page(plane=0) for _ in range(4)]
    for addr in addrs:
        mgr.commit_page(addr, valid=False)
    free_before = mgr.free_blocks
    mgr.release_block(addrs[0])
    assert mgr.free_blocks == free_before + 1
    assert mgr.info(addrs[0]).state == FREE


def test_release_block_with_valid_pages_rejected():
    mgr = make_manager()
    addrs = [mgr.allocate_page(plane=0) for _ in range(4)]
    for addr in addrs:
        mgr.commit_page(addr, valid=True)
    with pytest.raises(MappingError):
        mgr.release_block(addrs[0])


def test_mark_bad_removes_from_pool():
    mgr = make_manager()
    addr = GEOM.block_addr_of(0)
    mgr.mark_bad(addr)
    assert mgr.info(addr).state == BAD
    assert mgr.bad_blocks == 1
    assert mgr.free_blocks == GEOM.blocks_total - 1
    with pytest.raises(MappingError):
        mgr.release_block(addr)


def test_prefill_block():
    mgr = make_manager()
    addr = GEOM.block_addr_of(2)
    mgr.prefill_block(addr, {0, 2})
    info = mgr.info(addr)
    assert info.state == FULL
    assert info.valid == {0, 2}
    assert mgr.free_blocks == GEOM.blocks_total - 1
    with pytest.raises(MappingError):
        mgr.prefill_block(addr, {1})


def test_valid_pages_of_sorted():
    mgr = make_manager()
    addr = GEOM.block_addr_of(1)
    mgr.prefill_block(addr, {3, 0, 1})
    pages = mgr.valid_pages_of(addr)
    assert [p.page for p in pages] == [0, 1, 3]


def test_invalid_reserve_configs():
    with pytest.raises(MappingError):
        BlockManager(GEOM, gc_reserve_blocks=-1)
    with pytest.raises(MappingError):
        BlockManager(GEOM, gc_reserve_blocks=GEOM.blocks_per_plane)


@settings(deadline=None, max_examples=30)
@given(st.lists(st.booleans(), min_size=1, max_size=64))
def test_accounting_invariant_under_allocate_commit(valid_flags):
    """Property: free + active/full/bad partitions stay consistent and
    allocate/commit never corrupts valid-count accounting."""
    mgr = make_manager()
    allocated = []
    for flag in valid_flags:
        try:
            addr = mgr.allocate_page()
        except MappingError:
            break
        allocated.append((addr, flag))
    for addr, flag in allocated:
        mgr.commit_page(addr, valid=flag)
    total_valid = sum(info.valid_count for info in mgr.blocks.values())
    assert total_valid == sum(1 for _a, f in allocated if f)
    assert all(info.pending == 0 for info in mgr.blocks.values())
    states = {info.state for info in mgr.blocks.values()}
    assert states <= {FREE, ACTIVE, FULL, BAD}


def test_host_never_drains_gc_opened_active_block():
    """Host and GC write streams use separate active blocks.

    A block GC opened out of its per-plane reserve must not serve host
    allocations: host traffic stealing relocation headroom is how the
    device livelocks (every GC worker waiting for an erase that needs a
    destination page first).
    """
    mgr = make_manager()
    # Drain plane 0 to exactly the reserve so only GC may open a block.
    while len(mgr._free[0]) > mgr.gc_reserve_blocks:
        for _ in range(GEOM.pages_per_block):
            mgr.allocate_page(plane=0)
    gc_addr = mgr.allocate_page(for_gc=True, plane=0)
    assert mgr._active_gc[0] is not None
    # The host must NOT be handed pages from the GC's open block.
    with pytest.raises(MappingError):
        mgr.allocate_page(for_gc=False, plane=0)
    # GC keeps writing into its own stream.
    second = mgr.allocate_page(for_gc=True, plane=0)
    assert second.block_addr() == gc_addr.block_addr()


def test_pick_victim_skips_fully_valid_blocks():
    """Collecting a 100%-valid block frees nothing: never pick one."""
    mgr = make_manager()
    full_valid = GEOM.block_addr_of(0)
    mgr.prefill_block(full_valid, set(range(GEOM.pages_per_block)))
    assert mgr.pick_victim(0) is None
    partial = GEOM.block_addr_of(1)
    mgr.prefill_block(partial, {0, 1})
    victim = mgr.pick_victim(0)
    assert victim is not None
    assert victim.block_addr() == partial.block_addr()


def test_state_roundtrip_preserves_gc_stream():
    mgr = make_manager()
    mgr.allocate_page(for_gc=True, plane=0)
    # Commit the pending page so the state can snapshot.
    mgr.blocks[mgr._active_gc[0]].pending = 0
    state = mgr.state_dict()
    clone = make_manager()
    clone.load_state(state)
    assert clone._active_gc == mgr._active_gc
    assert clone._active == mgr._active
