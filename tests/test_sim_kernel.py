"""Unit tests for the DES kernel (events, processes, conditions)."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)
        yield sim.timeout(2.5)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(7.5)


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return 42

    handle = sim.process(proc(sim))
    sim.run()
    assert handle.triggered
    assert handle.value == 42


def test_process_join():
    sim = Simulator()
    log = []

    def child(sim):
        yield sim.timeout(10.0)
        return "child-done"

    def parent(sim):
        result = yield sim.process(child(sim))
        log.append((sim.now, result))

    sim.process(parent(sim))
    sim.run()
    assert log == [(10.0, "child-done")]


def test_event_trigger_value_delivery():
    sim = Simulator()
    evt = sim.event()
    received = []

    def waiter(sim):
        value = yield evt
        received.append(value)

    def firer(sim):
        yield sim.timeout(3.0)
        evt.trigger("payload")

    sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert received == ["payload"]


def test_event_double_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    evt.trigger(1)
    with pytest.raises(SimulationError):
        evt.trigger(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        _ = evt.value


def test_all_of_waits_for_every_event():
    sim = Simulator()
    results = []

    def worker(sim, delay, tag):
        yield sim.timeout(delay)
        return tag

    def parent(sim):
        procs = [
            sim.process(worker(sim, 5.0, "a")),
            sim.process(worker(sim, 2.0, "b")),
            sim.process(worker(sim, 8.0, "c")),
        ]
        values = yield sim.all_of(procs)
        results.append((sim.now, values))

    sim.process(parent(sim))
    sim.run()
    assert results == [(8.0, ["a", "b", "c"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    done = []

    def parent(sim):
        values = yield sim.all_of([])
        done.append(values)

    sim.process(parent(sim))
    sim.run()
    assert done == [[]]


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def parent(sim):
        slow = sim.timeout(10.0, "slow")
        fast = sim.timeout(1.0, "fast")
        event, value = yield sim.any_of([slow, fast])
        results.append((sim.now, value))

    sim.process(parent(sim))
    sim.run()
    assert results == [(1.0, "fast")]
    assert sim.now == 10.0  # the slow timeout still drains


def test_interrupt_delivers_cause():
    sim = Simulator()
    caught = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            caught.append((sim.now, interrupt.cause))

    def attacker(sim, victim_proc):
        yield sim.timeout(4.0)
        victim_proc.interrupt("preempt")

    proc = sim.process(victim(sim))
    sim.process(attacker(sim, proc))
    sim.run()
    assert caught == [(4.0, "preempt")]


def test_interrupt_detaches_waited_event():
    """The original timeout firing later must not resume the process."""
    sim = Simulator()
    resumptions = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
            resumptions.append("timeout")
        except Interrupt:
            resumptions.append("interrupt")
            yield sim.timeout(500.0)
            resumptions.append("after-sleep")

    proc = sim.process(victim(sim))

    def attacker(sim):
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.process(attacker(sim))
    sim.run()
    assert resumptions == ["interrupt", "after-sleep"]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.process(quick(sim))
    sim.run()
    proc.interrupt()  # must not raise
    sim.run()


def test_uncaught_interrupt_terminates_process():
    sim = Simulator()

    def victim(sim):
        yield sim.timeout(100.0)

    proc = sim.process(victim(sim))

    def attacker(sim):
        yield sim.timeout(2.0)
        proc.interrupt()

    sim.process(attacker(sim))
    sim.run()
    assert proc.triggered
    assert not proc.is_alive


def test_run_until_stops_clock():
    sim = Simulator()

    def proc(sim):
        while True:
            yield sim.timeout(10.0)

    sim.process(proc(sim))
    end = sim.run(until=35.0)
    assert end == pytest.approx(35.0)
    assert sim.now == pytest.approx(35.0)


def test_run_until_beyond_queue_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)

    sim.process(proc(sim))
    sim.run(until=100.0)
    assert sim.now == pytest.approx(100.0)


def test_same_time_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        sim.process(proc(sim, tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_step_and_peek():
    sim = Simulator()
    sim.schedule(3.0, lambda: None)
    sim.schedule(7.0, lambda: None)
    assert sim.peek() == pytest.approx(3.0)
    assert sim.step()
    assert sim.now == pytest.approx(3.0)
    assert sim.peek() == pytest.approx(7.0)
    assert sim.step()
    assert not sim.step()


def test_failed_event_propagates_into_process():
    sim = Simulator()
    caught = []

    def waiter(sim, evt):
        try:
            yield evt
        except RuntimeError as exc:
            caught.append(str(exc))

    evt = sim.event()
    sim.process(waiter(sim, evt))
    sim.schedule(1.0, lambda: evt.fail(RuntimeError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_callback_after_trigger_still_runs():
    sim = Simulator()
    seen = []
    evt = sim.event()
    evt.trigger("x")
    sim.run()
    evt.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["x"]
