"""Unit and property tests for the fNoC fabric (credits, cut-through)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.noc import Crossbar, FNoC, Mesh1D, Packet, Ring, flit_count
from repro.sim import Simulator, TokenPool


def make_noc(topology, bandwidth=1000.0, **kwargs):
    sim = Simulator()
    defaults = {"ni_latency_us": 0.0, "router_latency_us": 0.0}
    defaults.update(kwargs)
    noc = FNoC(sim, topology, bandwidth, **defaults)
    return sim, noc


def send_all(sim, noc, packets):
    procs = [sim.process(noc.send(p)) for p in packets]
    sim.run()
    return [p.value for p in procs]


# ---------------------------------------------------------------- flit math


def test_flit_count_rounds_up():
    assert flit_count(4096, flit_bytes=256, header_bytes=16) == 17
    assert flit_count(0, flit_bytes=256, header_bytes=16) == 1
    assert flit_count(256 - 16, flit_bytes=256, header_bytes=16) == 1
    assert flit_count(256 - 15, flit_bytes=256, header_bytes=16) == 2


def test_flit_count_rejects_bad_args():
    with pytest.raises(ConfigError):
        flit_count(-1)
    with pytest.raises(ConfigError):
        flit_count(100, flit_bytes=0)


def test_packet_wire_bytes_quantized():
    pkt = Packet(src=0, dst=1, payload_bytes=100)
    assert pkt.wire_bytes(flit_bytes=256, header_bytes=16) == 256


# ---------------------------------------------------------------- latency


def test_single_hop_latency_is_serialization():
    topo = Mesh1D(2)
    sim, noc = make_noc(topo, bandwidth=1000.0)
    pkt = Packet(src=0, dst=1, payload_bytes=4096)
    [bd] = send_all(sim, noc, [pkt])
    flits = pkt.flits(noc.flit_bytes, noc.header_bytes)
    expected = flits * noc.flit_time
    assert bd.total == pytest.approx(expected, rel=1e-6)
    assert bd.hops == 1
    assert bd.queue_wait == pytest.approx(0.0)


def test_multi_hop_pipelines_not_store_and_forward():
    """Cut-through: latency ~= serialization + hops * flit_time, far below
    hops * serialization (store-and-forward)."""
    topo = Mesh1D(8)
    sim, noc = make_noc(topo, bandwidth=1000.0)
    pkt = Packet(src=0, dst=7, payload_bytes=4096)
    [bd] = send_all(sim, noc, [pkt])
    serialization = pkt.flits(noc.flit_bytes, noc.header_bytes) * noc.flit_time
    assert bd.hops == 7
    assert bd.total < 2.0 * serialization
    assert bd.total >= serialization


def test_ni_latency_added():
    topo = Mesh1D(2)
    sim, noc = make_noc(topo, ni_latency_us=5.0)
    pkt = Packet(src=0, dst=1, payload_bytes=1000)
    [bd] = send_all(sim, noc, [pkt])
    assert bd.total >= 5.0


def test_same_node_send_costs_only_ni():
    topo = Mesh1D(4)
    sim, noc = make_noc(topo, ni_latency_us=1.0)
    [bd] = send_all(sim, noc, [Packet(src=2, dst=2, payload_bytes=4096)])
    assert bd.hops == 0
    assert bd.total == pytest.approx(1.0)


def test_contention_serializes_on_shared_channel():
    """Two packets crossing the same channel: the second waits."""
    topo = Mesh1D(3)
    sim, noc = make_noc(topo, bandwidth=1000.0)
    pkts = [Packet(src=0, dst=2, payload_bytes=4096),
            Packet(src=0, dst=2, payload_bytes=4096)]
    results = send_all(sim, noc, pkts)
    totals = sorted(bd.total for bd in results)
    assert totals[1] > totals[0] * 1.5


def test_disjoint_channels_run_in_parallel():
    """Opposite-direction mesh channels do not contend."""
    topo = Mesh1D(4)
    sim, noc = make_noc(topo, bandwidth=1000.0)
    pkts = [Packet(src=0, dst=3, payload_bytes=4096),
            Packet(src=3, dst=0, payload_bytes=4096)]
    results = send_all(sim, noc, pkts)
    assert results[0].total == pytest.approx(results[1].total, rel=1e-6)
    assert results[0].queue_wait == pytest.approx(0.0)


def test_packet_stats_recorded():
    topo = Mesh1D(2)
    sim, noc = make_noc(topo)
    send_all(sim, noc, [Packet(src=0, dst=1, payload_bytes=4096)])
    assert noc.packets_sent == 1
    assert noc.bytes_sent == 4096
    assert noc.packet_latency.count == 1
    assert noc.mean_channel_utilization() > 0.0
    assert noc.max_channel_utilization() > 0.0


def test_invalid_configs_rejected():
    sim = Simulator()
    with pytest.raises(ConfigError):
        FNoC(sim, Mesh1D(4), channel_bandwidth=0.0)
    with pytest.raises(ConfigError):
        FNoC(sim, Mesh1D(4), channel_bandwidth=10.0, buffer_flits=0)
    noc = FNoC(sim, Mesh1D(4), channel_bandwidth=10.0)
    with pytest.raises(ConfigError):
        noc.channel(0, 3)


# ------------------------------------------------------- credits / buffers


def test_small_buffers_slow_delivery_under_congestion():
    """With scarce buffering, many concurrent packets take longer overall
    than with ample buffering (paper Fig 13(b) effect)."""
    def run(buffer_flits):
        topo = Mesh1D(8)
        sim, noc = make_noc(topo, bandwidth=200.0, buffer_flits=buffer_flits)
        pkts = [Packet(src=s, dst=(s + 3) % 8, payload_bytes=4096)
                for s in range(8) for _ in range(4)]
        send_all(sim, noc, pkts)
        return sim.now

    small = run(2)
    large = run(64)
    assert small >= large


def test_credits_are_conserved_after_traffic():
    topo = Mesh1D(8)
    sim, noc = make_noc(topo, bandwidth=500.0, buffer_flits=4)
    pkts = [Packet(src=s, dst=d, payload_bytes=4096)
            for s in range(8) for d in range(8) if s != d]
    send_all(sim, noc, pkts)
    for pool in noc._ports.values():
        assert pool.available == pool.capacity
        assert pool.queue_length == 0


@settings(deadline=None, max_examples=25)
@given(st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(64, 8192)),
    min_size=1, max_size=30,
))
def test_all_packets_always_delivered_mesh(traffic):
    """Property: no traffic pattern wedges the mesh (deadlock freedom)."""
    topo = Mesh1D(8)
    sim, noc = make_noc(topo, bandwidth=100.0, buffer_flits=2)
    pkts = [Packet(src=s, dst=d, payload_bytes=n) for s, d, n in traffic]
    results = send_all(sim, noc, pkts)
    assert all(bd is not None for bd in results)
    assert noc.packets_sent == sum(1 for s, d, _n in traffic if True)


@settings(deadline=None, max_examples=25)
@given(st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(64, 8192)),
    min_size=1, max_size=30,
))
def test_all_packets_always_delivered_ring(traffic):
    """Property: dateline VCs keep the ring deadlock-free."""
    topo = Ring(8)
    sim, noc = make_noc(topo, bandwidth=100.0, buffer_flits=2)
    pkts = [Packet(src=s, dst=d, payload_bytes=n) for s, d, n in traffic]
    results = send_all(sim, noc, pkts)
    assert all(bd is not None for bd in results)


@settings(deadline=None, max_examples=15)
@given(st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(64, 8192)),
    min_size=1, max_size=20,
))
def test_all_packets_always_delivered_crossbar(traffic):
    topo = Crossbar(8)
    sim, noc = make_noc(topo, bandwidth=100.0, buffer_flits=2)
    pkts = [Packet(src=s, dst=d, payload_bytes=n) for s, d, n in traffic]
    results = send_all(sim, noc, pkts)
    assert all(bd is not None for bd in results)


# ------------------------------------------------------- topology shapes


def test_crossbar_beats_congested_mesh():
    """All-to-one traffic: per-channel-equal bandwidth favors the xbar's
    single shared output over the mesh's middle links... both must at
    least deliver; mesh must not be faster than xbar at same channel BW
    under uniform random traffic with heavy load."""
    def run(topo):
        sim, noc = make_noc(topo, bandwidth=500.0)
        pkts = [Packet(src=s, dst=(s + 4) % 8, payload_bytes=4096)
                for s in range(8) for _ in range(8)]
        send_all(sim, noc, pkts)
        return sim.now

    mesh_time = run(Mesh1D(8))
    xbar_time = run(Crossbar(8))
    assert xbar_time <= mesh_time * 1.05


def test_mesh_beats_ring_at_equal_bisection():
    """Paper Fig 13(a): at equal bisection bandwidth the 1D mesh
    outperforms the ring because ring channels are narrower."""
    bisection = 1000.0

    def run(topo):
        bw = topo.channel_bandwidth_for_bisection(bisection)
        sim, noc = make_noc(topo, bandwidth=bw)
        pkts = [Packet(src=s, dst=(s + 4) % 8, payload_bytes=4096)
                for s in range(8) for _ in range(8)]
        send_all(sim, noc, pkts)
        return sim.now

    mesh_time = run(Mesh1D(8))
    ring_time = run(Ring(8))
    assert mesh_time < ring_time
