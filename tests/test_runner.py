"""Tests for the parallel experiment runner and its result cache."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments import runner
from repro.experiments.runner import (
    PointSpec,
    RunnerMetrics,
    configured,
    run_points,
)


def square_point(x, scale=1.0):
    """Cheap deterministic point function used throughout these tests."""
    return {"x": x, "value": x * x * scale, "tag": f"sq{x}"}


def bad_point():
    raise RuntimeError("boom")


SQUARE = PointSpec.from_callable(square_point, {"x": 3})


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the result cache at a throwaway directory."""
    monkeypatch.setenv("REPRO_DSSD_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DSSD_CACHE", raising=False)
    return tmp_path


# ---------------------------------------------------------------------------
# PointSpec


def test_from_callable_resolves_back():
    assert SQUARE.fn == "tests.test_runner:square_point"
    assert SQUARE.resolve() is square_point


def test_label_prefers_key():
    assert SQUARE.label == "square_point"
    assert PointSpec.from_callable(square_point, {}, key="fig0:a").label \
        == "fig0:a"


def test_resolve_rejects_malformed_fn():
    with pytest.raises(ConfigError):
        PointSpec(fn="no-colon-here").resolve()


def test_cache_key_is_stable_and_param_sensitive():
    a = PointSpec.from_callable(square_point, {"x": 3, "scale": 1.0})
    b = PointSpec.from_callable(square_point, {"scale": 1.0, "x": 3})
    assert a.cache_key() == b.cache_key()  # order-insensitive
    # Changing any override changes the key.
    assert a.cache_key() != PointSpec.from_callable(
        square_point, {"x": 3, "scale": 2.0}).cache_key()
    assert a.cache_key() != PointSpec.from_callable(
        square_point, {"x": 4, "scale": 1.0}).cache_key()
    # A different point function never collides with the same params.
    assert a.cache_key() != PointSpec(
        fn="tests.test_runner:bad_point",
        params={"x": 3, "scale": 1.0}).cache_key()
    # The display key does NOT affect the cache key.
    assert a.cache_key() == PointSpec.from_callable(
        square_point, {"x": 3, "scale": 1.0}, key="pretty").cache_key()


# ---------------------------------------------------------------------------
# Serial vs parallel equality


def _sweep(n=6):
    return [PointSpec.from_callable(square_point, {"x": x, "scale": 0.5})
            for x in range(n)]


def test_serial_matches_parallel_on_small_sweep(cache_dir):
    serial = run_points(_sweep(), jobs=1, cache=False)
    parallel = run_points(_sweep(), jobs=3, cache=False)
    assert serial == parallel
    assert [r["x"] for r in serial] == list(range(6))  # spec order kept


def test_serial_matches_parallel_on_real_endurance_points(cache_dir):
    from repro.experiments.fig16_srt_size import capacity_point

    specs = [
        PointSpec.from_callable(
            capacity_point,
            {"policy": policy, "n_superblocks": 64,
             "srt_capacity": 32, "threshold": 0.30})
        for policy in ("baseline", "recycled", "reserv")
    ]
    serial = run_points(specs, jobs=1, cache=False)
    parallel = run_points(specs, jobs=2, cache=False)
    assert serial == parallel
    assert all(p["until_bytes"] > 0 for p in serial)


def test_results_are_json_normalized_in_both_modes():
    spec = PointSpec.from_callable(tuple_point, {})
    serial, = run_points([spec], jobs=1, cache=False)
    parallel, = run_points([spec, spec], jobs=2, cache=False)[:1]
    assert serial == parallel == {"pair": [1, 2]}  # tuple -> list


def tuple_point():
    return {"pair": (1, 2)}


# ---------------------------------------------------------------------------
# Cache behavior


def test_cache_hit_returns_identical_dict(cache_dir):
    metrics = RunnerMetrics()
    first, = run_points([SQUARE], jobs=1, cache=True, metrics=metrics)
    second, = run_points([SQUARE], jobs=1, cache=True, metrics=metrics)
    assert first == second
    assert metrics.cache_misses == 1
    assert metrics.cache_hits == 1
    assert list(cache_dir.glob("*/*.json"))


def test_cache_key_changes_recompute(cache_dir):
    metrics = RunnerMetrics()
    run_points([SQUARE], jobs=1, cache=True, metrics=metrics)
    changed = PointSpec.from_callable(square_point, {"x": 3, "scale": 9.0})
    result, = run_points([changed], jobs=1, cache=True, metrics=metrics)
    assert result["value"] == 81.0
    assert metrics.cache_misses == 2
    assert metrics.cache_hits == 0


def test_corrupted_cache_entry_is_discarded(cache_dir):
    run_points([SQUARE], jobs=1, cache=True)
    path, = cache_dir.glob("*/*.json")
    path.write_text("{ not json at all")
    metrics = RunnerMetrics()
    result, = run_points([SQUARE], jobs=1, cache=True, metrics=metrics)
    assert result == {"x": 3, "value": 9.0, "tag": "sq3"}
    assert metrics.cache_misses == 1  # recomputed, not crashed
    # The corrupt file was replaced by a fresh valid entry.
    entry = json.loads(path.read_text())
    assert entry["result"] == result


def test_mismatched_cache_entry_is_discarded(cache_dir):
    run_points([SQUARE], jobs=1, cache=True)
    path, = cache_dir.glob("*/*.json")
    entry = json.loads(path.read_text())
    entry["params"] = {"x": 999}  # simulate a hash collision
    path.write_text(json.dumps(entry))
    result, = run_points([SQUARE], jobs=1, cache=True)
    assert result["x"] == 3


def test_cache_env_kill_switch(cache_dir, monkeypatch):
    monkeypatch.setenv("REPRO_DSSD_CACHE", "0")
    metrics = RunnerMetrics()
    run_points([SQUARE], jobs=1, cache=True, metrics=metrics)
    run_points([SQUARE], jobs=1, cache=True, metrics=metrics)
    assert metrics.cache_hits == 0
    assert not list(cache_dir.glob("*/*.json"))


def test_clear_cache(cache_dir):
    run_points(_sweep(3), jobs=1, cache=True)
    assert runner.clear_cache() == 3
    assert runner.clear_cache() == 0


# ---------------------------------------------------------------------------
# Configuration scoping


def test_configured_scopes_and_restores():
    before = runner.active_config()
    with configured(jobs=7, cache=True) as config:
        assert config.jobs == 7 and config.cache is True
        with configured(cache=False):
            assert runner.active_config().jobs == 7      # inherited
            assert runner.active_config().cache is False  # overridden
    assert runner.active_config() is before


def test_run_points_inherits_configured_metrics(cache_dir):
    metrics = RunnerMetrics()
    with configured(jobs=1, cache=False, metrics=metrics):
        run_points(_sweep(4))
    assert metrics.points == 4
    assert metrics.cache_misses == 4


# ---------------------------------------------------------------------------
# Metrics


def test_metrics_accumulate_and_merge():
    a = RunnerMetrics()
    a.record_computed(2.0)
    a.record_hit()
    a.record_batch(wall_s=2.0, jobs=2)
    b = RunnerMetrics()
    b.record_computed(1.0)
    b.record_batch(wall_s=1.0, jobs=4)
    a.merge(b)
    assert a.points == 3
    assert a.cache_hits == 1 and a.cache_misses == 2
    assert a.batch_wall_s == 3.0 and a.busy_s == 3.0
    assert a.max_jobs == 4
    assert 0.0 < a.utilization <= 1.0
    summary = a.summary()
    assert summary["points"] == 3.0
    assert summary["point_max_s"] == 2.0
    assert "3 points" in a.format_line()


def test_metrics_format_line_empty():
    assert RunnerMetrics().format_line() == "0 points"


def test_runner_metrics_row_flattens():
    from repro.report import runner_metrics_row, to_csv

    metrics = RunnerMetrics()
    metrics.record_computed(0.5)
    metrics.record_batch(wall_s=0.5, jobs=1)
    row = runner_metrics_row(metrics, label="fig7")
    assert row["label"] == "fig7"
    assert row["cache_misses"] == 1.0
    assert row["point_p50_s"] == 0.5
    assert "cache_misses" in to_csv([row])
