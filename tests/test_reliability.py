"""Tests for the reliability subsystem and interrupt/leak regressions.

Covers the resource-leak fixes (interrupt-safe holds on Resource /
TokenPool / ECC lanes), the Timeout construction-trigger fix, ECC
utilization accounting under preemption, kernel interrupt edge cases,
and the reliability stack itself (RBER model, read-retry ladder,
bad-block retirement, fault injection, end-to-end error propagation).
"""

import random

import pytest

from repro.controller import EccEngine
from repro.errors import ConfigError
from repro.flash import FlashGeometry, PhysAddr
from repro.ftl.blocks import BlockManager, SPARE
from repro.reliability import (
    BadBlockManager,
    EccLadder,
    FaultInjector,
    RberModel,
    ReliabilityConfig,
    pe_fraction_at_rber,
    poisson,
)
from repro.sim import Interrupt, Resource, SimulationError, Simulator, TokenPool


# ---------------------------------------------------------------------------
# Timeout construction semantics


class TestTimeoutSemantics:
    def test_not_triggered_at_construction(self):
        sim = Simulator()
        timeout = sim.timeout(5.0)
        assert not timeout.triggered

    def test_triggered_after_firing(self):
        sim = Simulator()
        timeout = sim.timeout(5.0, value="done")
        sim.run()
        assert timeout.triggered
        assert timeout.ok
        assert timeout.value == "done"

    def test_manual_trigger_rejected(self):
        sim = Simulator()
        timeout = sim.timeout(1.0)
        with pytest.raises(SimulationError):
            timeout.trigger()
        with pytest.raises(SimulationError):
            timeout.fail(RuntimeError("no"))

    def test_zero_delay_still_waits_for_dispatch(self):
        sim = Simulator()
        timeout = sim.timeout(0.0)
        assert not timeout.triggered
        sim.run()
        assert timeout.triggered

    def test_yield_fresh_timeout_waits_full_delay(self):
        sim = Simulator()
        seen = []

        def proc():
            yield sim.timeout(3.0)
            seen.append(sim.now)

        sim.process(proc())
        sim.run()
        assert seen == [pytest.approx(3.0)]


# ---------------------------------------------------------------------------
# Interrupt-safe resource holds (the preemptive-GC leak regressions)


class TestInterruptResourceSafety:
    def test_ecc_lane_released_on_interrupt_mid_decode(self):
        """Regression: an interrupted ECC check must not leak its lane.

        Pre-fix, interrupting the holder mid-``timeout`` skipped the
        release and every later check deadlocked on the lost lane.
        """
        sim = Simulator()
        engine = EccEngine(sim, throughput=1000.0, fixed_latency_us=1.0,
                           lanes=1)
        finished = []

        def victim():
            yield from engine.check(4096)

        def observer():
            yield from engine.check(4096)
            finished.append(sim.now)

        holder = sim.process(victim())
        sim.schedule(2.0, holder.interrupt)
        sim.process(observer())
        sim.run()
        assert finished, "ECC lane leaked: follow-up check never ran"

    def test_resource_cancel_of_queued_request(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        first = resource.request()
        second = resource.request()
        assert first.triggered and not second.triggered
        resource.cancel(second)
        assert resource.queue_length == 0
        third = resource.request()
        resource.cancel(first)  # releases; must skip the cancelled grant
        sim.run()
        assert third.triggered

    def test_resource_cancel_of_triggered_grant_releases(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        grant = resource.request()
        assert grant.triggered
        resource.cancel(grant)
        assert resource.in_use == 0
        again = resource.request()
        assert again.triggered

    def test_tokenpool_hold_returned_on_interrupt(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=2)

        def holder():
            grant = pool.acquire(2)
            try:
                yield grant
                yield sim.timeout(100.0)
            finally:
                pool.cancel(grant)

        process = sim.process(holder())
        sim.schedule(5.0, process.interrupt)
        sim.run()
        assert pool.available == 2

    def test_tokenpool_cancel_of_queued_request_unblocks_smaller(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=4)
        hold = pool.acquire(3)
        big = pool.acquire(4)       # queued, head of line
        small = pool.acquire(1)     # queued behind the big one
        assert not big.triggered and not small.triggered
        pool.cancel(big)
        assert small.triggered      # head removal drains the queue
        pool.cancel(hold)
        pool.cancel(small)
        assert pool.available == 4

    def test_interrupt_while_waiting_in_queue_leaves_no_ghost_grant(self):
        sim = Simulator()
        engine = EccEngine(sim, throughput=1000.0, fixed_latency_us=1.0,
                           lanes=1)
        order = []

        def long_holder():
            yield from engine.check(65536)
            order.append("holder")

        def queued():
            yield from engine.check(4096)
            order.append("queued")  # pragma: no cover - interrupted

        def late():
            yield from engine.check(4096)
            order.append("late")

        sim.process(long_holder())
        waiting = sim.process(queued())
        sim.schedule(1.0, waiting.interrupt)  # still queued at t=1
        sim.schedule(2.0, lambda: sim.process(late()))
        sim.run()
        assert order == ["holder", "late"]


class TestKernelInterruptEdges:
    def test_interrupt_before_first_resume(self):
        sim = Simulator()
        outcomes = []

        def proc():
            try:
                yield sim.timeout(10.0)
                outcomes.append("finished")
            except Interrupt:
                outcomes.append("interrupted")

        process = sim.process(proc())
        process.interrupt()
        sim.run()
        assert outcomes == ["interrupted"]
        assert process.triggered

    def test_interrupt_during_all_of(self):
        sim = Simulator()
        outcomes = []

        def proc():
            try:
                yield sim.all_of([sim.timeout(10.0), sim.timeout(20.0)])
                outcomes.append("finished")
            except Interrupt:
                outcomes.append("interrupted")

        process = sim.process(proc())
        sim.schedule(5.0, process.interrupt)
        sim.run()
        assert outcomes == ["interrupted"]
        # The timeouts fire afterwards without resuming the dead process.
        assert sim.now == pytest.approx(20.0)

    def test_interrupt_during_any_of(self):
        sim = Simulator()
        outcomes = []

        def proc():
            try:
                yield sim.any_of([sim.timeout(10.0), sim.timeout(20.0)])
                outcomes.append("finished")
            except Interrupt:
                outcomes.append("interrupted")

        process = sim.process(proc())
        sim.schedule(5.0, process.interrupt)
        sim.run()
        assert outcomes == ["interrupted"]

    def test_interrupt_propagates_through_yield_from(self):
        sim = Simulator()
        cleaned = []

        def inner():
            try:
                yield sim.timeout(50.0)
            finally:
                cleaned.append("inner")

        def outer():
            try:
                yield from inner()
            finally:
                cleaned.append("outer")

        process = sim.process(outer())
        sim.schedule(1.0, process.interrupt)
        sim.run()
        assert cleaned == ["inner", "outer"]


# ---------------------------------------------------------------------------
# ECC utilization accounting under preemption


class TestEccAccounting:
    def test_partial_decode_counts_busy_time(self):
        sim = Simulator()
        engine = EccEngine(sim, throughput=1000.0, fixed_latency_us=1.0,
                           lanes=1)

        def victim():
            yield from engine.check(4096)  # 5.096 us decode

        process = sim.process(victim())
        sim.schedule(2.0, process.interrupt)
        sim.run()
        assert engine.busy_time == pytest.approx(2.0)
        assert engine.pages_checked == 1

    def test_interrupt_while_queued_counts_nothing(self):
        sim = Simulator()
        engine = EccEngine(sim, throughput=1000.0, fixed_latency_us=1.0,
                           lanes=1)

        def holder():
            yield from engine.check(65536)  # 66.536 us

        def queued():
            yield from engine.check(4096)

        sim.process(holder())
        waiting = sim.process(queued())
        sim.schedule(1.0, waiting.interrupt)
        sim.run()
        assert engine.pages_checked == 1  # only the holder's pass
        assert engine.busy_time == pytest.approx(66.536)

    def test_uninterrupted_accounting_unchanged(self):
        sim = Simulator()
        engine = EccEngine(sim, throughput=1000.0, fixed_latency_us=0.5,
                           lanes=1)

        def proc():
            yield from engine.check(4096)

        sim.process(proc())
        sim.run()
        assert engine.pages_checked == 1
        assert engine.busy_time == pytest.approx(0.5 + 4096 / 1000.0)


# ---------------------------------------------------------------------------
# Reliability building blocks


class TestRberModel:
    def test_poisson_deterministic_and_zero_rate(self):
        draws_a = [poisson(random.Random(7), 2.5) for _ in range(1)]
        draws_b = [poisson(random.Random(7), 2.5) for _ in range(1)]
        assert draws_a == draws_b
        assert poisson(random.Random(1), 0.0) == 0
        assert poisson(random.Random(1), -1.0) == 0

    def test_poisson_mean_tracks_lambda(self):
        rng = random.Random(3)
        lam = 4.0
        n = 4000
        mean = sum(poisson(rng, lam) for _ in range(n)) / n
        assert mean == pytest.approx(lam, rel=0.1)

    def test_poisson_large_lambda_gaussian_branch(self):
        rng = random.Random(5)
        value = poisson(rng, 1000.0)
        assert 800 <= value <= 1200

    def test_pe_fraction_at_rber(self):
        assert pe_fraction_at_rber(1e-7, 1e-7, 8.0) == 0.0
        assert pe_fraction_at_rber(1e-6, 1e-7, 8.0) == pytest.approx(
            2.302585 / 8.0, rel=1e-5)
        with pytest.raises(ConfigError):
            pe_fraction_at_rber(0.0, 1e-7, 8.0)

    def test_rber_grows_with_wear_and_age(self):
        model = RberModel(base_rber=1e-6, growth=8.0, retention_per_ms=0.1,
                          pe_mean=100, pe_sigma=0.0, seed=1)
        fresh = model.rber(0, 0, age_us=0.0)
        worn = model.rber(0, 50, age_us=0.0)
        aged = model.rber(0, 50, age_us=10_000.0)
        assert fresh == pytest.approx(1e-6)
        assert worn > fresh
        assert aged > worn

    def test_wear_death_matches_limit(self):
        model = RberModel(pe_mean=10, pe_sigma=0.0, seed=1)
        limit = model.limit_for(3)
        assert not model.is_dead(3, limit - 1)
        assert model.is_dead(3, limit)


class TestEccLadder:
    def test_step_selection(self):
        ladder = EccLadder(correct_bits=(40, 60, 72))
        assert ladder.steps == 3
        assert ladder.next_step(0) == 0
        assert ladder.next_step(45) == 1
        assert ladder.next_step(72) == 2
        assert ladder.next_step(73) is None
        assert ladder.next_step(45, step=2) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            EccLadder(correct_bits=(40, 30))
        with pytest.raises(ConfigError):
            EccLadder(correct_bits=(40,), latency_scales=(1.0, 2.0))
        with pytest.raises(ConfigError):
            EccLadder(latency_scales=(1.0, -1.0, 2.0))


class TestFaultInjector:
    def test_deterministic_rolls(self):
        sim = Simulator()
        a = FaultInjector(sim, channel_fault_rate=0.3, seed=9)
        b = FaultInjector(sim, channel_fault_rate=0.3, seed=9)
        rolls_a = [a.channel_fault() for _ in range(50)]
        rolls_b = [b.channel_fault() for _ in range(50)]
        assert rolls_a == rolls_b
        assert a.channel_faults == sum(rolls_a)

    def test_disabled_rates_never_fire(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        assert not injector.enabled
        assert not injector.channel_fault()
        assert not injector.die_fault()

    def test_backoff_escalates_and_exhausts(self):
        sim = Simulator()
        injector = FaultInjector(sim, channel_fault_rate=0.5,
                                 timeout_us=2.0, backoff=2.0, max_retries=2)
        delays = []

        def proc():
            for attempt in (1, 2, 3):
                t0 = sim.now
                proceed = yield from injector.backoff_wait(attempt)
                delays.append((sim.now - t0, proceed))

        sim.process(proc())
        sim.run()
        assert delays[0] == (pytest.approx(2.0), True)
        assert delays[1] == (pytest.approx(4.0), True)
        assert delays[2] == (pytest.approx(0.0), False)
        assert injector.exhausted == 1
        assert injector.retries == 2

    def test_config_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            FaultInjector(sim, channel_fault_rate=1.5)
        with pytest.raises(ConfigError):
            FaultInjector(sim, backoff=0.5)


class TestReliabilityConfig:
    def test_defaults_valid(self):
        config = ReliabilityConfig()
        assert config.ladder_correct_bits == (40, 60, 72)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            ReliabilityConfig(base_rber=0.0)
        with pytest.raises(ConfigError):
            ReliabilityConfig(ladder_correct_bits=(60, 40, 72))
        with pytest.raises(ConfigError):
            ReliabilityConfig(channel_fault_rate=1.0)
        with pytest.raises(ConfigError):
            ReliabilityConfig(srt_capacity=0)


# ---------------------------------------------------------------------------
# Bad-block retirement and spares


def _tiny_geometry() -> FlashGeometry:
    return FlashGeometry(channels=2, ways=1, dies=1, planes=1,
                         blocks_per_plane=8, pages_per_block=4)


class TestSpareWithdrawal:
    def test_withdraw_marks_spare_and_respects_reserve(self):
        geometry = _tiny_geometry()
        blocks = BlockManager(geometry, gc_reserve_blocks=2)
        addr = blocks.withdraw_spare(0)
        assert addr is not None
        assert blocks.info(addr).state == SPARE
        assert blocks.spare_blocks == 1
        assert blocks.free_blocks == geometry.blocks_total - 1
        # Drain the plane to the reserve floor: no more spares.
        while blocks.withdraw_spare(0) is not None:
            pass
        assert blocks.plane_free_blocks(0) > blocks.gc_reserve_blocks

    def test_free_fraction_excludes_spares(self):
        geometry = _tiny_geometry()
        blocks = BlockManager(geometry, gc_reserve_blocks=1)
        before = blocks.free_fraction
        blocks.withdraw_spare(0)
        assert blocks.free_fraction == pytest.approx(before)


class TestBadBlockManager:
    def test_retire_remaps_then_hard_retires(self):
        geometry = _tiny_geometry()
        blocks = BlockManager(geometry, gc_reserve_blocks=1)
        manager = BadBlockManager(geometry, blocks, spares_per_channel=1,
                                  srt_capacity=4)
        assert manager.spares_provisioned == 2  # one per channel
        victim = PhysAddr(0, 0, 0, 0, 0, 0)

        verdict = manager.retire(victim, mark_bad_addr=victim)
        assert verdict == "remapped"
        assert manager.active_remaps == 1
        resolved = manager.resolve(victim._replace(page=3))
        assert resolved != victim._replace(page=3)
        assert resolved.page == 3

        # Channel 0's only spare is gone: next wear-out is terminal.
        other = PhysAddr(0, 0, 0, 0, 1, 0)
        verdict = manager.retire(other, mark_bad_addr=other)
        assert verdict == "retired"
        assert blocks.info(other).state == "bad"

    def test_retire_chain_replaces_entry(self):
        geometry = _tiny_geometry()
        blocks = BlockManager(geometry, gc_reserve_blocks=1)
        manager = BadBlockManager(geometry, blocks, spares_per_channel=2,
                                  srt_capacity=4)
        victim = PhysAddr(1, 0, 0, 0, 0, 0)
        assert manager.retire(victim, mark_bad_addr=victim) == "remapped"
        first = manager.resolve(victim)
        assert manager.retire(victim, mark_bad_addr=victim) == "remapped"
        second = manager.resolve(victim)
        assert second != first
        assert manager.active_remaps == 1  # chain collapsed, not stacked

    def test_resolve_identity_when_unmapped(self):
        geometry = _tiny_geometry()
        blocks = BlockManager(geometry, gc_reserve_blocks=1)
        manager = BadBlockManager(geometry, blocks, spares_per_channel=0)
        addr = PhysAddr(0, 0, 0, 0, 2, 1)
        assert manager.resolve(addr) == addr
        assert manager.spares_remaining == 0


# ---------------------------------------------------------------------------
# End-to-end: error propagation, retirement, determinism


def _run_reliability_ssd(arch: str, copyback_ecc: bool, **rel_overrides):
    from repro.core import build_ssd, sim_geometry
    from repro.workloads import SyntheticWorkload

    defaults = dict(base_rber=1e-4, rber_growth=8.0, pe_mean=50.0,
                    pe_sigma=5.0, spare_blocks_per_channel=1)
    defaults.update(rel_overrides)
    rel = ReliabilityConfig(**defaults)
    geometry = sim_geometry(channels=2, ways=2, planes=2,
                            blocks_per_plane=10, pages_per_block=16)
    ssd = build_ssd(arch, geometry=geometry, reliability=rel, seed=5,
                    copyback_ecc=copyback_ecc)
    workload = SyntheticWorkload(pattern="rand_write",
                                 working_set_fraction=0.5)
    result = ssd.run(workload, duration_us=25_000.0)
    return ssd, result


class TestReliabilityIntegration:
    def test_legacy_copyback_propagates_errors(self):
        ssd, result = _run_reliability_ssd("dssd", copyback_ecc=False)
        extras = result.extras
        assert extras["rel_unchecked_copies"] > 0
        assert extras["rel_copy_errors_propagated"] > 0
        assert extras["rel_survivors_ge2"] > 0
        assert extras["rel_max_generation"] >= 2

    def test_checked_copyback_scrubs_errors(self):
        for arch, checked in (("baseline", True), ("dssd", True)):
            ssd, result = _run_reliability_ssd(arch, copyback_ecc=checked)
            extras = result.extras
            assert extras["rel_survivors_ge2"] == 0
            assert extras["rel_unchecked_copies"] == 0
            assert extras["rel_errors_corrected"] > 0

    def test_wearout_triggers_remap_and_retirement(self):
        ssd, result = _run_reliability_ssd("baseline", copyback_ecc=True,
                                           pe_mean=3.0, pe_sigma=0.5)
        extras = result.extras
        assert (extras["rel_blocks_remapped"]
                + extras["rel_blocks_retired"]) > 0
        assert (ssd.gc.stats.blocks_remapped
                == extras["rel_blocks_remapped"])
        assert ssd.blocks.bad_blocks == extras["rel_blocks_retired"]

    def test_fault_injection_counts_retries(self):
        ssd, result = _run_reliability_ssd(
            "baseline", copyback_ecc=True,
            channel_fault_rate=5e-3, die_fault_rate=5e-3,
        )
        extras = result.extras
        assert extras["rel_channel_faults"] + extras["rel_die_faults"] > 0
        assert extras["rel_fault_retries"] > 0

    def test_deterministic_under_seed(self):
        _ssd_a, result_a = _run_reliability_ssd("dssd", copyback_ecc=False)
        _ssd_b, result_b = _run_reliability_ssd("dssd", copyback_ecc=False)
        rel_a = {k: v for k, v in result_a.extras.items()
                 if k.startswith("rel_")}
        rel_b = {k: v for k, v in result_b.extras.items()
                 if k.startswith("rel_")}
        assert rel_a == rel_b
        assert result_a.requests_completed == result_b.requests_completed

    def test_reads_pay_the_ladder_under_high_rber(self):
        ssd, result = _run_reliability_ssd("baseline", copyback_ecc=True,
                                           base_rber=2e-3)
        extras = result.extras
        assert extras["rel_ladder_retries"] > 0
        assert extras["rel_raid_recoveries"] > 0
        # RAID is on, so nothing is reported uncorrectable.
        assert extras["rel_uncorrectable_pages"] == 0


class TestEnduranceRberCap:
    def test_uncorrectable_rber_shortens_lifetime(self):
        from repro.superblock import run_endurance

        kwargs = dict(n_superblocks=64, channels=4, seed=2,
                      pe_mean=1000.0, pe_sigma=100.0)
        raw = run_endurance(policy="baseline", **kwargs)
        capped = run_endurance(policy="baseline",
                               uncorrectable_rber=1e-6, rber_base=1e-7,
                               rber_growth=8.0, **kwargs)
        assert capped.total_bytes < raw.total_bytes

    def test_loose_rber_budget_is_a_noop(self):
        from repro.superblock import run_endurance

        kwargs = dict(n_superblocks=64, channels=4, seed=2)
        raw = run_endurance(policy="baseline", **kwargs)
        loose = run_endurance(policy="baseline",
                              uncorrectable_rber=0.5, rber_base=1e-7,
                              rber_growth=8.0, **kwargs)
        assert loose.total_bytes == raw.total_bytes
