"""Tests for the wear-coupled read-retry model."""

import pytest

from repro.core import ArchPreset, build_ssd, sim_geometry
from repro.flash import WearModel
from repro.workloads import SyntheticWorkload

GEOM = sim_geometry(channels=2, ways=2, planes=2, blocks_per_plane=8,
                    pages_per_block=8)


def test_wear_model_retry_steps():
    model = WearModel(mean=100.0, sigma=0.0)
    assert model.read_retries(0, 0) == 0
    assert model.read_retries(79, 0) == 0
    assert model.read_retries(80, 0) == 1
    assert model.read_retries(94, 0) == 1
    assert model.read_retries(95, 0) == 2
    assert model.read_retries(200, 0) == 2


def test_fresh_device_reads_without_retries():
    ssd = build_ssd(ArchPreset.BASELINE, geometry=GEOM, read_retry=True)
    workload = SyntheticWorkload(pattern="rand_read", io_size=4096)
    ssd.run(workload, duration_us=10_000, trigger_gc=False)
    assert ssd.datapath.read_retries_performed == 0


def test_worn_blocks_pay_retries():
    ssd = build_ssd(ArchPreset.BASELINE, geometry=GEOM, read_retry=True)
    ssd.prefill()
    # Force every block to look end-of-life.
    for block_index in range(GEOM.blocks_total):
        addr = GEOM.block_addr_of(block_index)
        ssd.backend.block_state(addr).erase_count = 10_000
    workload = SyntheticWorkload(pattern="rand_read", io_size=4096)
    result = ssd.run(workload, duration_us=10_000, trigger_gc=False)
    assert result.requests_completed > 0
    assert ssd.datapath.read_retries_performed > 0


def test_retries_inflate_read_latency():
    def mean_latency(wear):
        ssd = build_ssd(ArchPreset.BASELINE, geometry=GEOM,
                        read_retry=True)
        ssd.prefill()
        if wear:
            for block_index in range(GEOM.blocks_total):
                addr = GEOM.block_addr_of(block_index)
                ssd.backend.block_state(addr).erase_count = 10_000
        workload = SyntheticWorkload(pattern="rand_read", io_size=4096)
        result = ssd.run(workload, duration_us=10_000, trigger_gc=False)
        return result.io_latency.mean

    assert mean_latency(wear=True) > mean_latency(wear=False)


def test_read_retry_disabled_by_default():
    ssd = build_ssd(ArchPreset.BASELINE, geometry=GEOM)
    assert ssd.datapath.wear_model is None
