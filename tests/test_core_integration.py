"""End-to-end integration tests over the assembled SSD."""

import pytest

from repro.core import (
    ArchPreset,
    CopybackStatus,
    SSDConfig,
    build_ssd,
    sim_geometry,
)
from repro.errors import ConfigError
from repro.workloads import SyntheticWorkload

TINY = sim_geometry(channels=4, ways=2, planes=2, blocks_per_plane=10,
                    pages_per_block=16)


def tiny_ssd(arch, **overrides):
    overrides.setdefault("geometry", TINY)
    overrides.setdefault("queue_depth", 16)
    return build_ssd(arch, **overrides)


def run_tiny(arch, pattern="seq_write", io_size=4096, duration=20_000,
             **overrides):
    ssd = tiny_ssd(arch, **overrides)
    workload = SyntheticWorkload(pattern=pattern, io_size=io_size)
    return ssd, ssd.run(workload, duration_us=duration)


# ---------------------------------------------------------------- assembly


def test_build_from_preset_string_and_enum():
    assert build_ssd("dssd_f", geometry=TINY).config.arch is ArchPreset.DSSD_F
    assert build_ssd(ArchPreset.BW, geometry=TINY).config.arch is ArchPreset.BW


def test_build_from_config_object():
    config = SSDConfig(arch=ArchPreset.DSSD, geometry=TINY)
    ssd = build_ssd(config)
    assert ssd.config is config
    with pytest.raises(ConfigError):
        build_ssd(config, queue_depth=8)


def test_fnoc_only_built_for_dssd_f():
    assert tiny_ssd("dssd_f").fnoc is not None
    assert tiny_ssd("dssd").fnoc is None
    assert tiny_ssd("baseline").fnoc is None


def test_bandwidth_rules_match_table2():
    base = SSDConfig(arch=ArchPreset.BASELINE)
    assert base.system_bus_bw == 8000.0
    bw = base.with_arch(ArchPreset.BW)
    assert bw.system_bus_bw == pytest.approx(10000.0)
    dssd = base.with_arch(ArchPreset.DSSD)
    assert dssd.system_bus_bw == pytest.approx(10000.0)
    dssd_b = base.with_arch(ArchPreset.DSSD_B)
    assert dssd_b.system_bus_bw == 8000.0
    assert dssd_b.dedicated_bus_bw == pytest.approx(2000.0)
    dssd_f = base.with_arch(ArchPreset.DSSD_F)
    assert dssd_f.system_bus_bw == 8000.0
    assert dssd_f.effective_fnoc_channel_bw == pytest.approx(2000.0)


def test_run_requires_budget():
    ssd = tiny_ssd("baseline")
    workload = SyntheticWorkload()
    with pytest.raises(ConfigError):
        ssd.run(workload)


# ---------------------------------------------------------------- behaviour


def test_write_workload_completes_requests():
    _ssd, result = run_tiny("baseline")
    assert result.requests_completed > 0
    assert result.io_bandwidth > 0
    assert result.io_latency.count == result.requests_completed


def test_read_workload_hits_flash():
    ssd, result = run_tiny("baseline", pattern="rand_read")
    assert result.requests_completed > 0
    assert sum(c.pages_read for c in ssd.controllers) > 0


def test_dram_hit_reads_skip_flash():
    ssd = tiny_ssd("baseline")
    workload = SyntheticWorkload(pattern="rand_read", dram_hit_fraction=1.0)
    result = ssd.run(workload, duration_us=10_000, trigger_gc=False)
    assert result.requests_completed > 0
    assert sum(c.pages_read for c in ssd.controllers) == 0


def test_gc_runs_under_write_pressure():
    _ssd, result = run_tiny("baseline", duration=40_000)
    assert result.gc.blocks_erased > 0
    assert result.gc.pages_moved > 0


def test_decoupled_gc_avoids_dram_and_bus():
    """Paper's core claim: decoupled copyback never touches the DRAM and
    (for dSSD_f) never touches the system bus."""
    _ssd, result = run_tiny("dssd_f", duration=40_000)
    assert result.copybacks > 0
    gc_breakdown = result.gc_breakdown.as_dict()
    assert gc_breakdown["dram"] == 0.0
    assert result.bus_gc_utilization == 0.0


def test_baseline_gc_uses_front_end():
    _ssd, result = run_tiny("baseline", duration=40_000)
    gc_breakdown = result.gc_breakdown.as_dict()
    assert gc_breakdown["dram"] > 0.0
    assert gc_breakdown["system_bus"] > 0.0
    assert result.bus_gc_utilization > 0.0


def test_copyback_commands_progress_through_stages():
    ssd, result = run_tiny("dssd_f", duration=40_000)
    log = ssd.datapath.copyback_log
    assert log
    finished = [c for c in log if c.status == CopybackStatus.WRITTEN]
    assert finished
    remote = [c for c in finished if not c.is_local]
    local = [c for c in finished if c.is_local]
    assert remote, "cross-channel copybacks expected with global striping"
    for command in remote[:50]:
        stages = [s for s, _t in command.history]
        assert stages == ["R", "RE", "P", "T", "W"]
    for command in local[:50]:
        stages = [s for s, _t in command.history]
        assert stages == ["R", "RE", "W"]


def test_fnoc_carries_copyback_traffic():
    ssd, result = run_tiny("dssd_f", duration=40_000)
    assert result.fnoc_packets > 0
    assert ssd.fnoc.bytes_sent > 0


def test_mapping_consistent_after_heavy_gc():
    ssd, result = run_tiny("baseline", pattern="rand_write", duration=40_000)
    ssd.mapping.check_consistency()
    # Blocks' valid counts match the number of mapped LPNs whose pages
    # are not dirty-in-buffer.
    total_valid = sum(info.valid_count for info in ssd.blocks.blocks.values())
    assert total_valid == len(ssd.mapping)


def test_warmup_resets_measurements():
    ssd = tiny_ssd("baseline")
    workload = SyntheticWorkload(pattern="seq_write", io_size=4096)
    result = ssd.run(workload, duration_us=20_000, warmup_us=10_000)
    assert result.duration_us == pytest.approx(10_000, rel=0.01)
    assert result.requests_completed > 0


def test_max_requests_stop_condition():
    ssd = tiny_ssd("baseline")
    workload = SyntheticWorkload(pattern="seq_write", io_size=4096)
    result = ssd.run(workload, max_requests=50)
    assert result.requests_completed <= 50
    assert result.requests_completed > 0


def test_write_through_policy():
    ssd, result = run_tiny("baseline", write_policy="writethrough",
                           duration=20_000)
    assert result.requests_completed > 0
    # Write-through never stages pages in the buffer.
    assert ssd.ftl.dirty_pages == 0


def test_summary_keys():
    _ssd, result = run_tiny("baseline", duration=10_000)
    summary = result.summary()
    for key in ("io_bandwidth_MBps", "io_p99_us", "gc_pages_moved"):
        assert key in summary


def test_run_result_extras_present():
    _ssd, result = run_tiny("dssd_f", duration=20_000)
    for key in ("gc_pages_in_window", "gc_move_latency_us",
                "free_fraction_end"):
        assert key in result.extras
