"""Device checkpoint protocol: snapshot, restore, fast-forward.

The headline guarantee is *byte-identity*: snapshotting a quiescent
device, restoring it into a fresh process, and continuing the run must
produce exactly the traces, latency samples, and summary tables of a
device that never stopped.  The equivalence tests prove it per
architecture against an uninterrupted control run; the hypothesis
property test proves the complementary round trip --
``snapshot(restore(s)) == s`` -- across every arch preset.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ArchPreset,
    SNAPSHOT_SCHEMA,
    build_ssd,
    config_from_state,
    config_to_state,
    fastforward_wear,
    load_snapshot,
    restore_ssd,
    save_snapshot,
    sim_geometry,
    snapshot_ssd,
)
from repro.errors import SnapshotError
from repro.host import TenantSpec
from repro.reliability import ReliabilityConfig
from repro.sim.kernel import SimulationError
from repro.workloads import SyntheticWorkload

GEOM = dict(channels=2, ways=2, planes=2, blocks_per_plane=16,
            pages_per_block=16)

PHASE_REQUESTS = 250


def _build(arch, **overrides):
    overrides.setdefault("geometry", sim_geometry(**GEOM))
    overrides.setdefault("prefill_fraction", 0.5)
    return build_ssd(arch, **overrides)


def _workload():
    return SyntheticWorkload(pattern="mixed", io_size=4096,
                             read_fraction=0.5)


def _fingerprint(ssd, result):
    """Everything byte-identity is judged on: tables, samples, clock."""
    return {
        "summary": result.summary(),
        "io_latency": result.io_latency.state_dict(),
        "extras": result.extras,
        "now": ssd.sim.now,
        "seq": ssd.sim._seq,
    }


def _equivalence(arch, **overrides):
    """Phase1 -> snapshot -> JSON -> restore -> phase2 vs uninterrupted."""
    control = _build(arch, **overrides)
    control.run(_workload(), max_requests=PHASE_REQUESTS)
    expected = _fingerprint(
        control, control.run(_workload(), max_requests=PHASE_REQUESTS))

    ssd = _build(arch, **overrides)
    ssd.run(_workload(), max_requests=PHASE_REQUESTS)
    state = json.loads(json.dumps(ssd.snapshot()))
    resumed = restore_ssd(state)
    actual = _fingerprint(
        resumed, resumed.run(_workload(), max_requests=PHASE_REQUESTS))
    assert actual == expected


def test_equivalence_baseline():
    _equivalence("baseline")


def test_equivalence_dssd():
    _equivalence("dssd")


def test_equivalence_dssd_b():
    _equivalence("dssd_b")


def test_equivalence_dssd_f():
    _equivalence("dssd_f")


def test_equivalence_with_reliability_stack():
    """SRT/RBT tables, page states, and fault RNGs all survive."""
    reliability = ReliabilityConfig(base_rber=1e-5,
                                    channel_fault_rate=0.01,
                                    die_fault_rate=0.01)
    _equivalence("dssd_f", reliability=reliability)


def test_equivalence_nondeterministic_timing():
    """The flash-latency RNG stream resumes mid-sequence."""
    _equivalence("baseline", deterministic_timing=False)


# -- property: snapshot(restore(s)) == s -------------------------------------

_ARCHS = st.sampled_from(list(ArchPreset))


@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
@given(arch=_ARCHS,
       requests=st.integers(0, 120),
       age=st.sampled_from([0.0, 0.4, 0.8]),
       with_reliability=st.booleans())
def test_resnapshot_identity(arch, requests, age, with_reliability):
    """A restored device re-snapshots to the byte-identical state.

    One assertion covers the whole protocol: kernel clock/seq, FTL
    mapping and block pools, per-block wear counters, superblock
    SRT/RBT tables, reliability page records, and every meter must all
    round-trip exactly, or the two snapshot dicts differ.
    """
    overrides = {}
    if with_reliability:
        overrides["reliability"] = ReliabilityConfig(
            base_rber=1e-5, channel_fault_rate=0.005, die_fault_rate=0.005)
    ssd = _build(arch, **overrides)
    ssd.prefill()
    if age:
        fastforward_wear(ssd, age)
    if requests:
        ssd.run(_workload(), max_requests=requests)
    state = json.loads(json.dumps(snapshot_ssd(ssd)))
    restored = restore_ssd(state)
    assert json.loads(json.dumps(snapshot_ssd(restored))) == state
    # Spot-check the states the fleet work leans on hardest.
    assert restored.sim.now == ssd.sim.now
    assert restored.sim._seq == ssd.sim._seq
    assert restored.mapping.state_dict() == ssd.mapping.state_dict()
    assert restored.backend.state_dict() == ssd.backend.state_dict()


# -- quiescence & schema guards ----------------------------------------------

def test_snapshot_refuses_pending_events():
    """A duration-bounded run can stop mid-request; snapshot must refuse."""
    ssd = _build("baseline")
    ssd.run(_workload(), duration_us=40.0)
    if ssd.sim._queue:
        with pytest.raises(SimulationError):
            ssd.snapshot()
    else:  # pragma: no cover - only if 40us happens to drain fully
        ssd.snapshot()


def test_snapshot_refuses_wear_leveling_config():
    """The wear-leveler's perpetual timer makes quiescence unreachable.

    The run must be duration-bounded: with the timer rescheduling
    itself forever, an unbounded ``sim.run()`` would never return.  All
    20 requests finish long before the deadline, so the only event left
    in the heap is the wear-level timer -- exactly what blocks the
    snapshot.
    """
    ssd = _build("baseline", wear_leveling=True)
    ssd.run(_workload(), duration_us=50_000.0, max_requests=20)
    with pytest.raises(SimulationError):
        ssd.snapshot()


def test_snapshot_refuses_frontend_sessions():
    ssd = _build("baseline")
    ssd.run_tenants(
        [TenantSpec(name="t", workload=_workload(), queue_depth=2)],
        duration_us=300.0)
    with pytest.raises(SnapshotError):
        ssd.snapshot()


def test_restore_rejects_unknown_schema():
    ssd = _build("baseline")
    ssd.prefill()
    state = snapshot_ssd(ssd)
    state["schema"] = SNAPSHOT_SCHEMA + 1
    with pytest.raises(SnapshotError):
        restore_ssd(state)


# -- persistence & config round trip -----------------------------------------

@pytest.mark.parametrize("name", ["snap.json", "snap.json.gz"])
def test_save_load_roundtrip(tmp_path, name):
    ssd = _build("dssd")
    ssd.run(_workload(), max_requests=60)
    state = snapshot_ssd(ssd)
    path = save_snapshot(state, tmp_path / name)
    assert load_snapshot(path) == json.loads(json.dumps(state))


def test_gzip_snapshot_is_content_addressable(tmp_path):
    """Identical states write identical bytes (mtime pinned to zero)."""
    ssd = _build("baseline")
    ssd.prefill()
    state = snapshot_ssd(ssd)
    a = save_snapshot(state, tmp_path / "a.json.gz").read_bytes()
    b = save_snapshot(state, tmp_path / "b.json.gz").read_bytes()
    assert a == b


def test_config_roundtrip_all_presets():
    for arch in ArchPreset:
        config = _build(arch).config
        restored = config_from_state(
            json.loads(json.dumps(config_to_state(config))))
        assert restored == config


def test_config_roundtrip_reliability():
    config = _build(
        "dssd_f",
        reliability=ReliabilityConfig(base_rber=1e-5),
    ).config
    restored = config_from_state(
        json.loads(json.dumps(config_to_state(config))))
    assert restored == config


# -- fast-forward aging --------------------------------------------------------

def test_fastforward_wear_uniform_mean():
    ssd = _build("baseline")
    applied = fastforward_wear(ssd, 0.5, limit_mean=1000.0)
    geometry = ssd.config.geometry
    blocks = geometry.planes_total * geometry.blocks_per_plane
    assert applied == blocks * 500
    assert ssd.backend._block_state_at(0).erase_count == 500


def test_fastforward_wear_uses_per_block_limits():
    reliability = ReliabilityConfig(base_rber=1e-5)
    ssd = _build("baseline", reliability=reliability)
    fastforward_wear(ssd, 0.8)
    wear = ssd.reliability.rber_model.wear
    counts = {ssd.backend._block_state_at(i).erase_count
              for i in range(64)}
    assert len(counts) > 1  # Gaussian limits -> heterogeneous ages
    assert ssd.backend._block_state_at(3).erase_count == int(
        0.8 * wear.limit_for(3))


def test_fastforward_wear_rejects_bad_fraction():
    ssd = _build("baseline")
    with pytest.raises(SnapshotError):
        fastforward_wear(ssd, 1.0)
    with pytest.raises(SnapshotError):
        fastforward_wear(ssd, -0.1)


def test_fastforward_wear_zero_is_noop():
    ssd = _build("baseline")
    assert fastforward_wear(ssd, 0.0) == 0
    assert ssd.backend._block_state_at(0).erase_count == 0


def test_pending_event_refusal_names_the_culprit():
    """The quiescence error enumerates what is still pending."""
    ssd = _build("baseline", wear_leveling=True)
    ssd.run(_workload(), duration_us=50_000.0, max_requests=20)
    with pytest.raises(SimulationError) as excinfo:
        ssd.snapshot()
    message = str(excinfo.value)
    assert "pending:" in message
    assert "wear_level" in message


def test_quiescence_report_lists_inflight_work():
    from repro.core.checkpoint import quiescence_report

    ssd = _build("baseline")
    ssd.run(_workload(), max_requests=30)
    assert quiescence_report(ssd) == []
    ssd.run(_workload(), duration_us=40.0)
    if ssd.sim._queue:
        report = quiescence_report(ssd)
        assert report, "mid-request device reported quiescent"
        assert any("pending" in line or "in flight" in line
                   or "t=" in line for line in report)
