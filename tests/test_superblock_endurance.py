"""Tests for the endurance simulator, WAS model, and SRT remapper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.flash import FlashGeometry, PhysAddr
from repro.superblock import (
    EnduranceConfig,
    EnduranceSimulator,
    SrtRemapper,
    run_endurance,
    simulate_was,
)

FAST = dict(n_superblocks=128, channels=4, seed=7)


def test_curve_is_monotone():
    result = run_endurance(policy="baseline", **FAST)
    bytes_seq = [b for b, _bad in result.curve]
    bad_seq = [bad for _b, bad in result.curve]
    assert bytes_seq == sorted(bytes_seq)
    assert bad_seq == sorted(bad_seq)
    assert bad_seq[-1] >= int(0.9 * 128)


def test_recycled_same_first_bad_as_baseline():
    """Paper Sec 5.3: RECYCLED cannot delay the *first* bad superblock."""
    base = run_endurance(policy="baseline", **FAST)
    recycled = run_endurance(policy="recycled", **FAST)
    assert recycled.first_bad_bytes == pytest.approx(base.first_bad_bytes)


def test_recycled_extends_low_badcount_endurance():
    """Paper Fig 14(a): RECYCLED writes more data before N bad blocks."""
    base = run_endurance(policy="baseline", **FAST)
    recycled = run_endurance(policy="recycled", **FAST)
    n_bad = 13  # ~10% of 128
    assert recycled.bytes_until_bad(n_bad) > base.bytes_until_bad(n_bad)
    assert recycled.remap_events > 0


def test_reserv_delays_first_bad():
    """Paper Fig 14(a): RESERV significantly delays the first bad block."""
    base = run_endurance(policy="baseline", **FAST)
    reserv = run_endurance(policy="reserv", **FAST)
    assert reserv.first_bad_bytes > 1.15 * base.first_bad_bytes


def test_benefit_grows_with_variation():
    """Paper Fig 14(b): more block-wear variation -> more RECYCLED gain."""
    def gain(sigma):
        base = run_endurance(policy="baseline", pe_sigma=sigma, **FAST)
        rec = run_endurance(policy="recycled", pe_sigma=sigma, **FAST)
        n_bad = 13
        return rec.bytes_until_bad(n_bad) / base.bytes_until_bad(n_bad)

    assert gain(1200.0) > gain(300.0)


def test_srt_capacity_limits_endurance():
    """Paper Fig 16(a): more SRT entries -> more endurance, saturating."""
    small = run_endurance(policy="recycled", srt_capacity=4, **FAST)
    large = run_endurance(policy="recycled", srt_capacity=None, **FAST)
    n_bad = 64
    assert large.bytes_until_bad(n_bad) >= small.bytes_until_bad(n_bad)
    assert small.srt_rejections > 0


def test_srt_occupancy_saturates():
    """Paper Fig 16(b): active entries plateau once static superblocks
    are exhausted."""
    result = run_endurance(policy="recycled", srt_capacity=None, **FAST)
    log = result.srt_occupancy[0]
    assert log, "expected SRT activity"
    active_counts = [active for _event, active in log]
    assert max(active_counts) == result.max_active_srt_entries or True
    assert max(active_counts) < 128 * 4  # bounded well below block count


def test_zero_sigma_kills_everything_at_once():
    result = run_endurance(policy="baseline", pe_sigma=0.0, **FAST)
    # All superblocks die at the same wear: a single curve step.
    firsts = {b for b, _bad in result.curve}
    assert len(firsts) == 1


def test_reserved_blocks_reduce_visible_capacity():
    config = EnduranceConfig(policy="reserv", n_superblocks=100,
                             reserve_fraction=0.10)
    sim = EnduranceSimulator(config)
    assert sim.visible == 90
    assert sim.reserved == 10
    assert all(len(rbt) == 10 for rbt in sim.rbt)


def test_endurance_config_validation():
    with pytest.raises(ConfigError):
        EnduranceConfig(policy="recycle-bin")
    with pytest.raises(ConfigError):
        EnduranceConfig(n_superblocks=1)
    with pytest.raises(ConfigError):
        EnduranceConfig(reserve_fraction=0.6)


@settings(deadline=None, max_examples=10)
@given(st.integers(16, 64), st.integers(2, 6),
       st.sampled_from(["baseline", "recycled", "reserv"]))
def test_endurance_always_terminates(n_superblocks, channels, policy):
    result = run_endurance(policy=policy, n_superblocks=n_superblocks,
                           channels=channels, seed=11)
    assert result.total_bytes > 0
    assert result.curve


# ---------------------------------------------------------------- WAS


def test_was_at_least_matches_recycled_endurance():
    """Paper Fig 14(b): software WAS >= hardware recycling (it regroups
    freely with full endurance knowledge)."""
    recycled = run_endurance(policy="recycled", srt_capacity=64, **FAST)
    was = simulate_was(n_superblocks=128, channels=4, seed=7)
    n_bad = 64
    assert was.bytes_until_bad(n_bad) >= recycled.bytes_until_bad(n_bad)


def test_was_curve_monotone():
    was = simulate_was(n_superblocks=64, channels=4, seed=3)
    bads = [bad for _b, bad in was.curve]
    assert bads == sorted(bads)
    assert was.first_bad_bytes > 0


def test_was_config_validation():
    with pytest.raises(ConfigError):
        simulate_was(n_superblocks=1)


# ---------------------------------------------------------------- SrtRemapper


GEOM = FlashGeometry(channels=4, ways=2, dies=1, planes=2,
                     blocks_per_plane=8, pages_per_block=4)


def test_remapper_is_bijective_within_channel():
    remapper = SrtRemapper(GEOM, n_entries=8, seed=5)
    seen = {}
    for channel in range(GEOM.channels):
        for way in range(GEOM.ways):
            for die in range(GEOM.dies):
                for plane in range(GEOM.planes):
                    for block in range(GEOM.blocks_per_plane):
                        addr = PhysAddr(channel, way, die, plane, block, 0)
                        out = remapper(addr)
                        assert out.channel == channel  # within-channel
                        key = (channel, out.way, out.die, out.plane,
                               out.block)
                        assert key not in seen, "remap collision"
                        seen[key] = addr


def test_remapper_swaps_are_symmetric():
    remapper = SrtRemapper(GEOM, n_entries=4, seed=9)
    for (channel, pos), target in list(remapper._map.items()):
        assert remapper._map[(channel, target)] == pos


def test_remapper_zero_entries_is_identity():
    remapper = SrtRemapper(GEOM, n_entries=0)
    addr = PhysAddr(1, 0, 0, 1, 3, 2)
    assert remapper(addr) == addr
    assert remapper.active_entries == 0


def test_remapper_preserves_page():
    remapper = SrtRemapper(GEOM, n_entries=16, seed=2)
    addr = PhysAddr(0, 1, 0, 1, 5, 3)
    assert remapper(addr).page == 3


def test_remapper_counts_hits():
    remapper = SrtRemapper(GEOM, n_entries=16, seed=2)
    for block in range(GEOM.blocks_per_plane):
        remapper(PhysAddr(0, 0, 0, 0, block, 0))
    assert remapper.lookups == GEOM.blocks_per_plane
    assert 0 < remapper.hits <= remapper.lookups


def test_remapper_rejects_negative_entries():
    with pytest.raises(ConfigError):
        SrtRemapper(GEOM, n_entries=-1)
