"""Integration tests for the multi-tenant run path (run_tenants).

Covers the driver models (closed vs open loop), QoS enforcement
(token-bucket rate limits, drop vs backpressure admission), the
isolation property fig17 reports, warmup-window stat resets, and
determinism of the whole path.
"""

import pytest

from repro.core import build_ssd, sim_geometry
from repro.errors import ConfigError
from repro.host import QosPolicy, TenantSpec
from repro.workloads import SyntheticWorkload, TraceRecord, TraceWorkload


def small_ssd(**overrides):
    overrides.setdefault(
        "geometry", sim_geometry(channels=4, ways=2, planes=4,
                                 blocks_per_plane=16),
    )
    overrides.setdefault("prefill_fraction", 0.5)
    return build_ssd("baseline", **overrides)


def writer(io_size=32768):
    return SyntheticWorkload(pattern="rand_write", io_size=io_size)


# ---------------------------------------------------------------- drivers


def test_open_and_closed_loop_agree_at_saturation():
    """Far above capacity, arrival model stops mattering: an open-loop
    stream and a closed-loop stream extract the same throughput."""
    closed = small_ssd().run_tenants(
        [TenantSpec(name="t", workload=writer(), driver="closed",
                    queue_depth=32)],
        duration_us=10_000.0,
    )
    open_loop = small_ssd().run_tenants(
        [TenantSpec(name="t", workload=writer(), driver="poisson",
                    rate_iops=1_000_000.0,   # ~4x device capability
                    qos=QosPolicy(sq_depth=64))],
        duration_us=10_000.0,
    )
    closed_bw = closed.tenant("t").bandwidth
    open_bw = open_loop.tenant("t").bandwidth
    assert closed_bw > 0
    assert open_bw == pytest.approx(closed_bw, rel=0.15)


def test_open_loop_latency_includes_queueing():
    """Below saturation the open-loop stream is fine; far above it the
    arrival-to-completion latency blows up -- the tail a closed-loop
    driver cannot observe."""
    calm = small_ssd().run_tenants(
        [TenantSpec(name="t", workload=writer(4096), driver="poisson",
                    rate_iops=10_000.0)],
        duration_us=10_000.0,
    ).tenant("t")
    slammed = small_ssd().run_tenants(
        [TenantSpec(name="t", workload=writer(4096), driver="poisson",
                    rate_iops=2_000_000.0)],
        duration_us=10_000.0,
    ).tenant("t")
    assert calm.latency.p99 < slammed.latency.p99 / 10


def test_trace_replay_paces_on_timestamps():
    records = [
        TraceRecord(op="write", lpn=0, n_pages=1, timestamp=0.0),
        TraceRecord(op="write", lpn=8, n_pages=1, timestamp=4_000.0),
        TraceRecord(op="write", lpn=16, n_pages=1, timestamp=9_999_000.0),
    ]
    result = small_ssd().run_tenants(
        [TenantSpec(name="t", workload=TraceWorkload(records),
                    driver="trace")],
        duration_us=8_000.0,
    )
    tenant = result.tenant("t")
    # The third record's timestamp is beyond the horizon: never arrives.
    assert tenant.arrivals == 2
    assert tenant.completed == 2
    # Replay idles between records, so per-request latency stays small
    # even though the records span most of the window.
    assert tenant.latency.max < 1_000.0


def test_trace_driver_requires_timestamps():
    with pytest.raises(ConfigError, match="peek_timestamp"):
        small_ssd().run_tenants(
            [TenantSpec(name="t", workload=writer(), driver="trace")],
            duration_us=1_000.0,
        )


# ---------------------------------------------------------------- QoS


def test_token_bucket_rate_limit_enforced():
    """Offered 100k IOPS through a 20k IOPS bucket -> ~20k dispatched."""
    result = small_ssd().run_tenants(
        [TenantSpec(name="t", workload=writer(4096), driver="poisson",
                    rate_iops=100_000.0,
                    qos=QosPolicy(rate_iops=20_000.0, burst_ops=4.0))],
        duration_us=20_000.0,
    )
    tenant = result.tenant("t")
    limit = 20_000.0 * 20_000.0 / 1e6   # rate * window
    assert tenant.completed <= limit + 8
    assert tenant.completed >= 0.8 * limit


def test_drop_admission_counts_rejections():
    result = small_ssd().run_tenants(
        [TenantSpec(name="t", workload=writer(4096), driver="poisson",
                    rate_iops=500_000.0,
                    qos=QosPolicy(rate_iops=5_000.0, sq_depth=4,
                                  drop_on_full=True))],
        duration_us=5_000.0,
    )
    tenant = result.tenant("t")
    assert tenant.dropped > 0
    assert tenant.arrivals == tenant.admitted + tenant.dropped
    assert 0.0 < tenant.drop_fraction < 1.0


def test_priority_qos_isolates_victim_p99():
    """The fig17 acceptance property in miniature, RR and WRR.

    Uses the full fig17 geometry: on a tiny device the aggressor
    saturates the DRAM write buffer, whose FIFO backpressure defeats
    any arbitration policy -- isolation needs flush headroom.
    """

    def fig17_ssd(arbiter):
        return build_ssd("baseline", geometry=sim_geometry(),
                         arbiter=arbiter, prefill_fraction=0.5)

    def tenants(with_aggressor):
        specs = [TenantSpec(
            name="victim", workload=writer(16384), driver="poisson",
            rate_iops=15_000.0,
            qos=QosPolicy(rate_iops=20_000.0, weight=4, priority=0),
            seed=7,
        )]
        if with_aggressor:
            specs.append(TenantSpec(
                name="aggressor", workload=writer(32768), driver="closed",
                queue_depth=24, qos=QosPolicy(weight=1, priority=4),
                seed=11,
            ))
        return specs

    # Solo is arbiter-independent (single queue): run it once.
    solo = fig17_ssd("rr").run_tenants(
        tenants(False), duration_us=12_000.0, warmup_us=4_000.0)
    solo_p99 = solo.tenant("victim").latency.p99
    for arbiter in ("rr", "wrr"):
        shared = fig17_ssd(arbiter).run_tenants(
            tenants(True), duration_us=12_000.0, warmup_us=4_000.0)
        shared_p99 = shared.tenant("victim").latency.p99
        assert shared_p99 <= 2.0 * solo_p99, arbiter
        # The aggressor is not starved: it moves the bulk of the bytes.
        assert (shared.tenant("aggressor").bandwidth
                > 3 * shared.tenant("victim").bandwidth), arbiter


# ---------------------------------------------------------------- plumbing


def test_warmup_resets_tenant_stats():
    full = small_ssd().run_tenants(
        [TenantSpec(name="t", workload=writer(4096), driver="poisson",
                    rate_iops=50_000.0)],
        duration_us=10_000.0,
    ).tenant("t")
    windowed = small_ssd().run_tenants(
        [TenantSpec(name="t", workload=writer(4096), driver="poisson",
                    rate_iops=50_000.0)],
        duration_us=10_000.0, warmup_us=5_000.0,
    ).tenant("t")
    assert 0 < windowed.completed < full.completed
    assert windowed.duration_us == pytest.approx(5_000.0)


def test_run_tenants_is_deterministic():
    def once():
        result = small_ssd().run_tenants(
            [TenantSpec(name="a", workload=writer(16384), driver="poisson",
                        rate_iops=30_000.0, seed=3),
             TenantSpec(name="b", workload=writer(32768), driver="closed",
                        queue_depth=8, seed=5)],
            duration_us=8_000.0,
        )
        return [t.latency.samples() for t in result.tenants]

    assert once() == once()


def test_run_tenants_guards():
    ssd = small_ssd()
    spec = TenantSpec(name="t", workload=writer())
    with pytest.raises(ConfigError):
        ssd.run_tenants([spec], duration_us=0.0)
    with pytest.raises(ConfigError):
        ssd.run_tenants([spec], duration_us=100.0, warmup_us=100.0)
    with pytest.raises(ConfigError):
        ssd.run_tenants([], duration_us=100.0)
    with pytest.raises(ConfigError):
        ssd.run_tenants(
            [spec, TenantSpec(name="t", workload=writer())],
            duration_us=100.0,
        )
    ssd.run_tenants([spec], duration_us=200.0)
    with pytest.raises(ConfigError):
        ssd.run_tenants([spec], duration_us=200.0)   # single use


def test_arbiter_config_knobs_validated():
    with pytest.raises(ConfigError):
        build_ssd("baseline", arbiter="lottery")
    with pytest.raises(ConfigError):
        build_ssd("baseline", arb_burst=0)


def test_device_counters_match_tenant_totals():
    result = small_ssd().run_tenants(
        [TenantSpec(name="a", workload=writer(4096), driver="poisson",
                    rate_iops=20_000.0),
         TenantSpec(name="b", workload=writer(4096), driver="closed",
                    queue_depth=4)],
        duration_us=5_000.0,
    )
    total = sum(t.completed for t in result.tenants)
    assert result.device.requests_completed == total
