"""Unit tests for SRT, RBT, and the dynamic superblock manager."""

import pytest

from repro.errors import ConfigError, MappingError
from repro.superblock import (
    DynamicSuperblockManager,
    RecycleBlockTable,
    SuperblockRemapTable,
)


# ---------------------------------------------------------------- RBT


def test_rbt_fifo_order():
    rbt = RecycleBlockTable(0)
    rbt.add("a")
    rbt.add("b")
    assert len(rbt) == 2
    assert rbt.take() == "a"
    assert rbt.take() == "b"
    assert rbt.take() is None
    assert rbt.total_added == 2
    assert rbt.total_taken == 2


def test_rbt_peek_does_not_remove():
    rbt = RecycleBlockTable(1)
    rbt.add("x")
    assert rbt.peek_all() == ["x"]
    assert len(rbt) == 1


# ---------------------------------------------------------------- SRT


def test_srt_lookup_identity_when_unmapped():
    srt = SuperblockRemapTable(0, capacity=4)
    assert srt.lookup("key") == "key"
    assert srt.active_entries == 0


def test_srt_insert_and_lookup():
    srt = SuperblockRemapTable(0, capacity=4)
    assert srt.insert("dead", "recycled")
    assert srt.lookup("dead") == "recycled"
    assert srt.active_entries == 1
    assert srt.inserts == 1


def test_srt_capacity_enforced():
    srt = SuperblockRemapTable(0, capacity=1)
    assert srt.insert("a", "x")
    assert not srt.insert("b", "y")
    assert srt.rejected == 1
    assert srt.lookup("b") == "b"


def test_srt_infinite_capacity():
    srt = SuperblockRemapTable(0, capacity=None)
    for index in range(5000):
        assert srt.insert(index, -index)
    assert srt.active_entries == 5000
    assert not srt.is_full


def test_srt_duplicate_key_rejected():
    srt = SuperblockRemapTable(0, capacity=4)
    srt.insert("a", "x")
    with pytest.raises(MappingError):
        srt.insert("a", "y")


def test_srt_remove_frees_entry():
    srt = SuperblockRemapTable(0, capacity=1)
    srt.insert("a", "x")
    srt.remove("a")
    assert srt.active_entries == 0
    assert srt.insert("b", "y")


def test_srt_occupancy_log_grows():
    srt = SuperblockRemapTable(0, capacity=None)
    srt.insert(1, 2)
    srt.insert(3, 4)
    assert srt.occupancy_log == [(1, 1), (2, 2)]


def test_srt_invalid_capacity():
    with pytest.raises(ConfigError):
        SuperblockRemapTable(0, capacity=0)


# ------------------------------------------------------- DynamicSuperblockManager


def test_first_failure_kills_superblock_and_recycles_survivors():
    """Paper Fig 6(a): the first bad superblock is sacrificed."""
    mgr = DynamicSuperblockManager(n_superblocks=4, channels=3)
    outcome = mgr.on_uncorrectable(superblock=0, channel=1)
    assert outcome == "superblock_dead"
    assert mgr.bad_superblocks == 1
    assert mgr.ftl_notifications == [0]
    # Channels 0 and 2 recycled their good sub-blocks; channel 1 did not.
    assert len(mgr.rbt[0]) == 1
    assert len(mgr.rbt[1]) == 0
    assert len(mgr.rbt[2]) == 1


def test_second_failure_remaps_without_ftl(paper_example=True):
    """Paper Fig 6(b,c): a later failure uses a recycled block, the FTL
    is not notified, and a copyback moves the valid pages."""
    mgr = DynamicSuperblockManager(n_superblocks=4, channels=3)
    mgr.on_uncorrectable(superblock=0, channel=1)
    outcome = mgr.on_uncorrectable(superblock=3, channel=2)
    assert outcome == "remapped"
    assert mgr.bad_superblocks == 1           # superblock 3 survives
    assert mgr.ftl_notifications == [0]       # no new notification
    assert mgr.resolve(3, 2) == (0, 2)        # remapped onto sb 0's block
    assert mgr.copyback_requests == [((3, 2), (0, 2))]
    assert mgr.srt[2].active_entries == 1


def test_failure_in_channel_without_recycled_block_dies():
    mgr = DynamicSuperblockManager(n_superblocks=4, channels=2)
    mgr.on_uncorrectable(0, 0)   # channel 1 gains a recycled block
    # Failure in channel 0 has no recycled block (channel 0's block died).
    outcome = mgr.on_uncorrectable(1, 0)
    assert outcome == "superblock_dead"
    assert mgr.bad_superblocks == 2


def test_reserved_superblocks_absorb_first_failure():
    """RESERV: the first failure is remapped, not sacrificed."""
    mgr = DynamicSuperblockManager(n_superblocks=5, channels=2,
                                   reserved_superblocks=1)
    assert mgr.visible == 4
    outcome = mgr.on_uncorrectable(0, 0)
    assert outcome == "remapped"
    assert mgr.bad_superblocks == 0
    assert mgr.resolve(0, 0) == (4, 0)


def test_srt_full_forces_retirement():
    mgr = DynamicSuperblockManager(n_superblocks=6, channels=2,
                                   srt_capacity=1,
                                   reserved_superblocks=2)
    assert mgr.on_uncorrectable(0, 0) == "remapped"
    # SRT (capacity 1) is now full for channel 0.
    outcome = mgr.on_uncorrectable(1, 0)
    assert outcome == "superblock_dead"
    assert mgr.bad_superblocks == 1


def test_double_failure_same_superblock_rejected_after_death():
    mgr = DynamicSuperblockManager(n_superblocks=2, channels=2)
    mgr.on_uncorrectable(0, 0)
    with pytest.raises(MappingError):
        mgr.on_uncorrectable(0, 0)


def test_manager_invalid_configs():
    with pytest.raises(ConfigError):
        DynamicSuperblockManager(0, 2)
    with pytest.raises(ConfigError):
        DynamicSuperblockManager(2, 2, reserved_superblocks=2)
