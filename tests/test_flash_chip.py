"""Unit tests for the flash die/plane model and programming discipline."""

import pytest

from repro.errors import AddressError, FlashError
from repro.flash import (
    FlashBackend,
    FlashGeometry,
    FlashTiming,
    PhysAddr,
    TLC_TIMING,
    ULL_TIMING,
)
from repro.sim import Simulator

GEOM = FlashGeometry(channels=2, ways=2, dies=1, planes=2,
                     blocks_per_plane=4, pages_per_block=8)


def make_backend(sim, **kwargs):
    return FlashBackend(sim, GEOM, ULL_TIMING, **kwargs)


def run_op(backend, generator):
    """Drive one backend operation to completion; return its breakdown."""
    proc = backend.sim.process(generator)
    backend.sim.run()
    return proc.value


def test_program_then_read_timing():
    sim = Simulator()
    backend = make_backend(sim)
    addr = PhysAddr(0, 0, 0, 0, 0, 0)
    breakdown = run_op(backend, backend.program(addr))
    assert breakdown.array_time == pytest.approx(50.0)
    assert sim.now == pytest.approx(50.0)
    breakdown = run_op(backend, backend.read(addr))
    assert breakdown.array_time == pytest.approx(5.0)
    assert sim.now == pytest.approx(55.0)


def test_read_unwritten_page_rejected():
    sim = Simulator()
    backend = make_backend(sim)
    with pytest.raises(FlashError):
        run_op(backend, backend.read(PhysAddr(0, 0, 0, 0, 0, 0)))


def test_out_of_order_program_allowed_but_tracked():
    """Out-of-order arrival is tolerated (the FTL allocates in order);
    each distinct page is programmable exactly once."""
    sim = Simulator()
    backend = make_backend(sim)
    run_op(backend, backend.program(PhysAddr(0, 0, 0, 0, 0, 2)))
    run_op(backend, backend.program(PhysAddr(0, 0, 0, 0, 0, 0)))
    state = backend.block_state(PhysAddr(0, 0, 0, 0, 0, 0))
    assert state.write_ptr == 2
    assert state.programmed == {0, 2}


def test_reprogram_without_erase_rejected():
    sim = Simulator()
    backend = make_backend(sim)
    addr = PhysAddr(0, 0, 0, 0, 0, 0)
    run_op(backend, backend.program(addr))
    with pytest.raises(FlashError):
        run_op(backend, backend.program(addr))


def test_sequential_program_allowed():
    sim = Simulator()
    backend = make_backend(sim)
    for page in range(GEOM.pages_per_block):
        run_op(backend, backend.program(PhysAddr(0, 0, 0, 0, 1, page)))
    state = backend.block_state(PhysAddr(0, 0, 0, 0, 1, 0))
    assert state.write_ptr == GEOM.pages_per_block


def test_erase_resets_write_pointer_and_counts():
    sim = Simulator()
    backend = make_backend(sim)
    addr = PhysAddr(0, 0, 0, 0, 0, 0)
    run_op(backend, backend.program(addr))
    run_op(backend, backend.erase(addr))
    assert backend.erase_count(addr) == 1
    state = backend.block_state(addr)
    assert state.write_ptr == 0
    # Reprogramming page 0 is legal again after erase.
    run_op(backend, backend.program(addr))


def test_discipline_can_be_disabled():
    sim = Simulator()
    backend = make_backend(sim, enforce_discipline=False)
    run_op(backend, backend.read(PhysAddr(0, 0, 0, 0, 0, 7)))


def test_plane_contention_serializes():
    sim = Simulator()
    backend = make_backend(sim)
    addr0 = PhysAddr(0, 0, 0, 0, 0, 0)
    addr1 = PhysAddr(0, 0, 0, 0, 0, 1)
    done = []

    def writer(sim, addr):
        breakdown = yield from backend.program(addr)
        done.append((sim.now, breakdown.chip_wait))

    sim.process(writer(sim, addr0))
    sim.process(writer(sim, addr1))
    sim.run()
    assert done[0] == (pytest.approx(50.0), pytest.approx(0.0))
    assert done[1] == (pytest.approx(100.0), pytest.approx(50.0))


def test_different_planes_run_in_parallel():
    sim = Simulator()
    backend = make_backend(sim)
    done = []

    def writer(sim, addr):
        yield from backend.program(addr)
        done.append(sim.now)

    sim.process(writer(sim, PhysAddr(0, 0, 0, 0, 0, 0)))
    sim.process(writer(sim, PhysAddr(0, 0, 0, 1, 0, 0)))
    sim.run()
    assert done == [pytest.approx(50.0), pytest.approx(50.0)]


def test_multiplane_program_occupies_all_planes_once():
    sim = Simulator()
    backend = make_backend(sim)
    addrs = [PhysAddr(0, 0, 0, 0, 0, 0), PhysAddr(0, 0, 0, 1, 0, 0)]
    breakdown = run_op(backend, backend.multiplane(addrs, "program"))
    assert breakdown.array_time == pytest.approx(50.0)
    assert sim.now == pytest.approx(50.0)
    for addr in addrs:
        assert backend.block_state(addr).write_ptr == 1


def test_multiplane_rejects_cross_die():
    sim = Simulator()
    backend = make_backend(sim)
    addrs = [PhysAddr(0, 0, 0, 0, 0, 0), PhysAddr(1, 0, 0, 1, 0, 0)]
    with pytest.raises(AddressError):
        run_op(backend, backend.multiplane(addrs, "program"))


def test_multiplane_rejects_duplicate_plane():
    sim = Simulator()
    backend = make_backend(sim)
    addrs = [PhysAddr(0, 0, 0, 0, 0, 0), PhysAddr(0, 0, 0, 0, 1, 0)]
    with pytest.raises(AddressError):
        run_op(backend, backend.multiplane(addrs, "program"))


def test_multiplane_rejects_empty_and_bad_op():
    sim = Simulator()
    backend = make_backend(sim)
    with pytest.raises(AddressError):
        run_op(backend, backend.multiplane([], "program"))
    with pytest.raises(FlashError):
        run_op(backend, backend.multiplane(
            [PhysAddr(0, 0, 0, 0, 0, 0)], "refresh"))


def test_multiplane_erase_resets_blocks():
    sim = Simulator()
    backend = make_backend(sim)
    addrs = [PhysAddr(0, 0, 0, 0, 2, 0), PhysAddr(0, 0, 0, 1, 2, 0)]
    run_op(backend, backend.multiplane(addrs, "program"))
    run_op(backend, backend.multiplane(addrs, "erase"))
    for addr in addrs:
        assert backend.erase_count(addr) == 1
        assert backend.block_state(addr).write_ptr == 0


def test_tlc_timing_sampling_within_range():
    sim = Simulator()
    backend = FlashBackend(sim, GEOM, TLC_TIMING, deterministic_timing=False,
                           seed=7)
    addr = PhysAddr(0, 0, 0, 0, 0, 0)
    breakdown = run_op(backend, backend.program(addr))
    low, high = TLC_TIMING.program_us
    assert low <= breakdown.array_time <= high


def test_plane_utilization_accounting():
    sim = Simulator()
    backend = make_backend(sim)
    addr = PhysAddr(0, 0, 0, 0, 0, 0)
    run_op(backend, backend.program(addr))

    def idle(sim):
        yield sim.timeout(50.0)

    sim.process(idle(sim))
    sim.run()
    plane = backend.plane_of(addr)
    assert plane.utilization() == pytest.approx(0.5)
    assert backend.mean_plane_utilization() > 0.0


def test_timing_presets_match_paper():
    assert ULL_TIMING.read_mid == 5.0
    assert ULL_TIMING.program_mid == 50.0
    assert ULL_TIMING.erase_us == 1000.0
    assert ULL_TIMING.page_size == 4096
    assert TLC_TIMING.read_us == (60.0, 95.0)
    assert TLC_TIMING.program_us == (200.0, 500.0)
    assert TLC_TIMING.erase_us == 2000.0
    assert TLC_TIMING.page_size == 16384


def test_invalid_timing_rejected():
    with pytest.raises(Exception):
        FlashTiming("bad", read_us=(0.0, 5.0), program_us=(1.0, 2.0),
                    erase_us=10.0, page_size=4096)
    with pytest.raises(Exception):
        FlashTiming("bad", read_us=(5.0, 5.0), program_us=(1.0, 2.0),
                    erase_us=-1.0, page_size=4096)


def test_batch_helpers_numpy_and_pure_agree(monkeypatch):
    from repro.flash import timing

    waits = [3.0, 0.25, 7.5, 1.125, 0.0, 9.875, 2.5, 4.75, 6.0625]
    vec = timing.batch_totals(waits, 50.0)
    vec_max = timing.batch_max(waits)
    monkeypatch.setattr(timing, "HAVE_NUMPY", False)
    pure = timing.batch_totals(waits, 50.0)
    pure_max = timing.batch_max(waits)
    # Bit-identical, not approximately equal: both paths are IEEE-754
    # float64 add/max, which are exact operations.
    assert vec == pure
    assert vec_max == pure_max
    assert vec[1] == max(vec[0]) == 59.875


def test_no_numpy_env_forces_pure_fallback(monkeypatch):
    import importlib
    import sys

    from repro.flash import timing

    monkeypatch.setenv("REPRO_DSSD_NO_NUMPY", "1")
    try:
        reloaded = importlib.reload(timing)
        assert reloaded.HAVE_NUMPY is False
    finally:
        monkeypatch.delenv("REPRO_DSSD_NO_NUMPY")
        importlib.reload(sys.modules["repro.flash.timing"])
