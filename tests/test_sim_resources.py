"""Unit tests for Resource, Link, and Store."""

import pytest

from repro.sim import Link, Resource, Simulator, Store


# ---------------------------------------------------------------- Resource


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    grants = [res.request(), res.request(), res.request()]
    sim.run()
    assert grants[0].triggered and grants[1].triggered
    assert not grants[2].triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_wakes_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    sim.run()
    assert first.triggered and not second.triggered
    res.release()
    sim.run()
    assert second.triggered


def test_resource_priority_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim):
        yield res.request()
        yield sim.timeout(10.0)
        res.release()

    def waiter(sim, tag, priority):
        yield sim.timeout(1.0)  # enqueue after holder owns the slot
        yield res.request(priority)
        order.append(tag)
        res.release()

    sim.process(holder(sim))
    sim.process(waiter(sim, "low", priority=5))
    sim.process(waiter(sim, "high", priority=0))
    sim.run()
    assert order == ["high", "low"]


def test_resource_release_when_idle_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


# ---------------------------------------------------------------- Link


def test_link_service_time():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0)  # 1 GB/s
    done_times = []

    def mover(sim):
        yield link.transfer(4096)
        done_times.append(sim.now)

    sim.process(mover(sim))
    sim.run()
    assert done_times == [pytest.approx(4.096)]


def test_link_serializes_transfers():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0)
    finish = []

    def mover(sim, tag):
        wait = yield link.transfer(1000)
        finish.append((tag, sim.now, wait))

    for tag in range(3):
        sim.process(mover(sim, tag))
    sim.run()
    times = [t for _tag, t, _w in finish]
    assert times == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]
    waits = [w for _tag, _t, w in finish]
    assert waits == [pytest.approx(0.0), pytest.approx(1.0), pytest.approx(2.0)]


def test_link_priority_preempts_queue_order():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0)
    order = []

    def mover(sim, tag, priority, start):
        yield sim.timeout(start)
        yield link.transfer(1000, priority=priority)
        order.append(tag)

    sim.process(mover(sim, "first", 0, 0.0))     # occupies the link
    sim.process(mover(sim, "low", 5, 0.1))       # queues behind
    sim.process(mover(sim, "high", 0, 0.2))      # should jump the queue
    sim.run()
    assert order == ["first", "high", "low"]


def test_link_per_class_accounting():
    sim = Simulator()
    link = Link(sim, bandwidth=100.0)

    def mover(sim):
        yield link.transfer(500, traffic_class="io")
        yield link.transfer(300, traffic_class="gc")

    sim.process(mover(sim))
    sim.run()
    assert link.bytes_moved["io"] == 500
    assert link.bytes_moved["gc"] == 300
    assert link.busy_time["io"] == pytest.approx(5.0)
    assert link.busy_time["gc"] == pytest.approx(3.0)
    assert link.utilization() == pytest.approx(1.0)
    assert link.class_utilization("gc") == pytest.approx(3.0 / 8.0)


def test_link_bandwidth_timeline():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0, bin_width=10.0)

    def mover(sim):
        yield link.transfer(2000, traffic_class="io")   # finishes at 2us
        yield sim.timeout(10.0)
        yield link.transfer(3000, traffic_class="io")   # starts at 12us

    sim.process(mover(sim))
    sim.run()
    times, rates = link.bandwidth_timeline("io")
    assert times == [0.0, 10.0]
    assert rates[0] == pytest.approx(200.0)
    assert rates[1] == pytest.approx(300.0)


def test_link_mean_wait():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0)

    def mover(sim):
        yield link.transfer(1000, traffic_class="io")

    sim.process(mover(sim))
    sim.process(mover(sim))
    sim.run()
    assert link.mean_wait("io") == pytest.approx(0.5)
    assert link.mean_wait("absent") == 0.0


def test_link_rejects_bad_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, bandwidth=0.0)
    link = Link(sim, bandwidth=10.0)
    with pytest.raises(ValueError):
        link.transfer(0)


# ---------------------------------------------------------------- Store


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer(sim):
        for item in ("a", "b", "c"):
            yield sim.timeout(1.0)
            store.put(item)

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == ["a", "b", "c"]


def test_store_get_before_put_blocks():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(consumer(sim))
    sim.schedule(5.0, store.put, "late")
    sim.run()
    assert got == [(5.0, "late")]


def test_store_len_and_peek():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.peek_all() == [1, 2]


# ------------------------------------------------- outstanding-hold reports


def test_resource_outstanding_summary_names_owners():
    sim = Simulator()
    res = Resource(sim, capacity=2, name="ecc_lanes")
    assert res.outstanding_summary() is None
    first = res.request(owner="decoder-a")
    res.request(owner="decoder-b")
    res.request(owner="queued")
    sim.run()
    summary = res.outstanding_summary()
    assert "ecc_lanes" in summary
    assert "2/2" in summary
    assert "decoder-a" in summary and "decoder-b" in summary
    assert "queued" not in summary.split("owners:")[1].split(")")[0]
    assert "1 request(s) waiting" in summary
    res.cancel(first)
    sim.run()
    assert "decoder-a" not in res.outstanding_summary()


def test_token_pool_outstanding_summary_names_owners():
    from repro.sim import TokenPool

    sim = Simulator()
    pool = TokenPool(sim, capacity=4, name="sq_slots")
    assert pool.outstanding_summary() is None
    grant = pool.acquire(3, owner="tenant0")
    sim.run()
    summary = pool.outstanding_summary()
    assert "sq_slots" in summary and "3/4" in summary
    assert "tenant0" in summary
    pool.cancel(grant)
    assert pool.outstanding_summary() is None


def test_simulator_collects_outstanding_holds():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="bus")
    res.request(owner="dma")
    sim.run()
    holds = sim.outstanding_holds()
    assert len(holds) == 1
    assert "bus" in holds[0] and "dma" in holds[0]
    res.release()
    assert sim.outstanding_holds() == []


def test_release_without_grant_drops_oldest_owner_label():
    sim = Simulator()
    res = Resource(sim, capacity=2, name="r")
    res.request(owner="old")
    res.request(owner="new")
    sim.run()
    res.release()
    summary = res.outstanding_summary()
    assert "new" in summary and "old" not in summary
