"""Tests for extension features: Mesh2D, TRIM, wear leveling, ablations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ArchPreset, build_ssd, sim_geometry
from repro.errors import ConfigError
from repro.ftl import TRIM, IoRequest
from repro.ftl.wear_leveling import StaticWearLeveler
from repro.noc import FNoC, Mesh2D, Packet
from repro.sim import Simulator
from repro.workloads import SyntheticWorkload


# ---------------------------------------------------------------- Mesh2D


def test_mesh2d_requires_square():
    with pytest.raises(ConfigError):
        Mesh2D(6)
    assert Mesh2D(9).side == 3


def test_mesh2d_channel_count():
    mesh = Mesh2D(9)  # 3x3: 12 bidirectional links = 24 channels
    assert len(mesh.channels()) == 24


def test_mesh2d_xy_routing():
    mesh = Mesh2D(16)  # 4x4
    # node 0 = (0,0); node 15 = (3,3): X first then Y.
    path = mesh.path(0, 15)
    assert path == [0, 1, 2, 3, 7, 11, 15]
    assert mesh.path(5, 5) == [5]


def test_mesh2d_bisection_rule():
    mesh = Mesh2D(16)
    # 4 rows x 2 directions cross the vertical cut.
    assert mesh.channel_bandwidth_for_bisection(8000.0) == pytest.approx(
        1000.0)


@settings(deadline=None, max_examples=30)
@given(st.integers(0, 15), st.integers(0, 15))
def test_mesh2d_paths_minimal_and_valid(src, dst):
    mesh = Mesh2D(16)
    path = mesh.path(src, dst)
    assert path[0] == src and path[-1] == dst
    manhattan = (abs(src // 4 - dst // 4) + abs(src % 4 - dst % 4))
    assert len(path) - 1 == manhattan
    for cur, nxt in zip(path, path[1:]):
        assert (cur, nxt) in set(mesh.channels())


@settings(deadline=None, max_examples=15)
@given(st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(64, 4096)),
    min_size=1, max_size=20,
))
def test_mesh2d_delivers_all_packets(traffic):
    sim = Simulator()
    noc = FNoC(sim, Mesh2D(9), 500.0, buffer_flits=2, ni_latency_us=0.0)
    procs = [
        sim.process(noc.send(Packet(src=s, dst=d, payload_bytes=n)))
        for s, d, n in traffic
    ]
    sim.run()
    assert all(p.triggered for p in procs)


def test_mesh2d_usable_in_full_ssd():
    geometry = sim_geometry(channels=4, ways=2, planes=2,
                            blocks_per_plane=8)
    ssd = build_ssd(ArchPreset.DSSD_F, geometry=geometry,
                    fnoc_topology="mesh2d")
    workload = SyntheticWorkload(pattern="seq_write", io_size=4096)
    result = ssd.run(workload, duration_us=10_000)
    assert result.requests_completed > 0


# ---------------------------------------------------------------- TRIM


def test_trim_unmaps_and_invalidates():
    geometry = sim_geometry(channels=2, ways=2, planes=2,
                            blocks_per_plane=8, pages_per_block=8)
    ssd = build_ssd(ArchPreset.BASELINE, geometry=geometry, queue_depth=4)
    ssd.prefill()
    ssd.ftl.start()
    lpn = 0
    assert ssd.mapping.lookup(lpn) is not None
    proc = ssd.ftl.submit(IoRequest(op=TRIM, lpn=lpn, n_pages=4))
    ssd.sim.run()
    assert proc.triggered
    for offset in range(4):
        assert ssd.mapping.lookup(lpn + offset) is None
    assert ssd.ftl.trims_processed == 1
    ssd.mapping.check_consistency()


def test_trim_moves_no_data_bytes():
    geometry = sim_geometry(channels=2, ways=2, planes=2,
                            blocks_per_plane=8, pages_per_block=8)
    ssd = build_ssd(ArchPreset.BASELINE, geometry=geometry, queue_depth=4)
    ssd.prefill()
    ssd.ftl.start()
    ssd.ftl.submit(IoRequest(op=TRIM, lpn=0, n_pages=2))
    ssd.sim.run()
    assert ssd.ftl.completed_bytes.total() == 0.0
    assert ssd.ftl.io_latency.count == 1


def test_trimmed_read_served_as_unmapped():
    geometry = sim_geometry(channels=2, ways=2, planes=2,
                            blocks_per_plane=8, pages_per_block=8)
    ssd = build_ssd(ArchPreset.BASELINE, geometry=geometry, queue_depth=4)
    ssd.prefill()
    ssd.ftl.start()
    ssd.ftl.submit(IoRequest(op=TRIM, lpn=0, n_pages=1))
    ssd.sim.run()
    flash_reads_before = sum(c.pages_read for c in ssd.controllers)
    ssd.ftl.submit(IoRequest(op="read", lpn=0, n_pages=1))
    ssd.sim.run()
    # Trimmed LPN reads do not touch flash.
    assert sum(c.pages_read for c in ssd.controllers) == flash_reads_before


def test_request_validation_accepts_trim():
    request = IoRequest(op=TRIM, lpn=5, n_pages=2)
    assert request.op == TRIM
    with pytest.raises(ConfigError):
        IoRequest(op="discard", lpn=0, n_pages=1)


# ---------------------------------------------------------------- wear leveling


def make_wl_ssd(**overrides):
    geometry = sim_geometry(channels=2, ways=2, planes=2,
                            blocks_per_plane=10, pages_per_block=8)
    overrides.setdefault("geometry", geometry)
    overrides.setdefault("queue_depth", 8)
    overrides.setdefault("wear_leveling", True)
    overrides.setdefault("wear_level_interval_us", 2_000.0)
    overrides.setdefault("wear_level_threshold", 2)
    return build_ssd(ArchPreset.BASELINE, **overrides)


def test_wear_leveler_migrates_cold_blocks():
    ssd = make_wl_ssd()
    workload = SyntheticWorkload(pattern="rand_write", io_size=4096,
                                 working_set_fraction=0.3)  # hot subset
    ssd.run(workload, duration_us=60_000)
    leveler = ssd.wear_leveler
    assert leveler is not None
    assert leveler.rounds > 0
    assert leveler.migrations > 0
    ssd.mapping.check_consistency()


def test_wear_leveler_idle_when_balanced():
    ssd = make_wl_ssd(wear_level_threshold=10_000)
    workload = SyntheticWorkload(pattern="seq_write", io_size=4096)
    ssd.run(workload, duration_us=20_000)
    assert ssd.wear_leveler.migrations == 0


def test_wear_leveler_disabled_by_default():
    ssd = build_ssd(ArchPreset.BASELINE,
                    geometry=sim_geometry(channels=2, ways=2, planes=2,
                                          blocks_per_plane=8))
    assert ssd.wear_leveler is None


def test_wear_leveler_config_validation():
    sim = Simulator()
    with pytest.raises(ConfigError):
        StaticWearLeveler(sim, None, None, None, None, interval_us=0.0)
    with pytest.raises(ConfigError):
        StaticWearLeveler(sim, None, None, None, None, threshold=0)


# ---------------------------------------------------------------- copyback ECC


def test_legacy_copyback_counts_unchecked_copies():
    geometry = sim_geometry(channels=4, ways=2, planes=2,
                            blocks_per_plane=10)
    ssd = build_ssd(ArchPreset.DSSD_F, geometry=geometry,
                    copyback_ecc=False)
    workload = SyntheticWorkload(pattern="seq_write", io_size=4096)
    result = ssd.run(workload, duration_us=30_000)
    assert result.gc.pages_moved > 0
    assert ssd.datapath.unchecked_copies > 0


def test_checked_copyback_never_unchecked():
    geometry = sim_geometry(channels=4, ways=2, planes=2,
                            blocks_per_plane=10)
    ssd = build_ssd(ArchPreset.DSSD_F, geometry=geometry)
    workload = SyntheticWorkload(pattern="seq_write", io_size=4096)
    ssd.run(workload, duration_us=30_000)
    assert ssd.datapath.unchecked_copies == 0
