"""Unit tests for core pieces: copyback commands, transports, datapaths."""

import pytest

from repro.controller import Breakdown, Dram, EccEngine, FlashController, \
    SystemBus
from repro.core import (
    ArchPreset,
    BaselineDatapath,
    CopybackCommand,
    CopybackStatus,
    DecoupledDatapath,
    DedicatedBusTransport,
    FnocTransport,
    SharedBusTransport,
    SSDConfig,
    paper_geometry,
    sim_geometry,
    superblock_geometry,
)
from repro.errors import ConfigError
from repro.flash import FlashBackend, FlashChannel, FlashGeometry, PhysAddr, \
    ULL_TIMING
from repro.noc import FNoC, Mesh1D
from repro.sim import Simulator

GEOM = FlashGeometry(channels=2, ways=1, dies=1, planes=2,
                     blocks_per_plane=4, pages_per_block=4)


def make_world(sim, decoupled=False, transport_kind="shared"):
    backend = FlashBackend(sim, GEOM, ULL_TIMING)
    channels = [FlashChannel(sim, c, 1000.0) for c in range(GEOM.channels)]
    controllers = [FlashController(sim, c, channels[c], backend)
                   for c in range(GEOM.channels)]
    bus = SystemBus(sim, 8000.0)
    dram = Dram(sim, 8000.0)
    if not decoupled:
        ecc = EccEngine(sim, lanes=GEOM.channels)
        return BaselineDatapath(sim, bus, dram, ecc, controllers)
    ecc_engines = [EccEngine(sim, lanes=1, name=f"e{c}")
                   for c in range(GEOM.channels)]
    if transport_kind == "shared":
        transport = SharedBusTransport(sim, bus)
    elif transport_kind == "dedicated":
        transport = DedicatedBusTransport(sim, 2000.0)
    else:
        transport = FnocTransport(sim, FNoC(sim, Mesh1D(GEOM.channels),
                                            2000.0, ni_latency_us=0.0))
    return DecoupledDatapath(sim, bus, dram, ecc_engines, controllers,
                             transport)


def prefill_source(datapath, addr):
    datapath.backend.mark_block_programmed(addr)


def drive(sim, gen):
    proc = sim.process(gen)
    sim.run()
    return proc.value


# ---------------------------------------------------------------- copyback


def test_copyback_status_order_enforced():
    cmd = CopybackCommand(src=PhysAddr(0, 0, 0, 0, 0, 0),
                          dst=PhysAddr(1, 0, 0, 0, 0, 0))
    cmd.advance(CopybackStatus.READ, 1.0)
    with pytest.raises(ValueError):
        cmd.advance(CopybackStatus.QUEUED, 2.0)
    with pytest.raises(ValueError):
        cmd.advance(CopybackStatus.READ, 2.0)
    cmd.advance(CopybackStatus.READ_ECC, 2.0)
    assert cmd.history == [("R", 1.0), ("RE", 2.0)]


def test_copyback_locality():
    local = CopybackCommand(src=PhysAddr(0, 0, 0, 0, 0, 0),
                            dst=PhysAddr(0, 0, 0, 1, 2, 0))
    remote = CopybackCommand(src=PhysAddr(0, 0, 0, 0, 0, 0),
                             dst=PhysAddr(1, 0, 0, 0, 0, 0))
    assert local.is_local
    assert not remote.is_local


# ---------------------------------------------------------------- transports


def test_shared_bus_transport_accounts_system_bus():
    sim = Simulator()
    bus = SystemBus(sim, 8000.0)
    transport = SharedBusTransport(sim, bus)
    bd = Breakdown()
    drive(sim, transport.move(0, 1, 4096, bd))
    assert bd.get("system_bus") == pytest.approx(4096 / 8000.0)
    assert bus.link.bytes_moved["gc"] == 4096


def test_dedicated_bus_transport_accounts_fnoc():
    sim = Simulator()
    transport = DedicatedBusTransport(sim, 2000.0)
    bd = Breakdown()
    drive(sim, transport.move(0, 1, 4096, bd))
    assert bd.get("fnoc") == pytest.approx(4096 / 2000.0)
    assert bd.get("system_bus") == 0.0


def test_fnoc_transport_routes_packets():
    sim = Simulator()
    noc = FNoC(sim, Mesh1D(4), 1000.0, ni_latency_us=0.0)
    transport = FnocTransport(sim, noc)
    bd = Breakdown()
    drive(sim, transport.move(0, 3, 4096, bd))
    assert bd.get("fnoc") > 0.0
    assert noc.packets_sent == 1


# ---------------------------------------------------------------- datapaths


def test_baseline_gc_move_path_components():
    sim = Simulator()
    datapath = make_world(sim, decoupled=False)
    src = PhysAddr(0, 0, 0, 0, 0, 0)
    dst = PhysAddr(1, 0, 0, 0, 0, 0)
    prefill_source(datapath, src)
    bd = drive(sim, datapath.gc_move(src, dst))
    for component in ("flash_chip", "flash_bus", "system_bus", "dram",
                      "ecc"):
        assert bd.get(component) > 0.0, component
    assert bd.get("fnoc") == 0.0


def test_decoupled_gc_move_remote_uses_transport_not_dram():
    sim = Simulator()
    datapath = make_world(sim, decoupled=True, transport_kind="fnoc")
    src = PhysAddr(0, 0, 0, 0, 0, 0)
    dst = PhysAddr(1, 0, 0, 0, 0, 0)
    prefill_source(datapath, src)
    bd = drive(sim, datapath.gc_move(src, dst))
    assert bd.get("dram") == 0.0
    assert bd.get("system_bus") == 0.0
    assert bd.get("fnoc") > 0.0
    assert datapath.copybacks_completed == 1
    command = datapath.copyback_log[0]
    assert command.status == CopybackStatus.WRITTEN
    assert [s for s, _t in command.history] == ["R", "RE", "P", "T", "W"]


def test_decoupled_gc_move_local_skips_interconnect():
    sim = Simulator()
    datapath = make_world(sim, decoupled=True, transport_kind="dedicated")
    src = PhysAddr(0, 0, 0, 0, 0, 0)
    dst = PhysAddr(0, 0, 0, 1, 0, 0)
    prefill_source(datapath, src)
    bd = drive(sim, datapath.gc_move(src, dst))
    assert bd.get("fnoc") == 0.0
    assert bd.get("system_bus") == 0.0
    command = datapath.copyback_log[0]
    assert [s for s, _t in command.history] == ["R", "RE", "W"]


def test_decoupled_dbuf_credits_conserved():
    sim = Simulator()
    datapath = make_world(sim, decoupled=True, transport_kind="shared")
    src_block = PhysAddr(0, 0, 0, 0, 0, 0)
    prefill_source(datapath, src_block)
    procs = []
    for page in range(4):
        src = src_block._replace(page=page)
        dst = PhysAddr(1, 0, 0, 0, 0, page)
        procs.append(sim.process(datapath.gc_move(src, dst)))
    sim.run()
    assert all(p.triggered for p in procs)
    for pool in datapath.dbufs:
        assert pool.available == pool.capacity


def test_baseline_staging_credits_conserved():
    sim = Simulator()
    datapath = make_world(sim, decoupled=False)
    src_block = PhysAddr(0, 0, 0, 0, 0, 0)
    prefill_source(datapath, src_block)
    procs = []
    for page in range(4):
        src = src_block._replace(page=page)
        dst = PhysAddr(1, 0, 0, 0, 0, page)
        procs.append(sim.process(datapath.gc_move(src, dst)))
    sim.run()
    assert all(p.triggered for p in procs)
    for pool in datapath.gc_staging:
        assert pool.available == pool.capacity


def test_remapper_applied_to_every_access():
    sim = Simulator()
    mapped = {}

    def remapper(addr):
        mapped["called"] = mapped.get("called", 0) + 1
        return addr

    backend = FlashBackend(sim, GEOM, ULL_TIMING)
    channels = [FlashChannel(sim, c, 1000.0) for c in range(GEOM.channels)]
    controllers = [FlashController(sim, c, channels[c], backend)
                   for c in range(GEOM.channels)]
    datapath = BaselineDatapath(sim, SystemBus(sim, 8000.0),
                                Dram(sim, 8000.0),
                                EccEngine(sim, lanes=2), controllers,
                                remapper=remapper)
    addr = PhysAddr(0, 0, 0, 0, 0, 0)
    backend.mark_block_programmed(addr)
    drive(sim, datapath.io_read_flash(addr, Breakdown()))
    assert mapped["called"] == 1


def test_decoupled_requires_matching_ecc_engines():
    sim = Simulator()
    backend = FlashBackend(sim, GEOM, ULL_TIMING)
    channels = [FlashChannel(sim, c, 1000.0) for c in range(GEOM.channels)]
    controllers = [FlashController(sim, c, channels[c], backend)
                   for c in range(GEOM.channels)]
    with pytest.raises(ConfigError):
        DecoupledDatapath(sim, SystemBus(sim, 8000.0), Dram(sim, 8000.0),
                          [EccEngine(sim)], controllers,
                          SharedBusTransport(sim, SystemBus(sim, 8000.0)))


# ---------------------------------------------------------------- configs


def test_geometry_presets_match_paper():
    paper = paper_geometry()
    assert (paper.channels, paper.ways, paper.planes) == (8, 8, 8)
    assert paper.blocks_per_plane == 1384
    assert paper.pages_per_block == 384
    sb = superblock_geometry()
    assert (sb.channels, sb.ways, sb.dies, sb.planes) == (8, 4, 2, 2)
    assert sb.page_size == 16384


def test_config_validation():
    with pytest.raises(ConfigError):
        SSDConfig(onchip_bw_factor=0.5)
    with pytest.raises(ConfigError):
        SSDConfig(fnoc_topology="torus")


def test_config_describe_mentions_arch():
    config = SSDConfig(arch=ArchPreset.DSSD_F)
    assert "dssd_f" in config.describe()


def test_effective_flush_workers_defaults_to_planes():
    config = SSDConfig(geometry=sim_geometry(ways=2, planes=2))
    assert config.effective_flush_workers == config.geometry.planes_total
    assert SSDConfig(flush_workers=7).effective_flush_workers == 7
