"""Tests for workload generators: synthetic, trace, MSR-shaped."""

import pytest

from repro.errors import ConfigError
from repro.ftl import READ, WRITE
from repro.workloads import (
    MSR_PROFILES,
    READ_INTENSIVE,
    WRITE_INTENSIVE,
    SyntheticWorkload,
    TraceRecord,
    TraceWorkload,
    make_msr_workload,
    parse_csv_trace,
    synthesize_trace,
)


# ---------------------------------------------------------------- synthetic


def test_seq_write_monotonic_lpns():
    wl = SyntheticWorkload(pattern="seq_write", io_size=8192)
    wl.bind(lpn_space=1000, page_size=4096, seed=1)
    reqs = [wl.next_request() for _ in range(5)]
    assert all(r.op == WRITE for r in reqs)
    assert [r.lpn for r in reqs] == [0, 2, 4, 6, 8]
    assert all(r.n_pages == 2 for r in reqs)


def test_seq_wraps_within_space():
    wl = SyntheticWorkload(pattern="seq_read", io_size=4096)
    wl.bind(lpn_space=3, page_size=4096, seed=1)
    lpns = [wl.next_request().lpn for _ in range(7)]
    assert max(lpns) < 3
    assert lpns[:3] == [0, 1, 2]


def test_rand_write_within_space():
    wl = SyntheticWorkload(pattern="rand_write", io_size=16384)
    wl.bind(lpn_space=100, page_size=4096, seed=7)
    for _ in range(200):
        req = wl.next_request()
        assert 0 <= req.lpn <= 100 - 4
        assert req.n_pages == 4


def test_mixed_read_fraction_statistics():
    wl = SyntheticWorkload(pattern="mixed", read_fraction=0.8)
    wl.bind(lpn_space=1000, page_size=4096, seed=3)
    ops = [wl.next_request().op for _ in range(1000)]
    read_share = ops.count(READ) / len(ops)
    assert 0.7 < read_share < 0.9


def test_dram_hit_fraction():
    wl = SyntheticWorkload(pattern="rand_read", dram_hit_fraction=1.0)
    wl.bind(lpn_space=100, page_size=4096, seed=1)
    assert all(wl.next_request().dram_hit for _ in range(10))


def test_limit_exhausts():
    wl = SyntheticWorkload(pattern="seq_write", limit=3)
    wl.bind(lpn_space=100, page_size=4096, seed=1)
    assert [wl.next_request() is not None for _ in range(3)] == [True] * 3
    assert wl.next_request() is None


def test_workload_requires_bind():
    wl = SyntheticWorkload()
    with pytest.raises(ConfigError):
        wl.next_request()


def test_synthetic_validation():
    with pytest.raises(ConfigError):
        SyntheticWorkload(pattern="zigzag")
    with pytest.raises(ConfigError):
        SyntheticWorkload(io_size=0)
    with pytest.raises(ConfigError):
        SyntheticWorkload(read_fraction=1.5)
    wl = SyntheticWorkload()
    with pytest.raises(ConfigError):
        wl.bind(lpn_space=0, page_size=4096, seed=1)


def test_reproducible_with_same_seed():
    def stream(seed):
        wl = SyntheticWorkload(pattern="rand_write")
        wl.bind(lpn_space=500, page_size=4096, seed=seed)
        return [wl.next_request().lpn for _ in range(50)]

    assert stream(11) == stream(11)
    assert stream(11) != stream(12)


# ---------------------------------------------------------------- traces


def test_parse_csv_trace():
    lines = [
        "# comment",
        "",
        "0.0,R,0,4096",
        "1.5,write,8192,8192",
        "2.0,W,4095,2",
    ]
    records = parse_csv_trace(lines, page_size=4096)
    assert records[0] == TraceRecord(READ, 0, 1, 0.0)
    assert records[1] == TraceRecord(WRITE, 2, 2, 1.5)
    assert records[2].lpn == 0 and records[2].n_pages == 2  # straddles


def test_parse_csv_trace_errors():
    with pytest.raises(ConfigError):
        parse_csv_trace(["1,X,0,100"], page_size=4096)
    with pytest.raises(ConfigError):
        parse_csv_trace(["1,R,0"], page_size=4096)
    with pytest.raises(ConfigError):
        parse_csv_trace(["1,R,0,0"], page_size=4096)


def test_trace_workload_replay_and_repeat():
    records = [TraceRecord(WRITE, 0, 1), TraceRecord(READ, 5, 2)]
    wl = TraceWorkload(records, repeat=False)
    wl.bind(lpn_space=100, page_size=4096, seed=1)
    assert wl.next_request().op == WRITE
    assert wl.next_request().op == READ
    assert wl.next_request() is None

    wl = TraceWorkload(records, repeat=True)
    wl.bind(lpn_space=100, page_size=4096, seed=1)
    ops = [wl.next_request().op for _ in range(6)]
    assert ops == [WRITE, READ] * 3


def test_trace_lpns_wrapped_into_space():
    records = [TraceRecord(WRITE, 10_000, 4)]
    wl = TraceWorkload(records)
    wl.bind(lpn_space=64, page_size=4096, seed=1)
    req = wl.next_request()
    assert 0 <= req.lpn <= 64 - 4


def test_trace_read_fraction():
    records = [TraceRecord(READ, 0, 1)] * 3 + [TraceRecord(WRITE, 0, 1)]
    wl = TraceWorkload(records)
    assert wl.read_fraction == pytest.approx(0.75)


def test_empty_trace_rejected():
    with pytest.raises(ConfigError):
        TraceWorkload([])


# ---------------------------------------------------------------- MSR


def test_msr_profiles_cover_paper_traces():
    for name in ("prn_0", "usr_2", "hm_1", "src1_2"):
        assert name in MSR_PROFILES


def test_msr_read_write_split_is_partition():
    assert set(READ_INTENSIVE) | set(WRITE_INTENSIVE) == set(MSR_PROFILES)
    assert not set(READ_INTENSIVE) & set(WRITE_INTENSIVE)
    assert "hm_1" in READ_INTENSIVE
    assert "prn_0" in WRITE_INTENSIVE


def test_synthesized_trace_matches_profile_statistics():
    profile = MSR_PROFILES["usr_2"]
    records = synthesize_trace(profile, 4000, seed=5)
    reads = sum(1 for r in records if r.op == READ)
    assert abs(reads / len(records) - profile.read_fraction) < 0.05
    sizes = {r.n_pages for r in records}
    assert sizes <= {s for s, _w in profile.size_mix}


def test_synthesized_trace_reproducible():
    profile = MSR_PROFILES["prn_0"]
    a = synthesize_trace(profile, 100, seed=9)
    b = synthesize_trace(profile, 100, seed=9)
    assert a == b


def test_make_msr_workload():
    wl = make_msr_workload("hm_1", n_requests=200, seed=2)
    wl.bind(lpn_space=10_000, page_size=4096, seed=2)
    req = wl.next_request()
    assert req is not None
    with pytest.raises(ConfigError):
        make_msr_workload("not_a_trace")
