"""System-level property tests: invariants under randomized workloads.

These drive the full SSD with hypothesis-generated request mixes and
assert the global invariants that garbage collection, write buffering,
TRIM, and the mapping table must jointly preserve.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ArchPreset, build_ssd, sim_geometry
from repro.ftl import READ, TRIM, WRITE, IoRequest

GEOM = sim_geometry(channels=2, ways=2, planes=2, blocks_per_plane=8,
                    pages_per_block=8)

request_strategy = st.lists(
    st.tuples(
        st.sampled_from([READ, WRITE, TRIM]),
        st.integers(0, 200),      # lpn
        st.integers(1, 4),        # n_pages
    ),
    min_size=1, max_size=40,
)


def drive_requests(arch, ops):
    ssd = build_ssd(arch, geometry=GEOM, queue_depth=8)
    ssd.prefill()
    ssd.ftl.start()
    procs = [ssd.ftl.submit(IoRequest(op=op, lpn=lpn, n_pages=n))
             for op, lpn, n in ops]
    ssd.sim.run(until=5_000_000.0)
    return ssd, procs


@settings(deadline=None, max_examples=12,
          suppress_health_check=[HealthCheck.too_slow])
@given(request_strategy)
def test_all_requests_complete_and_mapping_consistent_baseline(ops):
    ssd, procs = drive_requests(ArchPreset.BASELINE, ops)
    assert all(p.triggered for p in procs)
    ssd.mapping.check_consistency()


@settings(deadline=None, max_examples=12,
          suppress_health_check=[HealthCheck.too_slow])
@given(request_strategy)
def test_all_requests_complete_and_mapping_consistent_dssd_f(ops):
    ssd, procs = drive_requests(ArchPreset.DSSD_F, ops)
    assert all(p.triggered for p in procs)
    ssd.mapping.check_consistency()


@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
@given(request_strategy)
def test_valid_page_accounting_matches_mapping(ops):
    """Every mapped LPN's physical page is marked valid, and vice versa
    (modulo pages still dirty in the write buffer)."""
    ssd, _procs = drive_requests(ArchPreset.BASELINE, ops)
    total_valid = sum(info.valid_count
                      for info in ssd.blocks.blocks.values())
    assert total_valid == len(ssd.mapping)
    for info in ssd.blocks.blocks.values():
        assert info.pending == 0


@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
@given(request_strategy)
def test_block_accounting_invariant(ops):
    """free + active + full + collecting + bad partitions all blocks,
    and the free counter matches the pool sizes."""
    ssd, _procs = drive_requests(ArchPreset.BASELINE, ops)
    states = {}
    for info in ssd.blocks.blocks.values():
        states[info.state] = states.get(info.state, 0) + 1
    assert sum(states.values()) == GEOM.blocks_total
    pool_total = sum(
        ssd.blocks.plane_free_blocks(p)
        for p in range(GEOM.planes_total)
    )
    assert pool_total == ssd.blocks.free_blocks
    assert states.get("collecting", 0) == 0  # no orphaned collections


@settings(deadline=None, max_examples=8,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(0, 100), min_size=1, max_size=20))
def test_write_read_write_never_loses_lpns(lpns):
    """LPNs written (and not trimmed) stay resolvable forever."""
    ssd = build_ssd(ArchPreset.DSSD, geometry=GEOM, queue_depth=8)
    ssd.prefill()
    ssd.ftl.start()
    for lpn in lpns:
        ssd.ftl.submit(IoRequest(op=WRITE, lpn=lpn, n_pages=1))
    ssd.sim.run(until=5_000_000.0)
    for lpn in set(lpns):
        # Either still dirty in the buffer or mapped to flash.
        assert (lpn in ssd.ftl._dirty
                or ssd.mapping.lookup(lpn) is not None)
