"""Unit and property tests for flash geometry and addressing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.flash import FlashGeometry, PhysAddr

SMALL = FlashGeometry(channels=4, ways=2, dies=2, planes=2,
                      blocks_per_plane=8, pages_per_block=16, page_size=4096)


def test_derived_sizes():
    geom = SMALL
    assert geom.dies_total == 4 * 2 * 2
    assert geom.planes_total == geom.dies_total * 2
    assert geom.blocks_total == geom.planes_total * 8
    assert geom.pages_total == geom.blocks_total * 16
    assert geom.capacity_bytes == geom.pages_total * 4096
    assert geom.block_size == 16 * 4096


def test_default_geometry_matches_paper_table1():
    geom = FlashGeometry()
    assert geom.channels == 8
    assert geom.ways == 8
    assert geom.dies == 1
    assert geom.planes == 8
    assert geom.blocks_per_plane == 1384
    assert geom.pages_per_block == 384
    assert geom.page_size == 4096


def test_ppn_roundtrip_exhaustive_small():
    geom = FlashGeometry(channels=2, ways=2, dies=1, planes=2,
                         blocks_per_plane=2, pages_per_block=2)
    seen = set()
    for ppn in range(geom.pages_total):
        addr = geom.addr_of(ppn)
        assert geom.ppn_of(addr) == ppn
        assert addr not in seen
        seen.add(addr)
    assert len(seen) == geom.pages_total


addr_strategy = st.builds(
    PhysAddr,
    channel=st.integers(0, SMALL.channels - 1),
    way=st.integers(0, SMALL.ways - 1),
    die=st.integers(0, SMALL.dies - 1),
    plane=st.integers(0, SMALL.planes - 1),
    block=st.integers(0, SMALL.blocks_per_plane - 1),
    page=st.integers(0, SMALL.pages_per_block - 1),
)


@given(addr_strategy)
def test_ppn_roundtrip_property(addr):
    assert SMALL.addr_of(SMALL.ppn_of(addr)) == addr


@given(addr_strategy, addr_strategy)
def test_ppn_is_injective(a, b):
    if a != b:
        assert SMALL.ppn_of(a) != SMALL.ppn_of(b)


@given(addr_strategy)
def test_block_index_roundtrip(addr):
    index = SMALL.block_index(addr)
    back = SMALL.block_addr_of(index)
    assert back.page == 0
    assert back.block_addr() == addr.block_addr()


@given(addr_strategy)
def test_plane_and_die_index_consistency(addr):
    plane = SMALL.plane_index(addr)
    die = SMALL.die_index(addr)
    assert plane // SMALL.planes == die
    assert 0 <= plane < SMALL.planes_total
    assert 0 <= die < SMALL.dies_total


def test_validate_rejects_out_of_range():
    with pytest.raises(AddressError):
        SMALL.validate(PhysAddr(SMALL.channels, 0, 0, 0, 0, 0))
    with pytest.raises(AddressError):
        SMALL.validate(PhysAddr(0, 0, 0, 0, 0, -1))
    with pytest.raises(AddressError):
        SMALL.ppn_of(PhysAddr(0, 0, 0, 0, SMALL.blocks_per_plane, 0))


def test_addr_of_rejects_out_of_range():
    with pytest.raises(AddressError):
        SMALL.addr_of(-1)
    with pytest.raises(AddressError):
        SMALL.addr_of(SMALL.pages_total)


def test_block_addr_of_rejects_out_of_range():
    with pytest.raises(AddressError):
        SMALL.block_addr_of(SMALL.blocks_total)


def test_invalid_geometry_rejected():
    with pytest.raises(AddressError):
        FlashGeometry(channels=0)
    with pytest.raises(AddressError):
        FlashGeometry(pages_per_block=0)


def test_iter_dies_covers_all_dies():
    dies = list(SMALL.iter_dies())
    assert len(dies) == SMALL.dies_total
    indexes = {SMALL.die_index(addr) for addr in dies}
    assert indexes == set(range(SMALL.dies_total))


def test_iter_planes_of_die():
    die_addr = PhysAddr(1, 0, 1, 0, 0, 0)
    planes = list(SMALL.iter_planes_of_die(die_addr))
    assert len(planes) == SMALL.planes
    assert {p.plane for p in planes} == set(range(SMALL.planes))
    assert all(p.channel == 1 and p.die == 1 for p in planes)


def test_describe_mentions_capacity():
    text = SMALL.describe()
    assert "4ch" in text and "GiB" in text
