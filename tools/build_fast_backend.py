#!/usr/bin/env python
"""Build the optional compiled DES kernel backend.

Generates ``src/repro/sim/_kernel_fast.py`` as a twin of the canonical
``kernel.py`` **plus** the model-facing contention layer -- the whole of
``sim/resources.py`` (Resource, Link, Store, TokenPool) and
``noc/network.py`` (FNoC) are concatenated into the same module so the
compiler sees the hot ``Link.transfer`` / ``Resource.request`` /
cut-through forwarding loops, not just the event heap.  The twin is
compiled with **mypyc** (or **Cython** with ``--cython``) into the
extension module ``repro.sim._kernel_fast``, and the intermediate
``.py`` is deleted so the interpreter can never silently import an
uncompiled twin (the backend resolver rejects non-``.so`` origins
anyway; see ``repro/sim/backend.py``).

Model code never imports the twin directly: construction goes through
the ``Simulator.resource()/link()/store()/token_pool()/fnoc()`` factory
methods, which prefer a class defined in the Simulator's own module --
so a twin Simulator hands out twin primitives and the canonical one
hands out the canonical classes, with zero call-site changes.

The twin is *generated*, never hand-edited: the pure-Python modules stay
the single source of truth, and both backends execute the same
scheduling logic -- which is what makes the byte-identical-timing
guarantee a structural property rather than a testing aspiration.
Concatenation rules (applied per embedded module):

* every ``from __future__ import annotations`` is stripped and a single
  one is emitted right after the banner docstring (mid-file future
  imports are a SyntaxError);
* imports of names the twin now defines locally (``from .kernel import
  ...``, ``from ..sim import ...``) are dropped or narrowed, and
  relative imports are rewritten absolute so the module is
  self-positioning;
* ``__all__ = [...]`` in embedded modules becomes ``__all__ = __all__ +
  [...]`` so the union is exported.

Usage::

    python tools/build_fast_backend.py            # mypyc, else Cython
    python tools/build_fast_backend.py --cython   # force Cython
    python tools/build_fast_backend.py --check    # report status only

Exit codes: 0 built (or ``--check`` found it installed), 3 no compiler
toolchain available (CI interprets this as *skip*, not failure),
1 anything else.
"""

from __future__ import annotations

import argparse
import py_compile
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SIM_DIR = REPO / "src" / "repro" / "sim"
KERNEL = SIM_DIR / "kernel.py"
RESOURCES = SIM_DIR / "resources.py"
NETWORK = REPO / "src" / "repro" / "noc" / "network.py"
TWIN = SIM_DIR / "_kernel_fast.py"

BANNER = (
    '"""GENERATED twin of the DES kernel + model layer -- do not edit.\n'
    "\n"
    "Produced by tools/build_fast_backend.py for compilation into the\n"
    "optional fast backend extension.  Concatenates, in order:\n"
    "\n"
    "* repro/sim/kernel.py      (event heap, processes)\n"
    "* repro/sim/resources.py   (Resource, Link, Store, TokenPool)\n"
    "* repro/noc/network.py     (FNoC fabric)\n"
    "\n"
    "The canonical sources of truth are those modules.  Regenerate\n"
    "instead of editing.\n"
    '"""\n'
)

FUTURE_IMPORT = "from __future__ import annotations\n"

#: Exact-line rewrites per embedded module.  A value of ``None`` drops
#: the line (the twin defines those names itself); any rewrite left
#: unapplied aborts generation -- canonical-source drift must break the
#: build loudly, not produce a subtly wrong twin.
_REWRITES = {
    RESOURCES: {
        # Event/Simulator are defined earlier in the twin itself.
        "from .kernel import Event, Simulator\n": None,
        "from .stats import TimeBins\n":
            "from repro.sim.stats import TimeBins\n",
    },
    NETWORK: {
        "from ..errors import ConfigError\n":
            "from repro.errors import ConfigError\n",
        # Link/Resource/Simulator/TokenPool are twin-local; only the
        # pure-bookkeeping stats class still comes from the package.
        "from ..sim import LatencyStats, Link, Resource, Simulator, "
        "TokenPool\n":
            "from repro.sim.stats import LatencyStats\n",
        "from .packet import DEFAULT_FLIT_BYTES, DEFAULT_HEADER_BYTES, "
        "Packet, \\\n":
            "from repro.noc.packet import DEFAULT_FLIT_BYTES, "
            "DEFAULT_HEADER_BYTES, Packet, \\\n",
        "from .topology import Topology, XBAR_HUB\n":
            "from repro.noc.topology import Topology, XBAR_HUB\n",
    },
}


def _transform(path: Path, merge_all: bool) -> str:
    """Embeddable source for *path*: future import stripped, imports
    rewritten per ``_REWRITES``, ``__all__`` turned into a merge."""
    pending = dict(_REWRITES.get(path, {}))
    out = []
    for line in path.read_text().splitlines(keepends=True):
        if line == FUTURE_IMPORT:
            continue  # hoisted to the top of the twin
        if line in pending:
            replacement = pending.pop(line)
            if replacement is not None:
                out.append(replacement)
            continue
        if merge_all and line.startswith("__all__ = "):
            out.append("__all__ = __all__ + " + line[len("__all__ = "):])
            continue
        out.append(line)
    if pending:
        raise RuntimeError(
            f"{path.name}: expected import lines not found (canonical "
            f"source drifted): {sorted(pending)}")
    return "".join(out)


def _section(path: Path) -> str:
    rel = path.relative_to(REPO)
    rule = "# " + "=" * 68 + "\n"
    return f"\n\n{rule}# Embedded from {rel} -- generated, do not edit.\n{rule}\n"


def generate_twin(dest: Path = TWIN) -> Path:
    """Write the twin module source; returns its path."""
    parts = [BANNER, FUTURE_IMPORT, "\n", _transform(KERNEL, False)]
    for module in (RESOURCES, NETWORK):
        parts.append(_section(module))
        parts.append(_transform(module, True))
    dest.write_text("".join(parts))
    # Fail here, not deep inside a compiler, if the twin is unparsable.
    py_compile.compile(str(dest), doraise=True)
    return dest


def _clean_intermediates() -> None:
    TWIN.unlink(missing_ok=True)
    for leftover in (SIM_DIR / "_kernel_fast.c",):
        leftover.unlink(missing_ok=True)


def _built_extensions() -> list:
    return sorted(SIM_DIR.glob("_kernel_fast.*.so")) + \
        sorted(SIM_DIR.glob("_kernel_fast.*.pyd")) + \
        sorted(SIM_DIR.glob("_kernel_fast.pyd"))


def build_mypyc() -> int:
    """Compile the twin with mypyc in-place; 0 on success, 3 if absent."""
    try:
        import mypyc  # noqa: F401
    except ImportError:
        print("[build-fast] mypyc not installed", file=sys.stderr)
        return 3
    generate_twin()
    # ``python -m mypyc`` drives setuptools build_ext --inplace itself;
    # run from src/ so the module is compiled under its package name.
    result = subprocess.run(
        [sys.executable, "-m", "mypyc", "repro/sim/_kernel_fast.py"],
        cwd=REPO / "src",
    )
    shutil.rmtree(REPO / "src" / ".mypy_cache", ignore_errors=True)
    shutil.rmtree(REPO / "src" / "build", ignore_errors=True)
    return 0 if result.returncode == 0 else 1


def build_cython() -> int:
    """Compile the twin with Cython in-place; 0 on success, 3 if absent."""
    try:
        from Cython.Build import cythonize  # noqa: F401
    except ImportError:
        print("[build-fast] Cython not installed", file=sys.stderr)
        return 3
    generate_twin()
    result = subprocess.run(
        [sys.executable, "-c",
         "import sys; from setuptools import setup; "
         "from Cython.Build import cythonize; "
         "sys.argv = ['setup.py', 'build_ext', '--inplace']; "
         "setup(ext_modules=cythonize('repro/sim/_kernel_fast.py', "
         "language_level=3))"],
        cwd=REPO / "src",
    )
    shutil.rmtree(REPO / "src" / "build", ignore_errors=True)
    return 0 if result.returncode == 0 else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cython", action="store_true",
                        help="compile with Cython instead of mypyc")
    parser.add_argument("--check", action="store_true",
                        help="report whether the compiled backend is "
                             "installed; build nothing")
    args = parser.parse_args(argv)

    if args.check:
        sys.path.insert(0, str(REPO / "src"))
        from repro.sim.backend import fast_backend_status
        available, detail = fast_backend_status()
        print(f"[build-fast] {'installed' if available else 'absent'}: "
              f"{detail}")
        return 0 if available else 3

    try:
        if args.cython:
            code = build_cython()
        else:
            code = build_mypyc()
            if code == 3:
                print("[build-fast] falling back to Cython",
                      file=sys.stderr)
                code = build_cython()
    finally:
        _clean_intermediates()
    if code == 0:
        built = _built_extensions()
        if not built:
            print("[build-fast] compiler reported success but no "
                  "extension was produced", file=sys.stderr)
            return 1
        print(f"[build-fast] built {built[0].relative_to(REPO)}")
        # Smoke: the resolver must actually pick it up.
        sys.path.insert(0, str(REPO / "src"))
        from repro.sim.backend import make_simulator
        sim, resolved = make_simulator("fast")
        if resolved != "fast":
            print("[build-fast] built but resolver still reports "
                  f"{resolved!r}", file=sys.stderr)
            return 1
    elif code == 3:
        print("[build-fast] no compiler toolchain (mypyc or Cython); "
              "skipping optional build", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
