#!/usr/bin/env python
"""Build the optional compiled DES kernel backend.

Generates ``src/repro/sim/_kernel_fast.py`` as a byte-for-byte twin of
the canonical ``kernel.py`` (plus a generated-file banner), compiles it
with **mypyc** (or **Cython** with ``--cython``) into the extension
module ``repro.sim._kernel_fast``, and deletes the intermediate ``.py``
so the interpreter can never silently import an uncompiled twin (the
backend resolver rejects non-``.so`` origins anyway; see
``repro/sim/backend.py``).

The twin is *generated*, never hand-edited: the pure-Python module stays
the single source of truth, and both backends execute the same
scheduling logic -- which is what makes the byte-identical-timing
guarantee a structural property rather than a testing aspiration.

Usage::

    python tools/build_fast_backend.py            # mypyc, else Cython
    python tools/build_fast_backend.py --cython   # force Cython
    python tools/build_fast_backend.py --check    # report status only

Exit codes: 0 built (or ``--check`` found it installed), 3 no compiler
toolchain available (CI interprets this as *skip*, not failure),
1 anything else.
"""

from __future__ import annotations

import argparse
import py_compile
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SIM_DIR = REPO / "src" / "repro" / "sim"
KERNEL = SIM_DIR / "kernel.py"
TWIN = SIM_DIR / "_kernel_fast.py"

BANNER = (
    '"""GENERATED twin of repro.sim.kernel -- do not edit.\n\n'
    "Produced by tools/build_fast_backend.py for compilation into the\n"
    "optional fast backend extension; the canonical source of truth is\n"
    "kernel.py.  Regenerate instead of editing.\n"
    '"""\n'
)


def generate_twin() -> Path:
    """Write the twin module source; returns its path."""
    source = KERNEL.read_text()
    TWIN.write_text(BANNER + source)
    # Fail here, not deep inside a compiler, if the twin is unparsable.
    py_compile.compile(str(TWIN), doraise=True)
    return TWIN


def _clean_intermediates() -> None:
    TWIN.unlink(missing_ok=True)
    for leftover in (SIM_DIR / "_kernel_fast.c",):
        leftover.unlink(missing_ok=True)


def _built_extensions() -> list:
    return sorted(SIM_DIR.glob("_kernel_fast.*.so")) + \
        sorted(SIM_DIR.glob("_kernel_fast.*.pyd")) + \
        sorted(SIM_DIR.glob("_kernel_fast.pyd"))


def build_mypyc() -> int:
    """Compile the twin with mypyc in-place; 0 on success, 3 if absent."""
    try:
        import mypyc  # noqa: F401
    except ImportError:
        print("[build-fast] mypyc not installed", file=sys.stderr)
        return 3
    generate_twin()
    # ``python -m mypyc`` drives setuptools build_ext --inplace itself;
    # run from src/ so the module is compiled under its package name.
    result = subprocess.run(
        [sys.executable, "-m", "mypyc", "repro/sim/_kernel_fast.py"],
        cwd=REPO / "src",
    )
    shutil.rmtree(REPO / "src" / ".mypy_cache", ignore_errors=True)
    shutil.rmtree(REPO / "src" / "build", ignore_errors=True)
    return 0 if result.returncode == 0 else 1


def build_cython() -> int:
    """Compile the twin with Cython in-place; 0 on success, 3 if absent."""
    try:
        from Cython.Build import cythonize  # noqa: F401
    except ImportError:
        print("[build-fast] Cython not installed", file=sys.stderr)
        return 3
    generate_twin()
    result = subprocess.run(
        [sys.executable, "-c",
         "import sys; from setuptools import setup; "
         "from Cython.Build import cythonize; "
         "sys.argv = ['setup.py', 'build_ext', '--inplace']; "
         "setup(ext_modules=cythonize('repro/sim/_kernel_fast.py', "
         "language_level=3))"],
        cwd=REPO / "src",
    )
    shutil.rmtree(REPO / "src" / "build", ignore_errors=True)
    return 0 if result.returncode == 0 else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cython", action="store_true",
                        help="compile with Cython instead of mypyc")
    parser.add_argument("--check", action="store_true",
                        help="report whether the compiled backend is "
                             "installed; build nothing")
    args = parser.parse_args(argv)

    if args.check:
        sys.path.insert(0, str(REPO / "src"))
        from repro.sim.backend import fast_backend_status
        available, detail = fast_backend_status()
        print(f"[build-fast] {'installed' if available else 'absent'}: "
              f"{detail}")
        return 0 if available else 3

    try:
        if args.cython:
            code = build_cython()
        else:
            code = build_mypyc()
            if code == 3:
                print("[build-fast] falling back to Cython",
                      file=sys.stderr)
                code = build_cython()
    finally:
        _clean_intermediates()
    if code == 0:
        built = _built_extensions()
        if not built:
            print("[build-fast] compiler reported success but no "
                  "extension was produced", file=sys.stderr)
            return 1
        print(f"[build-fast] built {built[0].relative_to(REPO)}")
        # Smoke: the resolver must actually pick it up.
        sys.path.insert(0, str(REPO / "src"))
        from repro.sim.backend import make_simulator
        sim, resolved = make_simulator("fast")
        if resolved != "fast":
            print("[build-fast] built but resolver still reports "
                  f"{resolved!r}", file=sys.stderr)
            return 1
    elif code == 3:
        print("[build-fast] no compiler toolchain (mypyc or Cython); "
              "skipping optional build", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
