#!/usr/bin/env python3
"""Documentation health checks: markdown links + pdoc API reference.

Two gates, both exercised by the CI ``docs`` job:

1. **Markdown links.**  Every relative link in the repo's markdown
   files must point at a file (or directory) that exists, and every
   intra-document ``#anchor`` must match a heading in the target file.
   External ``http(s)``/``mailto`` links are not fetched (CI must not
   depend on third-party uptime).
2. **API reference.**  The ``repro`` package is rendered with pdoc
   with warnings promoted to errors, so an unresolvable cross-reference
   (a docstring linking ``:class:`` / `` `Name` `` to something that
   does not exist) fails the build instead of silently producing a
   dead link.  pdoc is not a runtime dependency: without
   ``--require-pdoc`` the step degrades to a skip when pdoc is not
   installed, so the checker runs in minimal environments too.

Usage::

    python tools/check_docs.py                 # markdown + API if pdoc present
    python tools/check_docs.py --require-pdoc  # CI: missing pdoc is a failure
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
import warnings
from pathlib import Path
from typing import Iterable, List, Tuple

REPO = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target).  Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Markdown headings, for anchor validation.
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Fenced code blocks -- links inside them are examples, not links.
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _markdown_files() -> List[Path]:
    """Every tracked-looking markdown file (skip caches and VCS dirs)."""
    files = []
    for path in sorted(REPO.rglob("*.md")):
        parts = set(path.relative_to(REPO).parts)
        if parts & {".git", "node_modules", "__pycache__", ".pytest_cache"}:
            continue
        files.append(path)
    return files


def _anchor_of(heading: str) -> str:
    """GitHub's heading -> anchor slug (lowercase, dashes, stripped)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _anchors(path: Path) -> set:
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    return {_anchor_of(h) for h in _HEADING.findall(text)}


def _iter_links(path: Path) -> Iterable[str]:
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK.finditer(text):
        yield match.group(1)


def check_markdown() -> List[str]:
    """All broken relative links/anchors, as ``file: link`` strings."""
    problems: List[str] = []
    for md in _markdown_files():
        for link in _iter_links(md):
            if re.match(r"^[a-z][a-z0-9+.-]*:", link):  # http:, mailto:, ...
                continue
            target, _, anchor = link.partition("#")
            base = md.parent / target if target else md
            if target and not base.exists():
                problems.append(
                    f"{md.relative_to(REPO)}: broken link -> {link}")
                continue
            if anchor and base.suffix == ".md" and base.exists():
                if _anchor_of(anchor) not in _anchors(base):
                    problems.append(
                        f"{md.relative_to(REPO)}: missing anchor -> {link}")
    return problems


def check_api_reference(require: bool) -> Tuple[bool, List[str]]:
    """Render the pdoc API reference with warnings as errors.

    Returns ``(ran, problems)``; ``ran`` is False when pdoc is not
    installed and *require* is False (the gated local path).
    """
    try:
        import pdoc
        import pdoc.render
    except ImportError:
        if require:
            return True, ["pdoc is not installed (pip install pdoc) but "
                          "--require-pdoc was given"]
        return False, []

    sys.path.insert(0, str(REPO / "src"))
    problems: List[str] = []
    with tempfile.TemporaryDirectory() as out:
        with warnings.catch_warnings():
            # Any pdoc warning -- unresolved cross-reference, failed
            # submodule import, bad docstring markup -- is a failure.
            warnings.simplefilter("error")
            try:
                pdoc.pdoc("repro", output_directory=Path(out))
            except Warning as warning:
                problems.append(f"pdoc warning (broken reference?): "
                                f"{warning}")
            except Exception as error:  # pragma: no cover - render bug
                problems.append(f"pdoc failed: {error!r}")
        if not problems:
            rendered = list(Path(out).rglob("*.html"))
            if not rendered:
                problems.append("pdoc produced no HTML output")
            else:
                print(f"pdoc: rendered {len(rendered)} pages cleanly")
    return True, problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--require-pdoc", action="store_true",
                        help="fail (rather than skip) when pdoc is missing")
    args = parser.parse_args(argv)

    problems = check_markdown()
    print(f"markdown: checked {len(_markdown_files())} files, "
          f"{len(problems)} broken link(s)")

    ran, api_problems = check_api_reference(require=args.require_pdoc)
    if not ran:
        print("pdoc: not installed, API-reference check skipped "
              "(install pdoc or pass --require-pdoc in CI)")
    problems.extend(api_problems)

    for problem in problems:
        print(f"ERROR: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
