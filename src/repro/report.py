"""Result export: turn experiment dicts and run results into CSV/JSON.

The experiment modules return nested dicts of series; downstream users
typically want them as flat tables for plotting.  This module provides
a small, dependency-free exporter:

* :func:`flatten` -- nested dict -> ``{"a.b.c": value}`` rows;
* :func:`to_csv` / :func:`to_json` -- string renderers;
* :func:`run_result_row` -- one flat row per
  :class:`~repro.core.RunResult` for sweep tables;
* :func:`runner_metrics_row` -- one flat row per
  :class:`~repro.experiments.runner.RunnerMetrics` (cache hit/miss
  counters, point wall times, worker utilization) so harness
  performance lands in the same CSVs as the simulated results;
* :func:`series_csv` -- (x, y...) columns for timeline/curve data.
"""

from __future__ import annotations

import io
import json
import math
from typing import Any, Dict, Iterable, List, Mapping, Sequence

__all__ = ["flatten", "to_csv", "to_json", "run_result_row",
           "runner_metrics_row", "series_csv", "tenant_result_row"]

_SCALARS = (int, float, str, bool, type(None))


def flatten(data: Mapping, prefix: str = "",
            separator: str = ".") -> Dict[str, Any]:
    """Flatten nested mappings into dotted-key scalars.

    Lists of scalars become indexed keys (``key.0``, ``key.1``...);
    non-scalar leaves (objects, long tables) are skipped.
    """
    flat: Dict[str, Any] = {}
    for key, value in data.items():
        name = f"{prefix}{separator}{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            flat.update(flatten(value, name, separator))
        elif isinstance(value, (list, tuple)):
            if all(isinstance(v, _SCALARS) for v in value):
                for index, item in enumerate(value):
                    flat[f"{name}{separator}{index}"] = item
        elif isinstance(value, _SCALARS):
            flat[name] = value
    return flat


def to_csv(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render dict rows as CSV with the union of keys as the header."""
    if not rows:
        return ""
    header: List[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    out = io.StringIO()
    out.write(",".join(header) + "\n")
    for row in rows:
        cells = []
        for key in header:
            value = row.get(key, "")
            if isinstance(value, float):
                if math.isnan(value) or math.isinf(value):
                    value = ""
                else:
                    value = f"{value:.6g}"
            text = str(value)
            if "," in text or '"' in text:
                text = '"' + text.replace('"', '""') + '"'
            cells.append(text)
        out.write(",".join(cells) + "\n")
    return out.getvalue()


def to_json(data: Mapping, indent: int = 2) -> str:
    """JSON-render a result dict, dropping non-serializable leaves."""

    def default(obj):
        if hasattr(obj, "summary"):
            return obj.summary()
        if hasattr(obj, "as_dict"):
            return obj.as_dict()
        return str(obj)

    return json.dumps(data, indent=indent, default=default)


def run_result_row(result, label: str = "") -> Dict[str, Any]:
    """One flat row of a :class:`~repro.core.RunResult`'s headline stats."""
    row: Dict[str, Any] = {"label": label or result.arch}
    row.update({
        "arch": result.arch,
        "duration_us": result.duration_us,
        "io_bandwidth_MBps": result.io_bandwidth,
        "io_mean_us": result.io_latency.mean,
        "io_p50_us": result.io_latency.p50,
        "io_p99_us": result.io_latency.p99,
        "requests": result.requests_completed,
        "gc_pages_moved": result.gc.pages_moved,
        "gc_blocks_erased": result.gc.blocks_erased,
        "bus_utilization": result.bus_utilization,
        "bus_gc_utilization": result.bus_gc_utilization,
        "dram_utilization": result.dram_utilization,
        "fnoc_packets": result.fnoc_packets,
        "copybacks": result.copybacks,
    })
    for component, value in result.io_breakdown.as_dict().items():
        row[f"io_breakdown.{component}"] = value
    for component, value in result.gc_breakdown.as_dict().items():
        row[f"gc_breakdown.{component}"] = value
    return row


def tenant_result_row(tenant, label: str = "") -> Dict[str, Any]:
    """One flat row of a :class:`~repro.core.TenantResult`.

    Carries the tenant's identity (stream name, driver, arbiter) plus
    admission counters and the latency distribution, so multi-tenant
    sweeps export per-tenant lines next to the device-level rows.
    """
    row: Dict[str, Any] = {"label": label or tenant.name}
    row.update({
        "tenant": tenant.name,
        "driver": tenant.driver,
        "arbiter": tenant.arbiter,
        "duration_us": tenant.duration_us,
        "arrivals": tenant.arrivals,
        "admitted": tenant.admitted,
        "dropped": tenant.dropped,
        "dispatched": tenant.dispatched,
        "completed": tenant.completed,
        "iops": tenant.iops,
        "bandwidth_MBps": tenant.bandwidth,
        "latency_mean_us": tenant.latency.mean,
        "latency_p50_us": tenant.latency.p50,
        "latency_p99_us": tenant.latency.p99,
        "sq_wait_mean_us": tenant.sq_wait.mean,
        "sq_wait_p99_us": tenant.sq_wait.p99,
    })
    return row


def runner_metrics_row(metrics, label: str = "") -> Dict[str, Any]:
    """One flat row of a parallel-runner metrics accumulator.

    *metrics* is a :class:`~repro.experiments.runner.RunnerMetrics`;
    the row carries its cache counters, wall/busy seconds, worker
    utilization, and the per-point wall-time distribution (p50/p99 via
    the shared :class:`~repro.sim.stats.LatencyStats` machinery).
    """
    row: Dict[str, Any] = {"label": label or "runner"}
    row.update(metrics.summary())
    row["point_p50_s"] = metrics.point_wall_s.p50
    row["point_p99_s"] = metrics.point_wall_s.p99
    return row


def series_csv(columns: Mapping[str, Iterable[float]]) -> str:
    """Column-oriented series -> CSV (for timelines and curves).

    All columns are padded to the longest one with empty cells.
    """
    names = list(columns)
    data = [list(columns[name]) for name in names]
    length = max((len(col) for col in data), default=0)
    out = io.StringIO()
    out.write(",".join(names) + "\n")
    for index in range(length):
        cells = []
        for col in data:
            if index < len(col):
                value = col[index]
                cells.append(f"{value:.6g}" if isinstance(value, float)
                             else str(value))
            else:
                cells.append("")
        out.write(",".join(cells) + "\n")
    return out.getvalue()
