"""Exception hierarchy for the dSSD reproduction."""

__all__ = [
    "ReproError",
    "AddressError",
    "FlashError",
    "UncorrectableError",
    "ConfigError",
    "MappingError",
    "SamplesUnavailableError",
    "SnapshotError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class AddressError(ReproError, ValueError):
    """A physical or logical address is outside the device geometry."""


class FlashError(ReproError):
    """An illegal flash operation (program to unerased page, etc.)."""


class UncorrectableError(FlashError):
    """A page read exceeded the ECC engine's correction capability."""


class ConfigError(ReproError, ValueError):
    """An invalid simulation or architecture configuration."""


class MappingError(ReproError):
    """FTL or superblock mapping inconsistency."""


class SamplesUnavailableError(ReproError, ValueError):
    """An exact percentile was requested from a sample-free recorder.

    ``LatencyStats(keep_samples=False)`` streams every aggregate in
    O(1) but cannot answer :meth:`~repro.sim.stats.LatencyStats.pct`.
    Subclasses :class:`ValueError` so callers that treated the old
    generic error as a value problem keep working.
    """


class SnapshotError(ReproError):
    """A device checkpoint cannot be taken or restored."""
