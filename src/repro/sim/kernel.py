"""Discrete-event simulation kernel.

A minimal, fast, generator-based process model in the spirit of SimPy,
purpose-built for the dSSD reproduction.  Simulation time is a float in
**microseconds**.  Processes are Python generators that ``yield`` events;
a process resumes when the yielded event triggers.

Example::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5.0)      # wait 5 us
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert sim.now == 5.0 and proc.value == "done"

The kernel supports:

* :class:`Event` -- one-shot triggerable events carrying a value,
* :class:`Timeout` -- events that fire after a fixed delay,
* :class:`Process` -- generator-driven processes (joinable, interruptible),
* :class:`AllOf` / :class:`AnyOf` -- condition events over several events.

Hot-path design
---------------

The dominant pattern in the SSD models is a process looping on ``yield
sim.timeout(...)``.  The kernel serves it with a *direct-resume* fast
path (see DESIGN.md "Performance" for the invariants):

* Heap entries for events hold the event object itself -- events are
  callable, ``event()`` dispatches -- so triggering allocates no bound
  method.
* The first process to wait on an event is stored in the ``_waiter``
  slot and resumed straight from the dispatch, with no
  ``Event.callbacks`` list and no ``Process._on_event`` hop.  The list
  is only allocated once a *second* waiter (or a non-process callback)
  appears; dispatch runs the direct waiter first, which is exactly
  registration order.
* ``Timeout`` initializes its slots inline and pushes its own heap
  entry, skipping the ``Event.__init__``/``schedule`` call chain.

None of this changes *when* anything runs: heap entries are pushed in
the same program order as the legacy callback path (the sequence counter
advances identically), so event ordering -- and therefore every
simulated timestamp -- is bit-for-bit the same.  ``Simulator(
direct_resume=False)`` keeps the legacy wiring (every event gets a
callbacks list, processes always register ``_on_event``) for A/B
equivalence tests.
"""

from __future__ import annotations

import heapq
from heapq import heappush, heappop
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]

#: Sentinel stored in ``Event.callbacks`` once the event has dispatched.
_DISPATCHED = object()


def _layer_class(name: str) -> Any:
    """Resolve a model-layer primitive class for Simulator factories.

    Prefers a class defined in this very module: the generated fast
    twin concatenates resources.py and noc/network.py after the kernel,
    so its module globals contain the compiled classes.  The canonical
    kernel falls back to the pure-Python implementations (imported
    lazily; ``repro.sim`` imports this module first, so a top-level
    import would be circular).
    """
    cls = globals().get(name)
    if cls is not None:
        return cls
    if name == "FNoC":
        from repro.noc.network import FNoC
        return FNoC
    from repro.sim import resources
    return getattr(resources, name)

#: Shared empty args tuple for event heap entries.
_NO_ARGS = ()

#: Same-timestamp entries dispatched straight off the heap before the
#: run loop switches to drain-mode batching (see :meth:`Simulator.run`).
_BATCH_INLINE = 8


class SimulationError(RuntimeError):
    """Raised on kernel misuse (double trigger, running a finished sim...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process receives this exception at its current
    ``yield`` statement and may catch it to implement preemption (for
    example, preemptive garbage collection yielding to host I/O).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`trigger` (or
    :meth:`fail`) marks it triggered, records its value, and schedules its
    callbacks to run at the current simulation time.  Triggering twice is
    an error.

    ``callbacks`` is ``None`` while no callback has been registered (the
    sole direct process waiter lives in the ``_waiter`` slot instead), a
    list once callbacks exist, and an opaque sentinel after dispatch.
    """

    __slots__ = ("sim", "callbacks", "_waiter", "_value", "_ok", "_triggered")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks = [] if sim._legacy else None
        self._waiter: Optional["Process"] = None
        self._value: Any = None
        self._ok = True
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """Whether the event has fired (successfully or not)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (not via :meth:`fail`)."""
        return self._triggered and self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def trigger(self, value: Any = None) -> "Event":
        """Fire the event successfully, delivering *value* to waiters."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now, seq, self, _NO_ARGS))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event as a failure; waiters receive *exception*."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now, seq, self, _NO_ARGS))
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event fires (immediately if it has)."""
        cbs = self.callbacks
        if cbs is _DISPATCHED:
            # Already dispatched: run at the current time via the queue so
            # ordering relative to other scheduled work stays consistent.
            # Pushed directly (no schedule() wrapper, no closure) -- the
            # same entry shape the direct-resume path uses.
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            heappush(sim._queue, (sim._now, seq, fn, (self,)))
        elif cbs is None:
            self.callbacks = [fn]
        else:
            cbs.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Detach a previously added callback (no-op if absent)."""
        cbs = self.callbacks
        if cbs is not None and cbs is not _DISPATCHED and fn in cbs:
            cbs.remove(fn)

    def _detach_process(self, process: "Process") -> None:
        """Unhook *process* however it is waiting (direct slot or list)."""
        if self._waiter is process:
            self._waiter = None
        else:
            self.remove_callback(process._on_event)

    def _dispatch(self) -> None:
        waiter = self._waiter
        callbacks = self.callbacks
        self.callbacks = _DISPATCHED
        if waiter is not None:
            self._waiter = None
            waiter._waiting_on = None
            if self._ok:
                waiter._resume(self._value, None)
            else:
                waiter._resume(None, self._value)
        if callbacks:
            for fn in callbacks:
                fn(self)

    #: Events are callable so a heap entry can hold the event itself.
    __call__ = _dispatch


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation.

    Unlike a plain :class:`Event`, a timeout is armed at construction and
    triggers itself when the delay elapses: ``triggered``/``ok``/``value``
    stay False/False/unreadable until the scheduled dispatch actually
    runs, and manual :meth:`trigger`/:meth:`fail` are rejected.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + scheduling: this runs once per yielded
        # timeout, i.e. on the hottest allocation path in the simulator.
        self.sim = sim
        self.delay = delay
        self.callbacks = [] if sim._legacy else None
        self._waiter = None
        self._value = value
        self._ok = True
        self._triggered = False
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now + delay, seq, self, _NO_ARGS))

    def trigger(self, value: Any = None) -> "Event":
        raise SimulationError("a Timeout fires by itself; trigger() is "
                              "not allowed")

    def fail(self, exception: BaseException) -> "Event":
        raise SimulationError("a Timeout fires by itself; fail() is "
                              "not allowed")

    def _dispatch(self) -> None:
        self._triggered = True
        waiter = self._waiter
        callbacks = self.callbacks
        self.callbacks = _DISPATCHED
        if waiter is not None:
            # Timeouts cannot fail, so the ok-branch is resolved statically.
            self._waiter = None
            waiter._waiting_on = None
            waiter._resume(self._value, None)
        if callbacks:
            for fn in callbacks:
                fn(self)

    __call__ = _dispatch


class Process(Event):
    """A running simulation process driving a generator.

    The process itself is an :class:`Event` that fires when the generator
    finishes; its value is the generator's return value.  Other processes
    may ``yield`` a process to join it.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: start the generator at the current time.
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now, seq, self._resume, (None, None)))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op.  The event the process
        was waiting on is detached so that its later trigger does not
        resume the process twice.
        """
        if self._triggered:
            return
        target = self._waiting_on
        if target is not None:
            target._detach_process(self)
            self._waiting_on = None
        self.sim.schedule(0.0, self._resume, None, Interrupt(cause))

    # -- generator driving ------------------------------------------------

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            return
        try:
            if exc is None:
                target = self.generator.send(value)
            else:
                target = self.generator.throw(exc)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as normal termination.
            self.trigger(None)
            return
        self._waiting_on = target
        try:
            if target.callbacks is None and target._waiter is None:
                # Direct resume: sole waiter, no list, no _on_event hop.
                target._waiter = self
            else:
                target.add_callback(self._on_event)
        except AttributeError:
            self._waiting_on = None
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes "
                    "must yield Event instances"
                ) from None
            raise


class AllOf(Event):
    """Fires when every event in *events* has fired.

    The value is the list of the individual event values in input order.
    An empty list fires immediately.  When one child fails, the condition
    fails and detaches itself from the remaining children so long-lived
    events do not accumulate dead waiter references.
    """

    __slots__ = ("_pending", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.trigger([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            self._detach_from(event)
            return
        self._pending -= 1
        if self._pending == 0:
            self.trigger([e.value for e in self._events])

    def _detach_from(self, fired: Event) -> None:
        on_child = self._on_child
        for other in self._events:
            if other is not fired:
                other.remove_callback(on_child)


class AnyOf(Event):
    """Fires when the first of *events* fires; value is ``(event, value)``.

    Once decided, the condition detaches its callback from the losing
    children -- otherwise every race against a long-lived event would
    leave a dead reference on it for the rest of the simulation.
    """

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf needs at least one event")
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.trigger((event, event.value))
        on_child = self._on_child
        for other in self._events:
            if other is not event:
                other.remove_callback(on_child)


class Simulator:
    """The event loop: a time-ordered queue of callbacks.

    All model components hold a reference to one ``Simulator`` and use
    :meth:`timeout`, :meth:`event`, and :meth:`process` to build behaviour.

    ``direct_resume=False`` selects the legacy wiring (every event carries
    a callbacks list and processes always register ``_on_event``); it
    exists for the fast-path equivalence suite and produces bit-identical
    schedules, only slower.
    """

    def __init__(self, direct_resume: bool = True) -> None:
        #: Current simulation time in microseconds.  A plain attribute
        #: (read millions of times per simulated second); treat it as
        #: read-only -- only the event loop advances it.
        self.now = 0.0
        self._now = 0.0
        self._queue: List[tuple] = []
        self._seq = 0
        self._running = False
        self._legacy = not direct_resume
        self._resources: List[Any] = []

    @property
    def direct_resume(self) -> bool:
        """Whether the direct-resume fast path is enabled."""
        return not self._legacy

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing *delay* microseconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start *generator* as a process and return its handle."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event firing once all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event firing once any of *events* has fired."""
        return AnyOf(self, events)

    # -- model-layer factories ----------------------------------------------
    #
    # Contention primitives are constructed through the simulator so the
    # model layer never names a backend: ``_layer_class`` prefers a class
    # defined in *this module* -- the compiled twin embeds resources.py
    # and noc/network.py, so a twin Simulator hands out compiled
    # Resource/Link/FNoC objects -- and falls back to the canonical
    # pure-Python implementations otherwise.  Construction is cold path;
    # the lookup cost is irrelevant.

    def resource(self, capacity: int = 1, name: str = "") -> Any:
        """Construct a backend-matched :class:`~repro.sim.Resource`."""
        return _layer_class("Resource")(self, capacity, name)

    def link(self, bandwidth: float, name: str = "",
             bin_width: float = 1000.0) -> Any:
        """Construct a backend-matched :class:`~repro.sim.Link`."""
        return _layer_class("Link")(self, bandwidth, name, bin_width)

    def store(self, name: str = "") -> Any:
        """Construct a backend-matched :class:`~repro.sim.Store`."""
        return _layer_class("Store")(self, name)

    def token_pool(self, capacity: int, name: str = "") -> Any:
        """Construct a backend-matched :class:`~repro.sim.TokenPool`."""
        return _layer_class("TokenPool")(self, capacity, name)

    def fnoc(self, topology: Any, channel_bandwidth: float,
             **kwargs: Any) -> Any:
        """Construct a backend-matched :class:`~repro.noc.network.FNoC`."""
        return _layer_class("FNoC")(self, topology, channel_bandwidth,
                                    **kwargs)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after *delay* microseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq += 1
        heappush(self._queue, (self._now + delay, self._seq, fn, args))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        # Kept for backward compatibility; events now enqueue themselves.
        self._seq += 1
        heappush(self._queue, (self._now + delay, self._seq, event, _NO_ARGS))

    # -- execution ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulation time reaches *until*.

        Returns the simulation time at which execution stopped.

        Crowded timestamps dispatch in *batches*: once more than
        ``_BATCH_INLINE`` entries share the current time, the rest of
        the batch is drained off the heap into a flat list first, then
        the list is walked and dispatched.  Entries pushed at the
        current time *during* the walk carry strictly higher sequence
        numbers than everything drained before them (the counter only
        ever increments), so re-draining after the walk preserves the
        exact global ``(time, seq)`` order the one-pop-at-a-time loop
        produced -- batching changes how entries are pulled, never when
        their callbacks run.  The flat walk is also the shape the
        optional compiled backend accelerates: a monomorphic loop over
        4-tuples with no heap call between dispatches.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            queue = self._queue
            pop = heappop
            batch: List[tuple] = []
            append = batch.append
            while queue:
                time = queue[0][0]
                if until is not None and time > until:
                    self.now = self._now = until
                    break
                self.now = self._now = time
                # Small batches (the common case on sparse-timestamp
                # workloads) dispatch straight off the heap, exactly
                # like the pre-batching loop.  Once a timestamp proves
                # crowded, switch to drain mode: pull the rest of the
                # batch into a flat list back to back -- popping
                # without interleaved pushes keeps the heap shrinking
                # monotonically, which is where the batch win comes
                # from -- then walk the list.
                entry = pop(queue)
                entry[2](*entry[3])
                count = 0
                while queue and queue[0][0] == time:
                    entry = pop(queue)
                    entry[2](*entry[3])
                    count += 1
                    if count == _BATCH_INLINE:
                        break
                else:
                    continue
                while True:
                    while queue and queue[0][0] == time:
                        append(pop(queue))
                    if not batch:
                        break
                    try:
                        for entry in batch:
                            entry[2](*entry[3])
                    except BaseException:
                        # A dispatch raised mid-batch: put the entries
                        # that never ran back on the heap so the queue
                        # holds exactly what the one-pop-at-a-time loop
                        # would have left behind.
                        raised_by = entry
                        restore = False
                        for entry in batch:
                            if restore:
                                heappush(queue, entry)
                            elif entry is raised_by:
                                restore = True
                        del batch[:]
                        raise
                    del batch[:]
            else:
                if until is not None and until > self._now:
                    self.now = self._now = until
        finally:
            self._running = False
        return self._now

    # -- introspection -------------------------------------------------------

    def register_resource(self, resource: Any) -> None:
        """Track *resource* for quiescence diagnostics.

        Registered objects must expose ``outstanding_summary() ->
        Optional[str]``; the shared-resource primitives in
        :mod:`repro.sim.resources` register themselves at construction.
        """
        self._resources.append(resource)

    def outstanding_holds(self) -> List[str]:
        """One line per registered resource that is not idle.

        The quiescence guards and the fuzzer's leaked-hold oracle use
        this to name exactly which semaphores/links/queues still hold
        state when the event queue has drained.
        """
        lines = []
        for resource in self._resources:
            summary = resource.outstanding_summary()
            if summary:
                lines.append(summary)
        return lines

    def pending_summary(self, limit: int = 8) -> List[str]:
        """Describe up to *limit* scheduled callbacks (soonest first).

        Names the owning process where one can be identified, so a
        failed quiescence check reports *who* still has work queued
        rather than just a count.
        """
        entries = sorted(self._queue)[:limit]
        lines = [f"t={time:.3f}us {self._describe_callback(fn)}"
                 for time, _seq, fn, _args in entries]
        extra = len(self._queue) - len(entries)
        if extra > 0:
            lines.append(f"... and {extra} more")
        return lines

    @staticmethod
    def _describe_callback(fn: Any) -> str:
        if isinstance(fn, Process):
            return f"process {fn.name!r} completion"
        if isinstance(fn, Event):
            waiter = fn._waiter
            kind = type(fn).__name__.lower()
            if isinstance(waiter, Process):
                return f"{kind} resuming process {waiter.name!r}"
            return kind
        owner = getattr(fn, "__self__", None)
        if isinstance(owner, Process):
            return f"process {owner.name!r} resume"
        if owner is not None:
            name = getattr(owner, "name", "") or type(owner).__name__
            return f"{type(owner).__name__} {name!r}.{fn.__name__}"
        return getattr(fn, "__qualname__", repr(fn))

    # -- checkpointing -------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Checkpoint the kernel: only legal at a *quiescent point*.

        Python generators cannot be serialized, so the kernel refuses to
        snapshot while any callback is scheduled -- the event queue must
        be empty (every process parked on an untriggered event, or
        finished).  ``run()`` without an ``until`` bound drains to
        exactly this state.  Returns a JSON-able dict holding the clock
        and the event sequence counter; restoring both makes events
        scheduled after the restore carry the same ``(time, seq)`` keys
        as they would in an uninterrupted run.
        """
        if self._queue:
            message = (
                f"cannot snapshot: {len(self._queue)} callback(s) still "
                "scheduled (snapshot only at a quiescent point -- run the "
                "simulation to completion first); pending: "
                + "; ".join(self.pending_summary())
            )
            holds = self.outstanding_holds()
            if holds:
                message += "; outstanding holds: " + "; ".join(holds)
            raise SimulationError(message)
        if self._running:
            raise SimulationError("cannot snapshot while the loop is running")
        return {"now": self._now, "seq": self._seq}

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`snapshot_state` checkpoint onto this kernel.

        The queue must be empty (drain any bootstrap events first --
        e.g. freshly respawned background processes -- so their entries
        do not carry pre-restore sequence numbers into the future).
        """
        if self._queue:
            raise SimulationError(
                "cannot restore into a simulator with scheduled callbacks"
            )
        self.now = self._now = float(state["now"])
        self._seq = int(state["seq"])

    def step(self) -> bool:
        """Execute a single queued callback; return False if queue empty."""
        if not self._queue:
            return False
        time, _seq, fn, args = heapq.heappop(self._queue)
        self.now = self._now = time
        fn(*args)
        return True

    def peek(self) -> Optional[float]:
        """Time of the next queued callback, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None
