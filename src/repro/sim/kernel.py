"""Discrete-event simulation kernel.

A minimal, fast, generator-based process model in the spirit of SimPy,
purpose-built for the dSSD reproduction.  Simulation time is a float in
**microseconds**.  Processes are Python generators that ``yield`` events;
a process resumes when the yielded event triggers.

Example::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5.0)      # wait 5 us
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert sim.now == 5.0 and proc.value == "done"

The kernel supports:

* :class:`Event` -- one-shot triggerable events carrying a value,
* :class:`Timeout` -- events that fire after a fixed delay,
* :class:`Process` -- generator-driven processes (joinable, interruptible),
* :class:`AllOf` / :class:`AnyOf` -- condition events over several events.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised on kernel misuse (double trigger, running a finished sim...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process receives this exception at its current
    ``yield`` statement and may catch it to implement preemption (for
    example, preemptive garbage collection yielding to host I/O).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`trigger` (or
    :meth:`fail`) marks it triggered, records its value, and schedules its
    callbacks to run at the current simulation time.  Triggering twice is
    an error.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """Whether the event has fired (successfully or not)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (not via :meth:`fail`)."""
        return self._triggered and self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def trigger(self, value: Any = None) -> "Event":
        """Fire the event successfully, delivering *value* to waiters."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event as a failure; waiters receive *exception*."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event fires (immediately if it has)."""
        if self.callbacks is None:
            # Already dispatched: run at the current time via the queue so
            # ordering relative to other scheduled work stays consistent.
            self.sim.schedule(0.0, fn, self)
        else:
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Detach a previously added callback (no-op if absent)."""
        if self.callbacks is not None and fn in self.callbacks:
            self.callbacks.remove(fn)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation.

    Unlike a plain :class:`Event`, a timeout is armed at construction and
    triggers itself when the delay elapses: ``triggered``/``ok``/``value``
    stay False/False/unreadable until the scheduled dispatch actually
    runs, and manual :meth:`trigger`/:meth:`fail` are rejected.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim._schedule_event(self, delay)

    def trigger(self, value: Any = None) -> "Event":
        raise SimulationError("a Timeout fires by itself; trigger() is "
                              "not allowed")

    def fail(self, exception: BaseException) -> "Event":
        raise SimulationError("a Timeout fires by itself; fail() is "
                              "not allowed")

    def _dispatch(self) -> None:
        self._triggered = True
        super()._dispatch()


class Process(Event):
    """A running simulation process driving a generator.

    The process itself is an :class:`Event` that fires when the generator
    finishes; its value is the generator's return value.  Other processes
    may ``yield`` a process to join it.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: start the generator at the current time.
        sim.schedule(0.0, self._resume, None, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op.  The event the process
        was waiting on is detached so that its later trigger does not
        resume the process twice.
        """
        if self._triggered:
            return
        target = self._waiting_on
        if target is not None:
            target.remove_callback(self._on_event)
            self._waiting_on = None
        self.sim.schedule(0.0, self._resume, None, Interrupt(cause))

    # -- generator driving ------------------------------------------------

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            return
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.trigger(getattr(stop, "value", None))
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as normal termination.
            self.trigger(None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
        self._waiting_on = target
        target.add_callback(self._on_event)


class AllOf(Event):
    """Fires when every event in *events* has fired.

    The value is the list of the individual event values in input order.
    An empty list fires immediately.
    """

    __slots__ = ("_pending", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.trigger([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.trigger([e.value for e in self._events])


class AnyOf(Event):
    """Fires when the first of *events* fires; value is ``(event, value)``."""

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf needs at least one event")
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.trigger((event, event.value))


class Simulator:
    """The event loop: a time-ordered queue of callbacks.

    All model components hold a reference to one ``Simulator`` and use
    :meth:`timeout`, :meth:`event`, and :meth:`process` to build behaviour.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[tuple] = []
        self._seq = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing *delay* microseconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start *generator* as a process and return its handle."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event firing once all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event firing once any of *events* has fired."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after *delay* microseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, fn, args))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(
            self._queue, (self._now + delay, self._seq, event._dispatch, ())
        )

    # -- execution ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulation time reaches *until*.

        Returns the simulation time at which execution stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            queue = self._queue
            while queue:
                time, _seq, fn, args = queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(queue)
                self._now = time
                fn(*args)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute a single queued callback; return False if queue empty."""
        if not self._queue:
            return False
        time, _seq, fn, args = heapq.heappop(self._queue)
        self._now = time
        fn(*args)
        return True

    def peek(self) -> Optional[float]:
        """Time of the next queued callback, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None
