"""Discrete-event simulation substrate for the dSSD reproduction."""

from .backend import (
    BACKENDS,
    compiled_layers,
    fast_backend_status,
    make_simulator,
    resolve_backend,
)
from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Link, Resource, Store, TokenPool, Transfer
from .snapshot import (
    int_key_pairs,
    pairs_to_int_dict,
    rng_load_state,
    rng_state_dict,
)
from .stats import Counter, LatencyStats, TimeBins, percentile

__all__ = [
    "AllOf",
    "AnyOf",
    "BACKENDS",
    "compiled_layers",
    "Counter",
    "Event",
    "fast_backend_status",
    "int_key_pairs",
    "Interrupt",
    "LatencyStats",
    "Link",
    "make_simulator",
    "pairs_to_int_dict",
    "percentile",
    "Process",
    "Resource",
    "resolve_backend",
    "rng_load_state",
    "rng_state_dict",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeBins",
    "Timeout",
    "TokenPool",
    "Transfer",
]
