"""Discrete-event simulation substrate for the dSSD reproduction."""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Link, Resource, Store, TokenPool, Transfer
from .stats import Counter, LatencyStats, TimeBins, percentile

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "Interrupt",
    "LatencyStats",
    "Link",
    "percentile",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeBins",
    "Timeout",
    "TokenPool",
    "Transfer",
]
