"""Measurement utilities: latency recorders, time-binned series, meters.

Everything the experiment harness reports -- bandwidth timelines,
utilization, tail latency -- is collected through these classes so that
model code stays free of reporting concerns.  The same primitives back
the parallel runner's own metrics (:mod:`repro.experiments.runner`):
:class:`LatencyStats` records per-point wall times and :class:`Counter`
tallies cache hits/misses, so simulated and harness measurements share
one reporting path.

:class:`LatencyStats` maintains streaming O(1) aggregates (count, sum,
min, max, and the M2 sum of squared deviations for variance) on every
add.  The raw sample list that backs *exact* percentiles is optional per
recorder: high-volume recorders that never report a percentile (per-flit
or per-channel meters) construct with ``keep_samples=False`` and stay
O(1) in memory no matter how many samples land.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SamplesUnavailableError

__all__ = ["LatencyStats", "TimeBins", "Counter", "percentile"]

_INF = float("inf")


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an **ascending-sorted** sequence.

    Uses the inclusive linear-interpolation definition (rank
    ``fraction * (n - 1)``, numpy's default ``"linear"`` method), so
    ``fraction=0.0`` / ``1.0`` return the smallest / largest sample
    exactly.  ``fraction`` is in ``[0, 1]`` -- pass 0.99 for the
    paper's 99 % tail.  Raises :class:`ValueError` on an empty
    sequence or an out-of-range fraction; the input order is **not**
    verified, callers must sort first (:meth:`LatencyStats.pct` does).
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    weight = rank - low
    return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * weight


class LatencyStats:
    """Accumulates samples and reports summary statistics.

    Units are the caller's: simulated request latencies arrive in
    microseconds, the experiment runner's per-point wall times in
    seconds.  Aggregates (:attr:`mean`, :attr:`max`, :attr:`min`,
    :meth:`pct`) return ``0.0`` on an empty recorder rather than
    raising, so report tables render before any sample lands.

    ``keep_samples=False`` drops the raw sample list: every aggregate
    (count/sum/mean/min/max/variance) still streams in O(1), but exact
    percentiles are unavailable -- :meth:`pct` raises and
    :meth:`summary` reports the tails as ``0.0``.  The sorted view
    backing :meth:`pct` is cached and invalidated on every
    :meth:`add`/:meth:`extend`/:meth:`merge`.
    """

    __slots__ = ("name", "_samples", "_sorted", "_count", "_sum",
                 "_min", "_max", "_m2", "_mean")

    def __init__(self, name: str = "", keep_samples: bool = True):
        self.name = name
        self._samples: Optional[List[float]] = [] if keep_samples else None
        self._sorted: Optional[List[float]] = None
        self._count = 0
        self._sum = 0.0
        self._min = _INF
        self._max = -_INF
        self._m2 = 0.0
        self._mean = 0.0

    @property
    def keep_samples(self) -> bool:
        """Whether the raw sample list (exact percentiles) is retained."""
        return self._samples is not None

    def add(self, value: float) -> None:
        """Record one latency sample (microseconds)."""
        self._count = count = self._count + 1
        self._sum += value
        # Welford's update keeps the variance numerically stable online.
        delta = value - self._mean
        self._mean += delta / count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        samples = self._samples
        if samples is not None:
            samples.append(value)
            self._sorted = None

    def extend(self, values: Sequence[float]) -> None:
        """Record many samples at once (single pass over the input).

        The input is materialized first, so one-shot iterables
        (generators) are safe: every aggregate and the retained sample
        list observe the same values.
        """
        values = list(values)
        if not values:
            return
        self._sum += sum(values)
        for value in values:
            self._count = count = self._count + 1
            delta = value - self._mean
            self._mean += delta / count
            self._m2 += delta * (value - self._mean)
        low = min(values)
        high = max(values)
        if low < self._min:
            self._min = low
        if high > self._max:
            self._max = high
        if self._samples is not None:
            self._samples.extend(values)
            self._sorted = None

    def merge(self, other: "LatencyStats") -> None:
        """Fold *other*'s samples into this recorder (it keeps its own).

        Safe against ``merge(self)``: the recorder is doubled rather
        than looping over a list that grows while it is read.  Merging a
        sample-free recorder into a sample-keeping one degrades this
        recorder to sample-free (the union's percentiles would silently
        lie otherwise).
        """
        if other is self:
            other = _snapshot(self)
        if other._count == 0:
            return
        count = self._count + other._count
        if self._count == 0:
            self._mean = other._mean
            self._m2 = other._m2
        else:
            # Chan et al. parallel combination of the two M2 aggregates.
            delta = other._mean - self._mean
            self._mean += delta * (other._count / count)
            self._m2 += other._m2 + delta * delta * (
                self._count * other._count / count
            )
        self._count = count
        self._sum += other._sum
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        if self._samples is not None:
            if other._samples is None:
                self._samples = None
                self._sorted = None
            else:
                self._samples.extend(other._samples)
                self._sorted = None

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest sample (0.0 when empty)."""
        return self._max if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the samples (0.0 when empty)."""
        return self._m2 / self._count if self._count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation of the samples (0.0 when empty)."""
        return math.sqrt(self.variance)

    def pct(self, fraction: float) -> float:
        """Percentile of the samples, e.g. ``pct(0.99)`` for p99.

        *fraction* must be in ``[0, 1]`` (ValueError otherwise), even
        on an empty recorder -- an out-of-range tail request is a
        caller bug regardless of whether samples have landed yet.
        Raises :class:`~repro.errors.SamplesUnavailableError` (a
        ``ValueError`` subclass) on a ``keep_samples=False`` recorder,
        where exact percentiles do not exist -- note a recorder can
        *become* sample-free by merging a sample-free peer in.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if self._count == 0:
            return 0.0
        if self._samples is None:
            raise SamplesUnavailableError(
                f"recorder {self.name!r} keeps no samples; exact "
                "percentiles are unavailable (keep_samples=False)"
            )
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return percentile(self._sorted, fraction)

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.pct(0.50)

    @property
    def p99(self) -> float:
        """99 % tail latency (the paper's headline tail metric)."""
        return self.pct(0.99)

    @property
    def p999(self) -> float:
        """99.9 % tail latency."""
        return self.pct(0.999)

    def samples(self) -> List[float]:
        """Copy of the raw samples (empty when ``keep_samples=False``)."""
        return list(self._samples) if self._samples is not None else []

    def state_dict(self) -> Dict[str, object]:
        """JSON-able checkpoint of every aggregate plus the samples.

        Round-trips exactly through :meth:`load_state` /
        :meth:`from_state`: counts, Welford terms, min/max, and (when
        kept) the raw sample list, so a restored recorder reports
        byte-identical means, variances, and percentiles.  Infinities
        (the empty recorder's min/max sentinels) are encoded as the
        count-0 state and re-derived on load, keeping the dict strict
        JSON.
        """
        state: Dict[str, object] = {
            "name": self.name,
            "count": self._count,
            "sum": self._sum,
            "m2": self._m2,
            "mean": self._mean,
        }
        if self._count:
            state["min"] = self._min
            state["max"] = self._max
        if self._samples is not None:
            state["samples"] = list(self._samples)
        return state

    def load_state(self, state: Dict[str, object]) -> None:
        """Overwrite this recorder with a :meth:`state_dict` checkpoint."""
        self.name = state["name"]
        self._count = int(state["count"])
        self._sum = float(state["sum"])
        self._m2 = float(state["m2"])
        self._mean = float(state["mean"])
        self._min = float(state["min"]) if self._count else _INF
        self._max = float(state["max"]) if self._count else -_INF
        samples = state.get("samples")
        self._samples = [float(v) for v in samples] \
            if samples is not None else None
        self._sorted = None

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "LatencyStats":
        """A fresh recorder rebuilt from a :meth:`state_dict` checkpoint."""
        stats = cls()
        stats.load_state(state)
        return stats

    def summary(self) -> Dict[str, float]:
        """Dict of the headline statistics for report tables.

        Sample-free recorders report their streaming aggregates with the
        percentile columns pinned to ``0.0``.
        """
        has_pct = self._samples is not None
        return {
            "count": float(self._count),
            "mean": self.mean,
            "p50": self.p50 if has_pct else 0.0,
            "p99": self.p99 if has_pct else 0.0,
            "p999": self.p999 if has_pct else 0.0,
            "max": self.max,
        }


def _snapshot(stats: LatencyStats) -> LatencyStats:
    """A frozen copy of *stats*' aggregates (used by self-merge)."""
    copy = LatencyStats(stats.name, keep_samples=stats.keep_samples)
    copy._count = stats._count
    copy._sum = stats._sum
    copy._min = stats._min
    copy._max = stats._max
    copy._m2 = stats._m2
    copy._mean = stats._mean
    if stats._samples is not None:
        copy._samples = list(stats._samples)
    return copy


class TimeBins:
    """Fixed-width time bins accumulating amounts (bytes, busy-us, counts).

    Used to reproduce the paper's per-millisecond I/O bandwidth and bus
    utilization timelines (Fig 2).  ``width`` is the bin width in
    microseconds (default 1000 us = 1 ms, matching the paper).
    """

    __slots__ = ("width", "_bins")

    def __init__(self, width: float = 1000.0):
        if width <= 0:
            raise ValueError(f"bin width must be positive, got {width}")
        self.width = width
        self._bins: Dict[int, float] = {}

    def add(self, time: float, amount: float) -> None:
        """Accumulate *amount* into the bin containing *time*."""
        index = int(time // self.width)
        bins = self._bins
        bins[index] = bins.get(index, 0.0) + amount

    def add_interval(self, start: float, end: float) -> None:
        """Spread an interval's duration across the bins it overlaps.

        Used for busy-time accounting: a transfer occupying ``[start,
        end)`` contributes its overlap length to each bin it crosses.
        """
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        width = self.width
        bins = self._bins
        index = int(start // width)
        last = int(end // width)
        if index == last:
            # Common case: the interval stays inside one bin.
            if end > start:
                bins[index] = bins.get(index, 0.0) + (end - start)
            return
        cursor = start
        while index <= last:
            bin_end = (index + 1) * width
            chunk = min(end, bin_end) - cursor
            if chunk > 0:
                bins[index] = bins.get(index, 0.0) + chunk
            cursor = bin_end
            index += 1

    def value_at(self, time: float) -> float:
        """Accumulated amount in the bin containing *time*."""
        return self._bins.get(int(time // self.width), 0.0)

    def series(self) -> Tuple[List[float], List[float]]:
        """``(bin_start_times, amounts)`` with gaps filled with zero."""
        if not self._bins:
            return [], []
        first = min(self._bins)
        last = max(self._bins)
        times = [index * self.width for index in range(first, last + 1)]
        values = [self._bins.get(index, 0.0) for index in range(first, last + 1)]
        return times, values

    def total(self) -> float:
        """Sum over all bins."""
        return sum(self._bins.values())

    def state_dict(self) -> Dict[str, object]:
        """JSON-able checkpoint: bin width plus ``[index, amount]`` pairs.

        Integer bin indices are emitted as explicit pairs (not dict
        keys) because JSON would silently stringify them.
        """
        return {
            "width": self.width,
            "bins": [[index, amount]
                     for index, amount in sorted(self._bins.items())],
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Overwrite these bins with a :meth:`state_dict` checkpoint."""
        self.width = float(state["width"])
        self._bins = {int(index): float(amount)
                      for index, amount in state["bins"]}


class Counter:
    """A named bag of monotonically increasing counters."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def incr(self, key: str, amount: float = 1.0) -> None:
        """Increase counter *key* by *amount*."""
        self._counts[key] = self._counts.get(key, 0.0) + amount

    def get(self, key: str) -> float:
        """Current value of counter *key* (0.0 if never incremented)."""
        return self._counts.get(key, 0.0)

    def merge(self, other: "Counter") -> None:
        """Add every counter of *other* into this bag."""
        for key, amount in other._counts.items():
            self.incr(key, amount)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def state_dict(self) -> Dict[str, float]:
        """JSON-able checkpoint (same shape as :meth:`as_dict`)."""
        return dict(self._counts)

    def load_state(self, state: Dict[str, float]) -> None:
        """Overwrite every counter with a :meth:`state_dict` checkpoint."""
        self._counts = {key: float(value) for key, value in state.items()}
