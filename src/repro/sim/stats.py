"""Measurement utilities: latency recorders, time-binned series, meters.

Everything the experiment harness reports -- bandwidth timelines,
utilization, tail latency -- is collected through these classes so that
model code stays free of reporting concerns.  The same primitives back
the parallel runner's own metrics (:mod:`repro.experiments.runner`):
:class:`LatencyStats` records per-point wall times and :class:`Counter`
tallies cache hits/misses, so simulated and harness measurements share
one reporting path.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LatencyStats", "TimeBins", "Counter", "percentile"]


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an **ascending-sorted** sequence.

    Uses the inclusive linear-interpolation definition (rank
    ``fraction * (n - 1)``, numpy's default ``"linear"`` method), so
    ``fraction=0.0`` / ``1.0`` return the smallest / largest sample
    exactly.  ``fraction`` is in ``[0, 1]`` -- pass 0.99 for the
    paper's 99 % tail.  Raises :class:`ValueError` on an empty
    sequence or an out-of-range fraction; the input order is **not**
    verified, callers must sort first (:meth:`LatencyStats.pct` does).
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    weight = rank - low
    return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * weight


class LatencyStats:
    """Accumulates samples and reports summary statistics.

    Units are the caller's: simulated request latencies arrive in
    microseconds, the experiment runner's per-point wall times in
    seconds.  Aggregates (:attr:`mean`, :attr:`max`, :attr:`min`,
    :meth:`pct`) return ``0.0`` on an empty recorder rather than
    raising, so report tables render before any sample lands.  The
    sorted view backing :meth:`pct` is cached and invalidated on every
    :meth:`add`/:meth:`extend`/:meth:`merge`.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._sum = 0.0

    def add(self, value: float) -> None:
        """Record one latency sample (microseconds)."""
        self._samples.append(value)
        self._sum += value
        self._sorted = None

    def extend(self, values: Sequence[float]) -> None:
        """Record many samples at once."""
        self._samples.extend(values)
        self._sum += sum(values)
        self._sorted = None

    def merge(self, other: "LatencyStats") -> None:
        """Fold *other*'s samples into this recorder (it keeps its own)."""
        self.extend(other._samples)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        return self._sum / len(self._samples) if self._samples else 0.0

    @property
    def max(self) -> float:
        """Largest sample (0.0 when empty)."""
        return max(self._samples) if self._samples else 0.0

    @property
    def min(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return min(self._samples) if self._samples else 0.0

    def pct(self, fraction: float) -> float:
        """Percentile of the samples, e.g. ``pct(0.99)`` for p99.

        *fraction* must be in ``[0, 1]`` (ValueError otherwise), even
        on an empty recorder -- an out-of-range tail request is a
        caller bug regardless of whether samples have landed yet.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return percentile(self._sorted, fraction)

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.pct(0.50)

    @property
    def p99(self) -> float:
        """99 % tail latency (the paper's headline tail metric)."""
        return self.pct(0.99)

    @property
    def p999(self) -> float:
        """99.9 % tail latency."""
        return self.pct(0.999)

    def samples(self) -> List[float]:
        """Copy of the raw samples."""
        return list(self._samples)

    def summary(self) -> Dict[str, float]:
        """Dict of the headline statistics for report tables."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
        }


class TimeBins:
    """Fixed-width time bins accumulating amounts (bytes, busy-us, counts).

    Used to reproduce the paper's per-millisecond I/O bandwidth and bus
    utilization timelines (Fig 2).  ``width`` is the bin width in
    microseconds (default 1000 us = 1 ms, matching the paper).
    """

    def __init__(self, width: float = 1000.0):
        if width <= 0:
            raise ValueError(f"bin width must be positive, got {width}")
        self.width = width
        self._bins: Dict[int, float] = {}

    def add(self, time: float, amount: float) -> None:
        """Accumulate *amount* into the bin containing *time*."""
        self._bins[int(time // self.width)] = (
            self._bins.get(int(time // self.width), 0.0) + amount
        )

    def add_interval(self, start: float, end: float) -> None:
        """Spread an interval's duration across the bins it overlaps.

        Used for busy-time accounting: a transfer occupying ``[start,
        end)`` contributes its overlap length to each bin it crosses.
        """
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        index = int(start // self.width)
        last = int(end // self.width)
        cursor = start
        while index <= last:
            bin_end = (index + 1) * self.width
            chunk = min(end, bin_end) - cursor
            if chunk > 0:
                self._bins[index] = self._bins.get(index, 0.0) + chunk
            cursor = bin_end
            index += 1

    def value_at(self, time: float) -> float:
        """Accumulated amount in the bin containing *time*."""
        return self._bins.get(int(time // self.width), 0.0)

    def series(self) -> Tuple[List[float], List[float]]:
        """``(bin_start_times, amounts)`` with gaps filled with zero."""
        if not self._bins:
            return [], []
        first = min(self._bins)
        last = max(self._bins)
        times = [index * self.width for index in range(first, last + 1)]
        values = [self._bins.get(index, 0.0) for index in range(first, last + 1)]
        return times, values

    def total(self) -> float:
        """Sum over all bins."""
        return sum(self._bins.values())


class Counter:
    """A named bag of monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def incr(self, key: str, amount: float = 1.0) -> None:
        """Increase counter *key* by *amount*."""
        self._counts[key] = self._counts.get(key, 0.0) + amount

    def get(self, key: str) -> float:
        """Current value of counter *key* (0.0 if never incremented)."""
        return self._counts.get(key, 0.0)

    def merge(self, other: "Counter") -> None:
        """Add every counter of *other* into this bag."""
        for key, amount in other._counts.items():
            self.incr(key, amount)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters."""
        return dict(self._counts)
