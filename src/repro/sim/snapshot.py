"""Small shared helpers for the checkpoint/restore protocol.

Every component that participates in checkpointing exposes a
``state_dict() -> dict`` / ``load_state(dict)`` pair returning strict
JSON (no tuples, no int dict keys, no NamedTuples).  This module holds
the two encodings that recur across layers:

* seeded ``random.Random`` streams (the backend's timing draws, the
  wear model's Gaussian limits, the reliability engine's Poisson
  sampling, the fault injector's Bernoulli rolls) -- captured with
  :func:`rng_state_dict` so a restored device continues the *same*
  deterministic stream instead of restarting it;
* dicts keyed by integers (block indices, page indices), which JSON
  would silently stringify -- round-tripped as ``[key, value]`` pairs
  by :func:`int_key_pairs` / :func:`pairs_to_int_dict`.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List

__all__ = [
    "int_key_pairs",
    "pairs_to_int_dict",
    "rng_load_state",
    "rng_state_dict",
]


def rng_state_dict(rng: random.Random) -> list:
    """JSON-able encoding of a ``random.Random`` stream position."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def rng_load_state(rng: random.Random, state: list) -> None:
    """Resume *rng* at a position captured by :func:`rng_state_dict`."""
    version, internal, gauss_next = state
    rng.setstate((version, tuple(internal), gauss_next))


def int_key_pairs(mapping: Dict[int, Any],
                  encode=lambda value: value) -> List[list]:
    """Sorted ``[key, encode(value)]`` pairs of an int-keyed dict."""
    return [[key, encode(value)] for key, value in sorted(mapping.items())]


def pairs_to_int_dict(pairs: Iterable[list],
                      decode=lambda value: value) -> Dict[int, Any]:
    """Inverse of :func:`int_key_pairs`."""
    return {int(key): decode(value) for key, value in pairs}
