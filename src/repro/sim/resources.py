"""Shared-resource primitives built on the DES kernel.

Three resources model every point of contention in the SSD:

* :class:`Resource` -- a counting semaphore with priority queueing.  Used
  for flash dies/planes (one operation at a time) and ECC engines.
* :class:`Link` -- a *serializing bandwidth* resource: a transfer occupies
  the link for ``bytes / bandwidth`` microseconds.  Used for the system
  bus, the flash bus channels, DRAM ports, and the dedicated dSSD_b bus.
* :class:`Store` -- a FIFO hand-off queue between producer and consumer
  processes.  Used for command queues inside flash controllers.

All completion notifications are kernel :class:`~repro.sim.kernel.Event`
objects, so processes simply ``yield`` them.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappush
from typing import Any, Deque, List, Optional, Tuple

from .kernel import Event, Simulator
from .stats import TimeBins

__all__ = ["Resource", "Link", "Store", "Transfer", "TokenPool"]


def _register(sim: Simulator, resource: Any) -> None:
    # Register for quiescence diagnostics; guarded so duck-typed test
    # doubles without a registry still work.
    register = getattr(sim, "register_resource", None)
    if register is not None:
        register(resource)


class Resource:
    """A counting semaphore with priority-ordered FIFO queueing.

    Lower ``priority`` values are served first; ties are FIFO.  A holder
    must call :meth:`release` exactly once per granted request.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: List[Tuple[int, int, Event]] = []
        self._cancelled: set = set()
        self._seq = 0
        self._owners: dict = {}
        _register(sim, self)

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters) - len(self._cancelled)

    def request(self, priority: int = 0, owner: str = "") -> Event:
        """Ask for a slot; the returned event fires when granted.

        *owner* optionally labels the hold for quiescence diagnostics
        (see :meth:`outstanding_summary`).  Owner-labelled holds should
        be returned via :meth:`cancel` (the exception-safe pattern) so
        the label is cleared precisely; a plain :meth:`release` drops
        the oldest label, which is best-effort only.
        """
        grant = self.sim.event()
        if owner:
            self._owners[grant] = owner
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.trigger(self)
        else:
            self._seq += 1
            heapq.heappush(self._waiters, (priority, self._seq, grant))
        return grant

    def release(self) -> None:
        """Return a slot, waking the highest-priority waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release on idle resource {self.name!r}")
        if self._owners:
            self._owners.pop(next(iter(self._owners)))
        self._release_slot()

    def _release_slot(self) -> None:
        while self._waiters:
            _prio, _seq, grant = heapq.heappop(self._waiters)
            if grant in self._cancelled:
                self._cancelled.discard(grant)
                continue
            grant.trigger(self)
            return
        self._in_use -= 1

    def cancel(self, grant: Event) -> None:
        """Abandon a request, whether or not it has been granted yet.

        The exception-safety primitive: a holder interrupted between
        ``request()`` and ``release()`` calls this from a ``finally``.
        If the grant already fired the slot is released; if it is still
        queued it is lazily discarded so a later :meth:`release` does
        not wake a waiter that no longer exists.
        """
        self._owners.pop(grant, None)
        if grant._triggered:
            if self._in_use <= 0:
                raise RuntimeError(
                    f"release on idle resource {self.name!r}")
            self._release_slot()
        elif grant not in self._cancelled:
            self._cancelled.add(grant)

    def acquire(self, priority: int = 0):
        """Generator helper: ``yield from resource.acquire()``."""
        yield self.request(priority)

    def outstanding_summary(self) -> Optional[str]:
        """One-line description of held slots/waiters, or None if idle."""
        queued = self.queue_length
        if not self._in_use and queued <= 0:
            return None
        message = (f"Resource {self.name or '<anonymous>'!r}: "
                   f"{self._in_use}/{self.capacity} slot(s) held")
        owners = sorted(str(owner) for grant, owner in self._owners.items()
                        if grant._triggered)
        if owners:
            message += f" (owners: {', '.join(owners)})"
        if queued > 0:
            message += f", {queued} request(s) waiting"
        return message


class TokenPool:
    """A counted semaphore: acquire/release *n* tokens at a time.

    Grants are strictly FIFO -- a large request at the head of the queue
    blocks smaller later ones -- which models credit-based flow control
    (router input buffers) without starvation.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._available = capacity
        self._waiters: Deque[Tuple[int, Event]] = deque()
        self._owners: dict = {}
        _register(sim, self)

    @property
    def available(self) -> int:
        """Tokens currently free."""
        return self._available

    @property
    def queue_length(self) -> int:
        """Number of pending acquire requests."""
        return len(self._waiters)

    def acquire(self, n: int = 1, owner: str = "") -> Event:
        """Request *n* tokens; the event fires when they are granted.

        *owner* optionally labels the hold for quiescence diagnostics;
        owner-labelled holds should be returned via :meth:`cancel` so
        the label is cleared precisely (a plain :meth:`release` drops
        the oldest label, best-effort only).
        """
        if n < 1:
            raise ValueError(f"must acquire >= 1 token, got {n}")
        if n > self.capacity:
            raise ValueError(
                f"request of {n} tokens exceeds capacity {self.capacity}"
            )
        grant = self.sim.event()
        if owner:
            self._owners[grant] = owner
        if not self._waiters and self._available >= n:
            self._available -= n
            grant.trigger(n)
        else:
            self._waiters.append((n, grant))
        return grant

    def release(self, n: int = 1) -> None:
        """Return *n* tokens and grant queued requests in FIFO order."""
        if n < 1:
            raise ValueError(f"must release >= 1 token, got {n}")
        if self._owners:
            self._owners.pop(next(iter(self._owners)))
        self._release_tokens(n)

    def _release_tokens(self, n: int) -> None:
        self._available += n
        if self._available > self.capacity:
            raise RuntimeError(
                f"token pool {self.name!r} over-released "
                f"({self._available}/{self.capacity})"
            )
        while self._waiters and self._available >= self._waiters[0][0]:
            count, grant = self._waiters.popleft()
            self._available -= count
            grant.trigger(count)

    def cancel(self, grant: Event) -> None:
        """Abandon an acquire, whether or not it has been granted yet.

        If the grant already fired, its token count (the grant value) is
        returned to the pool; if it is still queued it is removed so the
        tokens are never handed out.
        """
        self._owners.pop(grant, None)
        if grant._triggered:
            self._release_tokens(grant.value)
            return
        for index, (_count, waiting) in enumerate(self._waiters):
            if waiting is grant:
                del self._waiters[index]
                break
        # Removing a head-of-line request may unblock smaller ones.
        while self._waiters and self._available >= self._waiters[0][0]:
            count, waiting = self._waiters.popleft()
            self._available -= count
            waiting.trigger(count)

    def outstanding_summary(self) -> Optional[str]:
        """One-line description of held tokens/waiters, or None if idle."""
        held = self.capacity - self._available
        waiting = len(self._waiters)
        if held <= 0 and waiting == 0:
            return None
        message = (f"TokenPool {self.name or '<anonymous>'!r}: "
                   f"{held}/{self.capacity} token(s) held")
        owners = sorted(str(owner) for grant, owner in self._owners.items()
                        if grant._triggered)
        if owners:
            message += f" (owners: {', '.join(owners)})"
        if waiting:
            message += f", {waiting} acquire(s) waiting"
        return message


class Transfer:
    """A pending or in-flight transfer on a :class:`Link`."""

    __slots__ = ("nbytes", "traffic_class", "priority", "done", "enqueued_at",
                 "started_at", "start_event")

    def __init__(self, nbytes: int, traffic_class: str, priority: int,
                 done: Event, enqueued_at: float,
                 start_event: Optional[Event] = None):
        self.nbytes = nbytes
        self.traffic_class = traffic_class
        self.priority = priority
        self.done = done
        self.enqueued_at = enqueued_at
        self.started_at: Optional[float] = None
        self.start_event = start_event


class Link:
    """A serializing, bandwidth-limited data link.

    ``bandwidth`` is in **bytes per microsecond** (1 GB/s == 1000 B/us,
    using decimal giga to match the paper's GB/s figures).  Transfers are
    served one at a time; each occupies the link for
    ``nbytes / bandwidth`` us.  Per-traffic-class busy time and byte
    counts are accumulated into :class:`~repro.sim.stats.TimeBins` so the
    experiments can plot utilization and bandwidth timelines (paper
    Fig 2(c,d), Fig 7(b)).
    """

    def __init__(self, sim: Simulator, bandwidth: float, name: str = "",
                 bin_width: float = 1000.0):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.name = name
        self._busy = False
        self._queue: List[Tuple[int, int, Transfer]] = []
        self._seq = 0
        _register(sim, self)
        self.busy_bins = TimeBins(bin_width)
        self.byte_bins: dict = {}
        self.busy_time: dict = {}
        self.bytes_moved: dict = {}
        self.wait_stats: dict = {}
        # One bound method reused for every completion push instead of a
        # fresh allocation per transfer in _start.
        self._finish_cb = self._finish

    @property
    def queue_length(self) -> int:
        """Number of transfers waiting behind the in-flight one."""
        return len(self._queue)

    @property
    def is_busy(self) -> bool:
        """Whether a transfer is currently occupying the link."""
        return self._busy

    def outstanding_summary(self) -> Optional[str]:
        """One-line description of in-flight work, or None if idle."""
        if not self._busy and not self._queue:
            return None
        message = f"Link {self.name or '<anonymous>'!r}: "
        message += "transfer in flight" if self._busy else "idle"
        if self._queue:
            message += f", {len(self._queue)} queued"
        return message

    def occupancy(self, nbytes: int) -> float:
        """Service time in microseconds for an *nbytes* transfer."""
        return nbytes / self.bandwidth

    def transfer(self, nbytes: int, traffic_class: str = "io",
                 priority: int = 0) -> Event:
        """Queue a transfer; the returned event fires on completion.

        The event value is the queueing delay (time spent waiting for the
        link before service began), which latency-breakdown experiments
        use to attribute contention to this link.
        """
        if nbytes <= 0:
            raise ValueError(f"transfer size must be positive, got {nbytes}")
        done = self.sim.event()
        item = Transfer(nbytes, traffic_class, priority, done, self.sim._now)
        if self._busy:
            self._seq += 1
            heapq.heappush(self._queue, (priority, self._seq, item))
        else:
            self._start(item)
        return done

    def transfer_with_start(self, nbytes: int, traffic_class: str = "io",
                            priority: int = 0) -> Tuple[Event, Event]:
        """Like :meth:`transfer`, also returning a service-start event.

        Returns ``(start, done)``: *start* fires the moment the link
        begins serving this transfer (after any queueing), *done* fires
        at completion.  Cut-through NoC hops use *start* to forward the
        packet header while the tail is still serializing.
        """
        if nbytes <= 0:
            raise ValueError(f"transfer size must be positive, got {nbytes}")
        done = self.sim.event()
        start = self.sim.event()
        item = Transfer(nbytes, traffic_class, priority, done, self.sim._now,
                        start_event=start)
        if self._busy:
            self._seq += 1
            heapq.heappush(self._queue, (priority, self._seq, item))
        else:
            self._start(item)
        return start, done

    def _start(self, item: Transfer) -> None:
        self._busy = True
        sim = self.sim
        start = sim._now
        item.started_at = start
        if item.start_event is not None:
            item.start_event.trigger(start)
        nbytes = item.nbytes
        duration = nbytes / self.bandwidth
        end = start + duration
        self.busy_bins.add_interval(start, end)
        cls = item.traffic_class
        busy_time = self.busy_time
        busy_time[cls] = busy_time.get(cls, 0.0) + duration
        bytes_moved = self.bytes_moved
        bytes_moved[cls] = bytes_moved.get(cls, 0) + nbytes
        bins = self.byte_bins.get(cls)
        if bins is None:
            bins = self.byte_bins[cls] = TimeBins(self.busy_bins.width)
        bins.add(start, nbytes)
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (end, seq, self._finish_cb, (item,)))

    def _finish(self, item: Transfer) -> None:
        self._busy = False
        started = item.started_at
        wait = (started if started is not None else item.enqueued_at) \
            - item.enqueued_at
        stats = self.wait_stats.get(item.traffic_class)
        if stats is None:
            stats = self.wait_stats[item.traffic_class] = [0, 0.0]
        stats[0] += 1
        stats[1] += wait
        if self._queue:
            _prio, _seq, nxt = heapq.heappop(self._queue)
            self._start(nxt)
        item.done.trigger(wait)

    # -- reporting ----------------------------------------------------------

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time the link was busy over ``[0, horizon]``."""
        horizon = horizon if horizon is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        busy = sum(self.busy_time.values())
        return min(1.0, busy / horizon)

    def class_utilization(self, traffic_class: str,
                          horizon: Optional[float] = None) -> float:
        """Fraction of time the link was busy with one traffic class."""
        horizon = horizon if horizon is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time.get(traffic_class, 0.0) / horizon)

    def mean_wait(self, traffic_class: str) -> float:
        """Average queueing delay observed by one traffic class."""
        stats = self.wait_stats.get(traffic_class)
        if not stats or stats[0] == 0:
            return 0.0
        return stats[1] / stats[0]

    def bandwidth_timeline(self, traffic_class: str):
        """``(times, bytes_per_us)`` series for one traffic class."""
        bins = self.byte_bins.get(traffic_class)
        if bins is None:
            return [], []
        times, totals = bins.series()
        return times, [total / bins.width for total in totals]

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint the link's accumulated meters (idle links only).

        In-flight or queued transfers hold generator state that cannot
        be serialized, so snapshotting a busy link is an error -- the
        checkpoint layer only runs at device quiescence, where every
        link is idle by construction.
        """
        if self._busy or self._queue:
            raise RuntimeError(
                f"cannot snapshot busy link {self.name!r} "
                f"(queued={len(self._queue)})"
            )
        return {
            "busy_bins": self.busy_bins.state_dict(),
            "byte_bins": {cls: bins.state_dict()
                          for cls, bins in self.byte_bins.items()},
            "busy_time": dict(self.busy_time),
            "bytes_moved": dict(self.bytes_moved),
            "wait_stats": {cls: list(stats)
                           for cls, stats in self.wait_stats.items()},
        }

    def load_state(self, state: dict) -> None:
        """Restore meters captured by :meth:`state_dict`."""
        self.busy_bins.load_state(state["busy_bins"])
        self.byte_bins = {}
        for cls, bins_state in state["byte_bins"].items():
            bins = TimeBins(self.busy_bins.width)
            bins.load_state(bins_state)
            self.byte_bins[cls] = bins
        self.busy_time = {cls: float(v)
                          for cls, v in state["busy_time"].items()}
        self.bytes_moved = {cls: int(v)
                            for cls, v in state["bytes_moved"].items()}
        self.wait_stats = {cls: [int(stats[0]), float(stats[1])]
                           for cls, stats in state["wait_stats"].items()}


class Store:
    """An unbounded FIFO queue connecting processes.

    ``put`` never blocks; ``get`` returns an event that fires with the
    oldest item once one is available.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        _register(sim, self)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit *item*, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next available item."""
        evt = self.sim.event()
        if self._items:
            evt.trigger(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt

    def peek_all(self) -> list:
        """Snapshot of queued items (oldest first) without removal."""
        return list(self._items)

    def outstanding_summary(self) -> Optional[str]:
        """Undelivered items, or None.  Parked getters are normal idle
        state (consumer processes waiting for work), so only queued
        items count as outstanding."""
        if not self._items:
            return None
        return (f"Store {self.name or '<anonymous>'!r}: "
                f"{len(self._items)} item(s) queued")
