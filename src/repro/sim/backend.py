"""Kernel backend selection: pure Python, compiled twin, or legacy.

The DES kernel ships as canonical pure-Python source
(:mod:`repro.sim.kernel`).  ``tools/build_fast_backend.py`` can compile
a byte-identical twin of that module — concatenated with the contention
layer (``sim/resources.py``) and the fNoC fabric (``noc/network.py``) —
with mypyc (or Cython) into the optional extension module
``repro.sim._kernel_fast``; when present, the ``fast`` backend
instantiates the twin's ``Simulator`` instead, and the Simulator's
model-layer factories (``resource()``/``link()``/``fnoc()``/…) hand out
the compiled primitive classes.  Both backends produce identical
simulated timing — the twin is *generated from* the canonical modules,
never hand-edited — so experiment outputs are byte-identical and the
equivalence suite runs against both.  :func:`compiled_layers` reports
which layers a built twin actually covers.

Backend names:

``auto``
    Default.  Consults the ``REPRO_DSSD_BACKEND`` environment variable
    (so ``repro --backend fast`` propagates into worker processes),
    then picks ``fast`` when the compiled module is importable and
    actually compiled, else ``pure``.
``pure``
    The canonical interpreter kernel.  Explicitly pinning ``pure``
    (as the fuzz executor does) wins over the environment variable:
    coverage tracing cannot see compiled frames, so the fuzzer must
    never silently run compiled.
``fast``
    The compiled twin.  Falls back to ``pure`` with a one-time stderr
    warning when the extension is absent — a missing optional build
    must never change results, only speed.
``legacy``
    ``Simulator(direct_resume=False)``: the PR-4 callback-list path,
    kept as the in-tree equivalence oracle and benchmark baseline.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import sys
from typing import Tuple

from .kernel import Simulator

__all__ = [
    "BACKENDS",
    "ENV_VAR",
    "FAST_MODULE",
    "fast_backend_status",
    "compiled_layers",
    "resolve_backend",
    "make_simulator",
]

#: Recognised backend names, in documentation order.
BACKENDS = ("auto", "pure", "fast", "legacy")

#: Environment override consulted when the requested backend is "auto".
ENV_VAR = "REPRO_DSSD_BACKEND"

#: Dotted name of the optional compiled twin extension.
FAST_MODULE = "repro.sim._kernel_fast"

_warned_missing_fast = False


def fast_backend_status() -> Tuple[bool, str]:
    """``(available, detail)`` for the compiled backend.

    Available only when :data:`FAST_MODULE` resolves to a real compiled
    extension (``.so``/``.pyd``).  A stray interpreted
    ``_kernel_fast.py`` (e.g. a build that copied the source but never
    compiled) is rejected: running the twin through the interpreter
    would silently report ``fast`` while delivering ``pure`` speed.
    """
    try:
        spec = importlib.util.find_spec(FAST_MODULE)
    except (ImportError, ValueError):
        return False, f"{FAST_MODULE} not importable"
    if spec is None:
        return False, f"{FAST_MODULE} not installed (optional build)"
    origin = spec.origin or ""
    if not origin.endswith((".so", ".pyd")):
        return False, f"{FAST_MODULE} present but not compiled: {origin}"
    return True, origin


def compiled_layers() -> Tuple[str, ...]:
    """Model layers the installed compiled twin covers, by probe.

    Returns a tuple drawn from ``("kernel", "resources", "noc")`` —
    empty when no compiled backend is installed.  Probed by attribute
    (an older single-module twin would report only ``kernel``), so
    provenance records what the extension actually contains rather than
    what the current generator would emit.
    """
    if not fast_backend_status()[0]:
        return ()
    module = importlib.import_module(FAST_MODULE)
    layers = ["kernel"]
    if hasattr(module, "Resource") and hasattr(module, "Link"):
        layers.append("resources")
    if hasattr(module, "FNoC"):
        layers.append("noc")
    return tuple(layers)


def resolve_backend(requested: str = "auto") -> str:
    """Resolve *requested* to a concrete backend name.

    ``auto`` consults :data:`ENV_VAR` and then availability; explicit
    names win over the environment.  An explicit ``fast`` request
    degrades to ``pure`` (with a one-time warning) when the compiled
    module is absent; every other name resolves to itself.
    """
    global _warned_missing_fast
    if requested == "auto":
        requested = os.environ.get(ENV_VAR, "auto").strip() or "auto"
    if requested not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {requested!r}; "
            f"available: {', '.join(BACKENDS)}"
        )
    if requested == "auto":
        return "fast" if fast_backend_status()[0] else "pure"
    if requested == "fast":
        available, detail = fast_backend_status()
        if not available:
            if not _warned_missing_fast:
                _warned_missing_fast = True
                print(f"repro: fast kernel backend unavailable "
                      f"({detail}); falling back to pure",
                      file=sys.stderr)
            return "pure"
    return requested


def make_simulator(backend: str = "auto") -> Tuple[Simulator, str]:
    """Build a simulator for *backend*; returns ``(sim, resolved)``.

    *resolved* is the concrete backend actually in use (``pure``,
    ``fast``, or ``legacy``) so callers can record provenance.
    """
    resolved = resolve_backend(backend)
    if resolved == "fast":
        module = importlib.import_module(FAST_MODULE)
        return module.Simulator(), "fast"
    if resolved == "legacy":
        return Simulator(direct_resume=False), "legacy"
    return Simulator(), "pure"
