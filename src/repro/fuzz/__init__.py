"""Coverage-guided workload fuzzer over NVMe command sequences.

The scenario-discovery engine the ROADMAP names: a typed genome of
NVMe-level operations (:mod:`~repro.fuzz.genome`) is mutated by seeded
structural mutators (:mod:`~repro.fuzz.mutate`), replayed through the
real :class:`~repro.core.ssd.SimulatedSSD` datapath
(:mod:`~repro.fuzz.executor`), and scored by branch-edge coverage of
the FTL/QoS/reliability code plus semantic device-state features
(:mod:`~repro.fuzz.coverage`).  Novel genomes enter a content-addressed
corpus (:mod:`~repro.fuzz.corpus`); invariant oracles
(:mod:`~repro.fuzz.oracles`) trip on deadlock, leaked holds at
quiescence, mapping inconsistencies, QoS accounting errors, latency
cliffs, and snapshot-restore divergence; any tripping sequence is
ddmin-shrunk (:mod:`~repro.fuzz.minimize`) into a self-contained JSON
repro replayable via ``repro fuzz repro <case.json>``.

Everything is deterministic: the same seed produces the same corpus
(byte-identical content hash) for any ``--jobs`` setting, because each
generation's candidate batch is derived from the seeded RNG *before*
any execution is dispatched and results are folded in batch order.
"""

from .corpus import Corpus
from .engine import FuzzReport, run_fuzz
from .executor import execute
from .genome import FuzzOp, Genome, GenomeConfig
from .minimize import ddmin
from .mutate import mutate

__all__ = [
    "Corpus",
    "FuzzOp",
    "FuzzReport",
    "Genome",
    "GenomeConfig",
    "ddmin",
    "execute",
    "mutate",
    "run_fuzz",
]
