"""Coverage-map corpus: dedup, scheduling, and on-disk persistence.

A genome earns a corpus slot only when its execution contributed at
least one coverage edge or semantic feature the corpus has not seen --
the standard AFL "is interesting" rule.  Entries are content-addressed
(:meth:`~repro.fuzz.genome.Genome.content_hash`) and optionally
persisted as ``<hash>.json`` under ``cache_dir()/fuzz/<run-name>/``, the
same content-addressed cache root the experiment runner and fleet
snapshots use.

:meth:`Corpus.content_hash` -- a SHA-256 over the sorted entry hashes --
is the determinism acceptance metric: two runs with the same seed must
produce identical corpus hashes regardless of ``--jobs``.
"""

from __future__ import annotations

import hashlib
import random
from pathlib import Path
from typing import Iterable, List, Optional, Set

from .genome import Genome

__all__ = ["Corpus", "CorpusEntry", "default_corpus_root"]


def default_corpus_root(run_name: str) -> Path:
    """On-disk corpus directory under the shared result cache."""
    from ..experiments.runner import cache_dir

    return cache_dir() / "fuzz" / run_name


class CorpusEntry:
    """One kept genome plus the novelty it bought."""

    __slots__ = ("genome", "hash", "new_coverage")

    def __init__(self, genome: Genome, new_coverage: int):
        self.genome = genome
        self.hash = genome.content_hash()
        self.new_coverage = new_coverage


class Corpus:
    """Insertion-ordered corpus with a global coverage map."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else None
        self.entries: List[CorpusEntry] = []
        self.seen: Set[str] = set()
        self._hashes: Set[str] = set()
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def coverage_size(self) -> int:
        """Distinct edges + features observed across all executions."""
        return len(self.seen)

    def consider(self, genome: Genome, coverage: Iterable[str]) -> bool:
        """Fold one execution's coverage; keep the genome if novel.

        Returns True when the genome entered the corpus.  Coverage is
        always folded into the global map even when the genome is
        dropped, so novelty is measured against everything ever seen.
        """
        coverage = set(coverage)
        new = coverage - self.seen
        self.seen |= coverage
        if not new:
            return False
        digest = genome.content_hash()
        if digest in self._hashes:
            return False
        self._hashes.add(digest)
        self.entries.append(CorpusEntry(genome, len(new)))
        if self.root is not None:
            path = self.root / f"{digest}.json"
            if not path.exists():
                path.write_text(genome.to_json())
        return True

    def pick(self, rng: random.Random) -> Genome:
        """Choose a mutation parent, weighted toward high-novelty finds."""
        if not self.entries:
            raise IndexError("cannot pick from an empty corpus")
        weights = [1 + entry.new_coverage for entry in self.entries]
        return rng.choices(self.entries, weights=weights, k=1)[0].genome

    def content_hash(self) -> str:
        """Order-independent digest of the kept genomes.

        Identical corpora (as sets of genomes) hash identically no
        matter the discovery order, which is what the smoke-mode
        determinism gate compares across runs and ``--jobs`` settings.
        """
        payload = "\n".join(sorted(entry.hash for entry in self.entries))
        return hashlib.sha256(payload.encode()).hexdigest()
