"""Architecture-invariant end-state canonicalization for differential runs.

The paper's functional claim is that decoupling the flash controllers
behind a network changes *when* things happen, never *what* the device
ends up storing.  :func:`canonical_state` projects a drained device
onto exactly the state that claim covers, and :func:`diff` compares two
projections field by field -- any mismatch between a ``baseline`` and a
``dssd`` run of the same op sequence is an ``arch_divergence`` finding.

What the projection **includes** (architecture-invariant by design):

* the set of mapped LPNs -- the device's logical contents.  Which LPNs
  hold data after a drained op sequence is a pure function of the
  admission order of writes and trims, which both architectures share;
* host-visible completion counts: requests completed, trims processed,
  host submitted/completed, and per-tenant arrival/admission counters
  (completion counts are skipped under ``drop_on_full``, where *which*
  op gets dropped is a timing artifact);
* the terminal status, with exceptions normalized to their type -- a
  crash on one architecture only is itself a divergence;
* reliability verdicts that change logical contents: bad blocks
  retired, spares remapped, pages lost as uncorrectable.

What it deliberately **excludes** (timing- or placement-dependent):

* physical page numbers, wear counts, free-pool order, GC statistics --
  where data lands is the architectures' prerogative;
* latency recorders, NoC/bus/ECC meters, DRAM-buffer occupancy;
* anything mid-flight (callers drain or power-cut first).

Differential pairs must run with the reliability RNG disabled
(``base_rber == fault_rate == 0``): error injection consumes random
draws in datapath-timing order, so identical media would still see
different fault sequences across architectures.  The executor zeroes
both knobs when it builds the pair.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["canonical_state", "diff"]


def _exception_type(detail: str) -> str:
    """Normalize an exception detail line to its type name.

    The executor records ``traceback.format_exception_only`` output
    (``"SomeError: message"``); messages may embed timing or addresses,
    so only the type participates in cross-architecture comparison.
    """
    return detail.split(":", 1)[0].strip()


def canonical_state(ssd, status: str, detail: str = "") -> dict:
    """Project *ssd*'s end state onto its architecture-invariant core."""
    ftl = ssd.ftl
    state = {
        "status": status,
        "error": _exception_type(detail) if status == "exception" else "",
        "mapped_lpns": sorted(lpn for lpn, _ in
                              ftl.mapping.state_dict()["forward"]),
        "requests_completed": ftl.requests_completed,
        "trims_processed": ftl.trims_processed,
        "host_submitted": ssd.host.submitted,
        "host_completed": ssd.host.completed,
        "bad_blocks": ssd.blocks.bad_blocks,
        "tenants": [],
    }
    if ssd.reliability is not None:
        state["blocks_retired"] = ssd.reliability.badblocks.retired_blocks
        state["blocks_remapped"] = ssd.reliability.badblocks.remapped_blocks
        state["uncorrectable_pages"] = ssd.reliability.uncorrectable_pages
    else:
        state["blocks_retired"] = 0
        state["blocks_remapped"] = 0
        state["uncorrectable_pages"] = 0
    frontend = ssd.frontend
    if frontend is not None:
        drop_on_full = any(
            spec.qos is not None and spec.qos.drop_on_full
            for spec in frontend.tenants
        )
        for stats in frontend.stats:
            tenant = {"name": stats.name, "arrivals": stats.arrivals}
            if not drop_on_full:
                # Which op a full queue drops is a timing artifact, so
                # admission/completion only count when nothing drops.
                tenant["admitted"] = stats.admitted
                tenant["completed"] = stats.completed
            state["tenants"].append(tenant)
    return state


def diff(a: dict, b: dict,
         labels: Optional[tuple] = None) -> List[str]:
    """Field-by-field comparison of two :func:`canonical_state` dicts.

    Returns one human-readable line per mismatched field (empty list
    means the end states are functionally identical).  ``labels`` names
    the two sides in the output (default ``("a", "b")``).
    """
    name_a, name_b = labels if labels is not None else ("a", "b")
    lines: List[str] = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va == vb:
            continue
        if key == "mapped_lpns":
            only_a = sorted(set(va or []) - set(vb or []))
            only_b = sorted(set(vb or []) - set(va or []))
            lines.append(
                f"mapped_lpns differ: {len(only_a)} LPN(s) only in "
                f"{name_a} {only_a[:8]}, {len(only_b)} only in "
                f"{name_b} {only_b[:8]}")
        else:
            lines.append(f"{key}: {name_a}={va!r} != {name_b}={vb!r}")
    return lines
