"""Test-only canary bugs injected behind hidden environment flags.

**Leaked-hold canary** (``REPRO_DSSD_FUZZ_CANARY``): the executor
installs a wrapper that reproduces the PR-3 bug class on purpose: a
TRIM of 5+ pages silently steals one host queue slot and never returns
it -- exactly the kind of interrupt-path leak the checkpoint quiescence
guards and the fuzzer's leaked-hold oracle exist to catch.
``tests/test_fuzz.py`` asserts the fuzzer discovers this within a
bounded execution budget and ddmin-shrinks it to a handful of ops; with
the flag unset the minimized repro must replay clean.

**Differential canary** (``REPRO_DSSD_FUZZ_DIFF_CANARY``): a seeded
*cross-architecture* bug for validating the differential harness.  On
the ``baseline`` preset only, a TRIM of 4+ pages is quietly shortened
by one page -- the classic off-by-one in a range deallocation.  Both
architectures stay individually self-consistent (every per-arch oracle
passes), so only the baseline-vs-dssd end-state comparison can see it:
the last trimmed LPN stays mapped on baseline and unmapped on dssd,
an ``arch_divergence`` the fuzzer must find and shrink to a single op.

Never set these flags outside the validation tests.
"""

from __future__ import annotations

import os

__all__ = ["CANARY_ENV", "DIFF_CANARY_ENV", "canary_enabled",
           "diff_canary_enabled", "maybe_install"]

CANARY_ENV = "REPRO_DSSD_FUZZ_CANARY"
DIFF_CANARY_ENV = "REPRO_DSSD_FUZZ_DIFF_CANARY"


def canary_enabled() -> bool:
    """Whether the hidden leaked-hold bug should be injected."""
    return os.environ.get(CANARY_ENV, "") == "1"


def diff_canary_enabled() -> bool:
    """Whether the hidden baseline-only trim off-by-one is injected."""
    return os.environ.get(DIFF_CANARY_ENV, "") == "1"


def maybe_install(ssd) -> None:
    """Wrap ``ssd.ftl.submit`` with the enabled canary bugs (if any)."""
    if canary_enabled():
        _install_leak(ssd)
    if diff_canary_enabled() and ssd.config.arch.value == "baseline":
        _install_trim_off_by_one(ssd)


def _install_leak(ssd) -> None:
    from ..ftl.request import TRIM

    real_submit = ssd.ftl.submit
    slots = ssd.host._slots

    def leaky_submit(request):
        if request.op == TRIM and request.n_pages >= 5:
            # The bug: an extra slot acquired on a side path with no
            # matching release/cancel.  The grant fires immediately
            # whenever a slot is free and is then dropped on the floor.
            slots.acquire(1, owner="canary-leak")
        return real_submit(request)

    ssd.ftl.submit = leaky_submit


def _install_trim_off_by_one(ssd) -> None:
    from ..ftl.request import TRIM

    real_submit = ssd.ftl.submit

    def short_trim_submit(request):
        if request.op == TRIM and request.n_pages >= 4:
            # The bug: the deallocation loop runs one page short, so
            # the final LPN of the range survives the trim -- but only
            # on this architecture.
            request.n_pages -= 1
        return real_submit(request)

    ssd.ftl.submit = short_trim_submit
