"""Test-only canary bug: a deliberately leaked queue slot.

When the hidden ``REPRO_DSSD_FUZZ_CANARY`` environment flag is set, the
executor installs a wrapper that reproduces the PR-3 bug class on
purpose: a TRIM of 5+ pages silently steals one host queue slot and
never returns it -- exactly the kind of interrupt-path leak the
checkpoint quiescence guards and the fuzzer's leaked-hold oracle exist
to catch.  ``tests/test_fuzz.py`` asserts the fuzzer discovers this
within a bounded execution budget and ddmin-shrinks it to a handful of
ops; with the flag unset the minimized repro must replay clean.

Never set this flag outside the validation tests.
"""

from __future__ import annotations

import os

__all__ = ["CANARY_ENV", "canary_enabled", "maybe_install"]

CANARY_ENV = "REPRO_DSSD_FUZZ_CANARY"


def canary_enabled() -> bool:
    """Whether the hidden leaked-hold bug should be injected."""
    return os.environ.get(CANARY_ENV, "") == "1"


def maybe_install(ssd) -> None:
    """Wrap ``ssd.ftl.submit`` with the leaky TRIM path when enabled."""
    if not canary_enabled():
        return
    from ..ftl.request import TRIM

    real_submit = ssd.ftl.submit
    slots = ssd.host._slots

    def leaky_submit(request):
        if request.op == TRIM and request.n_pages >= 5:
            # The bug: an extra slot acquired on a side path with no
            # matching release/cancel.  The grant fires immediately
            # whenever a slot is free and is then dropped on the floor.
            slots.acquire(1, owner="canary-leak")
        return real_submit(request)

    ssd.ftl.submit = leaky_submit
