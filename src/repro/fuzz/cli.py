"""The ``repro fuzz`` command-line verb.

Usage::

    python -m repro fuzz --smoke --seed 7      # deterministic CI gate
    python -m repro fuzz --execs 500 --jobs 4  # longer exploration
    python -m repro fuzz --time 60             # wall-clock budget
    python -m repro fuzz repro case.json       # replay a saved repro

Exit codes: 0 when no oracle tripped (or a replayed repro no longer
reproduces), 1 when a violation was found (or a replay still
reproduces), 2 when a ``--smoke`` run misses its pinned coverage floor.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .engine import SMOKE_EXECS, SMOKE_MIN_EDGES, run_fuzz
from .executor import execute
from .genome import ARCHES, Genome

__all__ = ["main", "replay_case"]


def replay_case(path: Path) -> dict:
    """Replay a saved repro case; returns the execution outcome."""
    case = json.loads(Path(path).read_text())
    genome = Genome.from_dict(case["genome"])
    return execute(genome, collect_coverage=False)


def _run_repro(path: str) -> int:
    case = json.loads(Path(path).read_text())
    oracle = case.get("oracle")
    outcome = replay_case(Path(path))
    tripped = [v for v in outcome["violations"]
               if oracle is None or v["oracle"] == oracle]
    print(f"replayed {path}: status={outcome['status']}")
    for violation in outcome["violations"]:
        print(f"  violation: {violation['oracle']}: {violation['detail']}")
    if tripped:
        print(f"repro CONFIRMED ({oracle or 'any oracle'})")
        return 1
    print("repro no longer triggers (fixed?)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "repro":
        if len(argv) != 2:
            print("usage: repro fuzz repro <case.json>", file=sys.stderr)
            return 2
        return _run_repro(argv[1])

    parser = argparse.ArgumentParser(
        prog="repro-dssd fuzz",
        description="coverage-guided fuzzing of NVMe command sequences "
                    "against the simulated SSD's invariant oracles",
    )
    parser.add_argument(
        "--seed", type=int, default=7, metavar="N",
        help="RNG seed for the mutation schedule (default 7)",
    )
    parser.add_argument(
        "--execs", type=int, default=None, metavar="N",
        help="stop after N genome executions",
    )
    parser.add_argument(
        "--time", type=float, default=None, metavar="SECONDS",
        help="stop after a wall-clock budget (non-deterministic stop "
             "point; don't combine with corpus-hash comparisons)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes per batch (default 1; results are "
             "identical for any value)",
    )
    parser.add_argument(
        "--arch", choices=ARCHES, default=None,
        help="pin every genome to one architecture preset",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI mode: exactly {SMOKE_EXECS} execs, asserts at least "
             f"{SMOKE_MIN_EDGES} distinct coverage edges",
    )
    parser.add_argument(
        "--corpus-dir", metavar="DIR", default=None,
        help="persist interesting genomes as <hash>.json here",
    )
    parser.add_argument(
        "--repro-dir", metavar="DIR", default=".",
        help="write minimized repro cases here (default: cwd)",
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="skip ddmin shrinking of failing genomes",
    )
    args = parser.parse_args(argv)

    execs = args.execs
    time_budget = args.time
    if args.smoke:
        execs = SMOKE_EXECS
        time_budget = None

    report = run_fuzz(
        seed=args.seed,
        execs=execs,
        time_budget_s=time_budget,
        jobs=max(args.jobs, 1),
        arch=args.arch,
        corpus_root=Path(args.corpus_dir) if args.corpus_dir else None,
        repro_dir=Path(args.repro_dir) if args.repro_dir else None,
        minimize=not args.no_minimize,
        log=lambda message: print(message, file=sys.stderr),
    )
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))

    if args.smoke and report.distinct_edges < SMOKE_MIN_EDGES:
        print(f"[fuzz] smoke FAILED: {report.distinct_edges} distinct "
              f"edges < pinned floor {SMOKE_MIN_EDGES}", file=sys.stderr)
        return 2
    return 1 if report.violations else 0


if __name__ == "__main__":
    sys.exit(main())
