"""The ``repro fuzz`` command-line verb.

Usage::

    python -m repro fuzz --smoke --seed 7      # deterministic CI gate
    python -m repro fuzz --execs 500 --jobs 4  # longer exploration
    python -m repro fuzz --time 60             # wall-clock budget
    python -m repro fuzz --differential --smoke  # baseline-vs-dssd gate
    python -m repro fuzz repro case.json       # replay a saved repro

Exit codes: 0 when no oracle tripped (or a replayed repro no longer
reproduces), 1 when a violation was found (or a replay still
reproduces), 2 when a ``--smoke`` run misses its pinned coverage floor
or a repro case file is missing, truncated, or malformed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import ReproError
from .engine import (SMOKE_DIFF_EXECS, SMOKE_DIFF_MIN_EDGES, SMOKE_EXECS,
                     SMOKE_MIN_EDGES, run_fuzz)
from .executor import execute
from .genome import ARCHES, Genome

__all__ = ["CaseFileError", "load_case", "main", "replay_case"]


class CaseFileError(ReproError):
    """A repro case file could not be loaded (missing/truncated/bad)."""


def load_case(path: Path) -> dict:
    """Load and validate a saved repro case.

    Raises :class:`CaseFileError` with a one-line diagnostic for every
    failure mode a file can have -- missing, unreadable, truncated or
    non-JSON, wrong schema version, or a missing/malformed genome --
    instead of letting the raw traceback escape to the operator.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CaseFileError(f"cannot read repro case {path}: "
                            f"{exc.strerror or exc}") from exc
    try:
        case = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CaseFileError(f"repro case {path} is not valid JSON "
                            f"(truncated?): {exc}") from exc
    if not isinstance(case, dict):
        raise CaseFileError(f"repro case {path} is not a JSON object")
    schema = case.get("schema")
    if schema != 1:
        raise CaseFileError(f"repro case {path} has unsupported schema "
                            f"{schema!r} (expected 1)")
    genome_state = case.get("genome")
    if not isinstance(genome_state, dict):
        raise CaseFileError(f"repro case {path} is missing its genome")
    try:
        case["_genome"] = Genome.from_dict(genome_state)
    except (KeyError, TypeError, ValueError) as exc:
        raise CaseFileError(f"repro case {path} has a malformed genome: "
                            f"{exc}") from exc
    return case


def replay_case(path: Path) -> dict:
    """Replay a saved repro case; returns the execution outcome.

    Differential cases (``"mode": "differential"``) replay in
    differential mode, so an ``arch_divergence`` repro re-runs the
    same baseline-vs-dssd comparison that produced it.  Raises
    :class:`CaseFileError` on an unloadable case file.
    """
    case = load_case(Path(path))
    return execute(case["_genome"], collect_coverage=False,
                   differential=case.get("mode") == "differential")


def _run_repro(path: str) -> int:
    try:
        case = load_case(Path(path))
    except CaseFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    oracle = case.get("oracle")
    outcome = execute(case["_genome"], collect_coverage=False,
                      differential=case.get("mode") == "differential")
    tripped = [v for v in outcome["violations"]
               if oracle is None or v["oracle"] == oracle]
    print(f"replayed {path}: status={outcome['status']}")
    for violation in outcome["violations"]:
        print(f"  violation: {violation['oracle']}: {violation['detail']}")
    if tripped:
        print(f"repro CONFIRMED ({oracle or 'any oracle'})")
        return 1
    print("repro no longer triggers (fixed?)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "repro":
        if len(argv) != 2:
            print("usage: repro fuzz repro <case.json>", file=sys.stderr)
            return 2
        return _run_repro(argv[1])

    parser = argparse.ArgumentParser(
        prog="repro-dssd fuzz",
        description="coverage-guided fuzzing of NVMe command sequences "
                    "against the simulated SSD's invariant oracles",
    )
    parser.add_argument(
        "--seed", type=int, default=7, metavar="N",
        help="RNG seed for the mutation schedule (default 7)",
    )
    parser.add_argument(
        "--execs", type=int, default=None, metavar="N",
        help="stop after N genome executions",
    )
    parser.add_argument(
        "--time", type=float, default=None, metavar="SECONDS",
        help="stop after a wall-clock budget (non-deterministic stop "
             "point; don't combine with corpus-hash comparisons)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes per batch (default 1; results are "
             "identical for any value)",
    )
    parser.add_argument(
        "--arch", choices=ARCHES, default=None,
        help="pin every genome to one architecture preset",
    )
    parser.add_argument(
        "--differential", action="store_true",
        help="run every genome on both the baseline and dssd presets "
             "and flag canonical end-state mismatches as "
             "arch_divergence findings",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI mode: exactly {SMOKE_EXECS} execs "
             f"({SMOKE_DIFF_EXECS} with --differential), asserts at "
             f"least {SMOKE_MIN_EDGES} distinct coverage edges",
    )
    parser.add_argument(
        "--corpus-dir", metavar="DIR", default=None,
        help="persist interesting genomes as <hash>.json here",
    )
    parser.add_argument(
        "--repro-dir", metavar="DIR", default=".",
        help="write minimized repro cases here (default: cwd)",
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="skip ddmin shrinking of failing genomes",
    )
    args = parser.parse_args(argv)

    execs = args.execs
    time_budget = args.time
    if args.smoke:
        execs = SMOKE_DIFF_EXECS if args.differential else SMOKE_EXECS
        time_budget = None

    report = run_fuzz(
        seed=args.seed,
        execs=execs,
        time_budget_s=time_budget,
        jobs=max(args.jobs, 1),
        arch=args.arch,
        corpus_root=Path(args.corpus_dir) if args.corpus_dir else None,
        repro_dir=Path(args.repro_dir) if args.repro_dir else None,
        minimize=not args.no_minimize,
        differential=args.differential,
        log=lambda message: print(message, file=sys.stderr),
    )
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))

    edge_floor = SMOKE_DIFF_MIN_EDGES if args.differential \
        else SMOKE_MIN_EDGES
    if args.smoke and report.distinct_edges < edge_floor:
        print(f"[fuzz] smoke FAILED: {report.distinct_edges} distinct "
              f"edges < pinned floor {edge_floor}", file=sys.stderr)
        return 2
    return 1 if report.violations else 0


if __name__ == "__main__":
    sys.exit(main())
