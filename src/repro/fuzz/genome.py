"""The typed fuzz genome: device knobs plus an NVMe op sequence.

A :class:`Genome` is the unit the fuzzer mutates, executes, stores in
the corpus, and emits as a repro: a :class:`GenomeConfig` (architecture,
tenant count, GC/write policy, QoS and fault-injection knobs) plus a
list of :class:`FuzzOp` (read/write/trim/flush with arrival gaps and
tenant assignment).  Genomes round-trip losslessly through JSON and are
content-addressed by a SHA-256 over their canonical encoding, which is
what makes the corpus (and the smoke-mode determinism gate)
byte-comparable across runs and ``--jobs`` settings.

Logical addresses are stored as *fractions* of the LPN space
(``lpn_frac`` in ``[0, 1)``) so a genome stays valid under any prefill
configuration -- the executor scales them onto the device's actual
mapped range.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import List

__all__ = [
    "ARCHES",
    "FUZZ_GEOMETRY",
    "GC_POLICIES",
    "MAX_GAP_US",
    "MAX_OPS",
    "MAX_PAGES_PER_OP",
    "FuzzOp",
    "Genome",
    "GenomeConfig",
]

#: Architectures the fuzzer samples (paper Table 2 presets).
ARCHES = ("baseline", "dssd", "dssd_f")
GC_POLICIES = ("pagc", "preemptive", "tinytail")
ARBITERS = ("rr", "wrr", "prio")
WRITE_POLICIES = ("writeback", "writethrough")
OP_KINDS = ("read", "write", "trim", "flush")

#: Hard caps keeping one execution fast and minimization meaningful.
MAX_OPS = 96
MAX_PAGES_PER_OP = 8
MAX_GAP_US = 500.0
MAX_TENANTS = 3

#: Deliberately tiny flash organization: a few hundred pages means a
#: short op sequence can exhaust free blocks and force GC, wear, and
#: spare-block paths that a paper-sized device would never reach in a
#: sub-second execution.
FUZZ_GEOMETRY = {"channels": 2, "ways": 1, "planes": 2,
                 "blocks_per_plane": 10, "pages_per_block": 16,
                 "page_size": 4096}


def _clamp(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


@dataclass
class FuzzOp:
    """One NVMe-level operation in a genome."""

    kind: str = "read"
    #: Target LPN as a fraction of the mapped LPN space.
    lpn_frac: float = 0.0
    n_pages: int = 1
    #: Think time before issuing this op, microseconds.
    gap_us: float = 0.0
    #: Tenant stream index (modulo the config's tenant count).
    tenant: int = 0
    #: Request the DRAM-cached fast path for reads.
    dram_hit: bool = False

    def normalized(self) -> "FuzzOp":
        """Copy with every field clamped onto its legal range."""
        kind = self.kind if self.kind in OP_KINDS else "read"
        return FuzzOp(
            kind=kind,
            lpn_frac=_clamp(float(self.lpn_frac), 0.0, 0.999999),
            n_pages=int(_clamp(int(self.n_pages), 1, MAX_PAGES_PER_OP)),
            gap_us=_clamp(float(self.gap_us), 0.0, MAX_GAP_US),
            tenant=int(_clamp(int(self.tenant), 0, MAX_TENANTS - 1)),
            dram_hit=bool(self.dram_hit),
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, state: dict) -> "FuzzOp":
        return cls(**state).normalized()


@dataclass
class GenomeConfig:
    """Device-level knobs one genome runs under.

    ``tenants == 0`` selects *direct mode*: ops are submitted straight
    to the FTL (the only mode where the snapshot-divergence oracle can
    run, since quiescent-point snapshots reject attached frontends).
    ``tenants >= 1`` routes ops through a real
    :class:`~repro.host.frontend.MultiQueueFrontend` with scripted
    drivers, exercising arbiters and QoS admission.
    """

    arch: str = "dssd"
    tenants: int = 0
    arbiter: str = "rr"
    queue_depth: int = 16
    write_policy: str = "writeback"
    gc_policy: str = "pagc"
    prefill_fraction: float = 0.85
    prefill_valid_ratio: float = 0.45
    #: 0.0 disables the reliability engine entirely.
    base_rber: float = 0.0
    #: Transient channel-fault injection probability.
    fault_rate: float = 0.0
    #: Frontend admission policy on a full submission queue.
    drop_on_full: bool = False
    #: Tenant-0 dispatch rate limit in IOPS; 0 = unthrottled.
    rate_iops: float = 0.0
    #: Direct mode only: fraction of the op list after which the run
    #: drains, snapshots, restores, and continues on both devices to
    #: check for divergence.  0 disables the oracle.
    snapshot_at: float = 0.0
    #: Direct mode only: fraction of the (measured) run duration at
    #: which a second pass of the same genome loses power mid-flight.
    #: The device is rebuilt from flash-durable state only
    #: (:func:`~repro.core.checkpoint.durable_state`), the unsubmitted
    #: op tail replays on the recovered device, and the mapping/
    #: quiescence oracles must pass.  0 disables the check.
    powercut_at: float = 0.0

    def normalized(self) -> "GenomeConfig":
        """Copy with every field clamped onto its legal range."""
        return GenomeConfig(
            arch=self.arch if self.arch in ARCHES else "dssd",
            tenants=int(_clamp(int(self.tenants), 0, MAX_TENANTS)),
            arbiter=self.arbiter if self.arbiter in ARBITERS else "rr",
            queue_depth=int(_clamp(int(self.queue_depth), 2, 32)),
            write_policy=(self.write_policy
                          if self.write_policy in WRITE_POLICIES
                          else "writeback"),
            gc_policy=(self.gc_policy if self.gc_policy in GC_POLICIES
                       else "pagc"),
            prefill_fraction=_clamp(float(self.prefill_fraction), 0.5, 0.95),
            prefill_valid_ratio=_clamp(float(self.prefill_valid_ratio),
                                       0.2, 0.8),
            base_rber=_clamp(float(self.base_rber), 0.0, 1e-3),
            fault_rate=_clamp(float(self.fault_rate), 0.0, 0.2),
            drop_on_full=bool(self.drop_on_full),
            rate_iops=_clamp(float(self.rate_iops), 0.0, 200_000.0),
            snapshot_at=_clamp(float(self.snapshot_at), 0.0, 0.9),
            powercut_at=_clamp(float(self.powercut_at), 0.0, 0.9),
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, state: dict) -> "GenomeConfig":
        return cls(**state).normalized()


@dataclass
class Genome:
    """A complete fuzz input: config + op sequence."""

    config: GenomeConfig = field(default_factory=GenomeConfig)
    ops: List[FuzzOp] = field(default_factory=list)
    #: Where this genome came from ("seed:...", "mutate:...", "ddmin").
    origin: str = ""

    def normalized(self) -> "Genome":
        """Copy with config/ops clamped and the op count bounded."""
        ops = [op.normalized() for op in self.ops[:MAX_OPS]]
        if not ops:
            ops = [FuzzOp()]
        return Genome(config=self.config.normalized(), ops=ops,
                      origin=self.origin)

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "ops": [op.to_dict() for op in self.ops],
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "Genome":
        return cls(
            config=GenomeConfig.from_dict(state["config"]),
            ops=[FuzzOp.from_dict(op) for op in state["ops"]],
            origin=str(state.get("origin", "")),
        ).normalized()

    def to_json(self) -> str:
        """Canonical (sorted-key) JSON encoding."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Genome":
        return cls.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """SHA-256 over the canonical encoding *excluding* origin.

        Two genomes with identical behaviour (same config, same ops)
        hash identically regardless of how they were derived, so the
        corpus hash only reflects discovered inputs.
        """
        payload = json.dumps(
            {"config": self.config.to_dict(),
             "ops": [op.to_dict() for op in self.ops]},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()
