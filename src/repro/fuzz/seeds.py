"""Seed corpus: starting genomes derived from the real workload models.

Rather than bootstrapping from random noise, the fuzzer starts where
the experiments already operate: every
:class:`~repro.workloads.synthetic.SyntheticWorkload` pattern is
sampled into an op sequence (so the corpus begins on the exact request
shapes the figure sweeps use), a fig17-style victim+aggressor tenant
mix covers the QoS/arbitration surface, and hand-built genomes open the
trim, fault-injection, write-through, and snapshot-split paths.  Seeds
are fully deterministic (fixed seeds into the workload RNGs).
"""

from __future__ import annotations

from typing import List, Optional

from ..ftl.request import READ, TRIM
from ..workloads.synthetic import PATTERNS, SyntheticWorkload
from .genome import FuzzOp, Genome, GenomeConfig

__all__ = ["make_seeds"]

#: LPN space the seed generators sample against.  Seeds store fractions,
#: so this only sets their quantization, not the executed addresses.
_SEED_LPN_SPACE = 256
_SEED_PAGE_SIZE = 4096
_OPS_PER_SEED = 24


def _workload_ops(pattern: str, seed: int,
                  read_fraction: float = 0.5) -> List[FuzzOp]:
    workload = SyntheticWorkload(pattern, io_size=2 * _SEED_PAGE_SIZE,
                                 read_fraction=read_fraction,
                                 limit=_OPS_PER_SEED)
    workload.bind(_SEED_LPN_SPACE, _SEED_PAGE_SIZE, seed)
    ops = []
    while True:
        request = workload.next_request()
        if request is None:
            break
        ops.append(FuzzOp(
            kind="read" if request.op == READ else "write",
            lpn_frac=request.lpn / _SEED_LPN_SPACE,
            n_pages=request.n_pages,
            dram_hit=request.dram_hit,
        ))
    return ops


def make_seeds(arch: Optional[str] = None) -> List[Genome]:
    """The deterministic seed genomes, optionally pinned to one arch."""
    seeds: List[Genome] = []

    # Every synthetic pattern on the two main architectures.
    for pattern in PATTERNS:
        for seed_arch in ("baseline", "dssd"):
            seeds.append(Genome(
                config=GenomeConfig(arch=seed_arch),
                ops=_workload_ops(pattern, seed=7),
                origin=f"seed:{pattern}:{seed_arch}",
            ))

    # fig17-shaped tenant mix: a rate-limited victim sharing the device
    # with a saturating aggressor, write-heavy, through the frontend.
    mix_ops = []
    aggressor = _workload_ops("rand_write", seed=11, read_fraction=0.0)
    victim = _workload_ops("rand_read", seed=13, read_fraction=1.0)
    for index in range(_OPS_PER_SEED):
        victim_op = victim[index % len(victim)]
        victim_op.tenant = 0
        victim_op.gap_us = 50.0
        aggressor_op = aggressor[index % len(aggressor)]
        aggressor_op.tenant = 1
        mix_ops.extend([victim_op, aggressor_op])
    seeds.append(Genome(
        config=GenomeConfig(arch="dssd", tenants=2, rate_iops=25_000.0,
                            arbiter="wrr"),
        ops=mix_ops,
        origin="seed:tenant-mix",
    ))

    # Trim-heavy: interleave invalidation with rewrites (GC pressure +
    # mapping churn; the canary's trigger surface).
    trim_ops = []
    for index in range(_OPS_PER_SEED):
        frac = (index * 37 % _SEED_LPN_SPACE) / _SEED_LPN_SPACE
        trim_ops.append(FuzzOp(kind="write", lpn_frac=frac, n_pages=4))
        trim_ops.append(FuzzOp(kind="trim", lpn_frac=frac, n_pages=6))
    seeds.append(Genome(config=GenomeConfig(arch="dssd"), ops=trim_ops,
                        origin="seed:trim-heavy"))

    # Fault injection + high RBER: ECC ladder, retries, bad blocks.
    seeds.append(Genome(
        config=GenomeConfig(arch="dssd", base_rber=1e-4, fault_rate=0.05),
        ops=_workload_ops("mixed", seed=17),
        origin="seed:faults",
    ))

    # Write-through policy with a flush barrier in the middle.
    wt_ops = _workload_ops("rand_write", seed=19, read_fraction=0.0)
    wt_ops.insert(len(wt_ops) // 2, FuzzOp(kind="flush"))
    seeds.append(Genome(
        config=GenomeConfig(arch="baseline", write_policy="writethrough"),
        ops=wt_ops,
        origin="seed:writethrough",
    ))

    # Snapshot split: drain mid-sequence, snapshot/restore, continue.
    seeds.append(Genome(
        config=GenomeConfig(arch="dssd", snapshot_at=0.5),
        ops=_workload_ops("mixed", seed=23),
        origin="seed:snapshot-split",
    ))

    # Power loss mid-flight: rebuild from durable state, replay the
    # unsubmitted tail, and hold the recovered device to every oracle.
    seeds.append(Genome(
        config=GenomeConfig(arch="dssd", powercut_at=0.5),
        ops=_workload_ops("rand_write", seed=31, read_fraction=0.0),
        origin="seed:powercut",
    ))
    pc_trim_ops = []
    for index in range(_OPS_PER_SEED // 2):
        frac = (index * 53 % _SEED_LPN_SPACE) / _SEED_LPN_SPACE
        pc_trim_ops.append(FuzzOp(kind="write", lpn_frac=frac, n_pages=4))
        pc_trim_ops.append(FuzzOp(kind="trim", lpn_frac=frac, n_pages=5))
    seeds.append(Genome(
        config=GenomeConfig(arch="baseline", write_policy="writethrough",
                            powercut_at=0.35),
        ops=pc_trim_ops,
        origin="seed:powercut-trim",
    ))

    # Drop-on-full admission with three tenants on priority arbitration.
    drop_ops = _workload_ops("rand_write", seed=29, read_fraction=0.2)
    for index, op in enumerate(drop_ops):
        op.tenant = index % 3
    seeds.append(Genome(
        config=GenomeConfig(arch="dssd_f", tenants=3, arbiter="prio",
                            drop_on_full=True),
        ops=drop_ops,
        origin="seed:drop-on-full",
    ))

    seeds = [seed.normalized() for seed in seeds]
    if arch is not None:
        pinned = []
        for seed in seeds:
            state = seed.config.to_dict()
            state["arch"] = arch
            pinned.append(Genome(config=GenomeConfig.from_dict(state),
                                 ops=seed.ops,
                                 origin=seed.origin).normalized())
        # Pinning can collapse two seeds onto the same genome; dedup
        # keeps the corpus hash stable.
        seen = set()
        seeds = []
        for seed in pinned:
            digest = seed.content_hash()
            if digest not in seen:
                seen.add(digest)
                seeds.append(seed)
    return seeds
