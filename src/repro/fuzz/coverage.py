"""Coverage collection: branch edges plus semantic device-state features.

Two signals feed the corpus scheduler:

* **Line edges** -- ``(previous line -> current line)`` pairs inside the
  watched subsystems (``ftl/``, ``host/qos``, ``reliability/``,
  ``core/datapath``), collected with :mod:`sys.monitoring` on Python
  3.12+ and a :func:`sys.settrace` local tracer everywhere else.  Edges
  are encoded as stable strings (``"ftl/gc.py:241->252"``) so they
  compare identically across processes and runs.

* **Semantic features** -- bucketed device-state observations after a
  run (GC episode depth, ECC ladder level reached, spare-block
  exhaustion, queue-full drops...).  These catch state-space novelty
  that pure control-flow coverage misses: the same code path at GC
  depth 8 is a different scenario than at depth 1.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional, Set

__all__ = ["CoverageCollector", "semantic_features"]

#: Path prefixes (relative to the repro package root) under watch.
WATCHED_PREFIXES = ("ftl/", "host/qos", "reliability/", "core/datapath")

_PACKAGE_ROOT = str(Path(__file__).resolve().parent.parent)

# Watched packages that the executor otherwise imports lazily (the
# reliability engine only loads when a genome enables faults).  If the
# first such import happens *under* an active tracer, that one execution
# records module-body edges no later run can reproduce, so coverage --
# and the corpus hash -- would depend on process history.  Import them
# here, before any collector installs, so tracing never sees an import.
from ..reliability import (  # noqa: E402,F401  (placement is the point)
    badblocks as _badblocks,
    config as _rel_config,
    engine as _rel_engine,
    faults as _faults,
    ladder as _ladder,
    rber as _rber,
)

#: sys.monitoring tool slot (3.12+); PROFILER_ID is free in our runs.
_TOOL_NAME = "repro-fuzz-coverage"


def _watch_key(filename: str) -> Optional[str]:
    """Relative module key for a watched file, else None."""
    if not filename.startswith(_PACKAGE_ROOT):
        return None
    relative = filename[len(_PACKAGE_ROOT):].lstrip("/\\").replace("\\", "/")
    for prefix in WATCHED_PREFIXES:
        if relative.startswith(prefix):
            return relative
    return None


class CoverageCollector:
    """Context manager accumulating line edges from watched modules.

    Use one collector per execution; ``edges`` holds the stable string
    encoding.  Collectors nest poorly (tracing is process-global), so
    the executor owns exactly one per run.
    """

    def __init__(self) -> None:
        self.edges: Set[str] = set()
        self._keys: dict = {}   # code object -> watch key or None
        self._last: dict = {}   # watch key -> last line (monitoring mode)
        self._mode = "off"
        self._tool_id: Optional[int] = None

    # -- shared helpers ------------------------------------------------------

    def _key_for(self, code) -> Optional[str]:
        key = self._keys.get(code)
        if key is None and code not in self._keys:
            key = self._keys[code] = _watch_key(code.co_filename)
        return key

    # -- sys.monitoring path (Python 3.12+) ----------------------------------

    def _try_start_monitoring(self) -> bool:
        monitoring = getattr(sys, "monitoring", None)
        if monitoring is None:
            return False
        try:
            tool_id = monitoring.PROFILER_ID
            monitoring.use_tool_id(tool_id, _TOOL_NAME)
            monitoring.register_callback(
                tool_id, monitoring.events.LINE, self._on_line)
            monitoring.set_events(tool_id, monitoring.events.LINE)
        except Exception:
            try:
                monitoring.free_tool_id(monitoring.PROFILER_ID)
            except Exception:
                pass
            return False
        self._tool_id = tool_id
        self._mode = "monitoring"
        return True

    def _on_line(self, code, line_number):
        key = self._key_for(code)
        if key is None:
            disable = getattr(sys.monitoring, "DISABLE", None)
            return disable
        last = self._last.get(key)
        if last is not None:
            self.edges.add(f"{key}:{last}->{line_number}")
        self._last[key] = line_number
        return None

    def _stop_monitoring(self) -> None:
        monitoring = sys.monitoring
        try:
            monitoring.set_events(self._tool_id, 0)
            monitoring.register_callback(
                self._tool_id, monitoring.events.LINE, None)
            monitoring.free_tool_id(self._tool_id)
        except Exception:
            pass

    # -- sys.settrace fallback ----------------------------------------------

    def _global_trace(self, frame, event, arg):
        if event != "call":
            return None
        key = self._key_for(frame.f_code)
        if key is None:
            return None
        # Per-frame previous line lives in the closure: exact edges
        # even through recursion and generator re-entry.
        state = {"last": frame.f_lineno}
        edges = self.edges

        def local_trace(frame, event, arg):
            if event == "line":
                line = frame.f_lineno
                edges.add(f"{key}:{state['last']}->{line}")
                state["last"] = line
            return local_trace

        return local_trace

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "CoverageCollector":
        if not self._try_start_monitoring():
            sys.settrace(self._global_trace)
            self._mode = "settrace"
        return self

    def __exit__(self, *exc_info) -> None:
        if self._mode == "monitoring":
            self._stop_monitoring()
        elif self._mode == "settrace":
            sys.settrace(None)
        self._mode = "off"


# -- semantic features --------------------------------------------------------

def _bucket(value: float) -> str:
    """Coarse log2 bucket so features saturate instead of exploding."""
    value = int(value)
    if value <= 0:
        return "0"
    if value >= 256:
        return "256+"
    bucket = 1
    while bucket * 2 <= value:
        bucket *= 2
    return f"{bucket}-{bucket * 2 - 1}"


def semantic_features(ssd, status: str) -> Set[str]:
    """Device-state observations after one execution, as feature strings."""
    features = {f"status:{status}"}
    gc_stats = ssd.gc.stats
    features.add(f"gc-episodes:{_bucket(gc_stats.episodes)}")
    features.add(f"gc-pages-moved:{_bucket(gc_stats.pages_moved)}")
    if ssd.blocks.bad_blocks:
        features.add(f"bad-blocks:{_bucket(ssd.blocks.bad_blocks)}")
    if ssd.reliability is not None:
        stats = ssd.reliability.stats_dict()
        features.add(f"ecc-ladder-retries:{_bucket(stats['ladder_retries'])}")
        features.add(f"error-generation:{int(stats['max_generation'])}")
        if stats["spares_remaining"] == 0 and stats["blocks_remapped"] > 0:
            features.add("spares-exhausted")
        if stats["fault_retries"]:
            features.add(f"fault-retries:{_bucket(stats['fault_retries'])}")
        if stats["uncorrectable_pages"]:
            features.add("uncorrectable-pages")
        if stats["raid_recoveries"]:
            features.add("raid-recoveries")
    frontend = ssd.frontend
    if frontend is not None:
        dropped = sum(stats.dropped for stats in frontend.stats)
        if dropped:
            features.add(f"qos-drops:{_bucket(dropped)}")
    return features
