"""Delta-debugging (ddmin) shrinking of oracle-tripping genomes.

Classic Zeller ddmin over the op list: try removing chunks at
progressively finer granularity, keeping any removal after which the
*same oracle* still trips.  The device seed is pinned inside the
executor, so the predicate is deterministic and the minimized genome is
a faithful, self-contained repro -- small enough to read, fast enough
to commit as a regression test under ``tests/fuzz_corpus/``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .genome import FuzzOp, Genome

__all__ = ["ddmin", "minimize_for_oracle"]


def ddmin(genome: Genome, predicate: Callable[[Genome], bool],
          max_tests: int = 200) -> Genome:
    """Shrink ``genome.ops`` while ``predicate`` stays true.

    ``predicate`` must be true for the input genome; the result is
    1-minimal with respect to chunk removal (up to the test budget).
    """
    ops = list(genome.ops)
    budget = {"left": max_tests}

    def holds(candidate_ops: List[FuzzOp]) -> bool:
        if budget["left"] <= 0 or not candidate_ops:
            return False
        budget["left"] -= 1
        return predicate(Genome(config=genome.config, ops=candidate_ops,
                                origin="ddmin"))

    chunks = 2
    while len(ops) >= 2 and budget["left"] > 0:
        size = max(1, len(ops) // chunks)
        reduced = False
        start = 0
        while start < len(ops):
            candidate = ops[:start] + ops[start + size:]
            if candidate and holds(candidate):
                ops = candidate
                chunks = max(chunks - 1, 2)
                reduced = True
                # Restart the scan on the smaller list.
                start = 0
                size = max(1, len(ops) // chunks)
                continue
            start += size
        if not reduced:
            if chunks >= len(ops):
                break
            chunks = min(len(ops), chunks * 2)
    return Genome(config=genome.config, ops=ops, origin="ddmin")


def minimize_for_oracle(genome: Genome, oracle: str,
                        max_tests: int = 200,
                        execute: Optional[Callable] = None,
                        differential: bool = False) -> Genome:
    """Shrink *genome* so the named oracle still trips.

    *execute* defaults to :func:`repro.fuzz.executor.execute`
    (injectable for tests); with ``differential=True`` the default
    probes run in differential mode, so cross-architecture findings
    (``arch_divergence`` and arch-prefixed per-arch violations) shrink
    against the same pair execution that found them.  Coverage
    collection is disabled during shrinking -- only the verdict
    matters, and tracing would slow the O(n log n) probe sequence down
    for nothing.
    """
    if execute is None:
        from .executor import execute as execute_genome

        def execute(candidate, collect_coverage=False):
            return execute_genome(candidate, collect_coverage=False,
                                  differential=differential)

    def trips(candidate: Genome) -> bool:
        outcome = execute(candidate, collect_coverage=False)
        return any(v["oracle"] == oracle for v in outcome["violations"])

    if not trips(genome):
        return genome
    return ddmin(genome, trips, max_tests=max_tests)
