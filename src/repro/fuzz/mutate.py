"""Seeded structural mutators over fuzz genomes.

Every mutator is a pure function of ``(rng, genome[, donor])`` and the
engine derives one :class:`random.Random` stream per run from the CLI
seed, so the full mutation schedule is reproducible.  Mutators always
return a *new* normalized genome; inputs are never modified.

The operator mix follows the classic AFL recipe adapted to a typed
genome: structural edits over the op list (duplicate, delete, swap,
splice with a donor from the corpus), value-level nudges on single ops,
a havoc burst stacking several of those, and config-level flips that
move the genome between architectures, GC policies, tenant counts, and
fault-injection settings.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .genome import (ARBITERS, ARCHES, GC_POLICIES, MAX_GAP_US, MAX_OPS,
                     MAX_PAGES_PER_OP, MAX_TENANTS, OP_KINDS, WRITE_POLICIES,
                     FuzzOp, Genome)

__all__ = ["mutate", "MUTATORS"]


def _copy_ops(genome: Genome) -> List[FuzzOp]:
    return [FuzzOp(**op.to_dict()) for op in genome.ops]


def _random_op(rng: random.Random) -> FuzzOp:
    kind = rng.choice(OP_KINDS)
    return FuzzOp(
        kind=kind,
        lpn_frac=rng.random(),
        n_pages=rng.randint(1, MAX_PAGES_PER_OP),
        gap_us=rng.choice([0.0, 0.0, rng.uniform(0.0, MAX_GAP_US)]),
        tenant=rng.randrange(MAX_TENANTS),
        dram_hit=rng.random() < 0.1,
    )


def _mutate_duplicate(rng: random.Random, genome: Genome,
                      donor: Optional[Genome]) -> Genome:
    """Repeat a random slice in place (hammers allocator/GC reentry)."""
    ops = _copy_ops(genome)
    start = rng.randrange(len(ops))
    width = rng.randint(1, min(8, len(ops) - start))
    at = rng.randint(0, len(ops))
    ops[at:at] = [FuzzOp(**op.to_dict()) for op in ops[start:start + width]]
    return Genome(config=genome.config, ops=ops, origin="mutate:duplicate")


def _mutate_delete(rng: random.Random, genome: Genome,
                   donor: Optional[Genome]) -> Genome:
    """Drop a random slice."""
    ops = _copy_ops(genome)
    start = rng.randrange(len(ops))
    width = rng.randint(1, min(8, len(ops) - start))
    del ops[start:start + width]
    return Genome(config=genome.config, ops=ops, origin="mutate:delete")


def _mutate_swap(rng: random.Random, genome: Genome,
                 donor: Optional[Genome]) -> Genome:
    """Reorder: exchange two positions."""
    ops = _copy_ops(genome)
    if len(ops) >= 2:
        a, b = rng.sample(range(len(ops)), 2)
        ops[a], ops[b] = ops[b], ops[a]
    return Genome(config=genome.config, ops=ops, origin="mutate:swap")


def _mutate_splice(rng: random.Random, genome: Genome,
                   donor: Optional[Genome]) -> Genome:
    """Graft a random slice of a corpus donor into this genome."""
    if donor is None or not donor.ops:
        return _mutate_duplicate(rng, genome, donor)
    ops = _copy_ops(genome)
    start = rng.randrange(len(donor.ops))
    width = rng.randint(1, min(12, len(donor.ops) - start))
    graft = [FuzzOp(**op.to_dict())
             for op in donor.ops[start:start + width]]
    at = rng.randint(0, len(ops))
    ops[at:at] = graft
    return Genome(config=genome.config, ops=ops, origin="mutate:splice")


def _mutate_insert(rng: random.Random, genome: Genome,
                   donor: Optional[Genome]) -> Genome:
    """Insert a freshly random op."""
    ops = _copy_ops(genome)
    ops.insert(rng.randint(0, len(ops)), _random_op(rng))
    return Genome(config=genome.config, ops=ops, origin="mutate:insert")


def _nudge_op(rng: random.Random, op: FuzzOp) -> FuzzOp:
    state = op.to_dict()
    field = rng.choice(["kind", "lpn_frac", "n_pages", "gap_us", "tenant",
                        "dram_hit"])
    if field == "kind":
        state["kind"] = rng.choice(OP_KINDS)
    elif field == "lpn_frac":
        state["lpn_frac"] = (state["lpn_frac"]
                             + rng.uniform(-0.25, 0.25)) % 1.0
    elif field == "n_pages":
        state["n_pages"] = rng.randint(1, MAX_PAGES_PER_OP)
    elif field == "gap_us":
        state["gap_us"] = rng.choice([0.0, rng.uniform(0.0, MAX_GAP_US)])
    elif field == "tenant":
        state["tenant"] = rng.randrange(MAX_TENANTS)
    else:
        state["dram_hit"] = not state["dram_hit"]
    return FuzzOp(**state)


def _mutate_nudge(rng: random.Random, genome: Genome,
                  donor: Optional[Genome]) -> Genome:
    """Parameter nudge: perturb one field of one op."""
    ops = _copy_ops(genome)
    index = rng.randrange(len(ops))
    ops[index] = _nudge_op(rng, ops[index])
    return Genome(config=genome.config, ops=ops, origin="mutate:nudge")


def _mutate_havoc(rng: random.Random, genome: Genome,
                  donor: Optional[Genome]) -> Genome:
    """Stacked burst of 2-6 random edits (the AFL havoc stage)."""
    result = genome
    for _ in range(rng.randint(2, 6)):
        operator = rng.choice([_mutate_duplicate, _mutate_delete,
                               _mutate_swap, _mutate_insert, _mutate_nudge])
        result = operator(rng, result.normalized(), donor)
    return Genome(config=result.config, ops=result.ops,
                  origin="mutate:havoc")


def _mutate_config(rng: random.Random, genome: Genome,
                   donor: Optional[Genome]) -> Genome:
    """Flip one device knob: arch, GC policy, tenancy, faults..."""
    state = genome.config.to_dict()
    field = rng.choice(["arch", "tenants", "arbiter", "queue_depth",
                        "write_policy", "gc_policy", "base_rber",
                        "fault_rate", "drop_on_full", "rate_iops",
                        "snapshot_at", "powercut_at", "prefill_fraction"])
    if field == "arch":
        state["arch"] = rng.choice(ARCHES)
    elif field == "tenants":
        state["tenants"] = rng.randint(0, MAX_TENANTS)
    elif field == "arbiter":
        state["arbiter"] = rng.choice(ARBITERS)
    elif field == "queue_depth":
        state["queue_depth"] = rng.choice([2, 4, 8, 16, 32])
    elif field == "write_policy":
        state["write_policy"] = rng.choice(WRITE_POLICIES)
    elif field == "gc_policy":
        state["gc_policy"] = rng.choice(GC_POLICIES)
    elif field == "base_rber":
        state["base_rber"] = rng.choice([0.0, 1e-5, 1e-4, 1e-3])
    elif field == "fault_rate":
        state["fault_rate"] = rng.choice([0.0, 0.01, 0.05, 0.2])
    elif field == "drop_on_full":
        state["drop_on_full"] = not state["drop_on_full"]
    elif field == "rate_iops":
        state["rate_iops"] = rng.choice([0.0, 5_000.0, 25_000.0, 100_000.0])
    elif field == "snapshot_at":
        state["snapshot_at"] = rng.choice([0.0, 0.3, 0.5, 0.7])
    elif field == "powercut_at":
        state["powercut_at"] = rng.choice([0.0, 0.25, 0.5, 0.75])
    else:
        state["prefill_fraction"] = rng.choice([0.6, 0.75, 0.85, 0.95])
    config = genome.config.from_dict(state)
    return Genome(config=config, ops=_copy_ops(genome),
                  origin="mutate:config")


MUTATORS = (
    _mutate_duplicate,
    _mutate_delete,
    _mutate_swap,
    _mutate_splice,
    _mutate_insert,
    _mutate_nudge,
    _mutate_havoc,
    _mutate_config,
)


def mutate(rng: random.Random, genome: Genome,
           donor: Optional[Genome] = None) -> Genome:
    """Apply one randomly chosen mutator; returns a normalized genome."""
    operator = rng.choice(MUTATORS)
    return operator(rng, genome, donor).normalized()
