"""Invariant oracles: what makes a fuzzed execution a *finding*.

Each oracle inspects the device after an execution and returns zero or
more violations (``{"oracle": name, "detail": human-readable}``).  The
set deliberately reuses the production guards rather than reimplement
them: the leaked-hold oracle is
:func:`~repro.core.checkpoint.quiescence_report`, the mapping oracle is
:meth:`~repro.ftl.ftl.Ftl.audit` -- a fuzzer finding is therefore the
same condition an operator would hit at a real checkpoint.

Oracle catalogue:

* ``progress`` -- the DES queue drained with work incomplete (a true
  deadlock) or the simulated-time horizon was hit (livelock/stall).
* ``exception`` -- any model code raised out of the event loop.
* ``leaked_holds`` -- the run completed cleanly yet quiescence
  enumeration still names outstanding holds (the PR-3 bug class).
* ``mapping`` -- the LPN<->PPN mirror broke or mapped-LPN and
  valid-page counts disagree at quiescence.
* ``qos_accounting`` -- frontend admission/dispatch/completion counters
  do not reconcile, or host submitted != completed.
* ``latency_cliff`` -- one request's latency is both absurdly large in
  absolute terms and orders of magnitude beyond the run's mean.
* ``snapshot_divergence`` -- raised by the executor when continuing
  after a mid-sequence snapshot/restore does not match the
  uninterrupted run.
* ``arch_divergence`` -- raised by the executor in differential mode
  when the baseline and dssd runs of the same op sequence end with
  different :mod:`~repro.fuzz.diffcheck` canonical states (logical
  contents, completion counts, host-visible errors).
* ``powerloss_recovery`` -- raised by the executor when rebuilding a
  mid-flight power-cut device from flash-durable state crashes, or
  when the recovered device fails any oracle above while replaying
  the unsubmitted op tail.
"""

from __future__ import annotations

from typing import List

from ..core.checkpoint import quiescence_report

__all__ = ["check", "LATENCY_CLIFF_ABS_US", "LATENCY_CLIFF_RATIO"]

#: A latency sample is a cliff only when it is huge in absolute terms
#: *and* dwarfs the run's own mean -- both guards keep legitimately
#: slow configurations (deep GC, ECC ladders) from false-positives.
LATENCY_CLIFF_ABS_US = 250_000.0
LATENCY_CLIFF_RATIO = 100.0


def check(ssd, status: str, detail: str = "") -> List[dict]:
    """Run every post-execution oracle; returns the violation list."""
    violations: List[dict] = []

    if status == "deadlock":
        violations.append({"oracle": "progress",
                           "detail": f"deadlock: {detail}"})
    elif status == "stall":
        violations.append({"oracle": "progress",
                           "detail": f"livelock/stall: {detail}"})
    elif status == "exception":
        violations.append({"oracle": "exception", "detail": detail})

    if status == "ok":
        leaks = quiescence_report(ssd)
        if leaks:
            violations.append({
                "oracle": "leaked_holds",
                "detail": "outstanding at quiescence: " + "; ".join(leaks),
            })
        if ssd.ftl.dirty_pages:
            violations.append({
                "oracle": "leaked_holds",
                "detail": f"write buffer not drained: "
                          f"{ssd.ftl.dirty_pages} dirty page(s) with no "
                          f"flush scheduled",
            })
        else:
            problems = ssd.ftl.audit()
            if problems:
                violations.append({
                    "oracle": "mapping",
                    "detail": "; ".join(problems),
                })
        violations.extend(_check_accounting(ssd))

    violations.extend(_check_latency(ssd))
    return violations


def _check_accounting(ssd) -> List[dict]:
    problems: List[str] = []
    host = ssd.host
    if host.submitted != host.completed:
        problems.append(
            f"host submitted ({host.submitted}) != "
            f"completed ({host.completed})")
    frontend = ssd.frontend
    if frontend is not None:
        if frontend.inflight:
            problems.append(
                f"frontend inflight {frontend.inflight} after drain")
        for stats in frontend.stats:
            if stats.arrivals != stats.admitted + stats.dropped:
                problems.append(
                    f"tenant {stats.name}: arrivals {stats.arrivals} != "
                    f"admitted {stats.admitted} + dropped {stats.dropped}")
            if stats.dispatched != stats.completed:
                problems.append(
                    f"tenant {stats.name}: dispatched {stats.dispatched} "
                    f"!= completed {stats.completed}")
            if stats.admitted < stats.dispatched:
                problems.append(
                    f"tenant {stats.name}: dispatched {stats.dispatched} "
                    f"exceeds admitted {stats.admitted}")
    if not problems:
        return []
    return [{"oracle": "qos_accounting", "detail": "; ".join(problems)}]


def _check_latency(ssd) -> List[dict]:
    stats = ssd.ftl.io_latency
    if stats.count < 8 or stats.mean <= 0:
        return []
    if (stats.max > LATENCY_CLIFF_ABS_US
            and stats.max > LATENCY_CLIFF_RATIO * stats.mean):
        return [{
            "oracle": "latency_cliff",
            "detail": f"max latency {stats.max:.0f}us is "
                      f"{stats.max / stats.mean:.0f}x the mean "
                      f"({stats.mean:.1f}us) over {stats.count} requests",
        }]
    return []
