"""Replay a fuzz genome through the real simulated-SSD datapath.

:func:`execute` is a *pure function* of the genome: the device seed is
pinned, flash timing is deterministic, and the DES kernel is exact, so
the same genome always produces the same coverage edges, features, and
oracle verdicts -- in any process.  That purity is what makes the
corpus evolution reproducible across ``--jobs`` settings and what makes
a minimized repro a trustworthy regression test.

Two modes, selected by ``genome.config.tenants``:

* **Direct** (``tenants == 0``): a single scripted driver submits ops
  straight to :meth:`~repro.ftl.ftl.Ftl.submit`.  The only mode where
  the snapshot-divergence oracle can run (quiescent-point snapshots
  reject attached frontends): with ``snapshot_at > 0`` the run splits
  at a drain point, snapshots, restores into a second device, and
  finishes the op tail on both -- their final snapshots must match.
  ``powercut_at > 0`` additionally replays the genome on a second
  device that loses power mid-flight, rebuilds from flash-durable
  state only (:func:`~repro.core.checkpoint.durable_state`), and runs
  the unsubmitted op tail plus the mapping/quiescence oracles on the
  recovered device -- any failure is a ``powerloss_recovery`` finding.

* **Frontend** (``tenants >= 1``): per-tenant scripted drivers feed a
  real :class:`~repro.host.frontend.MultiQueueFrontend` via its
  admission API, exercising arbiters, token-bucket QoS, and
  drop-on-full admission.

**Differential mode** (``execute(..., differential=True)``) runs the
same op sequence against both the ``baseline`` and ``dssd`` presets and
compares their :mod:`~repro.fuzz.diffcheck` canonical end states; any
mismatch is an ``arch_divergence`` finding.  The pair runs with the
reliability knobs zeroed (fault RNG draws are consumed in
datapath-timing order, so they are architecture-dependent noise) and
``snapshot_at`` disabled (orthogonal, and it would double the runtime);
``powercut_at`` is kept so recovery is asserted on both architectures.
"""

from __future__ import annotations

import json
import traceback
from typing import Generator, List, Optional

from ..core.checkpoint import (durable_state, recover_ssd, restore_ssd,
                               snapshot_ssd)
from ..core.config import ArchPreset, SSDConfig, sim_geometry
from ..core.ssd import SimulatedSSD
from ..errors import ReproError
from ..ftl.request import READ, TRIM, WRITE, IoRequest
from ..host.frontend import MultiQueueFrontend
from ..host.qos import QosPolicy
from ..host.tenant import TenantSpec
from ..sim.kernel import SimulationError
from . import canary, diffcheck, oracles
from .coverage import CoverageCollector, semantic_features
from .genome import FUZZ_GEOMETRY, FuzzOp, Genome, GenomeConfig

__all__ = ["DEVICE_SEED", "DIFF_ARCHES", "HORIZON_US", "build_config",
           "execute"]

#: Fixed device seed: execution depends on the genome alone, so ddmin
#: shrinking never perturbs device randomness.
DEVICE_SEED = 0xD55D

#: Simulated-time budget per device run.  Generous against any honest
#: genome (<< 1e5 us of issued work) but finite, so polling livelocks
#: advance simulated time until the horizon instead of hanging the
#: fuzzer -- a run that hits it reports status "stall".  The budget is
#: an *absolute* deadline per device: a snapshot-split run's head and
#: tail share one horizon, so split and unsplit runs stall identically.
HORIZON_US = 2_000_000.0

#: The architecture pair differential mode compares.
DIFF_ARCHES = ("baseline", "dssd")

_OP_CODES = {"read": READ, "write": WRITE, "trim": TRIM}


def build_config(config: GenomeConfig) -> SSDConfig:
    """Translate genome knobs into a concrete tiny-device SSDConfig."""
    config = config.normalized()
    reliability = None
    if config.base_rber > 0.0 or config.fault_rate > 0.0:
        from ..reliability import ReliabilityConfig

        reliability = ReliabilityConfig(
            base_rber=max(config.base_rber, 1e-9),
            channel_fault_rate=config.fault_rate,
            spare_blocks_per_channel=1,
        )
    return SSDConfig(
        arch=ArchPreset(config.arch),
        geometry=sim_geometry(**FUZZ_GEOMETRY),
        queue_depth=config.queue_depth,
        write_policy=config.write_policy,
        gc_policy=config.gc_policy,
        prefill_fraction=config.prefill_fraction,
        prefill_valid_ratio=config.prefill_valid_ratio,
        reliability=reliability,
        gc_reserve_blocks=1,
        flush_workers=4,
        seed=DEVICE_SEED,
        # Pinned (never "auto"): edge coverage traces interpreter frames
        # via settrace/sys.monitoring, and compiled-backend frames are
        # invisible to both.  Running fuzz executions on the fast
        # backend would silently collapse coverage — and corpus hashes
        # must be identical whatever REPRO_DSSD_BACKEND says.
        backend="pure",
    )


def _build_device(config: GenomeConfig) -> SimulatedSSD:
    ssd = SimulatedSSD(build_config(config))
    # Pinned for the same reason as backend="pure" above: the flat
    # datapath/controller fast path collapses the layered generators'
    # edge coverage (and their try/finally cleanup paths) into a couple
    # of straight-line frames, starving the mutation search and shifting
    # corpus hashes.  Fuzzing always exercises the layered reference
    # semantics; the flat twin is held byte-identical to it by the
    # equivalence suite instead.
    ssd.datapath.use_flat_path = False
    for controller in ssd.controllers:
        controller.use_flat_path = False
    canary.maybe_install(ssd)
    ssd.prefill()
    ssd.ftl.start()
    return ssd


def _make_request(op: FuzzOp, lpn_space: int) -> IoRequest:
    lpn = min(int(op.lpn_frac * lpn_space), max(lpn_space - 1, 0))
    return IoRequest(op=_OP_CODES[op.kind], lpn=lpn, n_pages=op.n_pages,
                     dram_hit=op.dram_hit and op.kind in ("read", "write"))


class _PhaseResult:
    __slots__ = ("status", "detail")

    def __init__(self, status: str, detail: str = ""):
        self.status = status
        self.detail = detail


def _spawn_driver(ssd: SimulatedSSD, ops: List[FuzzOp],
                  state: dict, procs: List) -> None:
    """Start the scripted direct-mode driver (shared by every phase).

    ``state["issued"]`` tracks how many ops have been handed to the
    device so a power-cut pass knows which tail remains unsubmitted;
    ``state["done"]`` flips when the script ends.
    """
    sim = ssd.sim

    def driver() -> Generator:
        for index, op in enumerate(ops):
            if op.gap_us > 0.0:
                yield sim.timeout(op.gap_us)
            if op.kind == "flush":
                pending = [p for p in procs if not p.triggered]
                if pending:
                    yield sim.all_of(pending)
            else:
                procs.append(
                    ssd.ftl.submit(_make_request(op, ssd.lpn_space)))
            state["issued"] = index + 1
        state["done"] = True

    sim.process(driver(), name="fuzz_driver")


def _drain_until(sim, deadline: float) -> None:
    """Dispatch queued events up to *deadline* without clock inflation.

    ``Simulator.run(until=...)`` fast-forwards ``now`` onto *until*
    when the queue empties first; with one absolute stall budget per
    execution that would charge a completed head phase for the whole
    horizon and leave the tail none.  Stepping dispatches in the same
    ``(time, seq)`` heap order but stops the clock at the last event
    actually executed.
    """
    while True:
        upcoming = sim.peek()
        if upcoming is None or upcoming > deadline:
            return
        sim.step()


def _run_direct(ssd: SimulatedSSD, ops: List[FuzzOp],
                deadline: float) -> _PhaseResult:
    """Submit *ops* straight to the FTL and drain; classify the ending.

    *deadline* is an absolute simulated time: callers compute it once
    per device (``sim.now + HORIZON_US`` at the run's start) so a
    snapshot-split execution's phases share one stall budget.
    """
    sim = ssd.sim
    state = {"done": False, "issued": 0}
    procs: List = []
    _spawn_driver(ssd, ops, state, procs)
    try:
        _drain_until(sim, deadline)
    except Exception as exc:  # noqa: BLE001 - any model crash is a finding
        return _PhaseResult(
            "exception",
            traceback.format_exception_only(type(exc), exc)[-1].strip())
    finished = state["done"] and all(p.triggered for p in procs)
    if finished and sim.peek() is None:
        return _PhaseResult("ok")
    if sim.peek() is None:
        return _PhaseResult(
            "deadlock",
            f"event queue drained with work incomplete "
            f"(driver done={state['done']}, "
            f"outstanding={sum(1 for p in procs if not p.triggered)})")
    return _PhaseResult(
        "stall", f"horizon {HORIZON_US:.0f}us reached with events pending")


def _run_frontend(ssd: SimulatedSSD, config: GenomeConfig,
                  ops: List[FuzzOp], deadline: float) -> _PhaseResult:
    """Feed *ops* through a MultiQueueFrontend with scripted drivers."""
    sim = ssd.sim
    tenants = config.tenants
    specs = []
    for index in range(tenants):
        rate = config.rate_iops if (index == 0 and config.rate_iops > 0) \
            else None
        specs.append(TenantSpec(
            name=f"t{index}",
            workload=None,   # scripted drivers never pull from it
            driver="closed",
            qos=QosPolicy(rate_iops=rate, weight=index + 1,
                          priority=index % 2, sq_depth=8,
                          drop_on_full=config.drop_on_full),
        ))
    frontend = MultiQueueFrontend(sim, ssd.ftl, specs,
                                  arbiter=config.arbiter)
    ssd.frontend = frontend

    def scripted(qid: int, tenant_ops: List[FuzzOp]) -> Generator:
        submitted: List = []
        for op in tenant_ops:
            if op.gap_us > 0.0:
                yield sim.timeout(op.gap_us)
            if op.kind == "flush":
                pending = [sqe.done for sqe in submitted
                           if sqe is not None and not sqe.done.triggered]
                if pending:
                    yield sim.all_of(pending)
                continue
            request = _make_request(op, ssd.lpn_space)
            if config.drop_on_full:
                submitted.append(frontend.try_submit(qid, request))
            else:
                sqe = yield from frontend.submit_blocking(qid, request)
                submitted.append(sqe)

    drivers = [
        scripted(qid, [op for op in ops if op.tenant % tenants == qid])
        for qid in range(tenants)
    ]
    frontend.start_scripted(drivers)
    try:
        _drain_until(sim, deadline)
    except Exception as exc:  # noqa: BLE001 - any model crash is a finding
        return _PhaseResult(
            "exception",
            traceback.format_exception_only(type(exc), exc)[-1].strip())
    idle = frontend._all_idle() and ssd.host.outstanding == 0
    if idle and sim.peek() is None:
        return _PhaseResult("ok")
    if sim.peek() is None:
        return _PhaseResult(
            "deadlock",
            f"event queue drained with frontend busy "
            f"(inflight={frontend.inflight}, "
            f"host outstanding={ssd.host.outstanding})")
    return _PhaseResult(
        "stall", f"horizon {HORIZON_US:.0f}us reached with events pending")


def _canonical_snapshot(ssd) -> Optional[str]:
    try:
        return json.dumps(snapshot_ssd(ssd), sort_keys=True)
    except (ReproError, SimulationError):
        # Not quiescent -- the leaked-hold oracle owns that finding.
        return None


def _execute_direct(genome: Genome, outcome: dict) -> SimulatedSSD:
    config = genome.config
    ops = genome.ops
    ssd = _build_device(config)
    deadline = ssd.sim.now + HORIZON_US
    split = int(len(ops) * config.snapshot_at) if config.snapshot_at else 0
    if not 0 < split < len(ops):
        result = _run_direct(ssd, ops, deadline)
        outcome["status"] = result.status
        outcome["detail"] = result.detail
        return ssd

    head = _run_direct(ssd, ops[:split], deadline)
    if head.status != "ok":
        outcome["status"] = head.status
        outcome["detail"] = head.detail
        return ssd
    restored: Optional[SimulatedSSD] = None
    try:
        state = json.loads(json.dumps(snapshot_ssd(ssd)))
        restored = restore_ssd(state)
        canary.maybe_install(restored)
    except (ReproError, SimulationError) as exc:
        # Leak at the drain point: report via the leaked-hold oracle
        # path (status stays ok so oracles.check runs quiescence).
        outcome.setdefault("notes", []).append(
            f"snapshot at split refused: {exc}")
    tail = _run_direct(ssd, ops[split:], deadline)
    outcome["status"] = tail.status
    outcome["detail"] = tail.detail
    if restored is not None:
        # The restored device's clock is rewound onto the snapshot
        # time, so the same absolute deadline bounds its tail too.
        tail2 = _run_direct(restored, ops[split:], deadline)
        primary = _canonical_snapshot(ssd)
        secondary = _canonical_snapshot(restored)
        if tail.status == "ok" and tail2.status != "ok":
            outcome["violations"].append({
                "oracle": "snapshot_divergence",
                "detail": f"restored device ended {tail2.status} "
                          f"({tail2.detail}) while primary ended ok",
            })
        elif (primary is not None and secondary is not None
                and primary != secondary):
            outcome["violations"].append({
                "oracle": "snapshot_divergence",
                "detail": "continuing after snapshot/restore diverged "
                          "from the uninterrupted run",
            })
        outcome["features"].update(
            semantic_features(restored, tail2.status))
    return ssd


def _check_powercut(genome: Genome, end_time: float) -> List[dict]:
    """Power-loss pass: cut, rebuild from durable state, replay, audit.

    Replays the genome on a fresh device up to ``powercut_at`` of the
    measured uninterrupted duration *end_time*, yanks power there
    (mid-flight, event queue intact), mounts a recovered device from
    the flash-durable projection, runs the not-yet-submitted op tail on
    it, and applies the standard oracle battery.  Every failure --
    including a crash inside recovery itself -- comes back as a
    ``powerloss_recovery`` violation.
    """
    cut_time = genome.config.powercut_at * end_time
    if cut_time <= 0.0:
        return []
    ssd = _build_device(genome.config)
    state = {"done": False, "issued": 0}
    procs: List = []
    _spawn_driver(ssd, genome.ops, state, procs)
    try:
        ssd.sim.run(until=cut_time)
        durable = json.loads(json.dumps(durable_state(ssd)))
        recovered = recover_ssd(durable)
        canary.maybe_install(recovered)
    except Exception as exc:  # noqa: BLE001 - recovery crash is the finding
        line = traceback.format_exception_only(type(exc), exc)[-1].strip()
        return [{"oracle": "powerloss_recovery",
                 "detail": f"recovery crashed at cut t={cut_time:.1f}us "
                           f"({state['issued']} op(s) issued): {line}"}]
    tail = genome.ops[state["issued"]:]
    result = _run_direct(recovered, tail,
                         recovered.sim.now + HORIZON_US)
    violations = []
    for found in oracles.check(recovered, result.status, result.detail):
        violations.append({
            "oracle": "powerloss_recovery",
            "detail": f"post-recovery {found['oracle']} (cut at "
                      f"t={cut_time:.1f}us, {state['issued']} op(s) "
                      f"issued, {len(tail)} replayed): {found['detail']}",
        })
    return violations


def _differential_pair(genome: Genome) -> List[Genome]:
    """The two arch-pinned genomes a differential execution compares.

    Reliability knobs are zeroed (the fault RNG is consumed in
    datapath-timing order -- architecture-dependent noise, see
    :mod:`~repro.fuzz.diffcheck`) and ``snapshot_at`` is disabled;
    everything else, including ``powercut_at``, carries over.
    """
    pair = []
    for arch in DIFF_ARCHES:
        state = genome.config.to_dict()
        state["arch"] = arch
        state["base_rber"] = 0.0
        state["fault_rate"] = 0.0
        state["snapshot_at"] = 0.0
        pair.append(Genome(config=GenomeConfig.from_dict(state),
                           ops=genome.ops, origin=genome.origin))
    return pair


def _execute_differential(genome: Genome, collect_coverage: bool) -> dict:
    outcome: dict = {"status": "ok", "detail": "", "violations": [],
                     "features": set(), "metrics": {}, "edges": set()}
    canonical = {}
    for arch_genome in _differential_pair(genome):
        arch = arch_genome.config.arch
        sub = execute(arch_genome, collect_coverage=collect_coverage)
        outcome["edges"].update(sub["edges"])
        outcome["features"].update(sub["features"])
        for violation in sub["violations"]:
            outcome["violations"].append({
                "oracle": violation["oracle"],
                "detail": f"[{arch}] {violation['detail']}",
            })
        if sub["status"] != "ok" and outcome["status"] == "ok":
            outcome["status"] = sub["status"]
            outcome["detail"] = f"[{arch}] {sub['detail']}"
        outcome["metrics"][arch] = sub["metrics"]
        canonical[arch] = sub["canonical"]
    mismatches = diffcheck.diff(canonical[DIFF_ARCHES[0]],
                                canonical[DIFF_ARCHES[1]],
                                labels=DIFF_ARCHES)
    if mismatches:
        outcome["violations"].append({
            "oracle": "arch_divergence",
            "detail": "; ".join(mismatches),
        })
    outcome["canonical"] = canonical
    outcome["edges"] = sorted(outcome["edges"])
    outcome["features"] = sorted(outcome["features"])
    return outcome


def execute(genome: Genome, collect_coverage: bool = True,
            differential: bool = False) -> dict:
    """Run one genome; return a picklable outcome record.

    Keys: ``status`` (ok/deadlock/stall/exception), ``detail``,
    ``violations`` (list of ``{"oracle", "detail"}``), ``edges`` and
    ``features`` (sorted lists of stable strings), ``metrics``, and
    ``canonical`` (the :mod:`~repro.fuzz.diffcheck` projection).
    Oracles run in here -- workers ship verdicts, not live devices.

    With ``differential=True`` the genome executes on both
    :data:`DIFF_ARCHES`; edges/features are unioned, per-arch
    violations are prefixed with their architecture, and a canonical
    end-state mismatch adds an ``arch_divergence`` violation.
    """
    genome = genome.normalized()
    if differential:
        return _execute_differential(genome, collect_coverage)
    outcome: dict = {"status": "ok", "detail": "", "violations": [],
                     "features": set(), "metrics": {}}
    collector = CoverageCollector()
    if collect_coverage:
        collector.__enter__()
    try:
        if genome.config.tenants == 0:
            ssd = _execute_direct(genome, outcome)
            if genome.config.powercut_at > 0.0 and outcome["status"] == "ok":
                outcome["violations"].extend(
                    _check_powercut(genome, ssd.sim.now))
        else:
            ssd = _build_device(genome.config)
            result = _run_frontend(ssd, genome.config, genome.ops,
                                   ssd.sim.now + HORIZON_US)
            outcome["status"] = result.status
            outcome["detail"] = result.detail
    finally:
        if collect_coverage:
            collector.__exit__(None, None, None)

    outcome["features"].update(semantic_features(ssd, outcome["status"]))
    outcome["violations"].extend(
        oracles.check(ssd, outcome["status"], outcome["detail"]))
    outcome["canonical"] = diffcheck.canonical_state(
        ssd, outcome["status"], outcome["detail"])
    outcome["metrics"] = {
        "sim_now_us": ssd.sim.now,
        "requests_completed": ssd.ftl.requests_completed,
        "gc_episodes": ssd.gc.stats.episodes,
        "gc_pages_moved": ssd.gc.stats.pages_moved,
    }
    outcome["edges"] = sorted(collector.edges)
    outcome["features"] = sorted(outcome["features"])
    return outcome
