"""The fuzzing loop: generational, batch-synchronous, deterministic.

Determinism across ``--jobs`` is the core design constraint (the smoke
CI gate compares corpus hashes across runs *and* worker counts), and it
falls out of three rules:

1. every generation's candidate batch is derived from the seeded RNG
   and the current corpus *before* any execution is dispatched;
2. executions are pure functions of the genome (pinned device seed), so
   where they run cannot matter;
3. results are folded into the corpus in batch order (``pool.map``
   preserves order), so the coverage map -- and therefore the next
   generation's parents -- evolve identically for any worker count.

Violations are deduplicated by oracle, ddmin-minimized inline
(serially, so the shrink sequence is deterministic too), and written as
self-contained JSON repro cases replayable via
``repro fuzz repro <case.json>``.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from .corpus import Corpus
from .executor import execute
from .genome import Genome
from .minimize import minimize_for_oracle
from .mutate import mutate
from .seeds import make_seeds

__all__ = ["FuzzReport", "SMOKE_DIFF_EXECS", "SMOKE_DIFF_MIN_EDGES",
           "SMOKE_EXECS", "SMOKE_MIN_EDGES", "run_fuzz"]

#: Execution budget of ``--smoke`` (exec-counted, never wall-clock, so
#: the run is identical on any machine).
SMOKE_EXECS = 120

#: Execution budget of ``--differential --smoke``.  Each differential
#: execution runs the genome on both architectures (plus any power-cut
#: pass twice), so the budget is smaller than the single-arch smoke.
SMOKE_DIFF_EXECS = 48

#: Pinned floor of distinct coverage edges a smoke run must reach
#: (~1300 observed on CPython 3.11's settrace path; the floor sits at
#: ~70% of that to absorb interpreter-version line-numbering drift).
SMOKE_MIN_EDGES = 900

#: Edge floor for the differential smoke (~490 observed: the smaller
#: exec budget plus zeroed reliability knobs in every pair prune the
#: reliability/ edges; same ~70% headroom policy).
SMOKE_DIFF_MIN_EDGES = 350

#: ddmin probe budget per minimization.
MINIMIZE_TESTS = 150


@dataclass
class FuzzReport:
    """Everything one fuzzing session produced."""

    seed: int
    executions: int = 0
    corpus_size: int = 0
    corpus_hash: str = ""
    distinct_edges: int = 0
    distinct_features: int = 0
    elapsed_s: float = 0.0
    #: Whether executions ran in baseline-vs-dssd differential mode.
    differential: bool = False
    #: One entry per distinct oracle tripped:
    #: ``{"oracle", "detail", "ops", "minimized_ops", "path"}``.
    violations: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "executions": self.executions,
            "corpus_size": self.corpus_size,
            "corpus_hash": self.corpus_hash,
            "distinct_edges": self.distinct_edges,
            "distinct_features": self.distinct_features,
            "elapsed_s": round(self.elapsed_s, 2),
            "differential": self.differential,
            "violations": self.violations,
        }


def _pool_execute(genome_state: dict) -> dict:
    """Top-level worker entry (must be picklable for the pool)."""
    return execute(Genome.from_dict(genome_state))


def _pool_execute_diff(genome_state: dict) -> dict:
    """Differential-mode worker entry."""
    return execute(Genome.from_dict(genome_state), differential=True)


def _execute_batch(batch: List[Genome], jobs: int,
                   differential: bool = False) -> List[dict]:
    if jobs <= 1 or len(batch) <= 1:
        return [execute(genome, differential=differential)
                for genome in batch]
    worker = _pool_execute_diff if differential else _pool_execute
    with multiprocessing.Pool(min(jobs, len(batch))) as pool:
        return pool.map(worker, [genome.to_dict() for genome in batch])


def _edge_count(corpus: Corpus) -> int:
    return sum(1 for item in corpus.seen if "->" in item)


def run_fuzz(seed: int = 7,
             execs: Optional[int] = None,
             time_budget_s: Optional[float] = None,
             jobs: int = 1,
             arch: Optional[str] = None,
             corpus_root: Optional[Path] = None,
             repro_dir: Optional[Path] = None,
             minimize: bool = True,
             differential: bool = False,
             log=None) -> FuzzReport:
    """Run one fuzzing session; returns the :class:`FuzzReport`.

    ``execs`` counts main-loop executions (seeds + mutants; ddmin
    probes are budgeted separately).  ``time_budget_s`` optionally
    stops the loop on wall-clock instead -- never combine it with a
    determinism comparison.  With ``differential=True`` every
    execution runs the genome on both architectures and compares
    their canonical end states (see :mod:`~repro.fuzz.diffcheck`);
    minimization and repro replay then happen in the same mode.
    """
    if execs is None and time_budget_s is None:
        execs = SMOKE_DIFF_EXECS if differential else SMOKE_EXECS
    say = log if log is not None else (lambda message: None)
    repro_dir = Path(repro_dir) if repro_dir is not None else None
    started = time.monotonic()
    rng = random.Random(seed)
    corpus = Corpus(root=corpus_root)
    report = FuzzReport(seed=seed, differential=differential)
    seen_oracles = set()

    def out_of_budget() -> bool:
        if execs is not None and report.executions >= execs:
            return True
        if (time_budget_s is not None
                and time.monotonic() - started >= time_budget_s):
            return True
        return False

    def fold(genome: Genome, outcome: dict) -> None:
        coverage = set(outcome["edges"]) | set(outcome["features"])
        corpus.consider(genome, coverage)
        for violation in outcome["violations"]:
            _handle_violation(genome, violation)

    def _handle_violation(genome: Genome, violation: dict) -> None:
        oracle = violation["oracle"]
        if oracle in seen_oracles:
            return
        seen_oracles.add(oracle)
        say(f"[fuzz] {oracle} tripped ({len(genome.ops)} ops): "
            f"{violation['detail'][:140]}")
        entry = {"oracle": oracle, "detail": violation["detail"],
                 "ops": len(genome.ops), "minimized_ops": len(genome.ops),
                 "path": None}
        case = genome
        if minimize:
            case = minimize_for_oracle(genome, oracle,
                                       max_tests=MINIMIZE_TESTS,
                                       differential=differential)
            entry["minimized_ops"] = len(case.ops)
            say(f"[fuzz] minimized {oracle} repro to {len(case.ops)} op(s)")
        if repro_dir is not None:
            repro_dir.mkdir(parents=True, exist_ok=True)
            path = repro_dir / f"repro_{oracle}_{case.content_hash()[:12]}.json"
            case_record = {
                "schema": 1,
                "oracle": oracle,
                "detail": violation["detail"],
                "genome": case.to_dict(),
            }
            if differential:
                case_record["mode"] = "differential"
            path.write_text(json.dumps(case_record, indent=2,
                                       sort_keys=True))
            entry["path"] = str(path)
            say(f"[fuzz] repro written: {path}")
        entry["genome"] = case.to_dict()
        report.violations.append(entry)

    # Phase 1: the deterministic seed corpus.
    seeds = make_seeds(arch)
    say(f"[fuzz] seeding corpus: {len(seeds)} genome(s)")
    index = 0
    while index < len(seeds) and not out_of_budget():
        batch = seeds[index:index + max(jobs, 1)]
        index += len(batch)
        outcomes = _execute_batch(batch, jobs, differential)
        report.executions += len(batch)
        for genome, outcome in zip(batch, outcomes):
            fold(genome, outcome)

    # Phase 2: coverage-guided mutation generations.
    while not out_of_budget() and len(corpus):
        remaining = (execs - report.executions
                     if execs is not None else max(jobs, 1) * 2)
        batch_size = max(1, min(max(jobs, 1) * 2, remaining))
        batch = []
        for _ in range(batch_size):
            parent = corpus.pick(rng)
            donor = corpus.pick(rng)
            batch.append(mutate(rng, parent, donor))
        outcomes = _execute_batch(batch, jobs, differential)
        report.executions += len(batch)
        for genome, outcome in zip(batch, outcomes):
            fold(genome, outcome)

    report.corpus_size = len(corpus)
    report.corpus_hash = corpus.content_hash()
    report.distinct_edges = _edge_count(corpus)
    report.distinct_features = corpus.coverage_size - report.distinct_edges
    report.elapsed_s = time.monotonic() - started
    say(f"[fuzz] done: {report.executions} execs, "
        f"{report.corpus_size} corpus entries, "
        f"{report.distinct_edges} edges, "
        f"{len(report.violations)} violation(s), "
        f"corpus hash {report.corpus_hash[:16]}")
    return report
