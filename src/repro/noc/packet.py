"""Packets and flit arithmetic for the flash-controller NoC.

A copyback page is "packetized" in the decoupled controller's network
interface: the page data is appended with the command information and a
packet header (paper Sec 4.2, step 5).  Packets are segmented into
fixed-size flits for transmission.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ConfigError

__all__ = ["Packet", "flit_count", "DEFAULT_FLIT_BYTES", "DEFAULT_HEADER_BYTES"]

#: Default flit size (bytes); 256 B flits give a 4 KiB page 17 flits.
DEFAULT_FLIT_BYTES = 256
#: Header + command/address overhead appended to the page payload.
DEFAULT_HEADER_BYTES = 16

_packet_ids = itertools.count()


def flit_count(payload_bytes: int, flit_bytes: int = DEFAULT_FLIT_BYTES,
               header_bytes: int = DEFAULT_HEADER_BYTES) -> int:
    """Number of flits needed for a payload plus header/command bytes."""
    if payload_bytes < 0:
        raise ConfigError(f"negative payload: {payload_bytes}")
    if flit_bytes < 1:
        raise ConfigError(f"flit size must be >= 1 byte: {flit_bytes}")
    total = payload_bytes + header_bytes
    return max(1, math.ceil(total / flit_bytes))


@dataclass
class Packet:
    """One fNoC packet: a page (or message) moving between controllers."""

    src: int
    dst: int
    payload_bytes: int
    traffic_class: str = "gc"
    command: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ConfigError(f"negative payload: {self.payload_bytes}")

    def flits(self, flit_bytes: int = DEFAULT_FLIT_BYTES,
              header_bytes: int = DEFAULT_HEADER_BYTES) -> int:
        """Flit count for this packet."""
        return flit_count(self.payload_bytes, flit_bytes, header_bytes)

    def wire_bytes(self, flit_bytes: int = DEFAULT_FLIT_BYTES,
                   header_bytes: int = DEFAULT_HEADER_BYTES) -> int:
        """Bytes actually occupying channels (flit-quantized)."""
        return self.flits(flit_bytes, header_bytes) * flit_bytes
