"""fNoC topologies: 1-D mesh, ring, crossbar.

A topology answers three questions for the network fabric:

* which directed channels exist (``channels()``),
* which sequence of nodes a packet visits (``path(src, dst)``),
* which virtual channel a packet must use (``vc_of(path)``) -- only the
  ring needs more than one VC, to break its cyclic channel dependency
  with a dateline at node 0.

Bisection-bandwidth accounting follows the paper's Fig 13 methodology:
topologies are compared at equal bisection bandwidth, so each topology
reports how to translate a bisection budget into per-channel bandwidth.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigError

__all__ = ["Topology", "Mesh1D", "Mesh2D", "Ring", "Crossbar", "XBAR_HUB"]

#: Synthetic hub node id used by :class:`Crossbar` paths.
XBAR_HUB = -1


class Topology:
    """Base class: *k* terminal nodes (one per decoupled controller)."""

    #: Number of virtual channels required for deadlock freedom.
    vc_count = 1

    def __init__(self, k: int):
        if k < 2:
            raise ConfigError(f"topology needs >= 2 nodes, got {k}")
        self.k = k

    @property
    def name(self) -> str:
        """Short topology label."""
        return type(self).__name__.lower()

    def channels(self) -> List[Tuple[int, int]]:
        """All directed channels ``(u, v)`` in the fabric."""
        raise NotImplementedError

    def path(self, src: int, dst: int) -> List[int]:
        """Node sequence from *src* to *dst* inclusive (minimal route)."""
        raise NotImplementedError

    def vc_of(self, path: Sequence[int]) -> int:
        """Virtual channel assignment for a routed path."""
        return 0

    def routes(self) -> Dict[Tuple[int, int], Tuple[List[int], int]]:
        """All-pairs ``(src, dst) -> (path, vc)`` table, computed once.

        Routing in every topology here is deterministic and static, so
        the table is built on first use and cached; the fabric resolves
        per-packet routes with one dict lookup instead of re-running
        dimension-order routing.
        """
        table = getattr(self, "_route_table", None)
        if table is None:
            table = self._route_table = {}
            for src in range(self.k):
                for dst in range(self.k):
                    path = self.path(src, dst)
                    table[(src, dst)] = (path, self.vc_of(path))
        return table

    def channel_bandwidth_for_bisection(self, bisection_bw: float) -> float:
        """Per-channel bandwidth giving the requested bisection bandwidth."""
        raise NotImplementedError

    def hop_count(self, src: int, dst: int) -> int:
        """Channel traversals between *src* and *dst*."""
        return len(self.path(src, dst)) - 1

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.k:
            raise ConfigError(f"node {node} outside [0, {self.k})")


class Mesh1D(Topology):
    """A line of *k* routers; dimension-order routing is just left/right.

    The paper's default fNoC (Table 1: 1D mesh, k=8, n=1, dim-order
    routing) -- it matches the linear floorplan of the flash controllers.
    """

    def channels(self) -> List[Tuple[int, int]]:
        chans = []
        for node in range(self.k - 1):
            chans.append((node, node + 1))
            chans.append((node + 1, node))
        return chans

    def path(self, src: int, dst: int) -> List[int]:
        self._check_node(src)
        self._check_node(dst)
        step = 1 if dst >= src else -1
        return list(range(src, dst + step, step)) if src != dst else [src]

    def channel_bandwidth_for_bisection(self, bisection_bw: float) -> float:
        # Two unidirectional channels cross the mid-line cut.
        return bisection_bw / 2.0


class Mesh2D(Topology):
    """A 2-D mesh with XY dimension-order routing.

    The paper leaves the optimal topology for larger controller counts
    open ("it remains to be seen what the optimal topology for the fNoC
    will be"); this extension provides the natural next candidate.  *k*
    must be a perfect square; node *n* sits at row ``n // side``,
    column ``n % side``.  XY routing (X first, then Y) keeps the channel
    dependency graph acyclic, so one virtual channel suffices.
    """

    def __init__(self, k: int):
        super().__init__(k)
        side = int(round(k ** 0.5))
        if side * side != k:
            raise ConfigError(f"Mesh2D needs a square node count, got {k}")
        self.side = side

    def _coords(self, node: int) -> Tuple[int, int]:
        return node // self.side, node % self.side

    def _node(self, row: int, col: int) -> int:
        return row * self.side + col

    def channels(self) -> List[Tuple[int, int]]:
        chans = []
        for row in range(self.side):
            for col in range(self.side):
                node = self._node(row, col)
                if col + 1 < self.side:
                    right = self._node(row, col + 1)
                    chans.append((node, right))
                    chans.append((right, node))
                if row + 1 < self.side:
                    down = self._node(row + 1, col)
                    chans.append((node, down))
                    chans.append((down, node))
        return chans

    def path(self, src: int, dst: int) -> List[int]:
        self._check_node(src)
        self._check_node(dst)
        row, col = self._coords(src)
        dst_row, dst_col = self._coords(dst)
        path = [src]
        while col != dst_col:                      # X first
            col += 1 if dst_col > col else -1
            path.append(self._node(row, col))
        while row != dst_row:                      # then Y
            row += 1 if dst_row > row else -1
            path.append(self._node(row, col))
        return path

    def channel_bandwidth_for_bisection(self, bisection_bw: float) -> float:
        # `side` rows each contribute two unidirectional channels
        # across the vertical mid-line cut.
        return bisection_bw / (2.0 * self.side)


class Ring(Topology):
    """A bidirectional ring with minimal routing and a dateline VC.

    Packets take the shorter direction (ties go clockwise).  Clockwise
    packets that cross the ``k-1 -> 0`` dateline switch to VC 1 (and
    counter-clockwise packets crossing ``0 -> k-1`` likewise), breaking
    the cyclic buffer dependency that could otherwise deadlock the ring.
    """

    vc_count = 2

    def channels(self) -> List[Tuple[int, int]]:
        chans = []
        for node in range(self.k):
            nxt = (node + 1) % self.k
            chans.append((node, nxt))
            chans.append((nxt, node))
        return chans

    def path(self, src: int, dst: int) -> List[int]:
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return [src]
        clockwise = (dst - src) % self.k
        counter = (src - dst) % self.k
        step = 1 if clockwise <= counter else -1
        path = [src]
        node = src
        while node != dst:
            node = (node + step) % self.k
            path.append(node)
        return path

    def vc_of(self, path: Sequence[int]) -> int:
        for cur, nxt in zip(path, path[1:]):
            if (cur == self.k - 1 and nxt == 0) or (cur == 0 and nxt == self.k - 1):
                return 1
        return 0

    def channel_bandwidth_for_bisection(self, bisection_bw: float) -> float:
        # Four unidirectional channels cross the cut (two per side).
        return bisection_bw / 4.0


class Crossbar(Topology):
    """An ideal single-stage crossbar.

    Modeled as input links into a hub and output links out of it: a
    packet serializes once on its input port and once on its output
    port, with no intermediate contention -- the classic non-blocking
    switch.  The hub has ample buffering.
    """

    def channels(self) -> List[Tuple[int, int]]:
        chans = []
        for node in range(self.k):
            chans.append((node, XBAR_HUB))
            chans.append((XBAR_HUB, node))
        return chans

    def path(self, src: int, dst: int) -> List[int]:
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return [src]
        return [src, XBAR_HUB, dst]

    def channel_bandwidth_for_bisection(self, bisection_bw: float) -> float:
        # k/2 input links cross the logical bisection in each direction.
        return bisection_bw / (self.k / 2.0)
