"""The flash-controller network-on-chip (fNoC) fabric.

Switching model: virtual cut-through at packet granularity with
flit-level serialization and credit-based input buffering.

* Every directed channel is a serializing :class:`~repro.sim.Link`; a
  packet occupies the channel for ``flits x flit_time``.
* Every router input port holds a :class:`~repro.sim.TokenPool` of
  ``buffer_flits`` credits per virtual channel.  A packet acquires
  ``min(flits, buffer_flits)`` credits downstream *before* it may use
  the channel, and the credits are returned when the packet's tail has
  left that router on the next channel -- giving real backpressure.
* Cut-through pipelining: the packet header is forwarded to the next
  hop ``flit_time + router_latency`` after the channel starts serving
  the packet, while the tail is still serializing behind it.

Deadlock freedom: the 1-D mesh routes dimension-order (acyclic channel
dependencies); the ring assigns dateline-crossing packets to a second
virtual channel (see :class:`~repro.noc.topology.Ring`); the crossbar
is a two-hop star with an amply-buffered hub.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..errors import ConfigError
from ..sim import LatencyStats, Link, Resource, Simulator, TokenPool
from .packet import DEFAULT_FLIT_BYTES, DEFAULT_HEADER_BYTES, Packet, \
    flit_count
from .topology import Topology, XBAR_HUB

__all__ = ["FNoC", "NocBreakdown"]

#: Default router pipeline latency per hop (us); a few ns-scale cycles.
DEFAULT_ROUTER_LATENCY_US = 0.01
#: Default packetization/depacketization delay at the network interface.
DEFAULT_NI_LATENCY_US = 0.05
#: Default input buffer depth in flits (paper: "small input buffer").
DEFAULT_BUFFER_FLITS = 16


@dataclass
class NocBreakdown:
    """Latency attribution for one packet traversal."""

    queue_wait: float      #: time blocked on credits + channel arbitration
    serialization: float   #: tail serialization on the final channel
    hop_pipeline: float    #: header forwarding time across hops
    total: float           #: end-to-end NI-to-NI latency
    hops: int              #: channels traversed


class _HopRelease:
    """One completion callback bundling a hop's guard + credit releases.

    Replaces up to three per-hop lambda closures on the channel's
    ``done`` event with a single allocation; the slots are resolved once
    when the hop's bookkeeping is known.
    """

    __slots__ = ("guard", "pool_a", "tokens_a", "pool_b", "tokens_b")

    def __init__(self, guard, pool_a, tokens_a, pool_b=None, tokens_b=0):
        self.guard = guard
        self.pool_a = pool_a
        self.tokens_a = tokens_a
        self.pool_b = pool_b
        self.tokens_b = tokens_b

    def __call__(self, _event) -> None:
        if self.guard is not None:
            self.guard.release()
        if self.pool_a is not None:
            self.pool_a.release(self.tokens_a)
        if self.pool_b is not None:
            self.pool_b.release(self.tokens_b)


def _build_hop_schedule(hops, flits):
    """Precompute the per-hop walk for one ``(route, flit count)`` pair.

    Everything the old per-packet hop loop decided — credit counts, which
    releases ride which channel's ``done`` event, which credits carry to
    the next hop — depends only on the route's resources and the packet's
    flit count, so it is computed once and cached.  The completion
    bookkeeping per hop rides a single :class:`_HopRelease`: the wormhole
    guard, the credits held at the *previous* router (they drain as this
    channel serializes the tail out of it), and — with a deep buffer —
    this hop's own credits, freed when the whole packet is absorbed
    downstream (virtual cut-through).  A shallow buffer instead carries
    its credits to the next hop (wormhole coupling — downstream stalls
    propagate upstream).

    Returns ``(steps, final_held)``: *steps* is a tuple of
    ``(guard, pool, tokens, link, release)`` per hop (*release* may be
    None), and *final_held* is the ``(pool, tokens)`` still held when the
    tail reaches the destination, or None.  The ``_HopRelease`` instances
    are stateless and safely shared by every packet using this schedule.
    """
    steps = []
    held = None
    for pool, link, guard in hops:
        capacity = pool.capacity
        tokens = flits if flits < capacity else capacity
        if tokens >= flits:
            if held is not None:
                release = _HopRelease(guard, held[0], held[1], pool, tokens)
            else:
                release = _HopRelease(guard, pool, tokens)
            held = None
        else:
            if guard is not None or held is not None:
                prev_pool, prev_tokens = held if held is not None \
                    else (None, 0)
                release = _HopRelease(guard, prev_pool, prev_tokens)
            else:
                release = None
            held = (pool, tokens)
        steps.append((guard, pool, tokens, link, release))
    return tuple(steps), held


class FNoC:
    """The flash-controller interconnect.

    ``channel_bandwidth`` is bytes/us per directed channel.  All
    channels are homogeneous, matching the paper's fNoC.
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 channel_bandwidth: float,
                 flit_bytes: int = DEFAULT_FLIT_BYTES,
                 header_bytes: int = DEFAULT_HEADER_BYTES,
                 buffer_flits: int = DEFAULT_BUFFER_FLITS,
                 router_latency_us: float = DEFAULT_ROUTER_LATENCY_US,
                 ni_latency_us: float = DEFAULT_NI_LATENCY_US,
                 bin_width: float = 1000.0,
                 hol_blocking: Optional[bool] = None):
        if channel_bandwidth <= 0:
            raise ConfigError(
                f"channel bandwidth must be positive: {channel_bandwidth}"
            )
        if buffer_flits < 1:
            raise ConfigError(f"buffer_flits must be >= 1: {buffer_flits}")
        if flit_bytes < 1:
            raise ConfigError(f"flit_bytes must be >= 1: {flit_bytes}")
        self.sim = sim
        self.topology = topology
        self.channel_bandwidth = channel_bandwidth
        self.flit_bytes = flit_bytes
        self.header_bytes = header_bytes
        self.buffer_flits = buffer_flits
        self.router_latency_us = router_latency_us
        self.ni_latency_us = ni_latency_us
        # Wormhole head-of-line blocking: a packet that has won a channel
        # holds it while waiting for downstream credits, so small buffers
        # cost throughput (paper Fig 13(b)).  Rings instead interleave
        # virtual channels on each physical channel, which our packet-
        # granular model represents as non-blocking arbitration -- and
        # holding the channel across the dateline could deadlock.
        if hol_blocking is None:
            hol_blocking = topology.vc_count == 1
        self.hol_blocking = hol_blocking

        self._channels: Dict[Tuple[int, int], Link] = {}
        for u, v in topology.channels():
            self._channels[(u, v)] = Link(
                sim, channel_bandwidth, name=f"noc{u}->{v}",
                bin_width=bin_width,
            )
        self._guards: Dict[Tuple[int, int], Resource] = {}
        if self.hol_blocking:
            for u, v in topology.channels():
                self._guards[(u, v)] = Resource(sim, 1,
                                                name=f"guard{u}->{v}")
        self._ports: Dict[Tuple[int, int, int], TokenPool] = {}
        for u, v in topology.channels():
            depth = buffer_flits
            if v == XBAR_HUB:
                # The crossbar hub is amply buffered: it never backpressures.
                depth = buffer_flits * max(2, topology.k)
            for vc in range(topology.vc_count):
                self._ports[(u, v, vc)] = TokenPool(
                    sim, depth, name=f"port{u}->{v}#vc{vc}"
                )

        #: Serialization time of one flit on a channel (us).  A plain
        #: attribute (not a property): ``send`` reads it per packet.
        self.flit_time = flit_bytes / channel_bandwidth
        self._header_step = self.flit_time + router_latency_us
        # All-pairs route table, built once: (path, hop_count,
        # serialization resources per hop, hop-schedule cache).  Each hop
        # entry carries the already-resolved (credit pool, channel link,
        # wormhole guard) triple so the per-packet path involves no dict
        # lookups; the schedule cache (flit count -> precomputed walk,
        # see :func:`_build_hop_schedule`) fills lazily as packet sizes
        # appear.
        self._routes: Dict[Tuple[int, int],
                           Tuple[List[int], int, Tuple, dict]] = {}
        for (src, dst), (path, vc) in topology.routes().items():
            hops = tuple(
                (self._ports[(u, v, vc)], self._channels[(u, v)],
                 self._guards.get((u, v)))
                for u, v in zip(path, path[1:])
            )
            self._routes[(src, dst)] = (path, len(path) - 1, hops, {})
        #: payload_bytes -> (flit count, wire bytes); page-sized payloads
        #: dominate so this saturates at a handful of entries.
        self._flit_cache: Dict[int, Tuple[int, int]] = {}

        self.packet_latency = LatencyStats("fnoc_packet",
                                           keep_samples=False)
        self.packets_sent = 0
        self.bytes_sent = 0

    # -- helpers -----------------------------------------------------------

    def channel(self, u: int, v: int) -> Link:
        """The directed channel link from *u* to *v*."""
        try:
            return self._channels[(u, v)]
        except KeyError:
            raise ConfigError(f"no channel {u}->{v} in {self.topology.name}")

    def port(self, u: int, v: int, vc: int) -> TokenPool:
        """Input-buffer credit pool at *v* for traffic arriving from *u*."""
        return self._ports[(u, v, vc)]

    # -- transmission ------------------------------------------------------

    def send(self, packet: Packet) -> Generator:
        """Generator: move *packet* from its source NI to its destination NI.

        Returns a :class:`NocBreakdown`.  ``src == dst`` short-circuits
        with only the NI latency (no fabric traversal).
        """
        sim = self.sim
        t_begin = sim.now
        packet.created_at = t_begin
        try:
            path, hop_count, hop_resources, schedules = \
                self._routes[(packet.src, packet.dst)]
        except KeyError:
            # Out-of-range node: reproduce the topology's ConfigError.
            self.topology.path(packet.src, packet.dst)
            raise
        # Packetization at the source network interface.
        if self.ni_latency_us > 0:
            yield sim.timeout(self.ni_latency_us)
        if hop_count == 0:
            total = sim.now - t_begin
            self.packet_latency.add(total)
            self.packets_sent += 1
            self.bytes_sent += packet.payload_bytes
            return NocBreakdown(0.0, 0.0, 0.0, total, 0)

        payload = packet.payload_bytes
        cached = self._flit_cache.get(payload)
        if cached is None:
            flits = flit_count(payload, self.flit_bytes, self.header_bytes)
            cached = self._flit_cache[payload] = (
                flits, flits * self.flit_bytes)
        flits, wire_bytes = cached
        schedule = schedules.get(flits)
        if schedule is None:
            schedule = schedules[flits] = _build_hop_schedule(
                hop_resources, flits)
        steps, final_held = schedule
        header_step = self._header_step
        traffic_class = packet.traffic_class

        queue_wait = 0.0
        last_done = None
        for guard, pool, tokens, link, release in steps:
            t_request = sim.now
            if guard is not None:
                # Wormhole: win the channel first, then wait for credits
                # while holding it (head-of-line blocking).
                yield guard.request()
            yield pool.acquire(tokens)
            start, done = link.transfer_with_start(wire_bytes, traffic_class)
            yield start
            queue_wait += sim.now - t_request
            # Completion bookkeeping was precomputed into one shared
            # callback per hop (see _build_hop_schedule).
            if release is not None:
                done.add_callback(release)
            last_done = done
            # Forward the header while the tail is still serializing.
            yield sim.timeout(header_step)

        # Wait for the tail to fully arrive at the destination router,
        # then eject into the dBUF (credits return immediately).
        yield last_done
        if final_held is not None:
            final_held[0].release(final_held[1])

        total = sim.now - t_begin
        serialization = flits * self.flit_time
        self.packet_latency.add(total)
        self.packets_sent += 1
        self.bytes_sent += packet.payload_bytes
        return NocBreakdown(
            queue_wait=queue_wait,
            serialization=serialization,
            hop_pipeline=hop_count * header_step,
            total=total,
            hops=hop_count,
        )

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint fabric meters (all channels must be idle).

        Channel links are keyed ``"u->v"`` (JSON objects cannot key on
        tuples); topology and routing are structural and rebuilt from
        config.
        """
        return {
            "packets_sent": self.packets_sent,
            "bytes_sent": self.bytes_sent,
            "packet_latency": self.packet_latency.state_dict(),
            "channels": {f"{u}->{v}": link.state_dict()
                         for (u, v), link in sorted(self._channels.items())},
        }

    def load_state(self, state: dict) -> None:
        """Restore meters captured by :meth:`state_dict` (same topology)."""
        self.packets_sent = int(state["packets_sent"])
        self.bytes_sent = int(state["bytes_sent"])
        self.packet_latency.load_state(state["packet_latency"])
        for key, link_state in state["channels"].items():
            u, v = key.split("->")
            self._channels[(int(u), int(v))].load_state(link_state)

    # -- reporting ----------------------------------------------------------

    def mean_channel_utilization(self) -> float:
        """Average busy fraction across all fabric channels."""
        if not self._channels:
            return 0.0
        total = sum(link.utilization() for link in self._channels.values())
        return total / len(self._channels)

    def max_channel_utilization(self) -> float:
        """Busy fraction of the hottest channel (the bottleneck)."""
        if not self._channels:
            return 0.0
        return max(link.utilization() for link in self._channels.values())
