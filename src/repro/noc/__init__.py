"""Flash-controller network-on-chip (fNoC) simulator."""

from .network import (
    DEFAULT_BUFFER_FLITS,
    DEFAULT_NI_LATENCY_US,
    DEFAULT_ROUTER_LATENCY_US,
    FNoC,
    NocBreakdown,
)
from .packet import (
    DEFAULT_FLIT_BYTES,
    DEFAULT_HEADER_BYTES,
    Packet,
    flit_count,
)
from .topology import XBAR_HUB, Crossbar, Mesh1D, Mesh2D, Ring, Topology

__all__ = [
    "Crossbar",
    "DEFAULT_BUFFER_FLITS",
    "DEFAULT_FLIT_BYTES",
    "DEFAULT_HEADER_BYTES",
    "DEFAULT_NI_LATENCY_US",
    "DEFAULT_ROUTER_LATENCY_US",
    "FNoC",
    "flit_count",
    "Mesh1D",
    "Mesh2D",
    "NocBreakdown",
    "Packet",
    "Ring",
    "Topology",
    "XBAR_HUB",
]
