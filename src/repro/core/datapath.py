"""Architecture datapaths: who moves the bytes, over which resources.

:class:`BaselineDatapath` is the conventional coupled SSD -- every GC
page copy bounces through the front-end (system bus -> DRAM -> system
bus).  :class:`DecoupledDatapath` implements the paper's contribution:
the decoupled flash controller executes a *global copyback* entirely in
the back-end, staging the page in its dBUF, checking it with its
integrated ECC engine, and handing it to a controller-to-controller
transport (shared bus, dedicated bus, or fNoC).

Host I/O takes the identical path on every architecture (paper Sec 4.1:
"the datapath used for the I/O commands is the same as the conventional
SSD").

Hot-path layout: each public datapath op (``io_read_flash``,
``io_flush_write``, ``io_program``, ``io_dram_rw``, ``gc_move``) is a
dispatcher.  When no reliability engine, wear model, or fault injector
is attached (the common case), it returns a *flat* generator that walks
the whole resource chain -- plane grant, array timeout, channel/bus/DRAM
link transfers, ECC lane -- in one frame.  The flat twins push the exact
same events into the kernel as the layered ``yield from`` chains (same
order, times, and sequence numbers), so all timing stays byte-identical;
only the 4-6 intermediate Python generator frames per page op are gone.
Setting ``use_flat_path = False`` forces the layered chain everywhere
(the equivalence suite diffs both paths event-for-event).
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..controller import Breakdown, Dram, EccEngine, FlashController, SystemBus
from ..errors import ConfigError, FlashError
from ..flash import PhysAddr
from ..sim import Simulator
from .copyback import CopybackCommand, CopybackStatus
from .transport import CopybackTransport

__all__ = ["BaselineDatapath", "DecoupledDatapath"]

#: Type of the optional physical-address remap hook (SRT layer).
Remapper = Callable[[PhysAddr], PhysAddr]


class BaselineDatapath:
    """Conventional coupled SSD datapath."""

    #: Route ops through the single-frame fast path when eligible.
    #: Class-level switch so tests can force the layered generator
    #: chain and assert byte-identical traces against it.
    use_flat_path = True

    def __init__(self, sim: Simulator, bus: SystemBus, dram: Dram,
                 ecc: EccEngine, controllers: List[FlashController],
                 remapper: Optional[Remapper] = None,
                 staging_pages: int = 16):
        self.sim = sim
        self.bus = bus
        self.dram = dram
        self.ecc = ecc
        self.controllers = controllers
        self.remapper = remapper
        self.backend = controllers[0].backend
        self.page_size = controllers[0].page_size
        self.copybacks_completed = 0
        #: Optional :class:`~repro.flash.WearModel`: when set, reads to
        #: worn blocks pay read-retry passes (extra array read + ECC).
        self.wear_model = None
        self.read_retries_performed = 0
        #: Optional :class:`~repro.reliability.ReliabilityEngine`.  When
        #: attached it owns the read-verify path (RBER sampling + ECC
        #: read-retry ladder) and the copy error-propagation bookkeeping.
        self.reliability = None
        # GC copies stage through each controller's page buffers; the
        # buffer capacity bounds in-flight GC pages per channel exactly
        # as the dBUF does in the decoupled architectures (keeping the
        # comparison's staging capacity equal across Table 2 configs).
        self.gc_staging = [
            sim.token_pool(staging_pages, name=f"staging{c.controller_id}")
            for c in controllers
        ]

    # -- shared helpers ------------------------------------------------------

    def remap(self, addr: PhysAddr) -> PhysAddr:
        """Apply the hardware remap layer (dynamic superblocks), if any."""
        return self.remapper(addr) if self.remapper is not None else addr

    def controller_for(self, addr: PhysAddr) -> FlashController:
        """The flash controller owning *addr*'s channel."""
        return self.controllers[addr.channel]

    def _bus(self, nbytes: int, traffic_class: str,
             breakdown: Breakdown, priority: int = 0) -> Generator:
        t0 = self.sim.now
        yield from self.bus.transfer(nbytes, traffic_class, priority)
        breakdown.add("system_bus", self.sim.now - t0)

    def _dram(self, nbytes: int, traffic_class: str,
              breakdown: Breakdown, direction: str = "write",
              priority: int = 0) -> Generator:
        t0 = self.sim.now
        yield from self.dram.access(nbytes, traffic_class,
                                    priority=priority, direction=direction)
        breakdown.add("dram", self.sim.now - t0)

    def _ecc(self, engine: EccEngine, nbytes: int,
             breakdown: Breakdown, priority: int = 0) -> Generator:
        t0 = self.sim.now
        yield from engine.check(nbytes, priority)
        breakdown.add("ecc", self.sim.now - t0)

    def ecc_for(self, channel: int) -> EccEngine:
        """ECC engine used for traffic on *channel* (shared front pool)."""
        return self.ecc

    # -- host I/O paths ----------------------------------------------------------

    def io_dram_rw(self, nbytes: int, breakdown: Breakdown,
                   direction: str = "write",
                   priority: int = 0) -> Generator:
        """DRAM-serviced I/O: one bus traversal plus one DRAM access."""
        if self.use_flat_path:
            return self._io_dram_rw_flat(nbytes, breakdown, direction,
                                         priority)
        return self._io_dram_rw_gen(nbytes, breakdown, direction, priority)

    def _io_dram_rw_flat(self, nbytes: int, breakdown: Breakdown,
                         direction: str, priority: int) -> Generator:
        """Single-frame bus + DRAM access (no helper-generator hops)."""
        sim = self.sim
        t0 = sim.now
        yield self.bus.link.transfer(nbytes, "io", priority)
        breakdown.add("system_bus", sim.now - t0)
        t0 = sim.now
        link = (self.dram.read_link if direction == "read"
                else self.dram.write_link)
        yield link.transfer(nbytes, "io", priority)
        breakdown.add("dram", sim.now - t0)

    def _io_dram_rw_gen(self, nbytes: int, breakdown: Breakdown,
                        direction: str, priority: int) -> Generator:
        """Layered bus + DRAM chain (flat-path equivalence reference)."""
        yield from self._bus(nbytes, "io", breakdown, priority)
        yield from self._dram(nbytes, "io", breakdown, direction, priority)

    def _read_retries(self, addr: PhysAddr) -> int:
        if self.wear_model is None:
            return 0
        block_index = self.backend.geometry.block_index(addr)
        erase_count = self.backend.erase_count(addr)
        return self.wear_model.read_retries(erase_count, block_index)

    def io_read_flash(self, addr: PhysAddr, breakdown: Breakdown,
                      priority: int = 0) -> Generator:
        """Flash read: array -> flash bus -> ECC -> system bus.

        Worn blocks may need read-retry passes: each retry repeats the
        array read and the ECC decode before the data is trusted.
        """
        if (self.use_flat_path and self.reliability is None
                and self.wear_model is None):
            r_addr = self.remapper(addr) if self.remapper is not None else addr
            if self.controllers[r_addr.channel].fault_injector is None:
                return self._io_read_flash_flat(r_addr, breakdown, priority)
        return self._io_read_flash_gen(addr, breakdown, priority)

    def _io_read_flash_flat(self, addr: PhysAddr, breakdown: Breakdown,
                            priority: int) -> Generator:
        """Single-frame flash read; *addr* is already remapped.

        Pushes the exact events of the layered chain (plane grant, array
        timeout, flash-bus transfer, ECC lane grant + decode timeout,
        system-bus transfer) from one generator frame.
        """
        sim = self.sim
        page_size = self.page_size
        backend = self.backend
        controller = self.controllers[addr.channel]
        # Array read (backend.read + plane.occupy, inlined).
        backend.geometry.validate(addr)
        plane_id = backend._plane_id(addr)
        if backend.enforce_discipline:
            state = backend._block_state_at(
                plane_id * backend._blocks_per_plane + addr[4])
            if addr[5] not in state.programmed:
                raise FlashError(f"read of unwritten page {addr}")
        duration = (backend._read_mid if backend.deterministic_timing
                    else backend.timing.sample_read(backend._rng))
        plane = backend.planes[plane_id]
        t_request = sim.now
        grant = plane.resource.request()
        service_start = None
        try:
            yield grant
            service_start = sim.now
            yield sim.timeout(duration)
        finally:
            if service_start is not None:
                plane.busy_time += sim.now - service_start
                plane.op_counts["read"] = plane.op_counts.get("read", 0) + 1
            plane.resource.cancel(grant)
        breakdown.add("flash_chip", (service_start - t_request) + duration)
        # Flash-bus transfer out of the page register.
        channel = controller.channel
        t0 = sim.now
        yield channel.link.transfer(page_size + channel._overhead_bytes,
                                    "io", priority if priority is not None
                                    else 0)
        breakdown.add("flash_bus", sim.now - t0)
        controller.pages_read += 1
        # ECC decode (front-end pool or integrated engine).
        engine = self.ecc_for(addr.channel)
        t0 = sim.now
        grant = engine._lanes.request(priority, owner=engine.name or "ecc")
        service_start = None
        try:
            yield grant
            service_start = sim.now
            yield sim.timeout(engine.decode_time(page_size))
        finally:
            if service_start is not None:
                engine.busy_time += sim.now - service_start
                engine.pages_checked += 1
            engine._lanes.cancel(grant)
        breakdown.add("ecc", sim.now - t0)
        # System bus to the host interface.
        t0 = sim.now
        yield self.bus.link.transfer(page_size, "io", priority)
        breakdown.add("system_bus", sim.now - t0)

    def _io_read_flash_gen(self, addr: PhysAddr, breakdown: Breakdown,
                           priority: int) -> Generator:
        """Layered read chain (reliability / wear-retry capable)."""
        addr = self.remap(addr)
        controller = self.controller_for(addr)
        yield from controller.read_page(addr, "io", breakdown, priority)
        if self.reliability is not None:
            yield from self.reliability.post_read(addr, breakdown,
                                                  priority, "io")
        else:
            yield from self._ecc(self.ecc_for(addr.channel), self.page_size,
                                 breakdown, priority)
            for _retry in range(self._read_retries(addr)):
                self.read_retries_performed += 1
                yield from controller.read_page(addr, "io", breakdown,
                                                priority)
                yield from self._ecc(self.ecc_for(addr.channel),
                                     self.page_size, breakdown, priority)
        yield from self._bus(self.page_size, "io", breakdown, priority)

    def _program_inline(self, addr: PhysAddr) -> tuple:
        """Resolve the array-program state for an inlined program segment.

        Returns ``(plane, duration)`` after the validate/discipline steps
        the layered ``backend.program`` would run at the same point.
        """
        backend = self.backend
        backend.geometry.validate(addr)
        plane_id = backend._plane_id(addr)
        if backend.enforce_discipline:
            state = backend._block_state_at(
                plane_id * backend._blocks_per_plane + addr[4])
            if addr[5] in state.programmed:
                raise FlashError(f"reprogram of page {addr} without erase")
            state.programmed.add(addr[5])
        duration = (backend._program_mid if backend.deterministic_timing
                    else backend.timing.sample_program(backend._rng))
        return backend.planes[plane_id], duration

    def io_flush_write(self, addr: PhysAddr,
                       breakdown: Breakdown) -> Generator:
        """Write-back flush: DRAM read -> system bus -> flash program."""
        if self.use_flat_path and self.reliability is None:
            r_addr = self.remapper(addr) if self.remapper is not None else addr
            if self.controllers[r_addr.channel].fault_injector is None:
                return self._io_flush_write_flat(r_addr, breakdown)
        return self._io_flush_write_gen(addr, breakdown)

    def _io_flush_write_flat(self, addr: PhysAddr,
                             breakdown: Breakdown) -> Generator:
        """Single-frame flush; *addr* is already remapped."""
        sim = self.sim
        page_size = self.page_size
        controller = self.controllers[addr.channel]
        t0 = sim.now
        yield self.dram.read_link.transfer(page_size, "io", 0)
        breakdown.add("dram", sim.now - t0)
        t0 = sim.now
        yield self.bus.link.transfer(page_size, "io", 0)
        breakdown.add("system_bus", sim.now - t0)
        # Program (channel register load, then array), inlined.
        channel = controller.channel
        t0 = sim.now
        yield channel.link.transfer(page_size + channel._overhead_bytes,
                                    "io", 0)
        breakdown.add("flash_bus", sim.now - t0)
        plane, duration = self._program_inline(addr)
        t_request = sim.now
        grant = plane.resource.request()
        service_start = None
        try:
            yield grant
            service_start = sim.now
            yield sim.timeout(duration)
        finally:
            if service_start is not None:
                plane.busy_time += sim.now - service_start
                plane.op_counts["program"] = (
                    plane.op_counts.get("program", 0) + 1)
            plane.resource.cancel(grant)
        breakdown.add("flash_chip", (service_start - t_request) + duration)
        controller.pages_programmed += 1

    def _io_flush_write_gen(self, addr: PhysAddr,
                            breakdown: Breakdown) -> Generator:
        """Layered flush chain (reliability-capable slow path)."""
        addr = self.remap(addr)
        yield from self._dram(self.page_size, "io", breakdown, "read")
        yield from self._bus(self.page_size, "io", breakdown)
        yield from self.controller_for(addr).program_page(addr, "io",
                                                          breakdown)
        if self.reliability is not None:
            self.reliability.on_program(addr)

    def io_program(self, addr: PhysAddr, breakdown: Breakdown,
                   priority: int = 0) -> Generator:
        """Write-through program: system bus -> flash program."""
        if self.use_flat_path and self.reliability is None:
            r_addr = self.remapper(addr) if self.remapper is not None else addr
            if self.controllers[r_addr.channel].fault_injector is None:
                return self._io_program_flat(r_addr, breakdown, priority)
        return self._io_program_gen(addr, breakdown, priority)

    def _io_program_flat(self, addr: PhysAddr, breakdown: Breakdown,
                         priority: int) -> Generator:
        """Single-frame write-through program; *addr* already remapped."""
        sim = self.sim
        page_size = self.page_size
        controller = self.controllers[addr.channel]
        t0 = sim.now
        yield self.bus.link.transfer(page_size, "io", priority)
        breakdown.add("system_bus", sim.now - t0)
        channel = controller.channel
        t0 = sim.now
        yield channel.link.transfer(page_size + channel._overhead_bytes,
                                    "io", priority if priority is not None
                                    else 0)
        breakdown.add("flash_bus", sim.now - t0)
        plane, duration = self._program_inline(addr)
        t_request = sim.now
        grant = plane.resource.request()
        service_start = None
        try:
            yield grant
            service_start = sim.now
            yield sim.timeout(duration)
        finally:
            if service_start is not None:
                plane.busy_time += sim.now - service_start
                plane.op_counts["program"] = (
                    plane.op_counts.get("program", 0) + 1)
            plane.resource.cancel(grant)
        breakdown.add("flash_chip", (service_start - t_request) + duration)
        controller.pages_programmed += 1

    def _io_program_gen(self, addr: PhysAddr, breakdown: Breakdown,
                        priority: int) -> Generator:
        """Layered write-through chain (reliability-capable slow path)."""
        addr = self.remap(addr)
        yield from self._bus(self.page_size, "io", breakdown, priority)
        yield from self.controller_for(addr).program_page(addr, "io",
                                                          breakdown,
                                                          priority)
        if self.reliability is not None:
            self.reliability.on_program(addr)

    # -- garbage-collection paths ---------------------------------------------------

    def gc_move(self, src: PhysAddr, dst: PhysAddr,
                apply_remap: bool = True) -> Generator:
        """Conventional GC copy: the page crosses the front-end twice.

        flash read -> system bus -> ECC -> DRAM write -> DRAM read ->
        system bus -> flash program (paper Fig 1).  ``apply_remap=False``
        addresses raw physical blocks -- used by the dynamic-superblock
        recycling copy, which itself installs the remap entries.
        """
        if self.use_flat_path and self.reliability is None:
            r_src = self.remap(src) if apply_remap else src
            r_dst = self.remap(dst) if apply_remap else dst
            if (self.controllers[r_src.channel].fault_injector is None
                    and self.controllers[r_dst.channel].fault_injector
                    is None):
                return self._gc_move_flat(r_src, r_dst)
        return self._gc_move_gen(src, dst, apply_remap)

    def _read_inline(self, addr: PhysAddr) -> tuple:
        """Resolve the array-read state for an inlined read segment.

        Returns ``(plane, duration)`` after the validate/discipline steps
        the layered ``backend.read`` would run at the same point.
        """
        backend = self.backend
        backend.geometry.validate(addr)
        plane_id = backend._plane_id(addr)
        if backend.enforce_discipline:
            state = backend._block_state_at(
                plane_id * backend._blocks_per_plane + addr[4])
            if addr[5] not in state.programmed:
                raise FlashError(f"read of unwritten page {addr}")
        duration = (backend._read_mid if backend.deterministic_timing
                    else backend.timing.sample_read(backend._rng))
        return backend.planes[plane_id], duration

    def _gc_move_flat(self, src: PhysAddr, dst: PhysAddr) -> Generator:
        """Single-frame conventional GC copy; addresses already remapped."""
        sim = self.sim
        page_size = self.page_size
        breakdown = Breakdown()
        src_pool = self.gc_staging[src.channel]
        src_grant = src_pool.acquire(1)
        try:
            yield src_grant
            # Flash read out of the victim (read_page inlined, gc class).
            controller = self.controllers[src.channel]
            plane, duration = self._read_inline(src)
            t_request = sim.now
            grant = plane.resource.request()
            service_start = None
            try:
                yield grant
                service_start = sim.now
                yield sim.timeout(duration)
            finally:
                if service_start is not None:
                    plane.busy_time += sim.now - service_start
                    plane.op_counts["read"] = (
                        plane.op_counts.get("read", 0) + 1)
                plane.resource.cancel(grant)
            breakdown.add("flash_chip",
                          (service_start - t_request) + duration)
            channel = controller.channel
            t0 = sim.now
            yield channel.link.transfer(page_size + channel._overhead_bytes,
                                        "gc", -1)
            breakdown.add("flash_bus", sim.now - t0)
            controller.pages_read += 1
            # System bus into the front end.
            t0 = sim.now
            yield self.bus.link.transfer(page_size, "gc", 0)
            breakdown.add("system_bus", sim.now - t0)
            # Front-end ECC (conventional copies are always checked).
            engine = self.ecc_for(src.channel)
            t0 = sim.now
            grant = engine._lanes.request(0, owner=engine.name or "ecc")
            service_start = None
            try:
                yield grant
                service_start = sim.now
                yield sim.timeout(engine.decode_time(page_size))
            finally:
                if service_start is not None:
                    engine.busy_time += sim.now - service_start
                    engine.pages_checked += 1
                engine._lanes.cancel(grant)
            breakdown.add("ecc", sim.now - t0)
            # Stage in DRAM.
            t0 = sim.now
            yield self.dram.write_link.transfer(page_size, "gc", 0)
            breakdown.add("dram", sim.now - t0)
        finally:
            src_pool.cancel(src_grant)
        dst_pool = self.gc_staging[dst.channel]
        dst_grant = dst_pool.acquire(1)
        try:
            yield dst_grant
            t0 = sim.now
            yield self.dram.read_link.transfer(page_size, "gc", 0)
            breakdown.add("dram", sim.now - t0)
            t0 = sim.now
            yield self.bus.link.transfer(page_size, "gc", 0)
            breakdown.add("system_bus", sim.now - t0)
            # Program into the destination (program_page inlined).
            controller = self.controllers[dst.channel]
            channel = controller.channel
            t0 = sim.now
            yield channel.link.transfer(page_size + channel._overhead_bytes,
                                        "gc", -1)
            breakdown.add("flash_bus", sim.now - t0)
            plane, duration = self._program_inline(dst)
            t_request = sim.now
            grant = plane.resource.request()
            service_start = None
            try:
                yield grant
                service_start = sim.now
                yield sim.timeout(duration)
            finally:
                if service_start is not None:
                    plane.busy_time += sim.now - service_start
                    plane.op_counts["program"] = (
                        plane.op_counts.get("program", 0) + 1)
                plane.resource.cancel(grant)
            breakdown.add("flash_chip",
                          (service_start - t_request) + duration)
            controller.pages_programmed += 1
        finally:
            dst_pool.cancel(dst_grant)
        return breakdown

    def _gc_move_gen(self, src: PhysAddr, dst: PhysAddr,
                     apply_remap: bool) -> Generator:
        """Layered conventional GC chain (reliability-capable)."""
        if apply_remap:
            src = self.remap(src)
            dst = self.remap(dst)
        breakdown = Breakdown()
        outcome = None
        src_pool = self.gc_staging[src.channel]
        src_grant = src_pool.acquire(1)
        try:
            yield src_grant
            yield from self.controller_for(src).read_page(src, "gc",
                                                          breakdown)
            yield from self._bus(self.page_size, "gc", breakdown)
            # The conventional GC copy always passes the front-end ECC,
            # so errors never propagate -- at the price of crossing the
            # whole front-end (the paper's Fig 1 argument).
            if self.reliability is not None:
                outcome = yield from self.reliability.post_read(
                    src, breakdown, 0, "gc")
            else:
                yield from self._ecc(self.ecc_for(src.channel),
                                     self.page_size, breakdown)
            yield from self._dram(self.page_size, "gc", breakdown, "write")
        finally:
            src_pool.cancel(src_grant)
        dst_pool = self.gc_staging[dst.channel]
        dst_grant = dst_pool.acquire(1)
        try:
            yield dst_grant
            yield from self._dram(self.page_size, "gc", breakdown, "read")
            yield from self._bus(self.page_size, "gc", breakdown)
            yield from self.controller_for(dst).program_page(dst, "gc",
                                                             breakdown)
            if self.reliability is not None:
                self.reliability.commit_copy(src, dst, checked=True,
                                             outcome=outcome)
        finally:
            dst_pool.cancel(dst_grant)
        return breakdown

    def gc_erase(self, addr: PhysAddr, apply_remap: bool = True) -> Generator:
        """Erase a victim block."""
        if apply_remap:
            addr = self.remap(addr)
        breakdown = Breakdown()
        yield from self.controller_for(addr).erase_block(addr, "gc",
                                                         breakdown)
        if self.reliability is not None:
            self.reliability.on_erase_block(addr)
        return breakdown


class DecoupledDatapath(BaselineDatapath):
    """dSSD / dSSD_b / dSSD_f datapath: back-end global copyback.

    Each decoupled controller has its own integrated ECC engine and a
    dBUF of ``dbuf_pages`` page slots.  GC copies never touch the DRAM,
    and cross the system bus only in the plain-``dSSD`` configuration
    (whose transport *is* the shared bus, one traversal, no DRAM).
    """

    def __init__(self, sim: Simulator, bus: SystemBus, dram: Dram,
                 ecc_engines: List[EccEngine],
                 controllers: List[FlashController],
                 transport: CopybackTransport,
                 dbuf_pages: int = 16,
                 remapper: Optional[Remapper] = None,
                 check_ecc: bool = True):
        if len(ecc_engines) != len(controllers):
            raise ConfigError(
                "decoupled datapath needs one ECC engine per controller"
            )
        if dbuf_pages < 2:
            raise ConfigError(f"dbuf_pages must be >= 2: {dbuf_pages}")
        super().__init__(sim, bus, dram, ecc_engines[0], controllers,
                         remapper, staging_pages=dbuf_pages)
        self.ecc_engines = ecc_engines
        self.transport = transport
        # check_ecc=False models *legacy* copyback semantics: the page is
        # copied without error check/correction, so bit errors propagate
        # silently -- the very reason copyback is unusable in
        # conventional SSDs (Sec 4.2).  Kept as an ablation knob.
        self.check_ecc = check_ecc
        self.unchecked_copies = 0
        self.dbufs = [
            sim.token_pool(dbuf_pages, name=f"dbuf{c.controller_id}")
            for c in controllers
        ]
        self.copyback_log: List[CopybackCommand] = []
        self.copyback_log_limit = 1024

    def ecc_for(self, channel: int) -> EccEngine:
        """The integrated ECC engine of *channel*'s decoupled controller."""
        return self.ecc_engines[channel]

    def _gc_move_flat(self, src: PhysAddr, dst: PhysAddr) -> Generator:
        """Single-frame global copyback; addresses already remapped.

        The transport hop (fNoC packet walk / dedicated bus) stays a
        ``yield from`` -- it is one sub-generator, not the 4-6 frame
        read/program chains this flattening removes.
        """
        sim = self.sim
        page_size = self.page_size
        if len(self.copyback_log) < self.copyback_log_limit:
            command = CopybackCommand(src=src, dst=dst)
            self.copyback_log.append(command)
        else:
            command = None
        breakdown = Breakdown()

        src_dbuf = self.dbufs[src.channel]
        src_grant = src_dbuf.acquire(1)
        src_held = True
        try:
            yield src_grant
            # (2,3) read into the source controller's dBUF (inlined).
            controller = self.controllers[src.channel]
            plane, duration = self._read_inline(src)
            t_request = sim.now
            grant = plane.resource.request()
            service_start = None
            try:
                yield grant
                service_start = sim.now
                yield sim.timeout(duration)
            finally:
                if service_start is not None:
                    plane.busy_time += sim.now - service_start
                    plane.op_counts["read"] = (
                        plane.op_counts.get("read", 0) + 1)
                plane.resource.cancel(grant)
            breakdown.add("flash_chip",
                          (service_start - t_request) + duration)
            channel = controller.channel
            t0 = sim.now
            yield channel.link.transfer(page_size + channel._overhead_bytes,
                                        "gc", -1)
            breakdown.add("flash_bus", sim.now - t0)
            controller.pages_read += 1
            if command is not None:
                command.advance(CopybackStatus.READ, sim.now)

            # (4) error check with the integrated ECC engine.
            if self.check_ecc:
                engine = self.ecc_engines[src.channel]
                t0 = sim.now
                grant = engine._lanes.request(0, owner=engine.name or "ecc")
                service_start = None
                try:
                    yield grant
                    service_start = sim.now
                    yield sim.timeout(engine.decode_time(page_size))
                finally:
                    if service_start is not None:
                        engine.busy_time += sim.now - service_start
                        engine.pages_checked += 1
                    engine._lanes.cancel(grant)
                breakdown.add("ecc", sim.now - t0)
            else:
                self.unchecked_copies += 1
            if command is not None:
                command.advance(CopybackStatus.READ_ECC, sim.now)

            if src.channel == dst.channel:
                # Same channel: program straight from the source dBUF.
                controller = self.controllers[dst.channel]
                channel = controller.channel
                t0 = sim.now
                yield channel.link.transfer(
                    page_size + channel._overhead_bytes, "gc", -1)
                breakdown.add("flash_bus", sim.now - t0)
                plane, duration = self._program_inline(dst)
                t_request = sim.now
                grant = plane.resource.request()
                service_start = None
                try:
                    yield grant
                    service_start = sim.now
                    yield sim.timeout(duration)
                finally:
                    if service_start is not None:
                        plane.busy_time += sim.now - service_start
                        plane.op_counts["program"] = (
                            plane.op_counts.get("program", 0) + 1)
                    plane.resource.cancel(grant)
                breakdown.add("flash_chip",
                              (service_start - t_request) + duration)
                controller.pages_programmed += 1
                if command is not None:
                    command.advance(CopybackStatus.WRITTEN, sim.now)
            else:
                # (5-8) hand the page to the interconnect, then (9,10)
                # program at the destination; the source slot is released
                # at the network interface exactly as in the layered path.
                if command is not None:
                    command.advance(CopybackStatus.PACKETIZED, sim.now)
                src_dbuf.cancel(src_grant)
                src_held = False
                dst_dbuf = self.dbufs[dst.channel]
                dst_grant = dst_dbuf.acquire(1)
                try:
                    yield dst_grant
                    yield from self.transport.move(src.channel, dst.channel,
                                                   page_size, breakdown)
                    if command is not None:
                        command.advance(CopybackStatus.TRANSFERRED,
                                        sim.now)
                    controller = self.controllers[dst.channel]
                    channel = controller.channel
                    t0 = sim.now
                    yield channel.link.transfer(
                        page_size + channel._overhead_bytes, "gc", -1)
                    breakdown.add("flash_bus", sim.now - t0)
                    plane, duration = self._program_inline(dst)
                    t_request = sim.now
                    grant = plane.resource.request()
                    service_start = None
                    try:
                        yield grant
                        service_start = sim.now
                        yield sim.timeout(duration)
                    finally:
                        if service_start is not None:
                            plane.busy_time += sim.now - service_start
                            plane.op_counts["program"] = (
                                plane.op_counts.get("program", 0) + 1)
                        plane.resource.cancel(grant)
                    breakdown.add("flash_chip",
                                  (service_start - t_request) + duration)
                    controller.pages_programmed += 1
                    if command is not None:
                        command.advance(CopybackStatus.WRITTEN, sim.now)
                finally:
                    dst_dbuf.cancel(dst_grant)
        finally:
            if src_held:
                src_dbuf.cancel(src_grant)

        self.copybacks_completed += 1
        return breakdown

    def _gc_move_gen(self, src: PhysAddr, dst: PhysAddr,
                     apply_remap: bool) -> Generator:
        """Layered global copyback (paper Fig 4), reliability-capable."""
        if apply_remap:
            src = self.remap(src)
            dst = self.remap(dst)
        # Command bookkeeping exists only to feed the copyback log; once
        # the log is full the per-stage status tracking is dead work on
        # the hottest GC path, so skip it entirely (timing unchanged).
        if len(self.copyback_log) < self.copyback_log_limit:
            command = CopybackCommand(src=src, dst=dst)
            self.copyback_log.append(command)
        else:
            command = None
        breakdown = Breakdown()
        outcome = None

        # (2,3) read the page into the source controller's dBUF.
        src_dbuf = self.dbufs[src.channel]
        src_grant = src_dbuf.acquire(1)
        src_held = True
        try:
            yield src_grant
            yield from self.controller_for(src).read_page(src, "gc",
                                                          breakdown)
            if command is not None:
                command.advance(CopybackStatus.READ, self.sim.now)

            # (4) error check with the integrated ECC engine.
            if self.check_ecc:
                if self.reliability is not None:
                    outcome = yield from self.reliability.post_read(
                        src, breakdown, 0, "gc")
                else:
                    yield from self._ecc(self.ecc_for(src.channel),
                                         self.page_size, breakdown)
            else:
                self.unchecked_copies += 1
            if command is not None:
                command.advance(CopybackStatus.READ_ECC, self.sim.now)

            if src.channel == dst.channel:
                # Same channel: program straight from the source dBUF.
                yield from self.controller_for(dst).program_page(dst, "gc",
                                                                 breakdown)
                if command is not None:
                    command.advance(CopybackStatus.WRITTEN, self.sim.now)
            else:
                # (5-8) packetize, traverse the interconnect into the
                # destination dBUF, then (9,10) program at the
                # destination.  The source slot is released once the page
                # is handed to the network interface -- holding both
                # slots while waiting for the destination could deadlock
                # opposing copyback streams.
                if command is not None:
                    command.advance(CopybackStatus.PACKETIZED, self.sim.now)
                src_dbuf.cancel(src_grant)
                src_held = False
                dst_dbuf = self.dbufs[dst.channel]
                dst_grant = dst_dbuf.acquire(1)
                try:
                    yield dst_grant
                    yield from self.transport.move(src.channel, dst.channel,
                                                   self.page_size, breakdown)
                    if command is not None:
                        command.advance(CopybackStatus.TRANSFERRED,
                                        self.sim.now)
                    yield from self.controller_for(dst).program_page(
                        dst, "gc", breakdown)
                    if command is not None:
                        command.advance(CopybackStatus.WRITTEN, self.sim.now)
                finally:
                    dst_dbuf.cancel(dst_grant)
        finally:
            if src_held:
                src_dbuf.cancel(src_grant)

        if self.reliability is not None:
            self.reliability.commit_copy(src, dst, checked=self.check_ecc,
                                         outcome=outcome)
        self.copybacks_completed += 1
        return breakdown
