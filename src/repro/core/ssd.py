"""Full-system SSD assembly and the run harness.

:func:`build_ssd` wires every substrate together according to an
:class:`~repro.core.config.SSDConfig` and returns a
:class:`SimulatedSSD`, whose :meth:`SimulatedSSD.run` drives a workload
through the device and returns a :class:`RunResult` with every metric
the paper's evaluation reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..controller import (
    Breakdown,
    Dram,
    EccEngine,
    FlashController,
    HostInterface,
    SystemBus,
)
from ..errors import ConfigError
from ..flash import FlashBackend, FlashChannel
from ..ftl import Ftl, GarbageCollector, GcStats, PageMappingTable, \
    StaticWearLeveler
from ..ftl.blocks import BlockManager
from ..host import MultiQueueFrontend, TenantSpec
from ..noc import Crossbar, FNoC, Mesh1D, Mesh2D, Ring
from ..sim import LatencyStats, make_simulator
from .config import ArchPreset, SSDConfig
from .datapath import BaselineDatapath, DecoupledDatapath
from .transport import (
    DedicatedBusTransport,
    FnocTransport,
    SharedBusTransport,
)

__all__ = ["MultiTenantResult", "RunResult", "SimulatedSSD",
           "TenantResult", "build_ssd"]

_TOPOLOGIES = {"mesh1d": Mesh1D, "mesh2d": Mesh2D, "ring": Ring,
               "crossbar": Crossbar}


@dataclass
class RunResult:
    """Everything measured during one :meth:`SimulatedSSD.run`."""

    arch: str
    duration_us: float
    io_latency: LatencyStats
    read_latency: LatencyStats
    write_latency: LatencyStats
    requests_completed: int
    io_bytes_completed: float
    gc: GcStats
    bus_utilization: float
    bus_io_utilization: float
    bus_gc_utilization: float
    dram_utilization: float
    mean_plane_utilization: float
    io_breakdown: Breakdown
    gc_breakdown: Breakdown
    bandwidth_timeline: Tuple[List[float], List[float]] = field(
        default_factory=lambda: ([], [])
    )
    bus_io_timeline: Tuple[List[float], List[float]] = field(
        default_factory=lambda: ([], [])
    )
    bus_gc_timeline: Tuple[List[float], List[float]] = field(
        default_factory=lambda: ([], [])
    )
    fnoc_mean_utilization: float = 0.0
    fnoc_packets: int = 0
    copybacks: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def io_bandwidth(self) -> float:
        """Mean achieved I/O bandwidth in bytes/us (== MB/s)."""
        if self.duration_us <= 0:
            return 0.0
        return self.io_bytes_completed / self.duration_us

    @property
    def gc_throughput(self) -> float:
        """GC pages moved per microsecond of active GC time."""
        return self.gc.throughput_pages_per_us

    def summary(self) -> Dict[str, float]:
        """Headline numbers for report tables."""
        return {
            "io_bandwidth_MBps": self.io_bandwidth,
            "io_p99_us": self.io_latency.p99,
            "io_mean_us": self.io_latency.mean,
            "gc_pages_moved": float(self.gc.pages_moved),
            "gc_throughput": self.gc_throughput,
            "bus_utilization": self.bus_utilization,
            "requests": float(self.requests_completed),
        }


@dataclass
class TenantResult:
    """One tenant's view of a :meth:`SimulatedSSD.run_tenants` window."""

    name: str
    driver: str
    arbiter: str
    arrivals: int
    admitted: int
    dropped: int
    dispatched: int
    completed: int
    bytes_completed: float
    duration_us: float
    latency: LatencyStats
    sq_wait: LatencyStats

    @property
    def iops(self) -> float:
        """Completions per simulated second."""
        if self.duration_us <= 0:
            return 0.0
        return self.completed / self.duration_us * 1e6

    @property
    def bandwidth(self) -> float:
        """Achieved bandwidth in bytes/us (== MB/s)."""
        if self.duration_us <= 0:
            return 0.0
        return self.bytes_completed / self.duration_us

    @property
    def drop_fraction(self) -> float:
        """Fraction of arrivals rejected by admission control."""
        if self.arrivals <= 0:
            return 0.0
        return self.dropped / self.arrivals

    def summary(self) -> Dict[str, float]:
        """Headline per-tenant numbers for report tables."""
        return {
            "arrivals": float(self.arrivals),
            "dropped": float(self.dropped),
            "completed": float(self.completed),
            "iops": self.iops,
            "bandwidth_MBps": self.bandwidth,
            "mean_us": self.latency.mean,
            "p50_us": self.latency.p50,
            "p99_us": self.latency.p99,
            "sq_wait_mean_us": self.sq_wait.mean,
        }


@dataclass
class MultiTenantResult:
    """Device-level metrics plus the per-tenant breakdown."""

    device: RunResult
    tenants: List[TenantResult]
    arbiter: str
    arb_burst: int

    def tenant(self, name: str) -> TenantResult:
        """The result row of tenant *name*."""
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise ConfigError(f"no tenant named {name!r}")


class SimulatedSSD:
    """One fully-assembled simulated SSD instance (single use)."""

    def __init__(self, config: SSDConfig, remapper=None):
        self.config = config
        #: Resolved DES kernel backend ("pure"/"fast"/"legacy") — what
        #: ``config.backend`` actually got after availability fallback.
        self.sim, self.kernel_backend = make_simulator(config.backend)
        geometry = config.geometry
        self.backend = FlashBackend(
            self.sim, geometry, config.timing, seed=config.seed,
            deterministic_timing=config.deterministic_timing,
        )
        self.channels = [
            FlashChannel(self.sim, c, config.flash_channel_bw,
                         bin_width=config.bin_width_us)
            for c in range(geometry.channels)
        ]
        self.controllers = [
            FlashController(self.sim, c, self.channels[c], self.backend)
            for c in range(geometry.channels)
        ]
        self.bus = SystemBus(self.sim, config.system_bus_bw,
                             bin_width=config.bin_width_us)
        self.dram = Dram(self.sim, config.dram_bw,
                         write_buffer_pages=config.write_buffer_pages,
                         bin_width=config.bin_width_us)
        self.host = HostInterface(self.sim, config.queue_depth,
                                  config.host_bw,
                                  config.host_cmd_latency_us,
                                  bin_width=config.bin_width_us)
        self.fnoc: Optional[FNoC] = None
        self.datapath = self._build_datapath(remapper)
        if config.read_retry:
            from ..flash import WearModel

            self.datapath.wear_model = WearModel(seed=config.seed)
        self.mapping = PageMappingTable()
        self.blocks = BlockManager(geometry,
                                   gc_reserve_blocks=config.gc_reserve_blocks)
        self.gc = GarbageCollector(
            self.sim, self.mapping, self.blocks, self.datapath,
            host=self.host, policy=config.gc_policy,
            trigger_free_fraction=config.gc_trigger_free_fraction,
            stop_free_fraction=config.gc_stop_free_fraction,
            hard_floor_fraction=config.gc_hard_floor_fraction,
            tinytail_channels=config.tinytail_channels,
            partial_pages=config.tinytail_partial_pages,
            pipeline_depth=config.gc_pipeline_depth,
        )
        self.ftl = Ftl(
            self.sim, geometry, self.mapping, self.blocks, self.datapath,
            self.host, self.gc, write_policy=config.write_policy,
            flush_workers=config.effective_flush_workers,
            bin_width=config.bin_width_us,
        )
        self.wear_leveler: Optional[StaticWearLeveler] = None
        if config.wear_leveling:
            self.wear_leveler = StaticWearLeveler(
                self.sim, self.mapping, self.blocks, self.backend,
                self.datapath,
                interval_us=config.wear_level_interval_us,
                threshold=config.wear_level_threshold,
            )
        self.reliability = None
        if config.reliability is not None:
            from ..reliability import ReliabilityEngine

            self.reliability = ReliabilityEngine(
                self.sim, self.backend, self.blocks, config.reliability,
                seed=config.seed,
            )
            self.reliability.attach(self.datapath)
        self.frontend: Optional[MultiQueueFrontend] = None
        self.lpn_space = 0
        self._prefilled = False
        self._measure_start = 0.0
        self._bus_busy_snapshot: Dict[str, float] = {}
        self._gc_snapshot = (0, 0.0)

    # -- construction helpers ----------------------------------------------------

    def _build_datapath(self, remapper):
        config = self.config
        if not config.arch.is_decoupled:
            shared_ecc = EccEngine(
                self.sim, config.ecc_throughput, config.ecc_fixed_latency_us,
                lanes=config.geometry.channels, name="ecc_pool",
            )
            return BaselineDatapath(self.sim, self.bus, self.dram,
                                    shared_ecc, self.controllers, remapper,
                                    staging_pages=config.page_buffer_pages)

        ecc_engines = [
            EccEngine(self.sim, config.ecc_throughput,
                      config.ecc_fixed_latency_us, lanes=1, name=f"ecc{c}")
            for c in range(config.geometry.channels)
        ]
        if config.arch is ArchPreset.DSSD:
            transport = SharedBusTransport(self.sim, self.bus)
        elif config.arch is ArchPreset.DSSD_B:
            transport = DedicatedBusTransport(
                self.sim, config.dedicated_bus_bw,
                bin_width=config.bin_width_us,
            )
        elif config.arch is ArchPreset.DSSD_F:
            topo_cls = _TOPOLOGIES[config.fnoc_topology]
            topology = topo_cls(config.geometry.channels)
            channel_bw = config.effective_fnoc_channel_bw
            self.fnoc = self.sim.fnoc(
                topology, channel_bw,
                flit_bytes=config.fnoc_flit_bytes,
                buffer_flits=config.fnoc_buffer_flits,
                router_latency_us=config.fnoc_router_latency_us,
                ni_latency_us=config.fnoc_ni_latency_us,
                bin_width=config.bin_width_us,
            )
            transport = FnocTransport(self.sim, self.fnoc)
        else:  # pragma: no cover - enum is exhaustive
            raise ConfigError(f"unhandled arch {config.arch}")
        return DecoupledDatapath(
            self.sim, self.bus, self.dram, ecc_engines, self.controllers,
            transport, dbuf_pages=config.dbuf_pages, remapper=remapper,
            check_ecc=config.copyback_ecc,
        )

    # -- pre-conditioning ------------------------------------------------------------

    def prefill(self) -> int:
        """Pre-condition the device per the config (idempotent)."""
        if not self._prefilled:
            self.lpn_space = self.ftl.prefill(
                fill_fraction=self.config.prefill_fraction,
                valid_ratio=self.config.prefill_valid_ratio,
                seed=self.config.seed,
            )
            self._prefilled = True
        return self.lpn_space

    # -- execution ---------------------------------------------------------------------

    def _reset_measurements(self) -> None:
        """Restart stats collection (end of the warmup window)."""
        self._measure_start = self.sim.now
        ftl = self.ftl
        ftl.io_latency = LatencyStats("io")
        ftl.read_latency = LatencyStats("read")
        ftl.write_latency = LatencyStats("write")
        ftl.requests_completed = 0
        ftl.io_breakdowns = []
        self._io_bytes_snapshot = ftl.completed_bytes.total()
        self._bus_busy_snapshot = dict(self.bus.link.busy_time)
        gc_stats = self.gc.stats
        gc_stats.move_breakdowns = []
        self._gc_snapshot = (gc_stats.pages_moved,
                             self.gc.current_busy_time())
        if self.frontend is not None:
            self.frontend.reset_stats()

    def run(self, workload, duration_us: Optional[float] = None,
            max_requests: Optional[int] = None,
            trigger_gc: bool = True,
            warmup_us: float = 0.0) -> RunResult:
        """Drive *workload* through the device and collect metrics.

        The driver is closed-loop: ``queue_depth`` driver processes each
        keep one request in flight, matching the paper's QD-64 setup.
        Stops at *duration_us* of simulated time or after
        *max_requests* completions, whichever comes first.  Statistics
        gathered before *warmup_us* are discarded, so steady-state
        metrics exclude the initial fill/ramp transient.
        """
        if duration_us is None and max_requests is None:
            raise ConfigError("need duration_us and/or max_requests")
        if warmup_us and duration_us is not None and warmup_us >= duration_us:
            raise ConfigError("warmup_us must be below duration_us")
        self.prefill()
        self.ftl.start()
        if self.wear_leveler is not None:
            self.wear_leveler.start()
        self._io_bytes_snapshot = 0.0
        if warmup_us > 0:
            self.sim.schedule(warmup_us, self._reset_measurements)
        workload.bind(self.lpn_space, self.config.geometry.page_size,
                      self.config.seed)
        if trigger_gc:
            self.gc.maybe_trigger()

        budget = {"remaining": max_requests if max_requests is not None
                  else float("inf")}
        deadline = duration_us if duration_us is not None else float("inf")

        def driver():
            while self.sim.now < deadline and budget["remaining"] > 0:
                request = workload.next_request()
                if request is None:
                    return
                budget["remaining"] -= 1
                yield self.ftl.submit(request)

        for _ in range(self.config.queue_depth):
            self.sim.process(driver(), name="driver")

        if duration_us is not None:
            self.sim.run(until=duration_us)
        else:
            self.sim.run()
        return self._collect()

    def run_tenants(self, tenants: List[TenantSpec],
                    duration_us: float,
                    warmup_us: float = 0.0,
                    trigger_gc: bool = True) -> MultiTenantResult:
        """Drive several tenant streams through the multi-queue frontend.

        Each :class:`~repro.host.TenantSpec` gets its own NVMe-style
        submission/completion queue pair; the config's ``arbiter`` /
        ``arb_burst`` pick the arbitration model multiplexing them onto
        the FTL.  Tenants may be closed-loop (the paper's model) or
        open-loop (Poisson / trace-timestamp arrivals), each carrying
        its own QoS policy (token-bucket rate limit, WRR weight,
        priority, admission control).  Statistics before *warmup_us*
        are discarded, as in :meth:`run`.
        """
        if duration_us is None or duration_us <= 0:
            raise ConfigError(f"duration_us must be positive: {duration_us}")
        if warmup_us and warmup_us >= duration_us:
            raise ConfigError("warmup_us must be below duration_us")
        if self.frontend is not None:
            raise ConfigError("run_tenants called twice on one SSD instance")
        self.prefill()
        self.ftl.start()
        if self.wear_leveler is not None:
            self.wear_leveler.start()
        self._io_bytes_snapshot = 0.0
        self.frontend = MultiQueueFrontend(
            self.sim, self.ftl, tenants,
            arbiter=self.config.arbiter, arb_burst=self.config.arb_burst,
        )
        if warmup_us > 0:
            self.sim.schedule(warmup_us, self._reset_measurements)
        for spec in tenants:
            spec.workload.bind(self.lpn_space,
                               self.config.geometry.page_size, spec.seed)
        if trigger_gc:
            self.gc.maybe_trigger()
        self.frontend.start()
        self.sim.run(until=duration_us)
        device = self._collect()
        window = device.duration_us
        tenant_results = [
            TenantResult(
                name=spec.name,
                driver=spec.driver,
                arbiter=self.config.arbiter,
                arrivals=stats.arrivals,
                admitted=stats.admitted,
                dropped=stats.dropped,
                dispatched=stats.dispatched,
                completed=stats.completed,
                bytes_completed=stats.bytes_completed,
                duration_us=window,
                latency=stats.latency,
                sq_wait=stats.sq_wait,
            )
            for spec, stats in zip(self.frontend.tenants,
                                   self.frontend.stats)
        ]
        return MultiTenantResult(device=device, tenants=tenant_results,
                                 arbiter=self.config.arbiter,
                                 arb_burst=self.config.arb_burst)

    # -- checkpointing -----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpoint the device at a quiescent point.

        Returns a JSON-able dict that
        :func:`~repro.core.checkpoint.restore_ssd` turns back into a
        device whose continued run is byte-identical to never having
        stopped.  Only legal when nothing is in flight -- finish a
        ``max_requests``-bounded :meth:`run` first.  See
        :mod:`repro.core.checkpoint`.
        """
        from .checkpoint import snapshot_ssd

        return snapshot_ssd(self)

    def _collect(self) -> RunResult:
        horizon = self.sim.now
        window = max(horizon - self._measure_start, 1e-9)
        # Fold any still-running GC episode into the busy-time total so
        # throughput metrics are meaningful at the measurement cutoff.
        self.gc.stats.busy_time = self.gc.current_busy_time()
        self.gc._episode_start = self.sim.now
        times, rates = self.ftl.completed_bytes.series()

        def bus_util(traffic_class: Optional[str] = None) -> float:
            busy = self.bus.link.busy_time
            snapshot = self._bus_busy_snapshot
            if traffic_class is None:
                total = sum(busy.values()) - sum(snapshot.values())
            else:
                total = (busy.get(traffic_class, 0.0)
                         - snapshot.get(traffic_class, 0.0))
            return min(1.0, max(0.0, total / window))

        result = RunResult(
            arch=self.config.arch.value,
            duration_us=window,
            io_latency=self.ftl.io_latency,
            read_latency=self.ftl.read_latency,
            write_latency=self.ftl.write_latency,
            requests_completed=self.ftl.requests_completed,
            io_bytes_completed=(self.ftl.completed_bytes.total()
                                - self._io_bytes_snapshot),
            gc=self.gc.stats,
            bus_utilization=bus_util(),
            bus_io_utilization=bus_util("io"),
            bus_gc_utilization=bus_util("gc"),
            dram_utilization=self.dram.utilization(horizon),
            mean_plane_utilization=self.backend.mean_plane_utilization(),
            io_breakdown=self.ftl.mean_io_breakdown(),
            gc_breakdown=self.gc.stats.mean_move_breakdown(),
            bandwidth_timeline=(
                times,
                [r / self.ftl.completed_bytes.width for r in rates],
            ),
            bus_io_timeline=self.bus.bandwidth_timeline("io"),
            bus_gc_timeline=self.bus.bandwidth_timeline("gc"),
        )
        if self.fnoc is not None:
            result.fnoc_mean_utilization = self.fnoc.mean_channel_utilization()
            result.fnoc_packets = self.fnoc.packets_sent
        result.copybacks = getattr(self.datapath, "copybacks_completed", 0)
        moved0, busy0 = self._gc_snapshot
        result.extras["gc_pages_in_window"] = float(
            self.gc.stats.pages_moved - moved0
        )
        result.extras["gc_busy_in_window"] = max(
            self.gc.stats.busy_time - busy0, 0.0
        )
        result.extras["gc_move_latency_us"] = result.gc_breakdown.total
        result.extras["free_fraction_end"] = self.blocks.free_fraction
        if self.reliability is not None:
            for key, value in self.reliability.stats_dict().items():
                result.extras[f"rel_{key}"] = value
        return result


def build_ssd(arch: Union[ArchPreset, SSDConfig, str] = ArchPreset.BASELINE,
              remapper=None, **overrides) -> SimulatedSSD:
    """Build a ready-to-run SSD.

    *arch* may be an :class:`ArchPreset`, its string value
    (``"dssd_f"``), or a full :class:`SSDConfig`; keyword overrides are
    applied on top of the preset defaults.
    """
    if isinstance(arch, SSDConfig):
        if overrides:
            raise ConfigError(
                "pass overrides in the SSDConfig, not alongside it"
            )
        config = arch
    else:
        if isinstance(arch, str):
            arch = ArchPreset(arch)
        config = SSDConfig(arch=arch, **overrides)
    return SimulatedSSD(config, remapper=remapper)
