"""Versioned device checkpoints: snapshot, restore, fast-forward.

A *snapshot* captures the complete observable state of a quiescent
:class:`~repro.core.ssd.SimulatedSSD` -- FTL mapping and block pools,
per-block flash wear, superblock SRT/RBT tables, reliability page
records, every accumulated meter, every RNG stream, and the DES clock --
as one JSON-able dict.  Restoring the snapshot into a freshly built
device and continuing the run is **byte-identical** to never having
stopped: the same traces, the same latency samples, the same experiment
tables (``tests/test_checkpoint.py`` proves it per architecture).

Quiescence is the load-bearing constraint.  Generator-based processes
cannot be serialized, so a snapshot is only legal when no callback is
scheduled and no request is in flight: the host queue is empty, the
write buffer is drained, and no GC episode is running.  Driving a run
with ``max_requests`` (no ``duration_us``) ends at exactly such a
point.  Configurations with background wear-leveling keep a perpetual
timer in the event heap and therefore cannot snapshot (the kernel
raises).

Fast-forwarding (:func:`fastforward_wear`) ages a device analytically
-- bumping every block's erase count to a fraction of its sampled P/E
limit -- so endurance and fleet experiments start from worn devices
without simulating months of traffic.
"""

from __future__ import annotations

import dataclasses
import gzip
import json
from pathlib import Path
from typing import Optional, Union

from ..errors import SnapshotError
from ..flash import FlashGeometry, FlashTiming, PhysAddr
from .config import ArchPreset, SSDConfig
from .copyback import CopybackCommand
from .datapath import DecoupledDatapath
from .transport import DedicatedBusTransport

__all__ = [
    "DURABLE_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "config_from_state",
    "config_to_state",
    "durable_state",
    "fastforward_wear",
    "load_snapshot",
    "quiescence_report",
    "recover_ssd",
    "restore_ssd",
    "save_snapshot",
    "snapshot_ssd",
]

#: Bump on any incompatible change to the snapshot layout.
SNAPSHOT_SCHEMA = 1

#: Bump on any incompatible change to the durable-projection layout.
DURABLE_SCHEMA = 1


# -- config round-trip --------------------------------------------------------

def config_to_state(config: SSDConfig) -> dict:
    """JSON-able encoding of an :class:`SSDConfig` (nested dataclasses)."""
    state = dataclasses.asdict(config)
    state["arch"] = config.arch.value
    return state


def config_from_state(state: dict) -> SSDConfig:
    """Rebuild the exact :class:`SSDConfig` a snapshot was taken with.

    JSON turns tuples into lists, so the tuple-typed fields (flash
    timing ranges, ECC ladder steps) are coerced back on the way in.
    """
    state = dict(state)
    arch = ArchPreset(state.pop("arch"))
    geometry = FlashGeometry(
        **{key: int(value)
           for key, value in state.pop("geometry").items()})
    timing_state = dict(state.pop("timing"))
    timing = FlashTiming(
        name=timing_state["name"],
        read_us=tuple(float(v) for v in timing_state["read_us"]),
        program_us=tuple(float(v) for v in timing_state["program_us"]),
        erase_us=float(timing_state["erase_us"]),
        page_size=int(timing_state["page_size"]),
    )
    reliability_state = state.pop("reliability")
    reliability = None
    if reliability_state is not None:
        from ..reliability import ReliabilityConfig

        reliability_state = dict(reliability_state)
        reliability_state["ladder_correct_bits"] = tuple(
            int(v) for v in reliability_state["ladder_correct_bits"])
        reliability_state["ladder_latency_scales"] = tuple(
            float(v) for v in reliability_state["ladder_latency_scales"])
        reliability = ReliabilityConfig(**reliability_state)
    return SSDConfig(arch=arch, geometry=geometry, timing=timing,
                     reliability=reliability, **state)


# -- snapshot -----------------------------------------------------------------

def _copyback_log_state(log) -> list:
    return [
        {"src": list(command.src), "dst": list(command.dst),
         "status": command.status,
         "history": [[status, when] for status, when in command.history]}
        for command in log
    ]


def _copyback_log_load(entries) -> list:
    log = []
    for entry in entries:
        command = CopybackCommand(
            src=PhysAddr(*(int(v) for v in entry["src"])),
            dst=PhysAddr(*(int(v) for v in entry["dst"])),
        )
        command.status = entry["status"]
        command.history = [(status, float(when))
                           for status, when in entry["history"]]
        log.append(command)
    return log


def quiescence_report(ssd) -> list:
    """Enumerate everything keeping *ssd* away from a quiescent point.

    Returns a list of human-readable lines, one per blocker: scheduled
    kernel callbacks (with owning-process names), non-idle registered
    resources (semaphore slots and tokens still held, with owner labels
    where the holder provided one), outstanding host requests, dirty
    write-buffer pages, and an active GC episode.  Empty means the
    device is quiescent and :func:`snapshot_ssd` will succeed.

    The fuzzer's leaked-hold oracle calls this after a drained run:
    any surviving entry is a hold that leaked.
    """
    report = []
    sim = ssd.sim
    if sim._queue:
        report.extend(sim.pending_summary())
    report.extend(sim.outstanding_holds())
    outstanding = ssd.host.outstanding
    if outstanding:
        report.append(f"host interface: {outstanding} request(s) in flight")
    if ssd.gc.active:
        report.append("garbage collector: episode in progress")
    frontend = ssd.frontend
    if frontend is not None and frontend.inflight:
        report.append(
            f"frontend: {frontend.inflight} submission(s) in flight")
    return report


def snapshot_ssd(ssd) -> dict:
    """Capture the complete state of a quiescent *ssd* as a JSON-able dict.

    Raises :class:`~repro.errors.SnapshotError` (or a component-level
    error) when the device is not quiescent: scheduled callbacks,
    outstanding host requests, dirty write-buffer pages, an active GC
    episode, or an attached multi-queue frontend all block the
    snapshot.  The error message enumerates the blocking holds by name
    (see :func:`quiescence_report`).
    """
    if ssd.frontend is not None:
        raise SnapshotError(
            "cannot snapshot a device with a multi-queue frontend attached "
            "(run_tenants sessions are single-use)")
    # The kernel check comes first: it catches every source of in-flight
    # work that owns a scheduled callback (wear-leveler timers included)
    # and raises SimulationError with the pending-callback enumeration.
    sim_state = ssd.sim.snapshot_state()
    # The queue can be empty while slots stay held (a leaked hold with
    # no waiter parks nothing in the heap) -- name the leaks explicitly
    # rather than letting a component state_dict fail opaquely later.
    leaks = quiescence_report(ssd)
    if leaks:
        raise SnapshotError(
            "cannot snapshot: device is not quiescent; outstanding: "
            + "; ".join(leaks))
    datapath = ssd.datapath
    state = {
        "schema": SNAPSHOT_SCHEMA,
        "config": config_to_state(ssd.config),
        "sim": sim_state,
        "prefilled": ssd._prefilled,
        "lpn_space": ssd.lpn_space,
        "measure": {
            "measure_start": ssd._measure_start,
            "io_bytes_snapshot": getattr(ssd, "_io_bytes_snapshot", 0.0),
            "bus_busy_snapshot": dict(ssd._bus_busy_snapshot),
            "gc_snapshot": list(ssd._gc_snapshot),
        },
        "backend": ssd.backend.state_dict(),
        "planes": [plane.state_dict() for plane in ssd.backend.planes],
        "channels": [channel.state_dict() for channel in ssd.channels],
        "controllers": [
            {"pages_read": c.pages_read,
             "pages_programmed": c.pages_programmed,
             "blocks_erased": c.blocks_erased}
            for c in ssd.controllers
        ],
        "bus": ssd.bus.state_dict(),
        "dram": ssd.dram.state_dict(),
        "host": ssd.host.state_dict(),
        "ftl": ssd.ftl.state_dict(),
        "gc": ssd.gc.state_dict(),
        "datapath": {
            "copybacks_completed": datapath.copybacks_completed,
            "read_retries_performed": datapath.read_retries_performed,
        },
        "wear_model": (datapath.wear_model.state_dict()
                       if datapath.wear_model is not None else None),
        "fnoc": ssd.fnoc.state_dict() if ssd.fnoc is not None else None,
        "reliability": (ssd.reliability.state_dict()
                        if ssd.reliability is not None else None),
    }
    if isinstance(datapath, DecoupledDatapath):
        state["ecc"] = [engine.state_dict()
                        for engine in datapath.ecc_engines]
        state["datapath"]["unchecked_copies"] = datapath.unchecked_copies
        state["datapath"]["copyback_log"] = _copyback_log_state(
            datapath.copyback_log)
        if isinstance(datapath.transport, DedicatedBusTransport):
            state["transport_link"] = datapath.transport.link.state_dict()
    else:
        state["ecc"] = [datapath.ecc.state_dict()]
    return state


# -- restore ------------------------------------------------------------------

def restore_ssd(state: dict):
    """Build a fresh device and install a :func:`snapshot_ssd` state.

    The returned :class:`~repro.core.ssd.SimulatedSSD` continues
    byte-identically to a device that never stopped: its flusher pool
    is respawned and parked exactly as the original's was, then the
    simulation clock and the event sequence counter are rewound onto
    the snapshot's values, so every future event carries the same
    ``(time, seq)`` key it would have carried in an uninterrupted run.
    """
    from .ssd import SimulatedSSD

    schema = state.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"snapshot schema {schema!r} != supported {SNAPSHOT_SCHEMA}")
    config = config_from_state(state["config"])
    ssd = SimulatedSSD(config)

    ssd.backend.load_state(state["backend"])
    for plane, plane_state in zip(ssd.backend.planes, state["planes"]):
        plane.load_state(plane_state)
    for channel, channel_state in zip(ssd.channels, state["channels"]):
        channel.load_state(channel_state)
    for controller, c_state in zip(ssd.controllers, state["controllers"]):
        controller.pages_read = int(c_state["pages_read"])
        controller.pages_programmed = int(c_state["pages_programmed"])
        controller.blocks_erased = int(c_state["blocks_erased"])
    ssd.bus.load_state(state["bus"])
    ssd.dram.load_state(state["dram"])
    ssd.host.load_state(state["host"])
    ssd.ftl.load_state(state["ftl"])
    ssd.gc.load_state(state["gc"])

    datapath = ssd.datapath
    dp_state = state["datapath"]
    datapath.copybacks_completed = int(dp_state["copybacks_completed"])
    datapath.read_retries_performed = int(dp_state["read_retries_performed"])
    if state["wear_model"] is not None:
        datapath.wear_model.load_state(state["wear_model"])
    if isinstance(datapath, DecoupledDatapath):
        for engine, e_state in zip(datapath.ecc_engines, state["ecc"]):
            engine.load_state(e_state)
        datapath.unchecked_copies = int(dp_state["unchecked_copies"])
        datapath.copyback_log = _copyback_log_load(dp_state["copyback_log"])
        if isinstance(datapath.transport, DedicatedBusTransport):
            datapath.transport.link.load_state(state["transport_link"])
    else:
        datapath.ecc.load_state(state["ecc"][0])
    if ssd.fnoc is not None:
        ssd.fnoc.load_state(state["fnoc"])
    if ssd.reliability is not None:
        ssd.reliability.load_state(state["reliability"])

    ssd._prefilled = bool(state["prefilled"])
    ssd.lpn_space = int(state["lpn_space"])
    measure = state["measure"]
    ssd._measure_start = float(measure["measure_start"])
    ssd._io_bytes_snapshot = float(measure["io_bytes_snapshot"])
    ssd._bus_busy_snapshot = {key: float(value)
                              for key, value
                              in measure["bus_busy_snapshot"].items()}
    ssd._gc_snapshot = (int(measure["gc_snapshot"][0]),
                        float(measure["gc_snapshot"][1]))

    # Respawn the flusher pool at time zero and let the workers park on
    # the (empty) flush queue -- the bootstrap events drain and leave no
    # heap entries, exactly the state the original device's flushers
    # were in at the quiescent point.  Only *then* rewind the clock and
    # the event sequence counter, so phase-two events get the same
    # (time, seq) keys as in an uninterrupted run.
    ssd.ftl.start()
    ssd.sim.run()
    ssd.sim.restore_state(state["sim"])
    return ssd


# -- power-loss projection ----------------------------------------------------

def durable_state(ssd) -> dict:
    """Project the flash-durable subset of *ssd*'s state -- legal anytime.

    Unlike :func:`snapshot_ssd` this never requires quiescence: it
    models yanking power mid-flight.  Only what a real controller could
    reconstruct from the flash array at mount survives:

    * the media itself (per-block programmed pages + erase counts);
    * the L2P mapping and page-validity sets -- the FTL binds an LPN
      only *after* its program completes, so the mapping table is
      exactly the OOB-journal reconstruction a mount scan yields;
    * block states and write pointers, with volatile ownership erased:
      ``pending`` allocations are lost (those pages were never
      committed, so they are simply wasted below the write pointer) and
      a COLLECTING block falls back to FULL (the GC episode died with
      DRAM);
    * physical-media reliability state: per-page error records, wear
      limits, and the bad-block SRT/RBT tables.

    Deliberately dropped, because it lives in DRAM: the dirty write
    buffer and flush queue (unflushed writes are lost -- correct
    power-cut semantics), host/frontend queues and meters, GC episode
    state, latency recorders, the transient-fault injector, RNG
    streams, and the DES clock itself.
    """
    from ..ftl.blocks import COLLECTING, FULL

    blocks = []
    for index in sorted(ssd.blocks.blocks):
        info = ssd.blocks.blocks[index]
        block_state = FULL if info.state == COLLECTING else info.state
        blocks.append([index, block_state, info.write_ptr,
                       sorted(info.valid)])
    state = {
        "schema": DURABLE_SCHEMA,
        "config": config_to_state(ssd.config),
        "lpn_space": ssd.lpn_space,
        "prefilled": ssd._prefilled,
        "backend": ssd.backend.state_dict(),
        "mapping": ssd.ftl.mapping.state_dict(),
        "blocks": blocks,
        "reliability": None,
    }
    if ssd.reliability is not None:
        from ..sim import int_key_pairs

        state["reliability"] = {
            "pages": int_key_pairs(ssd.reliability._pages, list),
            "wear": ssd.reliability.rber_model.wear.state_dict(),
            "badblocks": ssd.reliability.badblocks.state_dict(),
        }
    return state


def recover_ssd(state: dict):
    """Mount a fresh device from a :func:`durable_state` projection.

    Models the power-on recovery path: rebuild the device from config,
    install the media and mapping-journal state, and *re-derive* every
    allocator pointer the way a mount scan would -- free pools sorted
    by block index per plane (DRAM pool rotation did not survive),
    at most one ACTIVE block per plane resuming at its write pointer.
    The returned device is quiescent, its clock at zero, its flushers
    parked; it must pass :meth:`~repro.ftl.ftl.Ftl.audit` and accept
    new traffic.
    """
    from collections import deque

    from ..ftl.blocks import ACTIVE, BAD, FREE, SPARE
    from .ssd import SimulatedSSD

    schema = state.get("schema")
    if schema != DURABLE_SCHEMA:
        raise SnapshotError(
            f"durable-state schema {schema!r} != supported "
            f"{DURABLE_SCHEMA}")
    config = config_from_state(state["config"])
    ssd = SimulatedSSD(config)
    ssd.backend.load_state(state["backend"])

    manager = ssd.blocks
    geometry = config.geometry
    free_pools = [[] for _ in range(geometry.planes_total)]
    # A plane may surface up to two partially-written blocks at mount:
    # the host-stream and the GC-stream active block.  Which was which
    # is not durable (and does not matter); assign them in block-index
    # scan order so recovery stays deterministic.
    active = [None] * geometry.planes_total
    active_gc = [None] * geometry.planes_total
    free_count = bad_count = spare_count = 0
    for index, block_state, write_ptr, valid in state["blocks"]:
        info = manager.blocks[int(index)]
        info.state = block_state
        info.write_ptr = int(write_ptr)
        info.valid = set(int(page) for page in valid)
        info.pending = 0
        plane = geometry.plane_index(info.addr)
        if block_state == FREE:
            free_pools[plane].append(int(index))
            free_count += 1
        elif block_state == ACTIVE:
            if active[plane] is None:
                active[plane] = int(index)
            elif active_gc[plane] is None:
                active_gc[plane] = int(index)
            else:
                raise SnapshotError(
                    f"durable state names three ACTIVE blocks in plane "
                    f"{plane}")
        elif block_state == BAD:
            bad_count += 1
        elif block_state == SPARE:
            spare_count += 1
    manager._free = [deque(pool) for pool in free_pools]
    manager._active = active
    manager._active_gc = active_gc
    manager._cursor = 0
    manager.free_blocks = free_count
    manager.bad_blocks = bad_count
    manager.spare_blocks = spare_count

    ssd.ftl.mapping.load_state(state["mapping"])
    if state["reliability"] is not None:
        if ssd.reliability is None:
            raise SnapshotError(
                "durable state carries reliability records but the "
                "config builds no reliability engine")
        from ..sim import pairs_to_int_dict

        rel = state["reliability"]
        ssd.reliability._pages = pairs_to_int_dict(
            rel["pages"],
            lambda rec: (int(rec[0]), int(rec[1]), float(rec[2])))
        ssd.reliability.rber_model.wear.load_state(rel["wear"])
        ssd.reliability.badblocks.load_state(rel["badblocks"])

    ssd._prefilled = bool(state["prefilled"])
    ssd.lpn_space = int(state["lpn_space"])
    # Park the flusher pool on the (empty) flush queue; the bootstrap
    # events drain, leaving a quiescent device at time zero.
    ssd.ftl.start()
    ssd.sim.run()
    return ssd


# -- persistence --------------------------------------------------------------

def save_snapshot(state: dict, path: Union[str, Path]) -> Path:
    """Write a snapshot dict as (optionally gzipped) canonical JSON.

    A ``.gz`` suffix selects gzip framing; either form round-trips via
    :func:`load_snapshot`.
    """
    path = Path(path)
    payload = json.dumps(state, sort_keys=True,
                         separators=(",", ":")).encode()
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".gz":
        # mtime=0 and an empty embedded name keep the archive
        # content-addressable: identical snapshots produce identical
        # bytes regardless of wall time or target filename.
        with open(path, "wb") as raw:
            with gzip.GzipFile(filename="", mode="wb", fileobj=raw,
                               mtime=0) as fh:
                fh.write(payload)
    else:
        path.write_bytes(payload)
    return path


def load_snapshot(path: Union[str, Path]) -> dict:
    """Read a snapshot written by :func:`save_snapshot`."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rb") as fh:
            return json.loads(fh.read())
    return json.loads(path.read_bytes())


# -- fast-forward aging -------------------------------------------------------

def fastforward_wear(ssd, pe_fraction: float,
                     limit_mean: Optional[float] = None) -> int:
    """Analytically age *ssd* to *pe_fraction* of its P/E budget.

    Every block's erase count jumps to ``pe_fraction`` of its limit --
    the per-block Gaussian limit when the reliability stack (or read-
    retry wear model) is attached, otherwise a uniform *limit_mean*
    (default: the paper's P/E mean).  Deterministic under the device
    seed.  Returns the total erase cycles applied.  Intended to run on
    a freshly built (or prefilled) device before any traffic.
    """
    from ..flash.wear import PAPER_PE_MEAN

    if not 0.0 <= pe_fraction < 1.0:
        raise SnapshotError(f"pe_fraction out of [0,1): {pe_fraction}")
    wear = None
    if ssd.reliability is not None:
        wear = ssd.reliability.rber_model.wear
    elif ssd.datapath.wear_model is not None:
        wear = ssd.datapath.wear_model
    mean = limit_mean if limit_mean is not None else PAPER_PE_MEAN
    geometry = ssd.config.geometry
    total_blocks = geometry.planes_total * geometry.blocks_per_plane
    applied = 0
    for index in range(total_blocks):
        limit = wear.limit_for(index) if wear is not None else mean
        count = int(pe_fraction * limit)
        if count <= 0:
            continue
        ssd.backend._block_state_at(index).erase_count = count
        applied += count
    return applied
