"""Global copyback command: the staged back-end page move (paper Sec 4.2).

A copyback command carries its source and destination physical address
and a *status* that tracks which stage has completed, mirroring the
paper's command-queue bookkeeping (``R`` read done, ``RE`` error check
done after the read, and so on).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Tuple

from ..flash import PhysAddr

__all__ = ["CopybackCommand", "CopybackStatus"]

_command_ids = itertools.count()


class CopybackStatus:
    """Status codes a copyback command passes through, in order."""

    QUEUED = "Q"        #: accepted into the source command queue
    READ = "R"          #: page read from the array into the dBUF
    READ_ECC = "RE"     #: error check/correction done at the source
    PACKETIZED = "P"    #: packet built in the network interface
    TRANSFERRED = "T"   #: arrived at the destination controller's dBUF
    WRITTEN = "W"       #: programmed at the destination

    ORDER = (QUEUED, READ, READ_ECC, PACKETIZED, TRANSFERRED, WRITTEN)
    #: status -> rank, for O(1) transition checks in ``advance``.
    RANK = {status: index for index, status in enumerate(ORDER)}


@dataclass
class CopybackCommand:
    """One global copyback: read *src*, check, route, program *dst*."""

    src: PhysAddr
    dst: PhysAddr
    command_id: int = field(default_factory=lambda: next(_command_ids))
    status: str = CopybackStatus.QUEUED
    history: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def is_local(self) -> bool:
        """True when source and destination share a flash channel.

        Local copybacks never touch the interconnect: the page stays in
        the source controller's dBUF and is programmed down the same
        channel (skipping the PACKETIZED/TRANSFERRED stages).
        """
        return self.src.channel == self.dst.channel

    def advance(self, status: str, now: float) -> None:
        """Move to *status*, enforcing the stage order."""
        rank = CopybackStatus.RANK
        if rank[status] <= rank[self.status]:
            raise ValueError(
                f"copyback {self.command_id}: illegal transition "
                f"{self.status} -> {status}"
            )
        self.status = status
        self.history.append((status, now))
