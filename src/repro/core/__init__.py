"""The paper's contribution: decoupled SSD architectures and assembly.

:func:`build_ssd` assembles a full simulated device from an
:class:`ArchPreset` (paper Table 2) or an explicit :class:`SSDConfig`;
:class:`SimulatedSSD` drives workloads through it (single-stream
:meth:`~SimulatedSSD.run` or multi-tenant
:meth:`~SimulatedSSD.run_tenants`).  The checkpoint protocol
(:func:`snapshot_ssd` / :func:`restore_ssd` /
:func:`fastforward_wear`, see :mod:`repro.core.checkpoint`) serializes
a quiescent device to JSON and restores it byte-identically -- the
substrate the fleet orchestration (:mod:`repro.fleet`) shards on.
"""

from .checkpoint import (
    SNAPSHOT_SCHEMA,
    config_from_state,
    config_to_state,
    fastforward_wear,
    load_snapshot,
    restore_ssd,
    save_snapshot,
    snapshot_ssd,
)
from .config import (
    ArchPreset,
    SSDConfig,
    paper_geometry,
    sim_geometry,
    superblock_geometry,
)
from .copyback import CopybackCommand, CopybackStatus
from .datapath import BaselineDatapath, DecoupledDatapath
from .ssd import (
    MultiTenantResult,
    RunResult,
    SimulatedSSD,
    TenantResult,
    build_ssd,
)
from .transport import (
    CopybackTransport,
    DedicatedBusTransport,
    FnocTransport,
    SharedBusTransport,
)

__all__ = [
    "ArchPreset",
    "BaselineDatapath",
    "build_ssd",
    "config_from_state",
    "config_to_state",
    "CopybackCommand",
    "CopybackStatus",
    "CopybackTransport",
    "DecoupledDatapath",
    "DedicatedBusTransport",
    "fastforward_wear",
    "FnocTransport",
    "load_snapshot",
    "MultiTenantResult",
    "paper_geometry",
    "restore_ssd",
    "RunResult",
    "save_snapshot",
    "SharedBusTransport",
    "sim_geometry",
    "SimulatedSSD",
    "snapshot_ssd",
    "SNAPSHOT_SCHEMA",
    "SSDConfig",
    "superblock_geometry",
    "TenantResult",
]
