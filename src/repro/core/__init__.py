"""The paper's contribution: decoupled SSD architectures and assembly."""

from .config import (
    ArchPreset,
    SSDConfig,
    paper_geometry,
    sim_geometry,
    superblock_geometry,
)
from .copyback import CopybackCommand, CopybackStatus
from .datapath import BaselineDatapath, DecoupledDatapath
from .ssd import (
    MultiTenantResult,
    RunResult,
    SimulatedSSD,
    TenantResult,
    build_ssd,
)
from .transport import (
    CopybackTransport,
    DedicatedBusTransport,
    FnocTransport,
    SharedBusTransport,
)

__all__ = [
    "ArchPreset",
    "BaselineDatapath",
    "build_ssd",
    "CopybackCommand",
    "CopybackStatus",
    "CopybackTransport",
    "DecoupledDatapath",
    "DedicatedBusTransport",
    "FnocTransport",
    "MultiTenantResult",
    "paper_geometry",
    "RunResult",
    "TenantResult",
    "SharedBusTransport",
    "sim_geometry",
    "SimulatedSSD",
    "SSDConfig",
    "superblock_geometry",
]
