"""SSD configuration: Table 1 parameters and Table 2 architecture presets.

:class:`SSDConfig` is the single knob surface for the whole simulator.
The derived-bandwidth rules implement the paper's fairness constraint:
every non-baseline configuration gets the same ``onchip_bw_factor``
(default 1.25x) of total on-chip bandwidth, spent differently:

* ``BW`` and ``dSSD``   -- all of it widens the shared system bus;
* ``dSSD_b``            -- baseline system bus + a dedicated flash bus
  carrying the extra bandwidth;
* ``dSSD_f``            -- baseline system bus + an fNoC whose bisection
  bandwidth equals the extra bandwidth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import ConfigError
from ..flash import FlashGeometry, FlashTiming, ULL_TIMING

__all__ = ["ArchPreset", "SSDConfig", "paper_geometry", "sim_geometry",
           "superblock_geometry"]


class ArchPreset(enum.Enum):
    """The five architectures of paper Table 2."""

    BASELINE = "baseline"   #: conventional SSD with parallel GC
    BW = "bw"               #: baseline + extra system-bus bandwidth
    DSSD = "dssd"           #: decoupled, copyback over the shared bus
    DSSD_B = "dssd_b"       #: decoupled, dedicated flash-interconnect bus
    DSSD_F = "dssd_f"       #: decoupled, fNoC

    @property
    def is_decoupled(self) -> bool:
        """Whether the preset uses decoupled flash controllers."""
        return self in (ArchPreset.DSSD, ArchPreset.DSSD_B, ArchPreset.DSSD_F)


def paper_geometry() -> FlashGeometry:
    """The full Table 1 ULL organization (large; slow to simulate)."""
    return FlashGeometry(channels=8, ways=8, dies=1, planes=8,
                         blocks_per_plane=1384, pages_per_block=384,
                         page_size=4096)


def sim_geometry(channels: int = 8, ways: int = 4, planes: int = 8,
                 blocks_per_plane: int = 20, pages_per_block: int = 32,
                 page_size: int = 4096) -> FlashGeometry:
    """A scaled-down organization with the paper's shape.

    The paper itself scales the device for feasible simulation time
    (Sec 6.4: "we simplified pages/block to 32"); we default the
    performance experiments to the same trick.
    """
    return FlashGeometry(channels=channels, ways=ways, dies=1,
                         planes=planes, blocks_per_plane=blocks_per_plane,
                         pages_per_block=pages_per_block,
                         page_size=page_size)


def superblock_geometry() -> FlashGeometry:
    """Paper Sec 6.1 footnote: 8ch x 4way x 2die x 2pl TLC, 32 pages/block."""
    return FlashGeometry(channels=8, ways=4, dies=2, planes=2,
                         blocks_per_plane=32, pages_per_block=32,
                         page_size=16384)


@dataclass
class SSDConfig:
    """Every tunable of the simulated SSD.  All bandwidths in bytes/us."""

    arch: ArchPreset = ArchPreset.BASELINE
    geometry: FlashGeometry = field(default_factory=sim_geometry)
    timing: FlashTiming = ULL_TIMING

    # Table 1 bandwidths.
    base_system_bus_bw: float = 8000.0
    dram_bw: float = 8000.0
    flash_channel_bw: float = 1000.0
    host_bw: float = 8000.0
    onchip_bw_factor: float = 1.25

    # Host interface.
    queue_depth: int = 64
    host_cmd_latency_us: float = 1.0

    # Multi-tenant frontend (run_tenants only).  ``arbiter`` picks the
    # NVMe arbitration model ("rr"/"wrr"/"prio"); ``arb_burst`` is the
    # arbitration burst -- commands fetched per queue per turn.
    arbiter: str = "rr"
    arb_burst: int = 1

    # FTL / buffering.
    write_policy: str = "writeback"
    write_buffer_pages: int = 2048
    flush_workers: Optional[int] = None   # None -> one per plane
    gc_policy: str = "pagc"
    gc_trigger_free_fraction: float = 0.10
    gc_stop_free_fraction: float = 0.20
    gc_hard_floor_fraction: float = 0.03
    gc_reserve_blocks: int = 2
    tinytail_channels: int = 1
    tinytail_partial_pages: int = 8
    gc_pipeline_depth: int = 4

    # Static wear leveling (off by default; the endurance experiments
    # model leveling analytically, but the DES supports it end to end).
    wear_leveling: bool = False
    wear_level_interval_us: float = 10_000.0
    wear_level_threshold: int = 8

    # ECC.
    ecc_throughput: float = 4000.0
    ecc_fixed_latency_us: float = 0.5

    # Decoupled controller.  The paper sizes the dBUF at two 32 KB
    # buffers per controller (16 x 4 KiB pages) -- 1/8th of the
    # conventional controller's page buffers (2 x 32 KB x 8 ways).
    dbuf_pages: int = 16
    page_buffer_pages: int = 128
    #: False = legacy unchecked copyback (ablation; propagates errors).
    copyback_ecc: bool = True
    #: Model wear-dependent read retries on the I/O read path.
    read_retry: bool = False

    #: Optional :class:`~repro.reliability.ReliabilityConfig`.  When set
    #: the device gets the full reliability stack: RBER sampling with an
    #: ECC read-retry ladder on every read-verify, GC copy error
    #: propagation tracking, bad-block remap/retirement, and transient
    #: fault injection.  Supersedes ``read_retry`` on the read path.
    reliability: Optional[object] = None

    # fNoC (dSSD_f only).
    fnoc_topology: str = "mesh1d"
    #: None derives the paper default: router channels at 2x the flash
    #: channel bandwidth -- the Fig 12 saturation point for 8 channels.
    fnoc_channel_bw: Optional[float] = None
    fnoc_flit_bytes: int = 256
    fnoc_buffer_flits: int = 16
    fnoc_router_latency_us: float = 0.01
    fnoc_ni_latency_us: float = 0.05

    # Pre-conditioning.
    prefill_fraction: float = 0.85
    prefill_valid_ratio: float = 0.45

    # Misc.
    seed: int = 1
    bin_width_us: float = 1000.0
    deterministic_timing: bool = True

    #: DES kernel backend: "auto" (compiled twin when installed, else
    #: pure Python), "pure", "fast", or "legacy" (the callback-path
    #: equivalence oracle).  All backends produce byte-identical
    #: simulated timing; see :mod:`repro.sim.backend`.
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.onchip_bw_factor < 1.0:
            raise ConfigError(
                f"onchip_bw_factor must be >= 1: {self.onchip_bw_factor}"
            )
        if self.base_system_bus_bw <= 0:
            raise ConfigError("base_system_bus_bw must be positive")
        if self.fnoc_topology not in ("mesh1d", "mesh2d", "ring",
                                      "crossbar"):
            raise ConfigError(f"unknown fNoC topology {self.fnoc_topology!r}")
        from ..host.arbiter import ARBITERS

        if self.arbiter not in ARBITERS:
            raise ConfigError(
                f"unknown arbiter {self.arbiter!r}; "
                f"available: {sorted(ARBITERS)}"
            )
        if self.arb_burst < 1:
            raise ConfigError(f"arb_burst must be >= 1: {self.arb_burst}")
        from ..sim.backend import BACKENDS

        if self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown kernel backend {self.backend!r}; "
                f"available: {', '.join(BACKENDS)}"
            )
        if self.reliability is not None:
            from ..reliability import ReliabilityConfig

            if not isinstance(self.reliability, ReliabilityConfig):
                raise ConfigError(
                    f"reliability must be a ReliabilityConfig, got "
                    f"{type(self.reliability).__name__}"
                )
        if not ArchPreset.BASELINE.value:  # pragma: no cover - sanity
            raise ConfigError("enum corrupted")

    # -- derived bandwidth rules ------------------------------------------------

    @property
    def extra_onchip_bw(self) -> float:
        """On-chip bandwidth above the baseline system bus."""
        return self.base_system_bus_bw * (self.onchip_bw_factor - 1.0)

    @property
    def system_bus_bw(self) -> float:
        """System-bus bandwidth for this architecture."""
        if self.arch in (ArchPreset.BW, ArchPreset.DSSD):
            return self.base_system_bus_bw * self.onchip_bw_factor
        return self.base_system_bus_bw

    @property
    def dedicated_bus_bw(self) -> float:
        """Dedicated flash-interconnect bandwidth (dSSD_b)."""
        return self.extra_onchip_bw

    @property
    def fnoc_bisection_bw(self) -> float:
        """fNoC bisection bandwidth budget (dSSD_f)."""
        return self.extra_onchip_bw

    @property
    def effective_fnoc_channel_bw(self) -> float:
        """Router channel bandwidth (paper rule: 2x flash channel)."""
        if self.fnoc_channel_bw is not None:
            return self.fnoc_channel_bw
        return 2.0 * self.flash_channel_bw

    @property
    def effective_flush_workers(self) -> int:
        """Flush worker count (defaults to one per plane)."""
        if self.flush_workers is not None:
            return self.flush_workers
        return self.geometry.planes_total

    def with_arch(self, arch: ArchPreset) -> "SSDConfig":
        """A copy of this config for another Table 2 architecture."""
        return replace(self, arch=arch)

    def describe(self) -> str:
        """One-line summary used by the experiment harness."""
        return (
            f"{self.arch.value}: bus={self.system_bus_bw / 1000:.1f}GB/s, "
            f"{self.geometry.describe()}, {self.timing.name}, "
            f"gc={self.gc_policy}"
        )
