"""Controller-to-controller transports for internal data movement.

The Table 2 configurations differ only in *how* a copyback page moves
between two decoupled flash controllers:

* :class:`SharedBusTransport` (``dSSD``) -- one traversal of the shared
  system bus, controller to controller, no DRAM bounce;
* :class:`DedicatedBusTransport` (``dSSD_b``) -- a separate serial bus
  that only interconnects the flash controllers;
* :class:`FnocTransport` (``dSSD_f``) -- the flash-controller
  network-on-chip.

Each transport's ``move`` is a generator that attributes its time to the
right breakdown component (``system_bus`` for dSSD, ``fnoc`` for the
dedicated bus and the NoC).
"""

from __future__ import annotations

from typing import Generator

from ..controller import Breakdown, SystemBus
from ..noc import FNoC, Packet
from ..sim import Simulator

__all__ = [
    "CopybackTransport",
    "SharedBusTransport",
    "DedicatedBusTransport",
    "FnocTransport",
]


class CopybackTransport:
    """Interface: move *nbytes* from one controller to another."""

    name = "abstract"

    def move(self, src_controller: int, dst_controller: int, nbytes: int,
             breakdown: Breakdown,
             traffic_class: str = "gc") -> Generator:
        """Generator: complete when the page has arrived at *dst*."""
        raise NotImplementedError
        yield  # pragma: no cover


class SharedBusTransport(CopybackTransport):
    """dSSD: copybacks cross the *shared* system bus exactly once."""

    name = "shared_bus"

    def __init__(self, sim: Simulator, bus: SystemBus):
        self.sim = sim
        self.bus = bus

    def move(self, src_controller: int, dst_controller: int, nbytes: int,
             breakdown: Breakdown,
             traffic_class: str = "gc") -> Generator:
        t0 = self.sim.now
        yield from self.bus.transfer(nbytes, traffic_class)
        breakdown.add("system_bus", self.sim.now - t0)


class DedicatedBusTransport(CopybackTransport):
    """dSSD_b: a private bus serializes all controller-to-controller moves."""

    name = "dedicated_bus"

    def __init__(self, sim: Simulator, bandwidth: float,
                 bin_width: float = 1000.0):
        self.sim = sim
        self.link = sim.link(bandwidth, name="dedicated_bus",
                             bin_width=bin_width)

    def move(self, src_controller: int, dst_controller: int, nbytes: int,
             breakdown: Breakdown,
             traffic_class: str = "gc") -> Generator:
        t0 = self.sim.now
        yield self.link.transfer(nbytes, traffic_class)
        breakdown.add("fnoc", self.sim.now - t0)


class FnocTransport(CopybackTransport):
    """dSSD_f: pages are packetized and routed across the fNoC."""

    name = "fnoc"

    def __init__(self, sim: Simulator, fnoc: FNoC):
        self.sim = sim
        self.fnoc = fnoc

    def move(self, src_controller: int, dst_controller: int, nbytes: int,
             breakdown: Breakdown,
             traffic_class: str = "gc") -> Generator:
        t0 = self.sim.now
        packet = Packet(src=src_controller, dst=dst_controller,
                        payload_bytes=nbytes, traffic_class=traffic_class)
        yield from self.fnoc.send(packet)
        breakdown.add("fnoc", self.sim.now - t0)
