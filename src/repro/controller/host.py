"""Host interface: NVMe-style submission with a bounded queue depth.

The host interface admits at most ``queue_depth`` outstanding I/O
requests (paper: QD = 64) and moves request data over a PCIe-class host
link.  The FTL completes requests; completion frees a queue slot for the
next submission.
"""

from __future__ import annotations

from typing import Generator

from ..errors import ConfigError
from ..sim import Simulator

__all__ = ["HostInterface", "PAPER_HOST_BW", "PAPER_QUEUE_DEPTH"]

#: PCIe 3.0 x8 (paper Table 1) ~= 7.88 GB/s; modeled as 8 GB/s.
PAPER_HOST_BW = 8000.0
#: Paper: outstanding-request queue depth of 64.
PAPER_QUEUE_DEPTH = 64

#: NVMe command processing overhead per request (us).
DEFAULT_CMD_LATENCY_US = 1.0


class HostInterface:
    """Submission queue slots plus the host data link."""

    def __init__(self, sim: Simulator, queue_depth: int = PAPER_QUEUE_DEPTH,
                 bandwidth: float = PAPER_HOST_BW,
                 cmd_latency_us: float = DEFAULT_CMD_LATENCY_US,
                 bin_width: float = 1000.0):
        if queue_depth < 1:
            raise ConfigError(f"queue depth must be >= 1: {queue_depth}")
        if bandwidth <= 0:
            raise ConfigError(f"host bandwidth must be positive: {bandwidth}")
        if cmd_latency_us < 0:
            raise ConfigError(f"negative command latency: {cmd_latency_us}")
        self.sim = sim
        self.queue_depth = queue_depth
        self.cmd_latency_us = cmd_latency_us
        self.link = sim.link(bandwidth, name="host_link",
                             bin_width=bin_width)
        self._slots = sim.token_pool(queue_depth, name="sq_slots")
        self.submitted = 0
        self.completed = 0

    @property
    def outstanding(self) -> int:
        """Requests currently admitted but not yet completed."""
        return self.queue_depth - self._slots.available

    def submit(self) -> Generator:
        """Generator: wait for a queue slot and pay command overhead.

        A request counts as submitted the moment it owns a queue slot --
        the command-processing overhead is paid while already admitted,
        so ``submitted - completed == outstanding`` holds at every
        instant.
        """
        grant = self._slots.acquire(1)
        counted = False
        done = False
        try:
            yield grant
            self.submitted += 1
            counted = True
            if self.cmd_latency_us > 0:
                yield self.sim.timeout(self.cmd_latency_us)
            done = True
        finally:
            # Interrupted while admitting: roll the admission back so the
            # queue slot (and the submitted/outstanding invariant) is not
            # leaked.  The caller pairs complete() only with a submit()
            # that returned normally.
            if not done:
                self._slots.cancel(grant)
                if counted:
                    self.submitted -= 1

    def complete(self) -> None:
        """Release the queue slot of a finished request."""
        self._slots.release(1)
        self.completed += 1

    def transfer(self, nbytes: int, traffic_class: str = "io",
                 priority: int = 0) -> Generator:
        """Generator: move request data over the host link."""
        wait = yield self.link.transfer(nbytes, traffic_class, priority)
        return wait

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint counters + link meters; all slots must be free."""
        if self.outstanding:
            raise ConfigError(
                f"cannot snapshot host interface with {self.outstanding} "
                "outstanding request(s)")
        return {"submitted": self.submitted,
                "completed": self.completed,
                "link": self.link.state_dict()}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint."""
        self.submitted = int(state["submitted"])
        self.completed = int(state["completed"])
        self.link.load_state(state["link"])
