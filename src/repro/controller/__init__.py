"""SSD-controller front-end components: buses, DRAM, ECC, host, controllers."""

from .breakdown import COMPONENTS, Breakdown
from .bus import PAPER_SYSTEM_BUS_BW, SystemBus
from .dram import PAPER_DRAM_BW, Dram
from .ecc import DEFAULT_ECC_FIXED_US, DEFAULT_ECC_THROUGHPUT, EccEngine
from .flash_controller import FlashController
from .host import PAPER_HOST_BW, PAPER_QUEUE_DEPTH, HostInterface

__all__ = [
    "Breakdown",
    "COMPONENTS",
    "Dram",
    "DEFAULT_ECC_FIXED_US",
    "DEFAULT_ECC_THROUGHPUT",
    "EccEngine",
    "FlashController",
    "HostInterface",
    "PAPER_DRAM_BW",
    "PAPER_HOST_BW",
    "PAPER_QUEUE_DEPTH",
    "PAPER_SYSTEM_BUS_BW",
    "SystemBus",
]
