"""Conventional flash controller: one per flash channel.

The controller owns its channel's bus and drives array operations on the
dies behind it.  Its datapath generators combine the flash-bus transfer
with the array operation and attribute the time spent to the breakdown
components (``flash_bus`` vs ``flash_chip``).

Order of phases follows ONFI:

* read:    array read (cell -> page register), then bus transfer out;
* program: bus transfer in (register load), then array program;
* erase:   array only, no data on the bus.

Hot-path layout: ``read_page`` / ``program_page`` are dispatchers.  When
no fault injector is attached (the common case) they return a *flat*
generator that resolves the plane grant, the array timeout, and the
channel transfer in a single frame -- the events pushed into the kernel
are identical to the layered ``backend.read`` -> ``plane.occupy`` chain
(same order, same times, same sequence numbers), only the Python
generator frames between them are gone.  With an injector attached the
original layered generators run unchanged (``use_flat_path = False``
forces them everywhere, for equivalence testing).
"""

from __future__ import annotations

from typing import Generator, List, Sequence

from ..errors import AddressError, FlashError
from ..flash import FlashBackend, FlashChannel, PhysAddr
from ..sim import Simulator
from .breakdown import Breakdown

__all__ = ["FlashController"]


class FlashController:
    """Datapath engine for one flash channel."""

    #: Route page ops through the single-frame fast path when no fault
    #: injector is attached.  Class-level switch so tests can force the
    #: layered generator chain and assert byte-identical traces.
    use_flat_path = True

    def __init__(self, sim: Simulator, controller_id: int,
                 channel: FlashChannel, backend: FlashBackend):
        self.sim = sim
        self.controller_id = controller_id
        self.channel = channel
        self.backend = backend
        self.geometry = backend.geometry
        self._page_size = backend.geometry.page_size
        self.pages_read = 0
        self.pages_programmed = 0
        self.blocks_erased = 0
        #: Optional :class:`~repro.reliability.FaultInjector`.  When set,
        #: array reads and channel transfers roll transient faults and
        #: pay detection-timeout + exponential-backoff retries.  Array
        #: programs are never re-issued (NAND forbids reprogramming a
        #: page without an erase); only their bus transfer is retried.
        self.fault_injector = None

    def _check_owns(self, addr: PhysAddr) -> None:
        if addr.channel != self.controller_id:
            raise AddressError(
                f"controller {self.controller_id} asked to access channel "
                f"{addr.channel}: {addr}"
            )

    @property
    def page_size(self) -> int:
        """Device page size in bytes."""
        return self.geometry.page_size

    # -- single-page operations ----------------------------------------------

    def _fault_backoff(self, attempt: int,
                       breakdown: Breakdown) -> Generator:
        """Pay the fault detection/backoff delay; returns whether to retry."""
        t0 = self.sim.now
        proceed = yield from self.fault_injector.backoff_wait(attempt)
        breakdown.add("other", self.sim.now - t0)
        return proceed

    def read_page(self, addr: PhysAddr, traffic_class: str = "io",
                  breakdown: Breakdown = None,
                  priority: int = None) -> Generator:
        """Generator: array read then bus transfer to the controller.

        With a fault injector attached, a transient die fault forces the
        (idempotent) array read to be re-issued and a transient channel
        fault forces the bus transfer to be repeated, each after a
        detection timeout with exponential backoff.
        """
        if self.use_flat_path and self.fault_injector is None:
            return self._read_page_flat(addr, traffic_class, breakdown,
                                        priority)
        return self._read_page_gen(addr, traffic_class, breakdown, priority)

    def _read_page_flat(self, addr: PhysAddr, traffic_class: str,
                        breakdown: Breakdown,
                        priority: int) -> Generator:
        """Single-frame read: plane grant + array timeout + bus transfer.

        Event-for-event identical to :meth:`_read_page_gen` without a
        fault injector -- same heap pushes in the same order -- with the
        ``backend.read`` -> ``plane.occupy`` generator frames inlined.
        """
        sim = self.sim
        self._check_owns(addr)
        if breakdown is None:
            breakdown = Breakdown()
        backend = self.backend
        backend.geometry.validate(addr)
        plane_id = backend._plane_id(addr)
        if backend.enforce_discipline:
            state = backend._block_state_at(
                plane_id * backend._blocks_per_plane + addr[4])
            if addr[5] not in state.programmed:
                raise FlashError(f"read of unwritten page {addr}")
        duration = (backend._read_mid if backend.deterministic_timing
                    else backend.timing.sample_read(backend._rng))
        plane = backend.planes[plane_id]
        t_request = sim.now
        grant = plane.resource.request()
        service_start = None
        try:
            yield grant
            service_start = sim.now
            yield sim.timeout(duration)
        finally:
            if service_start is not None:
                plane.busy_time += sim.now - service_start
                plane.op_counts["read"] = plane.op_counts.get("read", 0) + 1
            plane.resource.cancel(grant)
        breakdown.add("flash_chip", (service_start - t_request) + duration)
        channel = self.channel
        if priority is None:
            priority = -1 if traffic_class == "gc" else 0
        t0 = sim.now
        yield channel.link.transfer(
            self._page_size + channel._overhead_bytes, traffic_class,
            priority)
        breakdown.add("flash_bus", sim.now - t0)
        self.pages_read += 1
        return breakdown

    def _read_page_gen(self, addr: PhysAddr, traffic_class: str,
                       breakdown: Breakdown,
                       priority: int) -> Generator:
        """Layered read chain (fault-retry capable slow path)."""
        self._check_owns(addr)
        breakdown = breakdown if breakdown is not None else Breakdown()
        injector = self.fault_injector
        attempt = 1
        while True:
            op = yield from self.backend.read(addr)
            breakdown.add("flash_chip", op.total)
            if injector is None or not injector.die_fault():
                break
            if not (yield from self._fault_backoff(attempt, breakdown)):
                break
            attempt += 1
        attempt = 1
        while True:
            t0 = self.sim.now
            yield from self.channel.transfer(self.page_size, traffic_class,
                                             priority)
            breakdown.add("flash_bus", self.sim.now - t0)
            if injector is None or not injector.channel_fault():
                break
            if not (yield from self._fault_backoff(attempt, breakdown)):
                break
            attempt += 1
        self.pages_read += 1
        return breakdown

    def program_page(self, addr: PhysAddr, traffic_class: str = "io",
                     breakdown: Breakdown = None,
                     priority: int = None) -> Generator:
        """Generator: bus transfer into the register, then array program.

        A transient channel fault repeats the register load (retry with
        backoff); the array program itself is issued exactly once.
        """
        if self.use_flat_path and self.fault_injector is None:
            return self._program_page_flat(addr, traffic_class, breakdown,
                                           priority)
        return self._program_page_gen(addr, traffic_class, breakdown,
                                      priority)

    def _program_page_flat(self, addr: PhysAddr, traffic_class: str,
                           breakdown: Breakdown,
                           priority: int) -> Generator:
        """Single-frame program: bus transfer + plane grant + timeout."""
        sim = self.sim
        self._check_owns(addr)
        if breakdown is None:
            breakdown = Breakdown()
        channel = self.channel
        if priority is None:
            priority = -1 if traffic_class == "gc" else 0
        t0 = sim.now
        yield channel.link.transfer(
            self._page_size + channel._overhead_bytes, traffic_class,
            priority)
        breakdown.add("flash_bus", sim.now - t0)
        backend = self.backend
        backend.geometry.validate(addr)
        plane_id = backend._plane_id(addr)
        if backend.enforce_discipline:
            state = backend._block_state_at(
                plane_id * backend._blocks_per_plane + addr[4])
            if addr[5] in state.programmed:
                raise FlashError(f"reprogram of page {addr} without erase")
            state.programmed.add(addr[5])
        duration = (backend._program_mid if backend.deterministic_timing
                    else backend.timing.sample_program(backend._rng))
        plane = backend.planes[plane_id]
        t_request = sim.now
        grant = plane.resource.request()
        service_start = None
        try:
            yield grant
            service_start = sim.now
            yield sim.timeout(duration)
        finally:
            if service_start is not None:
                plane.busy_time += sim.now - service_start
                plane.op_counts["program"] = (
                    plane.op_counts.get("program", 0) + 1)
            plane.resource.cancel(grant)
        breakdown.add("flash_chip", (service_start - t_request) + duration)
        self.pages_programmed += 1
        return breakdown

    def _program_page_gen(self, addr: PhysAddr, traffic_class: str,
                          breakdown: Breakdown,
                          priority: int) -> Generator:
        """Layered program chain (fault-retry capable slow path)."""
        self._check_owns(addr)
        breakdown = breakdown if breakdown is not None else Breakdown()
        injector = self.fault_injector
        attempt = 1
        while True:
            t0 = self.sim.now
            yield from self.channel.transfer(self.page_size, traffic_class,
                                             priority)
            breakdown.add("flash_bus", self.sim.now - t0)
            if injector is None or not injector.channel_fault():
                break
            if not (yield from self._fault_backoff(attempt, breakdown)):
                break
            attempt += 1
        op = yield from self.backend.program(addr)
        breakdown.add("flash_chip", op.total)
        self.pages_programmed += 1
        return breakdown

    def erase_block(self, addr: PhysAddr, traffic_class: str = "gc",
                    breakdown: Breakdown = None) -> Generator:
        """Generator: erase the block containing *addr*."""
        self._check_owns(addr)
        breakdown = breakdown if breakdown is not None else Breakdown()
        op = yield from self.backend.erase(addr)
        breakdown.add("flash_chip", op.total)
        self.blocks_erased += 1
        return breakdown

    # -- multi-plane operations -------------------------------------------------

    def read_multiplane(self, addrs: Sequence[PhysAddr],
                        traffic_class: str = "io",
                        breakdown: Breakdown = None) -> Generator:
        """Generator: one multi-plane array read, then per-page transfers.

        The array time is paid once across the planes; the channel bus
        still serializes each page's data movement -- exactly why
        multi-plane commands shift the bottleneck to the buses (Sec 1).
        """
        addr_list = self._as_list(addrs)
        breakdown = breakdown if breakdown is not None else Breakdown()
        op = yield from self.backend.multiplane(addr_list, "read")
        breakdown.add("flash_chip", op.total)
        t0 = self.sim.now
        for _addr in addr_list:
            yield from self.channel.transfer(self.page_size, traffic_class)
        breakdown.add("flash_bus", self.sim.now - t0)
        self.pages_read += len(addr_list)
        return breakdown

    def program_multiplane(self, addrs: Sequence[PhysAddr],
                           traffic_class: str = "io",
                           breakdown: Breakdown = None) -> Generator:
        """Generator: per-page register loads, then one multi-plane program."""
        addr_list = self._as_list(addrs)
        breakdown = breakdown if breakdown is not None else Breakdown()
        t0 = self.sim.now
        for _addr in addr_list:
            yield from self.channel.transfer(self.page_size, traffic_class)
        breakdown.add("flash_bus", self.sim.now - t0)
        op = yield from self.backend.multiplane(addr_list, "program")
        breakdown.add("flash_chip", op.total)
        self.pages_programmed += len(addr_list)
        return breakdown

    def erase_multiplane(self, addrs: Sequence[PhysAddr],
                         breakdown: Breakdown = None) -> Generator:
        """Generator: erase blocks across several planes as one command."""
        addr_list = self._as_list(addrs)
        breakdown = breakdown if breakdown is not None else Breakdown()
        op = yield from self.backend.multiplane(addr_list, "erase")
        breakdown.add("flash_chip", op.total)
        self.blocks_erased += len(addr_list)
        return breakdown

    def _as_list(self, addrs: Sequence[PhysAddr]) -> List[PhysAddr]:
        addr_list = list(addrs)
        if not addr_list:
            raise AddressError("empty multi-plane address list")
        for addr in addr_list:
            self._check_owns(addr)
        return addr_list
