"""Conventional flash controller: one per flash channel.

The controller owns its channel's bus and drives array operations on the
dies behind it.  Its datapath generators combine the flash-bus transfer
with the array operation and attribute the time spent to the breakdown
components (``flash_bus`` vs ``flash_chip``).

Order of phases follows ONFI:

* read:    array read (cell -> page register), then bus transfer out;
* program: bus transfer in (register load), then array program;
* erase:   array only, no data on the bus.
"""

from __future__ import annotations

from typing import Generator, List, Sequence

from ..errors import AddressError
from ..flash import FlashBackend, FlashChannel, PhysAddr
from ..sim import Simulator
from .breakdown import Breakdown

__all__ = ["FlashController"]


class FlashController:
    """Datapath engine for one flash channel."""

    def __init__(self, sim: Simulator, controller_id: int,
                 channel: FlashChannel, backend: FlashBackend):
        self.sim = sim
        self.controller_id = controller_id
        self.channel = channel
        self.backend = backend
        self.geometry = backend.geometry
        self.pages_read = 0
        self.pages_programmed = 0
        self.blocks_erased = 0
        #: Optional :class:`~repro.reliability.FaultInjector`.  When set,
        #: array reads and channel transfers roll transient faults and
        #: pay detection-timeout + exponential-backoff retries.  Array
        #: programs are never re-issued (NAND forbids reprogramming a
        #: page without an erase); only their bus transfer is retried.
        self.fault_injector = None

    def _check_owns(self, addr: PhysAddr) -> None:
        if addr.channel != self.controller_id:
            raise AddressError(
                f"controller {self.controller_id} asked to access channel "
                f"{addr.channel}: {addr}"
            )

    @property
    def page_size(self) -> int:
        """Device page size in bytes."""
        return self.geometry.page_size

    # -- single-page operations ----------------------------------------------

    def _fault_backoff(self, attempt: int,
                       breakdown: Breakdown) -> Generator:
        """Pay the fault detection/backoff delay; returns whether to retry."""
        t0 = self.sim.now
        proceed = yield from self.fault_injector.backoff_wait(attempt)
        breakdown.add("other", self.sim.now - t0)
        return proceed

    def read_page(self, addr: PhysAddr, traffic_class: str = "io",
                  breakdown: Breakdown = None,
                  priority: int = None) -> Generator:
        """Generator: array read then bus transfer to the controller.

        With a fault injector attached, a transient die fault forces the
        (idempotent) array read to be re-issued and a transient channel
        fault forces the bus transfer to be repeated, each after a
        detection timeout with exponential backoff.
        """
        self._check_owns(addr)
        breakdown = breakdown if breakdown is not None else Breakdown()
        injector = self.fault_injector
        attempt = 1
        while True:
            op = yield from self.backend.read(addr)
            breakdown.add("flash_chip", op.total)
            if injector is None or not injector.die_fault():
                break
            if not (yield from self._fault_backoff(attempt, breakdown)):
                break
            attempt += 1
        attempt = 1
        while True:
            t0 = self.sim.now
            yield from self.channel.transfer(self.page_size, traffic_class,
                                             priority)
            breakdown.add("flash_bus", self.sim.now - t0)
            if injector is None or not injector.channel_fault():
                break
            if not (yield from self._fault_backoff(attempt, breakdown)):
                break
            attempt += 1
        self.pages_read += 1
        return breakdown

    def program_page(self, addr: PhysAddr, traffic_class: str = "io",
                     breakdown: Breakdown = None,
                     priority: int = None) -> Generator:
        """Generator: bus transfer into the register, then array program.

        A transient channel fault repeats the register load (retry with
        backoff); the array program itself is issued exactly once.
        """
        self._check_owns(addr)
        breakdown = breakdown if breakdown is not None else Breakdown()
        injector = self.fault_injector
        attempt = 1
        while True:
            t0 = self.sim.now
            yield from self.channel.transfer(self.page_size, traffic_class,
                                             priority)
            breakdown.add("flash_bus", self.sim.now - t0)
            if injector is None or not injector.channel_fault():
                break
            if not (yield from self._fault_backoff(attempt, breakdown)):
                break
            attempt += 1
        op = yield from self.backend.program(addr)
        breakdown.add("flash_chip", op.total)
        self.pages_programmed += 1
        return breakdown

    def erase_block(self, addr: PhysAddr, traffic_class: str = "gc",
                    breakdown: Breakdown = None) -> Generator:
        """Generator: erase the block containing *addr*."""
        self._check_owns(addr)
        breakdown = breakdown if breakdown is not None else Breakdown()
        op = yield from self.backend.erase(addr)
        breakdown.add("flash_chip", op.total)
        self.blocks_erased += 1
        return breakdown

    # -- multi-plane operations -------------------------------------------------

    def read_multiplane(self, addrs: Sequence[PhysAddr],
                        traffic_class: str = "io",
                        breakdown: Breakdown = None) -> Generator:
        """Generator: one multi-plane array read, then per-page transfers.

        The array time is paid once across the planes; the channel bus
        still serializes each page's data movement -- exactly why
        multi-plane commands shift the bottleneck to the buses (Sec 1).
        """
        addr_list = self._as_list(addrs)
        breakdown = breakdown if breakdown is not None else Breakdown()
        op = yield from self.backend.multiplane(addr_list, "read")
        breakdown.add("flash_chip", op.total)
        t0 = self.sim.now
        for _addr in addr_list:
            yield from self.channel.transfer(self.page_size, traffic_class)
        breakdown.add("flash_bus", self.sim.now - t0)
        self.pages_read += len(addr_list)
        return breakdown

    def program_multiplane(self, addrs: Sequence[PhysAddr],
                           traffic_class: str = "io",
                           breakdown: Breakdown = None) -> Generator:
        """Generator: per-page register loads, then one multi-plane program."""
        addr_list = self._as_list(addrs)
        breakdown = breakdown if breakdown is not None else Breakdown()
        t0 = self.sim.now
        for _addr in addr_list:
            yield from self.channel.transfer(self.page_size, traffic_class)
        breakdown.add("flash_bus", self.sim.now - t0)
        op = yield from self.backend.multiplane(addr_list, "program")
        breakdown.add("flash_chip", op.total)
        self.pages_programmed += len(addr_list)
        return breakdown

    def erase_multiplane(self, addrs: Sequence[PhysAddr],
                         breakdown: Breakdown = None) -> Generator:
        """Generator: erase blocks across several planes as one command."""
        addr_list = self._as_list(addrs)
        breakdown = breakdown if breakdown is not None else Breakdown()
        op = yield from self.backend.multiplane(addr_list, "erase")
        breakdown.add("flash_chip", op.total)
        self.blocks_erased += len(addr_list)
        return breakdown

    def _as_list(self, addrs: Sequence[PhysAddr]) -> List[PhysAddr]:
        addr_list = list(addrs)
        if not addr_list:
            raise AddressError("empty multi-plane address list")
        for addr in addr_list:
            self._check_owns(addr)
        return addr_list
