"""DRAM model: a bandwidth port plus the write-buffer slot pool.

The SSD's DRAM serves three roles in the paper's system: write-buffer
cache, mapping-table storage, and the staging area GC copies bounce
through in a conventional SSD.  We model its *port* as a serializing
link (Table 1: DRAM = 8 GB/s) and the write-buffer capacity as a slot
pool that backpressures host writes when the flush path falls behind --
the mechanism behind the Fig 2 bandwidth collapse during GC.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import ConfigError
from ..sim import Simulator

__all__ = ["Dram", "PAPER_DRAM_BW"]

#: Paper Table 1: DRAM = 8 GB/s == 8000 bytes/us.
PAPER_DRAM_BW = 8000.0


class Dram:
    """DRAM port bandwidth and write-buffer slot accounting."""

    def __init__(self, sim: Simulator, bandwidth: float = PAPER_DRAM_BW,
                 write_buffer_pages: int = 1024,
                 name: str = "dram", bin_width: float = 1000.0):
        if bandwidth <= 0:
            raise ConfigError(f"DRAM bandwidth must be positive: {bandwidth}")
        if write_buffer_pages < 1:
            raise ConfigError(
                f"write buffer needs >= 1 page: {write_buffer_pages}"
            )
        self.sim = sim
        # DDR-style duplex: independent read and write ports, each at the
        # rated bandwidth, so reads do not queue behind writes.
        self.read_link = sim.link(bandwidth, name=f"{name}_rd",
                                  bin_width=bin_width)
        self.write_link = sim.link(bandwidth, name=f"{name}_wr",
                                   bin_width=bin_width)
        self.write_buffer = sim.token_pool(write_buffer_pages,
                                           name="write_buffer")

    @property
    def bandwidth(self) -> float:
        """DRAM per-port bandwidth in bytes/us."""
        return self.read_link.bandwidth

    @property
    def buffered_pages(self) -> int:
        """Write-buffer pages currently occupied (dirty)."""
        return self.write_buffer.capacity - self.write_buffer.available

    def access(self, nbytes: int, traffic_class: str = "io",
               priority: int = 0, direction: str = "write") -> Generator:
        """Generator: one DRAM access on the read or write port."""
        link = self.read_link if direction == "read" else self.write_link
        wait = yield link.transfer(nbytes, traffic_class, priority)
        return wait

    def reserve_buffer_page(self):
        """Event granting one write-buffer slot (may backpressure)."""
        return self.write_buffer.acquire(1)

    def release_buffer_page(self) -> None:
        """Return one write-buffer slot after its page is flushed."""
        self.write_buffer.release(1)

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Mean busy fraction across the two DRAM ports."""
        return (self.read_link.utilization(horizon)
                + self.write_link.utilization(horizon)) / 2.0

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint port meters; the write buffer must be drained."""
        if self.buffered_pages:
            raise ConfigError(
                f"cannot snapshot DRAM with {self.buffered_pages} dirty "
                "write-buffer page(s)")
        return {"read_link": self.read_link.state_dict(),
                "write_link": self.write_link.state_dict()}

    def load_state(self, state: dict) -> None:
        """Restore meters captured by :meth:`state_dict`."""
        self.read_link.load_state(state["read_link"])
        self.write_link.load_state(state["write_link"])
