"""ECC engine model (LDPC-style decode/encode latency).

An ECC engine checks (and possibly corrects) every page read -- for host
I/O *and* for GC copies.  Conventional SSDs place the engines near the
front-end; the decoupled SSD integrates one into each decoupled flash
controller so copybacks never leave the back-end unchecked (avoiding the
error propagation that bars legacy copyback commands).
"""

from __future__ import annotations

from typing import Generator

from ..errors import ConfigError
from ..sim import Simulator

__all__ = ["EccEngine", "DEFAULT_ECC_THROUGHPUT", "DEFAULT_ECC_FIXED_US"]

#: Default decode throughput, bytes/us (4 GB/s-class LDPC pipeline).
DEFAULT_ECC_THROUGHPUT = 4000.0
#: Fixed pipeline latency per codeword batch (us).
DEFAULT_ECC_FIXED_US = 0.5


class EccEngine:
    """A shared decode pipeline: fixed latency + size-proportional time."""

    def __init__(self, sim: Simulator, throughput: float = DEFAULT_ECC_THROUGHPUT,
                 fixed_latency_us: float = DEFAULT_ECC_FIXED_US,
                 lanes: int = 1, name: str = "ecc"):
        if throughput <= 0:
            raise ConfigError(f"ECC throughput must be positive: {throughput}")
        if fixed_latency_us < 0:
            raise ConfigError(f"negative ECC latency: {fixed_latency_us}")
        if lanes < 1:
            raise ConfigError(f"ECC lanes must be >= 1: {lanes}")
        self.sim = sim
        self.throughput = throughput
        self.fixed_latency_us = fixed_latency_us
        self.name = name
        self._lanes = sim.resource(capacity=lanes, name=name)
        self.pages_checked = 0
        self.busy_time = 0.0

    def decode_time(self, nbytes: int) -> float:
        """Service time for checking *nbytes* of data."""
        return self.fixed_latency_us + nbytes / self.throughput

    def check(self, nbytes: int, priority: int = 0,
              scale: float = 1.0) -> Generator:
        """Generator: run one page through the engine; returns lane wait.

        ``scale`` multiplies the decode time; read-retry ladder steps use
        it for escalating soft-decision decode latency.  The hold is
        interrupt-safe: the lane is returned and ``busy_time`` /
        ``pages_checked`` are settled in the same ``finally`` even when
        the calling process is preempted mid-decode, so utilization no
        longer under-reports under preemptive GC.
        """
        if nbytes <= 0:
            raise ConfigError(f"ECC check of {nbytes} bytes")
        if scale <= 0:
            raise ConfigError(f"ECC decode scale must be positive: {scale}")
        t_request = self.sim.now
        grant = self._lanes.request(priority, owner=self.name or "ecc")
        service_start = None
        try:
            yield grant
            service_start = self.sim.now
            yield self.sim.timeout(self.decode_time(nbytes) * scale)
        finally:
            if service_start is not None:
                self.busy_time += self.sim.now - service_start
                self.pages_checked += 1
            self._lanes.cancel(grant)
        return service_start - t_request

    def utilization(self, horizon: float = None) -> float:
        """Busy fraction of the engine (sums over lanes)."""
        horizon = horizon if horizon is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / (horizon * self._lanes.capacity))

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint the engine meters (all lanes must be idle)."""
        if self._lanes.in_use or self._lanes.queue_length:
            raise ConfigError(f"cannot snapshot busy ECC engine {self.name!r}")
        return {"pages_checked": self.pages_checked,
                "busy_time": self.busy_time}

    def load_state(self, state: dict) -> None:
        """Restore meters captured by :meth:`state_dict`."""
        self.pages_checked = int(state["pages_checked"])
        self.busy_time = float(state["busy_time"])
