"""SSD-controller system bus (e.g. AXI) and the dedicated dSSD_b bus.

The system bus interconnects the host interface, cores, DRAM, ECC, and
every flash controller (paper Fig 1).  It is the contended resource this
paper is about: host I/O and garbage-collection page copies serialize on
it in conventional SSDs.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import ConfigError
from ..sim import Simulator

__all__ = ["SystemBus", "PAPER_SYSTEM_BUS_BW"]

#: Paper Table 1: system-bus = 8 GB/s (x1) == 8000 bytes/us.
PAPER_SYSTEM_BUS_BW = 8000.0


class SystemBus:
    """A serializing shared bus with per-class utilization accounting.

    ``bandwidth`` is bytes/us.  Traffic classes: ``"io"`` for host
    requests, ``"gc"`` for garbage-collection copies -- the experiments
    plot each class's utilization separately (paper Fig 2(c,d), 7(b)).
    """

    def __init__(self, sim: Simulator, bandwidth: float = PAPER_SYSTEM_BUS_BW,
                 name: str = "system_bus", bin_width: float = 1000.0):
        if bandwidth <= 0:
            raise ConfigError(f"bus bandwidth must be positive: {bandwidth}")
        self.sim = sim
        self.link = sim.link(bandwidth, name=name, bin_width=bin_width)

    @property
    def bandwidth(self) -> float:
        """Bus bandwidth in bytes/us."""
        return self.link.bandwidth

    def transfer(self, nbytes: int, traffic_class: str = "io",
                 priority: int = 0) -> Generator:
        """Generator: move *nbytes* across the bus; returns queue wait."""
        wait = yield self.link.transfer(nbytes, traffic_class, priority)
        return wait

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Total busy fraction."""
        return self.link.utilization(horizon)

    def class_utilization(self, traffic_class: str,
                          horizon: Optional[float] = None) -> float:
        """Busy fraction attributable to one traffic class."""
        return self.link.class_utilization(traffic_class, horizon)

    def bandwidth_timeline(self, traffic_class: str):
        """Per-bin achieved bandwidth (bytes/us) for one class."""
        return self.link.bandwidth_timeline(traffic_class)

    def state_dict(self) -> dict:
        """Checkpoint the bus meters (the bus must be idle)."""
        return {"link": self.link.state_dict()}

    def load_state(self, state: dict) -> None:
        """Restore meters captured by :meth:`state_dict`."""
        self.link.load_state(state["link"])
