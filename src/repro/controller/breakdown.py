"""Latency-breakdown accounting shared by all datapaths.

Paper Fig 9 decomposes request latency into contention/service per
resource.  Every datapath generator in this library fills a
:class:`Breakdown` with time attributed to the components below.
"""

from __future__ import annotations

from typing import Dict, Iterable

__all__ = ["Breakdown", "COMPONENTS"]

#: Canonical component keys, in display order.
COMPONENTS = (
    "host",         # host interface / PCIe
    "system_bus",   # shared on-chip bus (queueing + transfer)
    "dram",         # DRAM port
    "ecc",          # ECC engine
    "flash_bus",    # flash channel bus
    "flash_chip",   # plane/die array time + contention
    "fnoc",         # flash-controller NoC (dSSD_f) or dedicated bus
    "other",        # firmware, NI, misc fixed latencies
)

#: Set view of :data:`COMPONENTS` for O(1) membership on the hot path.
_COMPONENT_SET = frozenset(COMPONENTS)


class Breakdown:
    """Accumulates per-component time for one request (or many)."""

    __slots__ = ("parts",)

    def __init__(self) -> None:
        self.parts: Dict[str, float] = {}

    def add(self, component: str, duration: float) -> None:
        """Attribute *duration* microseconds to *component*."""
        if component not in _COMPONENT_SET:
            raise KeyError(f"unknown breakdown component {component!r}")
        if duration < 0:
            raise ValueError(f"negative duration {duration} for {component}")
        parts = self.parts
        parts[component] = parts.get(component, 0.0) + duration

    def merge(self, other: "Breakdown") -> None:
        """Fold another breakdown's components into this one."""
        for component, duration in other.parts.items():
            self.parts[component] = self.parts.get(component, 0.0) + duration

    def get(self, component: str) -> float:
        """Time attributed to *component* (0.0 if none)."""
        return self.parts.get(component, 0.0)

    @property
    def total(self) -> float:
        """Sum over all components."""
        return sum(self.parts.values())

    def scaled(self, factor: float) -> "Breakdown":
        """A copy with every component multiplied by *factor*."""
        result = Breakdown()
        for component, duration in self.parts.items():
            result.parts[component] = duration * factor
        return result

    @staticmethod
    def mean(breakdowns: Iterable["Breakdown"]) -> "Breakdown":
        """Component-wise average of many breakdowns."""
        items = list(breakdowns)
        result = Breakdown()
        if not items:
            return result
        for item in items:
            result.merge(item)
        return result.scaled(1.0 / len(items))

    def as_dict(self) -> Dict[str, float]:
        """Components in canonical order (zero-filled)."""
        return {c: self.parts.get(c, 0.0) for c in COMPONENTS}

    @classmethod
    def from_parts(cls, parts: Dict[str, float]) -> "Breakdown":
        """Rebuild a breakdown from a ``parts`` mapping (checkpoints)."""
        result = cls()
        for component, duration in parts.items():
            result.add(component, float(duration))
        return result

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{c}={v:.2f}" for c, v in self.parts.items() if v > 0
        )
        return f"Breakdown({parts})"
