"""Host I/O request representation."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigError

__all__ = ["IoRequest", "READ", "WRITE", "TRIM"]

READ = "read"
WRITE = "write"
TRIM = "trim"

_request_ids = itertools.count()


@dataclass
class IoRequest:
    """One host I/O: *n_pages* logical pages starting at *lpn*.

    ``dram_hit`` marks requests the workload declares DRAM-serviceable
    (the paper's "DRAM hit" scenario where no flash access occurs).
    """

    op: str
    lpn: int
    n_pages: int
    dram_hit: bool = False
    #: Datapath priority on shared resources (lower = more urgent).
    #: The multi-tenant frontend stamps each request with its stream's
    #: QoS priority so isolation holds inside the device, not only at
    #: arbitration time.
    priority: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    issue_time: Optional[float] = None
    complete_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in (READ, WRITE, TRIM):
            raise ConfigError(f"unknown op {self.op!r}")
        if self.lpn < 0 or self.n_pages < 1:
            raise ConfigError(
                f"bad extent lpn={self.lpn} n_pages={self.n_pages}"
            )

    def bytes(self, page_size: int) -> int:
        """Request size in bytes."""
        return self.n_pages * page_size

    @property
    def latency(self) -> float:
        """Completion minus issue time (raises if incomplete)."""
        if self.issue_time is None or self.complete_time is None:
            raise ConfigError(f"request {self.request_id} not finished")
        return self.complete_time - self.issue_time
