"""Flash translation layer: mapping, blocks, GC, request handling."""

from .blocks import ACTIVE, BAD, COLLECTING, BlockInfo, BlockManager, \
    FREE, FULL
from .ftl import Ftl, WRITE_POLICIES
from .gc import GC_POLICIES, GarbageCollector, GcStats
from .mapping import PageMappingTable
from .request import READ, TRIM, WRITE, IoRequest
from .wear_leveling import StaticWearLeveler

__all__ = [
    "ACTIVE",
    "BAD",
    "BlockInfo",
    "BlockManager",
    "COLLECTING",
    "FREE",
    "FULL",
    "Ftl",
    "StaticWearLeveler",
    "TRIM",
    "GC_POLICIES",
    "GarbageCollector",
    "GcStats",
    "IoRequest",
    "PageMappingTable",
    "READ",
    "WRITE",
    "WRITE_POLICIES",
]
