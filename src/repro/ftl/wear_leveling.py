"""Static wear leveling: migrate cold data off young blocks.

Greedy GC alone concentrates erases on blocks holding hot data; blocks
full of cold (never-overwritten) data are never erased and their wear
headroom is wasted.  The static wear leveler periodically compares the
device's erase-count spread and, when it exceeds ``threshold`` cycles,
migrates the valid pages of the *coldest* FULL block (fewest erases,
stale data) so its block returns to the free pool and absorbs future
erases.

The migration datapath is the architecture's GC move -- on a decoupled
SSD, wear-leveling traffic rides the fNoC exactly like copybacks, one
more front-end load the dSSD removes.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import ConfigError, MappingError
from ..flash import FlashBackend, PhysAddr
from ..sim import Simulator
from .blocks import BlockManager, FULL
from .mapping import PageMappingTable

__all__ = ["StaticWearLeveler"]


class StaticWearLeveler:
    """Background erase-count balancing over the block population."""

    def __init__(self, sim: Simulator, mapping: PageMappingTable,
                 blocks: BlockManager, backend: FlashBackend, datapath,
                 interval_us: float = 10_000.0, threshold: int = 8,
                 max_migrations_per_round: int = 4,
                 min_free_fraction: float = 0.15):
        if interval_us <= 0:
            raise ConfigError(f"interval must be positive: {interval_us}")
        if threshold < 1:
            raise ConfigError(f"threshold must be >= 1: {threshold}")
        if max_migrations_per_round < 1:
            raise ConfigError("max_migrations_per_round must be >= 1")
        self.sim = sim
        self.mapping = mapping
        self.blocks = blocks
        self.backend = backend
        self.datapath = datapath
        self.interval_us = interval_us
        self.threshold = threshold
        self.max_migrations_per_round = max_migrations_per_round
        self.min_free_fraction = min_free_fraction
        self.migrations = 0
        self.aborted_migrations = 0
        self.pages_migrated = 0
        self.rounds = 0
        self._running = False

    def start(self) -> None:
        """Launch the background leveling process (idempotent)."""
        if not self._running:
            self._running = True
            self.sim.process(self._loop(), name="wear_leveler")

    def erase_spread(self) -> int:
        """Max minus min erase count across non-bad, non-spare blocks."""
        counts = [
            self.backend.erase_count(info.addr)
            for info in self.blocks.blocks.values()
            if info.state not in ("bad", "spare")
        ]
        if not counts:
            return 0
        return max(counts) - min(counts)

    def coldest_victim(self) -> Optional[PhysAddr]:
        """FULL block with the lowest erase count and no pending pages."""
        best = None
        best_count = None
        for info in self.blocks.blocks.values():
            if info.state != FULL or info.pending > 0:
                continue
            count = self.backend.erase_count(info.addr)
            if best_count is None or count < best_count:
                best, best_count = info.addr, count
        return best

    # -- background process ------------------------------------------------

    def _loop(self) -> Generator:
        while True:
            yield self.sim.timeout(self.interval_us)
            self.rounds += 1
            # Leveling is a luxury: never compete with GC for the last
            # free blocks.
            if self.blocks.free_fraction < self.min_free_fraction:
                continue
            if self.erase_spread() < self.threshold:
                continue
            for _ in range(self.max_migrations_per_round):
                if self.blocks.free_fraction < self.min_free_fraction:
                    break
                victim = self.coldest_victim()
                if victim is None:
                    break
                yield from self._migrate_block(victim)

    def _migrate_block(self, victim: PhysAddr) -> Generator:
        """Move the victim's valid pages and recycle the block."""
        geometry = self.blocks.geometry
        self.blocks.claim_for_collection(victim)
        for src in self.blocks.valid_pages_of(victim):
            src_ppn = geometry.ppn_of(src)
            if self.mapping.reverse_lookup(src_ppn) is None:
                self.blocks.invalidate(src)
                continue
            try:
                dst = self.blocks.allocate_page(for_gc=True)
            except MappingError:
                # Pool emptied under us: abort and retry another round.
                self.blocks.unclaim(victim)
                self.aborted_migrations += 1
                return
            yield from self.datapath.gc_move(src, dst)
            if self.mapping.reverse_lookup(src_ppn) is not None:
                self.mapping.move(src_ppn, geometry.ppn_of(dst))
                self.blocks.commit_page(dst, valid=True)
                self.blocks.invalidate(src)
                self.pages_migrated += 1
            else:
                self.blocks.commit_page(dst, valid=False)
                self.blocks.invalidate(src)
        yield from self.datapath.gc_erase(victim)
        reliability = getattr(self.datapath, "reliability", None)
        verdict = "ok"
        if reliability is not None:
            verdict = reliability.after_erase(victim)
        if verdict != "retired":
            self.blocks.release_block(victim)
        self.migrations += 1
