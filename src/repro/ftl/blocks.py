"""Physical block management: allocation, validity tracking, victims.

The block manager owns the FTL's view of every physical block: its
state (free / active / full / bad), its write pointer, and which of its
pages hold valid data.  Page allocation round-robins across planes to
expose channel/way/plane parallelism; garbage collection asks it for
greedy victims (fewest valid pages) and returns erased blocks to the
free pool.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

from ..errors import AddressError, MappingError
from ..flash import FlashGeometry, PhysAddr

__all__ = ["BlockInfo", "BlockManager", "FREE", "ACTIVE", "FULL", "BAD",
           "COLLECTING", "SPARE"]

FREE = "free"
ACTIVE = "active"
FULL = "full"
BAD = "bad"
#: Transitional state: a GC or wear-leveling worker owns the block and
#: is migrating its pages; nobody else may select it.
COLLECTING = "collecting"
#: Withdrawn from the free pools as a bad-block replacement spare; the
#: FTL never addresses it directly (the reliability layer remaps onto
#: it below the FTL).
SPARE = "spare"


class BlockInfo:
    """State of one physical block.

    ``pending`` counts pages allocated but not yet committed (their
    program is still in flight); blocks with pending pages are never
    eligible GC victims.
    """

    __slots__ = ("addr", "state", "write_ptr", "valid", "pending")

    def __init__(self, addr: PhysAddr):
        self.addr = addr.block_addr()
        self.state = FREE
        self.write_ptr = 0
        self.valid: Set[int] = set()
        self.pending = 0

    @property
    def valid_count(self) -> int:
        """Number of valid pages in the block."""
        return len(self.valid)

    def __repr__(self) -> str:
        return (
            f"BlockInfo({self.addr}, {self.state}, wp={self.write_ptr}, "
            f"valid={self.valid_count})"
        )


class BlockManager:
    """Allocator + validity bookkeeping over the whole device.

    ``gc_reserve_blocks`` free blocks per plane are withheld from host
    allocation so garbage collection always has destinations available
    (the standard over-provisioning floor that prevents write deadlock).
    """

    def __init__(self, geometry: FlashGeometry, gc_reserve_blocks: int = 1):
        if gc_reserve_blocks < 0:
            raise MappingError(
                f"negative gc reserve: {gc_reserve_blocks}"
            )
        if gc_reserve_blocks >= geometry.blocks_per_plane:
            raise MappingError(
                "gc reserve must leave at least one allocatable block"
            )
        self.geometry = geometry
        self.gc_reserve_blocks = gc_reserve_blocks
        self.blocks: Dict[int, BlockInfo] = {}
        self._free: List[Deque[int]] = [
            deque() for _ in range(geometry.planes_total)
        ]
        self._active: List[Optional[int]] = [None] * geometry.planes_total
        self._active_gc: List[Optional[int]] = [None] * geometry.planes_total
        self._cursor = 0
        self.free_blocks = geometry.blocks_total
        self.bad_blocks = 0
        self.spare_blocks = 0

        for block_index in range(geometry.blocks_total):
            addr = geometry.block_addr_of(block_index)
            self.blocks[block_index] = BlockInfo(addr)
            self._free[geometry.plane_index(addr)].append(block_index)
        self._rebuild_ready()

    # -- per-plane allocatability cache --------------------------------------
    #
    # ``allocate_page`` round-robins over every plane; on a nearly-full
    # device most planes cannot serve an allocation, and on the profile
    # of a steady-state run the failed probes dominated the whole FTL.
    # The flags mirror ``_try_allocate_in_plane``'s success predicate
    # exactly, so the round-robin can skip dead planes (and fail in
    # O(1) when no plane qualifies) without changing which plane any
    # allocation lands on.

    def _refresh_plane(self, plane: int) -> None:
        """Recompute the readiness flags of one plane after a mutation."""
        free_len = len(self._free[plane])
        host = (self._active[plane] is not None
                or free_len > self.gc_reserve_blocks)
        if host != self._host_ready[plane]:
            self._host_ready[plane] = host
            self._host_ready_count += 1 if host else -1
        gc = self._active_gc[plane] is not None or free_len > 0
        if gc != self._gc_ready[plane]:
            self._gc_ready[plane] = gc
            self._gc_ready_count += 1 if gc else -1

    def _rebuild_ready(self) -> None:
        """Recompute every plane's readiness flags from scratch."""
        reserve = self.gc_reserve_blocks
        self._host_ready = [
            self._active[plane] is not None
            or len(self._free[plane]) > reserve
            for plane in range(self.geometry.planes_total)
        ]
        self._gc_ready = [
            self._active_gc[plane] is not None or len(self._free[plane]) > 0
            for plane in range(self.geometry.planes_total)
        ]
        self._host_ready_count = sum(self._host_ready)
        self._gc_ready_count = sum(self._gc_ready)

    # -- queries ----------------------------------------------------------

    def info(self, addr: PhysAddr) -> BlockInfo:
        """Block info for the block containing *addr*."""
        return self.blocks[self.geometry.block_index(addr)]

    @property
    def free_fraction(self) -> float:
        """Fraction of non-bad, non-spare blocks that are free."""
        usable = (self.geometry.blocks_total - self.bad_blocks
                  - self.spare_blocks)
        return self.free_blocks / usable if usable else 0.0

    def plane_free_blocks(self, plane: int) -> int:
        """Free blocks currently pooled in one plane."""
        return len(self._free[plane])

    def host_allocatable(self) -> bool:
        """Whether any plane can currently serve a host allocation."""
        return self._host_ready_count > 0

    def valid_pages_of(self, addr: PhysAddr) -> List[PhysAddr]:
        """Addresses of all currently valid pages in *addr*'s block."""
        info = self.info(addr)
        return [info.addr._replace(page=offset) for offset in sorted(info.valid)]

    # -- allocation ---------------------------------------------------------

    def allocate_page(self, for_gc: bool = False,
                      plane: Optional[int] = None) -> PhysAddr:
        """Allocate the next physical page.

        Round-robins across planes (unless *plane* pins one).  Host
        allocations skip planes whose free pool has fallen to the GC
        reserve; GC allocations may dip into the reserve.  Raises
        :class:`MappingError` when no plane can supply a page.
        """
        planes_total = self.geometry.planes_total
        if plane is not None:
            addr = self._try_allocate_in_plane(plane, for_gc)
            if addr is None:
                raise MappingError(f"no allocatable page in plane {plane}")
            return addr
        if not (self._gc_ready_count if for_gc else self._host_ready_count):
            raise MappingError(
                f"no allocatable page (for_gc={for_gc}); device full"
            )
        ready = self._gc_ready if for_gc else self._host_ready
        cursor = self._cursor
        for offset in range(planes_total):
            candidate = cursor + offset
            if candidate >= planes_total:
                candidate -= planes_total
            if not ready[candidate]:
                continue
            addr = self._try_allocate_in_plane(candidate, for_gc)
            if addr is not None:
                self._cursor = (candidate + 1) % planes_total
                return addr
        raise MappingError(
            f"no allocatable page (for_gc={for_gc}); device full"
        )

    def _try_allocate_in_plane(self, plane: int,
                               for_gc: bool) -> Optional[PhysAddr]:
        # Host and GC write into *separate* active blocks: a block GC
        # opened out of its reserve must never serve host allocations,
        # or host traffic steals the relocation headroom and every GC
        # worker ends up waiting for an erase that can no longer happen.
        slots = self._active_gc if for_gc else self._active
        active_index = slots[plane]
        if active_index is None:
            free_pool = self._free[plane]
            if not free_pool:
                return None
            if not for_gc and len(free_pool) <= self.gc_reserve_blocks:
                return None
            active_index = free_pool.popleft()
            self.free_blocks -= 1
            info = self.blocks[active_index]
            info.state = ACTIVE
            info.write_ptr = 0
            slots[plane] = active_index
        info = self.blocks[active_index]
        addr = info.addr._replace(page=info.write_ptr)
        info.write_ptr += 1
        info.pending += 1
        if info.write_ptr >= self.geometry.pages_per_block:
            info.state = FULL
            slots[plane] = None
        self._refresh_plane(plane)
        return addr

    # -- validity ---------------------------------------------------------

    def mark_valid(self, addr: PhysAddr) -> None:
        """Record that the page at *addr* now holds valid data."""
        info = self.info(addr)
        if addr.page >= info.write_ptr:
            raise MappingError(f"mark_valid of unwritten page {addr}")
        info.valid.add(addr.page)

    def commit_page(self, addr: PhysAddr, valid: bool) -> None:
        """Finish an allocated page's program: clear pending, set validity.

        Every :meth:`allocate_page` must be matched by exactly one
        ``commit_page`` once the program completes -- with
        ``valid=False`` when the data became stale in flight.
        """
        info = self.info(addr)
        if info.pending <= 0:
            raise MappingError(f"commit without pending allocation: {addr}")
        info.pending -= 1
        if valid:
            self.mark_valid(addr)

    def invalidate(self, addr: PhysAddr) -> None:
        """Record that the page at *addr* no longer holds valid data."""
        info = self.info(addr)
        info.valid.discard(addr.page)

    # -- garbage collection support ----------------------------------------------

    def pick_victim(self, plane: int,
                    max_valid_fraction: float = 1.0) -> Optional[PhysAddr]:
        """Greedy victim in *plane*: the FULL block with fewest valid pages.

        Blocks with more than ``max_valid_fraction`` of their pages valid
        are skipped (no point copying nearly-full blocks).  Returns None
        if the plane has no eligible victim.
        """
        best: Optional[BlockInfo] = None
        base = plane * self.geometry.blocks_per_plane
        limit = self.geometry.pages_per_block * max_valid_fraction
        for block_index in range(base, base + self.geometry.blocks_per_plane):
            info = self.blocks[block_index]
            if info.state != FULL or info.pending > 0:
                continue
            if info.valid_count >= self.geometry.pages_per_block:
                # Fully-valid victim: copying it frees nothing, so
                # collecting it can only burn erase cycles and reserve.
                continue
            if info.valid_count > limit:
                continue
            if best is None or info.valid_count < best.valid_count:
                best = info
                if best.valid_count == 0:
                    break
        return best.addr if best is not None else None

    def claim_for_collection(self, addr: PhysAddr) -> None:
        """Mark a FULL block as owned by a migration worker."""
        info = self.info(addr)
        if info.state != FULL:
            raise MappingError(f"cannot collect non-FULL block {addr}")
        info.state = COLLECTING

    def unclaim(self, addr: PhysAddr) -> None:
        """Return a COLLECTING block to FULL (migration aborted)."""
        info = self.info(addr)
        if info.state != COLLECTING:
            raise MappingError(f"unclaim of non-collecting block {addr}")
        info.state = FULL

    def release_block(self, addr: PhysAddr) -> None:
        """Return an erased block to its plane's free pool."""
        info = self.info(addr)
        if info.state == BAD:
            raise MappingError(f"release of bad block {addr}")
        if info.valid:
            raise MappingError(
                f"release of block with {info.valid_count} valid pages: {addr}"
            )
        info.state = FREE
        info.write_ptr = 0
        plane = self.geometry.plane_index(addr)
        self._free[plane].append(self.geometry.block_index(addr))
        self.free_blocks += 1
        self._refresh_plane(plane)

    def withdraw_spare(self, plane: int) -> Optional[PhysAddr]:
        """Withdraw one free block from *plane* as a replacement spare.

        Takes from the back of the free pool and refuses to dip into
        the GC reserve (spares never cost write liveness).  Returns the
        block address, or None when the plane cannot spare one.
        """
        free_pool = self._free[plane]
        if len(free_pool) <= self.gc_reserve_blocks + 1:
            return None
        block_index = free_pool.pop()
        info = self.blocks[block_index]
        info.state = SPARE
        self.free_blocks -= 1
        self.spare_blocks += 1
        self._refresh_plane(plane)
        return info.addr

    def mark_bad(self, addr: PhysAddr) -> None:
        """Permanently retire the block containing *addr*."""
        info = self.info(addr)
        plane = self.geometry.plane_index(addr)
        block_index = self.geometry.block_index(addr)
        if info.state == FREE:
            plane_pool = self._free[plane]
            if block_index in plane_pool:
                plane_pool.remove(block_index)
                self.free_blocks -= 1
        elif info.state == ACTIVE:
            # Never hand out pages from a retired block.
            if self._active[plane] == block_index:
                self._active[plane] = None
            if self._active_gc[plane] == block_index:
                self._active_gc[plane] = None
        info.state = BAD
        info.valid.clear()
        self.bad_blocks += 1
        self._refresh_plane(plane)

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-able checkpoint of allocator + validity state.

        Only legal at quiescence: a block with ``pending`` allocations
        has programs in flight, which cannot be serialized.  Free-pool
        deques are stored in order -- allocation rotation is part of the
        deterministic schedule a restored device must reproduce.
        """
        blocks = []
        for index in sorted(self.blocks):
            info = self.blocks[index]
            if info.pending:
                raise MappingError(
                    f"cannot snapshot block {info.addr} with "
                    f"{info.pending} pending allocation(s)"
                )
            blocks.append([index, info.state, info.write_ptr,
                           sorted(info.valid)])
        return {
            "blocks": blocks,
            "free": [list(pool) for pool in self._free],
            "active": list(self._active),
            "active_gc": list(self._active_gc),
            "cursor": self._cursor,
            "free_blocks": self.free_blocks,
            "bad_blocks": self.bad_blocks,
            "spare_blocks": self.spare_blocks,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint (same geometry)."""
        if len(state["free"]) != self.geometry.planes_total:
            raise MappingError("restored free pools do not match geometry")
        for index, block_state, write_ptr, valid in state["blocks"]:
            info = self.blocks[int(index)]
            info.state = block_state
            info.write_ptr = int(write_ptr)
            info.valid = set(int(page) for page in valid)
            info.pending = 0
        self._free = [deque(int(i) for i in pool) for pool in state["free"]]
        self._active = [None if index is None else int(index)
                        for index in state["active"]]
        self._active_gc = [None if index is None else int(index)
                           for index in state.get(
                               "active_gc",
                               [None] * self.geometry.planes_total)]
        self._cursor = int(state["cursor"])
        self.free_blocks = int(state["free_blocks"])
        self.bad_blocks = int(state["bad_blocks"])
        self.spare_blocks = int(state["spare_blocks"])
        self._rebuild_ready()

    # -- instant pre-conditioning ---------------------------------------------

    def prefill_block(self, addr: PhysAddr,
                      valid_offsets: Set[int]) -> None:
        """Instantly mark a free block FULL with the given valid pages.

        Used by experiment setup to pre-condition a "fully utilized" SSD
        (paper Sec 6.1) without simulating the fill traffic.
        """
        info = self.info(addr)
        if info.state != FREE:
            raise MappingError(f"prefill of non-free block {addr}")
        for offset in valid_offsets:
            if not 0 <= offset < self.geometry.pages_per_block:
                raise AddressError(f"prefill offset {offset} out of range")
        plane = self.geometry.plane_index(addr)
        self._free[plane].remove(self.geometry.block_index(addr))
        self.free_blocks -= 1
        info.state = FULL
        info.write_ptr = self.geometry.pages_per_block
        info.valid = set(valid_offsets)
        self._refresh_plane(plane)
