"""The flash translation layer: I/O handling, write buffering, flushing.

The FTL receives host requests, translates addresses, services DRAM
hits, stages write-back data in the DRAM write buffer, and drives the
background flushers that materialize buffered pages into flash.  All
actual data movement is delegated to the architecture datapath so the
same FTL runs unmodified on every configuration -- one of the paper's
design principles ("minimize the impact on FTL").
"""

from __future__ import annotations

import random
from typing import Dict, Generator, List

from ..controller import Breakdown, HostInterface
from ..errors import ConfigError, MappingError
from ..flash import FlashGeometry
from ..sim import LatencyStats, Simulator, TimeBins
from .blocks import BlockManager
from .gc import GarbageCollector
from .mapping import PageMappingTable
from .request import READ, TRIM, WRITE, IoRequest

__all__ = ["Ftl", "WRITE_POLICIES"]

WRITE_POLICIES = ("writeback", "writethrough")


class Ftl:
    """Firmware layer tying host, mapping, buffers, GC, and datapath."""

    def __init__(self, sim: Simulator, geometry: FlashGeometry,
                 mapping: PageMappingTable, blocks: BlockManager,
                 datapath, host: HostInterface, gc: GarbageCollector,
                 write_policy: str = "writeback",
                 flush_workers: int = 32,
                 bin_width: float = 1000.0,
                 breakdown_samples: int = 2048):
        if write_policy not in WRITE_POLICIES:
            raise ConfigError(f"unknown write policy {write_policy!r}")
        if flush_workers < 1:
            raise ConfigError(f"flush_workers must be >= 1: {flush_workers}")
        self.sim = sim
        self.geometry = geometry
        self.mapping = mapping
        self.blocks = blocks
        self.datapath = datapath
        self.host = host
        self.gc = gc
        self.write_policy = write_policy
        self.flush_workers = flush_workers
        self.breakdown_samples = breakdown_samples

        #: LPN -> admission stamp of the newest write staged for it.
        self._dirty: Dict[int, int] = {}
        self._flush_queue = sim.store(name="flush_queue")
        self._flushers_started = False
        #: Monotone per-request admission counter.  Assigned the moment
        #: host.submit() returns, i.e. in queue-grant order, which is a
        #: pure function of the op sequence (FIFO slots, constant
        #: command latency) -- NOT of datapath timing.  Comparing
        #: stamps therefore gives every write/trim race on an LPN an
        #: architecture-invariant winner.
        self._stamp = 0
        #: LPN -> admission stamp of the latest *processed* trim.
        self._trim_stamp: Dict[int, int] = {}

        self.io_latency = LatencyStats("io")
        self.read_latency = LatencyStats("read")
        self.write_latency = LatencyStats("write")
        self.completed_bytes = TimeBins(bin_width)
        self.requests_completed = 0
        self.trims_processed = 0
        self.io_breakdowns: List[Breakdown] = []
        self.flush_stalls = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Launch background flusher processes (write-back mode only)."""
        if self._flushers_started or self.write_policy != "writeback":
            return
        self._flushers_started = True
        for worker in range(self.flush_workers):
            self.sim.process(self._flusher(), name=f"flusher{worker}")

    # -- host request handling ---------------------------------------------------

    def submit(self, request: IoRequest):
        """Start processing a request; returns its process handle."""
        return self.sim.process(self._handle(request), name="io")

    def _handle(self, request: IoRequest) -> Generator:
        request.issue_time = self.sim.now
        # host.submit() is itself exception-safe: an interrupt while
        # waiting for (or settling into) the queue slot rolls the
        # admission back before the exception reaches this frame.
        yield from self.host.submit()
        self._stamp += 1
        stamp = self._stamp
        breakdown = Breakdown()
        try:
            if request.op == WRITE:
                yield from self._handle_write(request, breakdown, stamp)
            elif request.op == TRIM:
                yield from self._handle_trim(request, breakdown, stamp)
            else:
                yield from self._handle_read(request, breakdown)
            request.complete_time = self.sim.now
        finally:
            self.host.complete()
        self._record(request, breakdown)
        return request

    def _handle_write(self, request: IoRequest, breakdown: Breakdown,
                      stamp: int = 0) -> Generator:
        priority = request.priority
        t0 = self.sim.now
        yield from self.host.transfer(request.bytes(self.geometry.page_size),
                                      priority=priority)
        breakdown.add("host", self.sim.now - t0)
        if request.dram_hit:
            yield from self.datapath.io_dram_rw(
                request.bytes(self.geometry.page_size), breakdown,
                priority=priority,
            )
            return
        if self.write_policy == "writeback":
            for offset in range(request.n_pages):
                yield from self._buffer_write(request.lpn + offset, breakdown,
                                              priority, stamp)
        else:
            procs = [
                self.sim.process(
                    self._write_through_page(request.lpn + offset, breakdown,
                                             priority, stamp)
                )
                for offset in range(request.n_pages)
            ]
            yield self.sim.all_of(procs)

    def _handle_read(self, request: IoRequest,
                     breakdown: Breakdown) -> Generator:
        priority = request.priority
        if request.dram_hit:
            yield from self.datapath.io_dram_rw(
                request.bytes(self.geometry.page_size), breakdown, "read",
                priority=priority,
            )
        else:
            procs = [
                self.sim.process(
                    self._read_page(request.lpn + offset, breakdown, priority)
                )
                for offset in range(request.n_pages)
            ]
            yield self.sim.all_of(procs)
        t0 = self.sim.now
        yield from self.host.transfer(request.bytes(self.geometry.page_size),
                                      priority=priority)
        breakdown.add("host", self.sim.now - t0)

    def _handle_trim(self, request: IoRequest, breakdown: Breakdown,
                     stamp: int = 0) -> Generator:
        """Deallocate an LPN range: mapping-table work only, no data.

        Trimmed pages become GC-reclaimable immediately, so a trim-aware
        host reduces write amplification for free.

        Ordering: this loop runs at admission + command latency, before
        any later-admitted write can stage or bind (those pay at least
        a host transfer on top of the same command latency), so the
        unconditional dirty-pop and unbind can only ever discard data
        from *earlier*-admitted writes -- exactly TRIM semantics.  The
        recorded ``_trim_stamp`` lets in-flight flushes and
        write-through programs of those earlier writes drop their bind
        instead of resurrecting the trimmed LPN.
        """
        for offset in range(request.n_pages):
            lpn = request.lpn + offset
            self._dirty.pop(lpn, None)
            self._trim_stamp[lpn] = stamp
            ppn = self.mapping.unbind(lpn)
            if ppn is not None:
                self.blocks.invalidate(self.geometry.addr_of(ppn))
        # Command processing cost only (mapping update in SRAM/DRAM).
        yield from self.datapath.io_dram_rw(64 * request.n_pages,
                                            breakdown, "write",
                                            priority=request.priority)
        self.trims_processed += 1

    # -- per-page paths --------------------------------------------------------

    def _buffer_write(self, lpn: int, breakdown: Breakdown,
                      priority: int = 0, stamp: int = 0) -> Generator:
        """Write-back: stage one page in the DRAM buffer."""
        coalesced = lpn in self._dirty
        grant = None
        if not coalesced:
            # May backpressure: the buffer is full until a flush completes.
            grant = self.datapath.dram.reserve_buffer_page()
        staged = False
        try:
            if grant is not None:
                yield grant
            yield from self.datapath.io_dram_rw(self.geometry.page_size,
                                                breakdown, priority=priority)
            if self._trim_stamp.get(lpn, 0) > stamp:
                # A later-admitted TRIM already processed while this
                # write was transferring: the data is dead on arrival.
                # Don't stage it (the finally below returns the slot).
                return
            if not coalesced:
                self._flush_queue.put(lpn)
                # max(): under differing transfer lengths a newer write
                # can finish staging before an older one -- never
                # rewind the stamp the flusher races against trims.
                self._dirty[lpn] = max(self._dirty.get(lpn, 0), stamp)
                staged = True
            elif lpn in self._dirty:
                self._dirty[lpn] = max(self._dirty[lpn], stamp)
            # else: the flush this write coalesced into already
            # departed -- the update is lost, but nothing was staged
            # here so there is nothing to queue or release.
        finally:
            # On an interrupt before the page is staged, the reserved
            # buffer slot would otherwise never be flushed-and-released.
            if grant is not None and not staged:
                self.datapath.dram.write_buffer.cancel(grant)

    def _write_through_page(self, lpn: int, breakdown: Breakdown,
                            priority: int = 0, stamp: int = 0) -> Generator:
        """Write-through: the page completes only after flash program."""
        addr = yield from self._allocate_with_gc()
        yield from self.datapath.io_program(addr, breakdown,
                                            priority=priority)
        if self._trim_stamp.get(lpn, 0) > stamp:
            # A later-admitted TRIM processed while the program was in
            # flight: binding now would resurrect the trimmed LPN.
            self.blocks.commit_page(addr, valid=False)
        else:
            self._bind(lpn, addr)
        self.gc.maybe_trigger()

    def _read_page(self, lpn: int, breakdown: Breakdown,
                   priority: int = 0) -> Generator:
        if lpn in self._dirty:
            yield from self.datapath.io_dram_rw(self.geometry.page_size,
                                                breakdown, "read",
                                                priority=priority)
            return
        ppn = self.mapping.lookup(lpn)
        if ppn is None:
            # Unwritten LPN: serve zeroes from the controller (DRAM path).
            yield from self.datapath.io_dram_rw(self.geometry.page_size,
                                                breakdown, "read",
                                                priority=priority)
            return
        addr = self.geometry.addr_of(ppn)
        yield from self.datapath.io_read_flash(addr, breakdown,
                                               priority=priority)

    # -- flushing -----------------------------------------------------------------

    def _flusher(self) -> Generator:
        while True:
            lpn = yield self._flush_queue.get()
            if lpn not in self._dirty:
                # Trimmed (or double-staged) while queued: the staged
                # page is a tombstone.  Give its buffer slot back
                # without programming anything -- every queue entry
                # carries exactly one reservation.
                self.datapath.dram.release_buffer_page()
                continue
            stamp = self._dirty.pop(lpn)
            addr = yield from self._allocate_with_gc()
            breakdown = Breakdown()
            try:
                yield from self.datapath.io_flush_write(addr, breakdown)
            finally:
                # Even if this flusher is killed mid-write, the buffer
                # slot must come back -- host writes backpressure on it.
                self.datapath.dram.release_buffer_page()
            if self._trim_stamp.get(lpn, 0) > stamp:
                # Trimmed while the flush program was in flight: the
                # page lands physically but must not be mapped.
                self.blocks.commit_page(addr, valid=False)
            else:
                self._bind(lpn, addr)
            self.gc.maybe_trigger()

    def _allocate_with_gc(self) -> Generator:
        """Allocate a host page, triggering and awaiting GC if starved."""
        while True:
            try:
                addr = self.blocks.allocate_page(for_gc=False)
            except MappingError:
                self.flush_stalls += 1
                self.gc.maybe_trigger(force=True)
                yield self.sim.timeout(self.gc.preempt_poll_us)
                continue
            return addr

    def _bind(self, lpn: int, addr) -> None:
        ppn = self.geometry.ppn_of(addr)
        old_ppn = self.mapping.bind(lpn, ppn)
        self.blocks.commit_page(addr, valid=True)
        if old_ppn is not None:
            self.blocks.invalidate(self.geometry.addr_of(old_ppn))

    # -- bookkeeping ---------------------------------------------------------------

    def _record(self, request: IoRequest, breakdown: Breakdown) -> None:
        latency = request.latency
        self.io_latency.add(latency)
        if request.op == READ:
            self.read_latency.add(latency)
        elif request.op == WRITE:
            self.write_latency.add(latency)
        if request.op != TRIM:   # trims move no data
            self.completed_bytes.add(
                self.sim.now, request.bytes(self.geometry.page_size)
            )
        self.requests_completed += 1
        if len(self.io_breakdowns) < self.breakdown_samples:
            self.io_breakdowns.append(breakdown)

    @property
    def dirty_pages(self) -> int:
        """Pages currently staged in the write buffer."""
        return len(self._dirty)

    def mean_io_breakdown(self) -> Breakdown:
        """Component-wise mean of sampled per-request breakdowns."""
        return Breakdown.mean(self.io_breakdowns)

    def audit(self) -> List[str]:
        """Cross-check the translation invariants; returns violations.

        Verifies the LPN<->PPN mirror (both directions agree) and that
        the number of mapped LPNs equals the number of valid flash
        pages across all blocks.  Meant for quiescent points -- pages
        staged in the write buffer are not yet bound, so the counts
        only line up once the flushers have drained.  An empty list
        means the tables are consistent; the fuzzer's mapping oracle
        treats any entry as a violation.
        """
        problems: List[str] = []
        try:
            self.mapping.check_consistency()
        except MappingError as exc:
            problems.append(f"mapping mirror broken: {exc}")
        mapped = len(self.mapping)
        valid = sum(len(info.valid) for info in self.blocks.blocks.values())
        if mapped != valid:
            problems.append(
                f"mapped LPNs ({mapped}) != valid flash pages ({valid})")
        return problems

    # -- checkpointing ---------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-able checkpoint of mapping, blocks, and all I/O meters.

        Only legal at a quiescent point: the write buffer must be
        drained (no dirty pages, empty flush queue) so no in-flight
        request state exists outside these tables.
        """
        if self._dirty or len(self._flush_queue):
            raise ConfigError(
                f"cannot snapshot FTL with {len(self._dirty)} dirty "
                f"page(s) and {len(self._flush_queue)} queued flush(es)")
        return {
            "mapping": self.mapping.state_dict(),
            "blocks": self.blocks.state_dict(),
            "io_latency": self.io_latency.state_dict(),
            "read_latency": self.read_latency.state_dict(),
            "write_latency": self.write_latency.state_dict(),
            "completed_bytes": self.completed_bytes.state_dict(),
            "requests_completed": self.requests_completed,
            "trims_processed": self.trims_processed,
            "flush_stalls": self.flush_stalls,
            "io_breakdowns": [b.parts for b in self.io_breakdowns],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint (same geometry)."""
        self.mapping.load_state(state["mapping"])
        self.blocks.load_state(state["blocks"])
        self.io_latency.load_state(state["io_latency"])
        self.read_latency.load_state(state["read_latency"])
        self.write_latency.load_state(state["write_latency"])
        self.completed_bytes.load_state(state["completed_bytes"])
        self.requests_completed = int(state["requests_completed"])
        self.trims_processed = int(state["trims_processed"])
        self.flush_stalls = int(state["flush_stalls"])
        self.io_breakdowns = [Breakdown.from_parts(parts)
                              for parts in state["io_breakdowns"]]

    # -- pre-conditioning -------------------------------------------------------------

    def prefill(self, fill_fraction: float = 0.9,
                valid_ratio: float = 0.6, seed: int = 1) -> int:
        """Instantly pre-condition the device (paper Sec 6.1).

        Marks ``fill_fraction`` of all blocks FULL; each filled block
        holds ``valid_ratio`` of its pages as valid mapped LPNs and the
        rest invalid (pre-invalidated so GC has work).  Returns the
        number of LPNs mapped.  Must run before any simulated traffic.

        The GC reserve is always left free: a fill fraction that rounds
        up to every block in a plane would otherwise pre-condition the
        device into a state garbage collection can never escape (no
        scratch block to relocate valid pages into).
        """
        if not 0.0 < fill_fraction <= 1.0:
            raise ConfigError(f"fill_fraction out of (0,1]: {fill_fraction}")
        if not 0.0 <= valid_ratio <= 1.0:
            raise ConfigError(f"valid_ratio out of [0,1]: {valid_ratio}")
        rng = random.Random(seed)
        geometry = self.geometry
        pages_per_block = geometry.pages_per_block
        fill_per_plane = int(round(geometry.blocks_per_plane * fill_fraction))
        fill_cap = geometry.blocks_per_plane - self.blocks.gc_reserve_blocks
        fill_per_plane = min(fill_per_plane, max(fill_cap, 0))
        lpn = 0
        backend = getattr(self.datapath, "backend", None)
        # Fill plane-by-plane so the surviving free blocks are spread
        # evenly across channels -- a linear fill would leave every free
        # block on the last channel and hotspot all future allocation.
        for plane in range(geometry.planes_total):
            base = plane * geometry.blocks_per_plane
            for block_offset in range(fill_per_plane):
                addr = geometry.block_addr_of(base + block_offset)
                if self.blocks.info(addr).state != "free":
                    continue
                n_valid = int(round(pages_per_block * valid_ratio))
                offsets = rng.sample(range(pages_per_block), n_valid)
                self.blocks.prefill_block(addr, set(offsets))
                for offset in offsets:
                    page_addr = addr._replace(page=offset)
                    self.mapping.bind(lpn, geometry.ppn_of(page_addr))
                    lpn += 1
                if backend is not None:
                    # The datapath may remap logical block positions
                    # (SRT); the *physical* block must read as written.
                    backend.mark_block_programmed(self.datapath.remap(addr))
        return lpn
