"""Page-level address translation (LPN -> PPN) with reverse lookup.

The mapping table is the FTL's core state: logical page numbers map to
physical page numbers; the reverse map lets garbage collection find the
LPN of a valid physical page it is about to move.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import MappingError

__all__ = ["PageMappingTable"]


class PageMappingTable:
    """Bidirectional LPN <-> PPN map.

    Invariant (checked by tests): the forward and reverse maps are exact
    mirrors -- ``reverse[forward[lpn]] == lpn`` for every mapped LPN.
    """

    def __init__(self) -> None:
        self._forward: Dict[int, int] = {}
        self._reverse: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._forward)

    def lookup(self, lpn: int) -> Optional[int]:
        """PPN currently holding *lpn*, or None if unmapped."""
        return self._forward.get(lpn)

    def reverse_lookup(self, ppn: int) -> Optional[int]:
        """LPN stored at *ppn*, or None if the page holds no valid data."""
        return self._reverse.get(ppn)

    def bind(self, lpn: int, ppn: int) -> Optional[int]:
        """Map *lpn* to *ppn*; returns the invalidated previous PPN.

        Raises :class:`MappingError` if *ppn* already holds another LPN
        (physical pages are write-once until erased).
        """
        existing_lpn = self._reverse.get(ppn)
        if existing_lpn is not None and existing_lpn != lpn:
            raise MappingError(
                f"ppn {ppn} already holds lpn {existing_lpn}"
            )
        old_ppn = self._forward.get(lpn)
        if old_ppn is not None:
            del self._reverse[old_ppn]
        self._forward[lpn] = ppn
        self._reverse[ppn] = lpn
        return old_ppn

    def unbind(self, lpn: int) -> Optional[int]:
        """Drop *lpn*'s mapping (trim); returns the freed PPN if any."""
        ppn = self._forward.pop(lpn, None)
        if ppn is not None:
            del self._reverse[ppn]
        return ppn

    def move(self, old_ppn: int, new_ppn: int) -> int:
        """Rebind the LPN at *old_ppn* to *new_ppn* (GC page move).

        Returns the LPN moved.  Raises :class:`MappingError` if
        *old_ppn* holds no valid page or *new_ppn* is occupied.
        """
        lpn = self._reverse.get(old_ppn)
        if lpn is None:
            raise MappingError(f"move from invalid ppn {old_ppn}")
        if new_ppn in self._reverse:
            raise MappingError(f"move to occupied ppn {new_ppn}")
        del self._reverse[old_ppn]
        self._forward[lpn] = new_ppn
        self._reverse[new_ppn] = lpn
        return lpn

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-able checkpoint of the forward map (reverse is derived).

        Emitted as sorted ``[lpn, ppn]`` pairs because JSON stringifies
        integer dict keys.
        """
        return {
            "forward": [[lpn, ppn]
                        for lpn, ppn in sorted(self._forward.items())],
        }

    def load_state(self, state: dict) -> None:
        """Rebuild both maps from a :meth:`state_dict` checkpoint."""
        self._forward = {int(lpn): int(ppn)
                         for lpn, ppn in state["forward"]}
        self._reverse = {ppn: lpn for lpn, ppn in self._forward.items()}
        if len(self._reverse) != len(self._forward):
            raise MappingError("restored mapping is not injective")

    def check_consistency(self) -> None:
        """Verify the mirror invariant (test/debug helper)."""
        if len(self._forward) != len(self._reverse):
            raise MappingError(
                f"map sizes differ: {len(self._forward)} forward vs "
                f"{len(self._reverse)} reverse"
            )
        for lpn, ppn in self._forward.items():
            if self._reverse.get(ppn) != lpn:
                raise MappingError(f"mirror broken at lpn {lpn} / ppn {ppn}")
