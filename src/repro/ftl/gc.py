"""Garbage-collection engine and the three policies the paper compares.

* ``pagc`` -- parallel GC (the paper's Baseline, after Shahidi et al.):
  when triggered, every plane collects concurrently until the free pool
  recovers.
* ``preemptive`` -- semi-preemptive GC (Lee et al.): page moves yield to
  pending host I/O unless the free pool has fallen below a hard floor.
* ``tinytail`` -- Tiny-Tail-style partial GC (Yan et al.): only a small
  number of channels collect at a time, in bounded bursts, so that most
  channels remain free to serve I/O.

The engine is datapath-agnostic: page movement is delegated to the
architecture's datapath object (baseline bounce-through-DRAM versus
decoupled global copyback).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..controller import Breakdown
from ..errors import ConfigError, MappingError
from ..flash import PhysAddr
from ..sim import Simulator
from .blocks import BlockManager
from .mapping import PageMappingTable

__all__ = ["GarbageCollector", "GcStats", "GC_POLICIES"]

GC_POLICIES = ("pagc", "preemptive", "tinytail")


class GcStats:
    """Aggregate garbage-collection measurements."""

    def __init__(self) -> None:
        self.pages_moved = 0
        self.pages_dropped = 0      # invalidated mid-flight
        self.alloc_stalls = 0       # destination allocation retries
        self.blocks_erased = 0
        self.blocks_retired = 0     # worn out, no spare left -> marked bad
        self.blocks_remapped = 0    # worn out, remapped onto a spare
        self.episodes = 0
        self.busy_time = 0.0
        self.move_breakdowns: List[Breakdown] = []
        #: One dict per finished episode: start, end, pages, blocks.
        self.episode_log: List[dict] = []

    @property
    def throughput_pages_per_us(self) -> float:
        """Pages moved per microsecond of active GC time."""
        return self.pages_moved / self.busy_time if self.busy_time else 0.0

    def mean_move_breakdown(self) -> Breakdown:
        """Component-wise mean of sampled page-move breakdowns."""
        return Breakdown.mean(self.move_breakdowns)

    # -- checkpointing ------------------------------------------------------

    _COUNTERS = (
        "pages_moved", "pages_dropped", "alloc_stalls", "blocks_erased",
        "blocks_retired", "blocks_remapped", "episodes",
    )

    def state_dict(self) -> dict:
        """JSON-able checkpoint of all GC measurements."""
        return {
            "counters": {name: getattr(self, name)
                         for name in self._COUNTERS},
            "busy_time": self.busy_time,
            "move_breakdowns": [b.parts for b in self.move_breakdowns],
            "episode_log": [dict(entry) for entry in self.episode_log],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint."""
        for name in self._COUNTERS:
            setattr(self, name, int(state["counters"][name]))
        self.busy_time = float(state["busy_time"])
        self.move_breakdowns = [Breakdown.from_parts(parts)
                                for parts in state["move_breakdowns"]]
        self.episode_log = [dict(entry) for entry in state["episode_log"]]


class GarbageCollector:
    """Policy-driven GC over a :class:`BlockManager` and a datapath."""

    def __init__(self, sim: Simulator, mapping: PageMappingTable,
                 block_manager: BlockManager, datapath,
                 host=None, policy: str = "pagc",
                 trigger_free_fraction: float = 0.10,
                 stop_free_fraction: float = 0.175,
                 hard_floor_fraction: float = 0.03,
                 tinytail_channels: int = 1,
                 partial_pages: int = 8,
                 preempt_poll_us: float = 10.0,
                 sample_breakdowns: int = 512,
                 pipeline_depth: int = 4):
        if policy not in GC_POLICIES:
            raise ConfigError(f"unknown GC policy {policy!r}")
        if not 0.0 < trigger_free_fraction < stop_free_fraction <= 1.0:
            raise ConfigError(
                "need 0 < trigger < stop <= 1, got "
                f"{trigger_free_fraction}/{stop_free_fraction}"
            )
        if tinytail_channels < 1 or partial_pages < 1:
            raise ConfigError("tinytail parameters must be >= 1")
        if pipeline_depth < 1:
            raise ConfigError(f"pipeline_depth must be >= 1: {pipeline_depth}")
        self.sim = sim
        self.mapping = mapping
        self.blocks = block_manager
        self.datapath = datapath
        self.host = host
        self.policy = policy
        self.trigger_free_fraction = trigger_free_fraction
        self.stop_free_fraction = stop_free_fraction
        self.hard_floor_fraction = hard_floor_fraction
        self.partial_pages = partial_pages
        self.preempt_poll_us = preempt_poll_us
        self.sample_breakdowns = sample_breakdowns
        self.pipeline_depth = pipeline_depth
        self.stats = GcStats()
        self.active = False
        self._episode_start: Optional[float] = None
        self._tt_tokens = sim.resource(capacity=tinytail_channels,
                                       name="tinytail_channels")

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint GC stats (no episode may be running)."""
        if self.active:
            raise ConfigError("cannot snapshot during an active GC episode")
        return {"stats": self.stats.state_dict()}

    def load_state(self, state: dict) -> None:
        """Restore stats captured by :meth:`state_dict`."""
        self.stats.load_state(state["stats"])

    # -- triggering ----------------------------------------------------------

    def needs_gc(self) -> bool:
        """Whether the free pool is below the trigger threshold."""
        return self.blocks.free_fraction < self.trigger_free_fraction

    def maybe_trigger(self, force: bool = False) -> bool:
        """Start a GC episode if needed and not already running.

        ``force=True`` starts an episode regardless of the threshold --
        the FTL uses it when a host allocation starves, which can happen
        with the free fraction sitting exactly on the trigger boundary.
        """
        if self.active or (not force and not self.needs_gc()):
            return False
        self.active = True
        self.sim.process(self._episode(), name="gc_episode")
        return True

    # -- episode ---------------------------------------------------------------

    def current_busy_time(self) -> float:
        """GC busy time including any still-running episode."""
        busy = self.stats.busy_time
        if self.active and self._episode_start is not None:
            busy += self.sim.now - self._episode_start
        return busy

    def _episode(self) -> Generator:
        start = self.sim.now
        self._episode_start = start
        self.stats.episodes += 1
        pages0 = self.stats.pages_moved
        blocks0 = self.stats.blocks_erased
        geometry = self.blocks.geometry
        if self.policy == "tinytail":
            workers = [
                self.sim.process(self._channel_worker(channel))
                for channel in range(geometry.channels)
            ]
        else:
            workers = [
                self.sim.process(self._plane_worker(plane))
                for plane in range(geometry.planes_total)
            ]
        yield self.sim.all_of(workers)
        end = self.sim.now
        self.stats.busy_time += end - start
        self.stats.episode_log.append({
            "start": start,
            "end": end,
            "pages": self.stats.pages_moved - pages0,
            "blocks": self.stats.blocks_erased - blocks0,
        })
        self._episode_start = None
        self.active = False

    def _should_collect(self) -> bool:
        """Keep collecting below the stop threshold -- and also whenever
        the host cannot allocate at all (pools stuck at the GC reserve),
        which can happen with the device-wide fraction looking healthy."""
        if self.blocks.free_fraction < self.stop_free_fraction:
            return True
        return not self.blocks.host_allocatable()

    def _plane_worker(self, plane: int) -> Generator:
        while self._should_collect():
            victim = self.blocks.pick_victim(plane)
            if victim is None:
                return
            yield from self._collect_block(victim)

    def _channel_worker(self, channel: int) -> Generator:
        """TinyTail: all planes of one channel, gated by the channel tokens."""
        geometry = self.blocks.geometry
        planes = [
            geometry.plane_index(PhysAddr(channel, way, die, plane, 0, 0))
            for way in range(geometry.ways)
            for die in range(geometry.dies)
            for plane in range(geometry.planes)
        ]
        while self._should_collect():
            progressed = False
            for plane in planes:
                if not self._should_collect():
                    return
                victim = self.blocks.pick_victim(plane)
                if victim is None:
                    continue
                progressed = True
                yield from self._collect_block(victim, gated=True)
            if not progressed:
                return

    # -- block collection ---------------------------------------------------------

    def _collect_block(self, victim: PhysAddr, gated: bool = False) -> Generator:
        """Move the victim's valid pages, erase it, return it to the pool.

        Page moves are issued ``pipeline_depth`` at a time (mirroring
        PaGC's plane-parallel bursts); the TinyTail policy instead holds
        a channel token for at most ``partial_pages`` moves per burst.
        """
        self.blocks.claim_for_collection(victim)
        pages = self.blocks.valid_pages_of(victim)
        burst = (self.partial_pages if gated
                 else max(self.pipeline_depth, 1))
        for start in range(0, len(pages), burst):
            chunk = pages[start:start + burst]
            if self.policy == "preemptive":
                yield from self._wait_for_io_quiet()
            grant = (self._tt_tokens.request(owner="gc-tinytail")
                     if gated else None)
            try:
                if grant is not None:
                    yield grant
                moves = [self.sim.process(self._move_page(src))
                         for src in chunk]
                yield self.sim.all_of(moves)
            finally:
                if grant is not None:
                    self._tt_tokens.cancel(grant)

        grant = (self._tt_tokens.request(owner="gc-tinytail-erase")
                 if gated else None)
        try:
            if grant is not None:
                yield grant
            yield from self.datapath.gc_erase(victim)
        finally:
            if grant is not None:
                self._tt_tokens.cancel(grant)
        # An erase is the point where wear-out shows: the reliability
        # layer may remap the worn block onto a spare (SRT) or retire it
        # outright, in which case it must not rejoin the free pool.
        reliability = getattr(self.datapath, "reliability", None)
        verdict = "ok"
        if reliability is not None:
            verdict = reliability.after_erase(victim)
        if verdict == "retired":
            self.stats.blocks_retired += 1
        else:
            if verdict == "remapped":
                self.stats.blocks_remapped += 1
            self.blocks.release_block(victim)
        self.stats.blocks_erased += 1

    def _move_page(self, src: PhysAddr) -> Generator:
        geometry = self.blocks.geometry
        src_ppn = geometry.ppn_of(src)
        if self.mapping.reverse_lookup(src_ppn) is None:
            # Host overwrote this LPN since the victim scan; nothing to move.
            self.blocks.invalidate(src)
            self.stats.pages_dropped += 1
            return
        dst = None
        # Starvation bound: with host/GC write streams separated and
        # fully-valid victims skipped, some worker always finishes its
        # block and erases; if no erase lands within this many polls the
        # allocator invariant is broken and silence would be a livelock.
        polls_left = 10_000
        while dst is None:
            try:
                dst = self.blocks.allocate_page(for_gc=True)
            except MappingError:
                # Transiently out of destinations: wait for an erase from
                # another worker to replenish the pool, then retry.
                self.stats.alloc_stalls += 1
                if polls_left <= 0:
                    raise MappingError(
                        f"gc destination starvation: no erase completed "
                        f"in {10_000 * self.preempt_poll_us:.0f}us while "
                        f"relocating {src}"
                    )
                polls_left -= 1
                yield self.sim.timeout(self.preempt_poll_us)
                if self.mapping.reverse_lookup(src_ppn) is None:
                    self.blocks.invalidate(src)
                    self.stats.pages_dropped += 1
                    return
        breakdown = yield from self.datapath.gc_move(src, dst)
        dst_ppn = geometry.ppn_of(dst)
        if self.mapping.reverse_lookup(src_ppn) is not None:
            self.mapping.move(src_ppn, dst_ppn)
            self.blocks.commit_page(dst, valid=True)
            self.blocks.invalidate(src)
            self.stats.pages_moved += 1
        else:
            # Invalidated while the copy was in flight: the copied page
            # is dead on arrival and will be reclaimed by a later GC.
            self.blocks.commit_page(dst, valid=False)
            self.blocks.invalidate(src)
            self.stats.pages_dropped += 1
        if len(self.stats.move_breakdowns) < self.sample_breakdowns:
            self.stats.move_breakdowns.append(breakdown)

    def _wait_for_io_quiet(self) -> Generator:
        """Preemptive policy: stall while host I/O is pending, unless the
        free pool has hit the hard floor."""
        if self.host is None:
            return
        while (self.host.outstanding > 0
               and self.blocks.free_fraction > self.hard_floor_fraction):
            yield self.sim.timeout(self.preempt_poll_us)
