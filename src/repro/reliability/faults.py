"""Transient channel/die fault injection with retry/timeout/backoff.

Flash controllers roll a seeded Bernoulli per bus transaction (channel
faults: CRC failures on the ONFI bus) and per array read (die faults:
status-register failure).  A detected fault costs a detection timeout,
then an exponentially backed-off retry, up to ``max_retries`` attempts;
beyond that the controller gives up on retrying and proceeds (counted,
so sweeps can report exhaustion rates).

All draws come from one ``random.Random`` stream consumed in event
order on the single-threaded DES loop -- deterministic under the seed.
"""

from __future__ import annotations

import random
from typing import Generator

from ..errors import ConfigError
from ..sim import Simulator

__all__ = ["FaultInjector"]


class FaultInjector:
    """Seeded transient-fault source shared by the flash controllers."""

    def __init__(self, sim: Simulator, channel_fault_rate: float = 0.0,
                 die_fault_rate: float = 0.0, timeout_us: float = 5.0,
                 backoff: float = 2.0, max_retries: int = 3,
                 seed: int = 1):
        for rate in (channel_fault_rate, die_fault_rate):
            if not 0.0 <= rate < 1.0:
                raise ConfigError(f"fault rate out of [0,1): {rate}")
        if timeout_us < 0:
            raise ConfigError(f"negative fault timeout: {timeout_us}")
        if backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1: {backoff}")
        if max_retries < 0:
            raise ConfigError(f"negative max_retries: {max_retries}")
        self.sim = sim
        self.channel_fault_rate = channel_fault_rate
        self.die_fault_rate = die_fault_rate
        self.timeout_us = timeout_us
        self.backoff = backoff
        self.max_retries = max_retries
        self._rng = random.Random(seed)

        self.channel_faults = 0
        self.die_faults = 0
        self.retries = 0
        self.exhausted = 0
        self.retry_delay_total = 0.0

    @property
    def enabled(self) -> bool:
        """Whether any fault class has a non-zero rate."""
        return self.channel_fault_rate > 0.0 or self.die_fault_rate > 0.0

    def channel_fault(self) -> bool:
        """Roll one bus transaction; True when it failed."""
        if self.channel_fault_rate <= 0.0:
            return False
        hit = self._rng.random() < self.channel_fault_rate
        if hit:
            self.channel_faults += 1
        return hit

    def die_fault(self) -> bool:
        """Roll one array operation; True when it failed."""
        if self.die_fault_rate <= 0.0:
            return False
        hit = self._rng.random() < self.die_fault_rate
        if hit:
            self.die_faults += 1
        return hit

    def backoff_wait(self, attempt: int) -> Generator:
        """Generator: pay detection timeout + backoff before retry *attempt*.

        Returns True to retry, False once retries are exhausted (the
        caller proceeds and the exhaustion is counted).
        """
        if attempt > self.max_retries:
            self.exhausted += 1
            return False
        delay = self.timeout_us * (self.backoff ** (attempt - 1))
        self.retries += 1
        self.retry_delay_total += delay
        if delay > 0:
            yield self.sim.timeout(delay)
        return True

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-able checkpoint: fault counters + Bernoulli stream."""
        from ..sim import rng_state_dict

        return {"rng": rng_state_dict(self._rng),
                "channel_faults": self.channel_faults,
                "die_faults": self.die_faults,
                "retries": self.retries,
                "exhausted": self.exhausted,
                "retry_delay_total": self.retry_delay_total}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint."""
        from ..sim import rng_load_state

        rng_load_state(self._rng, state["rng"])
        self.channel_faults = int(state["channel_faults"])
        self.die_faults = int(state["die_faults"])
        self.retries = int(state["retries"])
        self.exhausted = int(state["exhausted"])
        self.retry_delay_total = float(state["retry_delay_total"])
