"""Bad-block retirement feeding the superblock SRT/RBT remap layer.

Each channel owns a :class:`~repro.superblock.RecycleBlockTable` of
spare physical blocks (withdrawn from the FTL's free pools at build
time) and a :class:`~repro.superblock.SuperblockRemapTable` mapping a
worn-out logical block position onto its replacement spare.  The remap
is applied inside the datapath's address-resolution hook, so the FTL
keeps addressing the logical position -- exactly the paper's Sec 5
hardware-table design, reused at single-block granularity.

When a block wears out and its channel has no spare left (or the SRT is
full), the block is retired for good via
:meth:`~repro.ftl.blocks.BlockManager.mark_bad`.
"""

from __future__ import annotations

from typing import List, Optional

from ..flash import FlashGeometry, PhysAddr
from ..superblock import RecycleBlockTable, SuperblockRemapTable

__all__ = ["BadBlockManager"]


class BadBlockManager:
    """Per-channel spare pools and wear-out remap tables."""

    def __init__(self, geometry: FlashGeometry, blocks,
                 spares_per_channel: int = 2,
                 srt_capacity: Optional[int] = 64):
        self.geometry = geometry
        self.blocks = blocks
        self.rbt: List[RecycleBlockTable] = [
            RecycleBlockTable(c) for c in range(geometry.channels)
        ]
        self.srt: List[SuperblockRemapTable] = [
            SuperblockRemapTable(c, srt_capacity)
            for c in range(geometry.channels)
        ]
        self.remapped_blocks = 0
        self.retired_blocks = 0
        self.spares_provisioned = 0
        self._withdraw_spares(spares_per_channel)

    # -- spare provisioning -------------------------------------------------

    def _channel_planes(self, channel: int) -> List[int]:
        geometry = self.geometry
        return [
            geometry.plane_index(PhysAddr(channel, way, die, plane, 0, 0))
            for way in range(geometry.ways)
            for die in range(geometry.dies)
            for plane in range(geometry.planes)
        ]

    def _withdraw_spares(self, per_channel: int) -> None:
        """Pull spare blocks out of the FTL free pools, per channel.

        Spares rotate across the channel's planes; a plane whose free
        pool is already at the GC reserve contributes nothing (the
        device never trades write liveness for spares).
        """
        if per_channel <= 0:
            return
        for channel in range(self.geometry.channels):
            planes = self._channel_planes(channel)
            taken = 0
            for round_idx in range(per_channel * len(planes)):
                if taken >= per_channel:
                    break
                plane = planes[round_idx % len(planes)]
                spare = self.blocks.withdraw_spare(plane)
                if spare is not None:
                    self.rbt[channel].add(spare)
                    taken += 1
                    self.spares_provisioned += 1

    # -- address resolution ---------------------------------------------------

    def resolve(self, addr: PhysAddr) -> PhysAddr:
        """Apply the channel's SRT remap to *addr* (identity if unmapped)."""
        table = self.srt[addr.channel]
        if not table.active_entries:
            return addr
        target = table.lookup(self.geometry.block_index(addr))
        if isinstance(target, PhysAddr):
            return target._replace(page=addr.page)
        return addr

    # -- retirement -------------------------------------------------------------

    def retire(self, logical: PhysAddr,
               mark_bad_addr: Optional[PhysAddr] = None) -> str:
        """Handle a worn-out block at *logical*'s position.

        Tries to remap the position onto a spare from the channel's RBT
        (replacing any existing remap entry, which collapses remap
        chains); falls back to marking the FTL block bad.  Returns
        ``"remapped"`` or ``"retired"``.
        """
        channel = logical.channel
        key = self.geometry.block_index(logical)
        spare = self.rbt[channel].take()
        if spare is not None:
            table = self.srt[channel]
            table.remove(key)
            if table.insert(key, spare):
                self.remapped_blocks += 1
                return "remapped"
            # Table full: the spare cannot be wired in; keep it for a
            # position that still has (or can get) an entry.
            self.rbt[channel].add(spare)
        self.blocks.mark_bad(mark_bad_addr if mark_bad_addr is not None
                             else logical)
        self.retired_blocks += 1
        return "retired"

    # -- checkpointing ------------------------------------------------------

    @staticmethod
    def _encode_entry(entry):
        """JSON encoding for table entries (PhysAddr -> 6-int list)."""
        if isinstance(entry, PhysAddr):
            return list(entry)
        return entry

    @staticmethod
    def _decode_entry(entry):
        """Inverse of :meth:`_encode_entry` (lists become PhysAddr)."""
        if isinstance(entry, (list, tuple)):
            return PhysAddr(*(int(field) for field in entry))
        return int(entry)

    def state_dict(self) -> dict:
        """JSON-able checkpoint of all per-channel RBT/SRT tables."""
        return {
            "rbt": [table.state_dict(self._encode_entry)
                    for table in self.rbt],
            "srt": [table.state_dict(self._encode_entry)
                    for table in self.srt],
            "remapped_blocks": self.remapped_blocks,
            "retired_blocks": self.retired_blocks,
            "spares_provisioned": self.spares_provisioned,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint (same geometry)."""
        for table, table_state in zip(self.rbt, state["rbt"]):
            table.load_state(table_state, self._decode_entry)
        for table, table_state in zip(self.srt, state["srt"]):
            table.load_state(table_state, self._decode_entry)
        self.remapped_blocks = int(state["remapped_blocks"])
        self.retired_blocks = int(state["retired_blocks"])
        self.spares_provisioned = int(state["spares_provisioned"])

    @property
    def spares_remaining(self) -> int:
        """Spare blocks still pooled across all channels."""
        return sum(len(table) for table in self.rbt)

    @property
    def active_remaps(self) -> int:
        """Live SRT entries across all channels."""
        return sum(table.active_entries for table in self.srt)
