"""Knob surface of the reliability layer.

A single frozen dataclass so experiment point functions can rebuild it
from JSON parameters (the runner cache keys on those) and
:class:`~repro.core.config.SSDConfig` can carry it as one optional
field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigError
from ..flash.wear import PAPER_PE_MEAN, PAPER_PE_SIGMA

__all__ = ["ReliabilityConfig"]


@dataclass(frozen=True)
class ReliabilityConfig:
    """Every tunable of the reliability subsystem."""

    #: Fresh-block raw bit error rate (errors per bit per read).
    base_rber: float = 1e-7
    #: Exponential wear growth: ``rber = base * exp(growth * pe/limit)``.
    rber_growth: float = 8.0
    #: Linear retention multiplier per millisecond since program.
    retention_per_ms: float = 0.0

    # Per-block P/E limits (paper Table 1 Gaussian by default).
    pe_mean: float = PAPER_PE_MEAN
    pe_sigma: float = PAPER_PE_SIGMA

    #: Correctable bits per page at each ladder step; step 0 is the
    #: normal hard decode, later steps are read-retry passes (re-read
    #: with shifted references + stronger soft decode).
    ladder_correct_bits: Tuple[int, ...] = (40, 60, 72)
    #: Decode-time multiplier per ladder step (soft decodes are slower).
    ladder_latency_scales: Tuple[float, ...] = (1.0, 2.0, 4.0)
    #: Whether a RAID-like parity rebuild backs the ladder.
    raid_recovery: bool = True
    #: Latency of one parity rebuild (reads the stripe peers).
    raid_recovery_us: float = 200.0

    # Bad-block retirement (feeds the superblock SRT/RBT layer).
    spare_blocks_per_channel: int = 2
    srt_capacity: Optional[int] = 64

    # Transient fault injection in the flash controllers.
    channel_fault_rate: float = 0.0
    die_fault_rate: float = 0.0
    fault_timeout_us: float = 5.0
    fault_backoff: float = 2.0
    fault_max_retries: int = 3

    #: Mixed into the device seed so reliability draws are decoupled
    #: from timing draws.
    seed_salt: int = 0x5EED

    def __post_init__(self) -> None:
        if self.base_rber <= 0 or self.base_rber >= 1:
            raise ConfigError(f"base_rber out of (0,1): {self.base_rber}")
        if self.rber_growth < 0:
            raise ConfigError(f"negative rber_growth: {self.rber_growth}")
        if self.retention_per_ms < 0:
            raise ConfigError(
                f"negative retention_per_ms: {self.retention_per_ms}"
            )
        if self.pe_mean <= 0 or self.pe_sigma < 0:
            raise ConfigError(
                f"bad P/E distribution: mean={self.pe_mean}, "
                f"sigma={self.pe_sigma}"
            )
        bits = tuple(self.ladder_correct_bits)
        scales = tuple(self.ladder_latency_scales)
        if not bits or len(bits) != len(scales):
            raise ConfigError(
                "ladder_correct_bits and ladder_latency_scales must be "
                f"non-empty and equal length: {bits} vs {scales}"
            )
        if any(b <= 0 for b in bits) or list(bits) != sorted(bits):
            raise ConfigError(
                f"ladder_correct_bits must be positive and "
                f"non-decreasing: {bits}"
            )
        if any(s <= 0 for s in scales):
            raise ConfigError(f"ladder scales must be positive: {scales}")
        if self.raid_recovery_us < 0:
            raise ConfigError(
                f"negative raid_recovery_us: {self.raid_recovery_us}"
            )
        if self.spare_blocks_per_channel < 0:
            raise ConfigError(
                f"negative spare_blocks_per_channel: "
                f"{self.spare_blocks_per_channel}"
            )
        if self.srt_capacity is not None and self.srt_capacity < 1:
            raise ConfigError(f"srt_capacity must be >= 1: {self.srt_capacity}")
        for rate in (self.channel_fault_rate, self.die_fault_rate):
            if not 0.0 <= rate < 1.0:
                raise ConfigError(f"fault rate out of [0,1): {rate}")
        if self.fault_timeout_us < 0 or self.fault_backoff < 1.0:
            raise ConfigError(
                f"bad fault timing: timeout={self.fault_timeout_us}, "
                f"backoff={self.fault_backoff}"
            )
        if self.fault_max_retries < 0:
            raise ConfigError(
                f"negative fault_max_retries: {self.fault_max_retries}"
            )
