"""Seeded raw bit-error rate model.

RBER follows the standard first-order wear/retention form used by the
repo's :class:`~repro.flash.WearModel` (and by Amber-style full-resource
simulators):

``rber = base * exp(growth * pe/limit) * (1 + retention_per_ms * age)``

Per-block P/E limits come from the paper's Table 1 Gaussian via
:class:`~repro.flash.WearModel`, so the reliability layer and the
endurance simulator agree on when a block is worn out.
"""

from __future__ import annotations

import math
import random

from ..errors import ConfigError
from ..flash.wear import PAPER_PE_MEAN, PAPER_PE_SIGMA, WearModel

__all__ = ["RberModel", "pe_fraction_at_rber", "poisson"]


def poisson(rng: random.Random, lam: float) -> int:
    """Seeded Poisson sample (Knuth for small rates, Gaussian above).

    Bit-error counts per read are Poisson(page_bits * rber); rates in
    the sweeps stay far below the Gaussian cutoff, which only guards
    against pathological configurations.
    """
    if lam <= 0.0:
        return 0
    if lam > 64.0:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def pe_fraction_at_rber(target_rber: float, base_rber: float,
                        growth: float) -> float:
    """Wear fraction at which the RBER curve crosses *target_rber*.

    Inverse of the fresh-retention RBER curve; the endurance simulator
    uses it to cap per-block P/E limits at the uncorrectable-RBER point
    instead of the raw Gaussian draw.  Returns a value > 1 when the
    block's full life stays below the target.
    """
    if target_rber <= 0 or base_rber <= 0:
        raise ConfigError(
            f"RBER values must be positive: {target_rber}, {base_rber}"
        )
    if target_rber <= base_rber:
        return 0.0
    if growth <= 0:
        return float("inf")
    return math.log(target_rber / base_rber) / growth


class RberModel:
    """Per-block RBER as a function of P/E cycles and retention age."""

    def __init__(self, base_rber: float = 1e-7, growth: float = 8.0,
                 retention_per_ms: float = 0.0,
                 pe_mean: float = PAPER_PE_MEAN,
                 pe_sigma: float = PAPER_PE_SIGMA, seed: int = 1):
        if base_rber <= 0:
            raise ConfigError(f"base_rber must be positive: {base_rber}")
        if growth < 0 or retention_per_ms < 0:
            raise ConfigError(
                f"negative rber parameters: growth={growth}, "
                f"retention={retention_per_ms}"
            )
        self.base_rber = base_rber
        self.growth = growth
        self.retention_per_ms = retention_per_ms
        self.wear = WearModel(mean=pe_mean, sigma=pe_sigma, seed=seed)

    def limit_for(self, block_index: int) -> int:
        """P/E limit of one block (Gaussian draw, cached)."""
        return self.wear.limit_for(block_index)

    def is_dead(self, block_index: int, erase_count: int) -> bool:
        """Whether the block is worn out at this erase count."""
        return self.wear.is_dead(block_index, erase_count)

    def rber(self, block_index: int, erase_count: int,
             age_us: float = 0.0) -> float:
        """RBER of a page in *block_index* at the given wear and age."""
        limit = self.wear.limit_for(block_index)
        fraction = erase_count / limit if limit else 1.0
        wear_term = self.base_rber * math.exp(self.growth * fraction)
        retention = 1.0 + self.retention_per_ms * (age_us / 1000.0)
        return wear_term * retention
