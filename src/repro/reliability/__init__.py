"""Reliability layer: RBER, ECC read-retry ladder, bad blocks, faults.

The paper's copyback argument (Sec 4.2) is about *error propagation*:
legacy copyback moves raw pages without passing an ECC engine, so bit
errors accumulate silently across GC generations, while the decoupled
controller's integrated ECC checks every global-copyback hop.  This
package makes that argument measurable:

* :class:`RberModel` -- seeded raw bit-error rate per block as a
  function of P/E cycles and retention age;
* :class:`EccLadder` -- the read-retry ladder layered on
  :class:`~repro.controller.EccEngine` (escalating decode latency,
  then RAID-like recovery or an uncorrectable page);
* :class:`BadBlockManager` -- wear-out retirement feeding the
  superblock SRT/RBT remap tables;
* :class:`FaultInjector` -- transient channel/die faults with
  retry/timeout/backoff in the flash controllers;
* :class:`ReliabilityEngine` -- the composition wired into the
  datapaths, the FTL and both controller types.

Everything is driven by seeded ``random.Random`` streams consumed in
event order on the single-threaded DES loop, so results are
deterministic under a fixed seed and the experiment runner cache stays
valid.
"""

from .badblocks import BadBlockManager
from .config import ReliabilityConfig
from .engine import ReliabilityEngine
from .faults import FaultInjector
from .ladder import EccLadder
from .rber import RberModel, pe_fraction_at_rber, poisson

__all__ = [
    "BadBlockManager",
    "EccLadder",
    "FaultInjector",
    "RberModel",
    "ReliabilityConfig",
    "ReliabilityEngine",
    "pe_fraction_at_rber",
    "poisson",
]
