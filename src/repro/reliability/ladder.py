"""ECC read-retry ladder decision logic.

The ladder is pure policy: step 0 is the normal hard-decision decode,
every later step models a read-retry pass (re-read the array with
shifted reference voltages, then a slower soft-decision decode that
corrects more bits).  When every step fails, a RAID-like parity rebuild
recovers the page -- or, with RAID disabled, the page is uncorrectable.

The *latency* of each step is paid by the caller
(:class:`~repro.reliability.ReliabilityEngine`) on the real simulated
resources: the flash channel for the re-read and the
:class:`~repro.controller.EccEngine` lane at ``latency_scales[step]``
for the decode, so ladder traffic contends with host I/O exactly like
any other datapath activity.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import ConfigError

__all__ = ["EccLadder"]


class EccLadder:
    """Correctable-bits schedule of the read-retry ladder."""

    def __init__(self, correct_bits: Tuple[int, ...] = (40, 60, 72),
                 latency_scales: Tuple[float, ...] = (1.0, 2.0, 4.0),
                 raid_recovery: bool = True,
                 raid_recovery_us: float = 200.0):
        bits = tuple(correct_bits)
        scales = tuple(latency_scales)
        if not bits or len(bits) != len(scales):
            raise ConfigError(
                f"ladder steps mismatched: {bits} vs {scales}"
            )
        if any(b <= 0 for b in bits) or list(bits) != sorted(bits):
            raise ConfigError(
                f"correct_bits must be positive, non-decreasing: {bits}"
            )
        if any(s <= 0 for s in scales):
            raise ConfigError(f"latency scales must be positive: {scales}")
        if raid_recovery_us < 0:
            raise ConfigError(f"negative raid latency: {raid_recovery_us}")
        self.correct_bits = bits
        self.latency_scales = scales
        self.raid_recovery = raid_recovery
        self.raid_recovery_us = raid_recovery_us

    @property
    def steps(self) -> int:
        """Number of decode attempts (1 hard + N-1 retries)."""
        return len(self.correct_bits)

    def corrects(self, step: int, errors: int) -> bool:
        """Whether decode step *step* corrects *errors* bit errors."""
        return errors <= self.correct_bits[step]

    def next_step(self, errors: int, step: int = 0) -> Optional[int]:
        """First step >= *step* that corrects *errors*, or None."""
        for candidate in range(step, self.steps):
            if self.corrects(candidate, errors):
                return candidate
        return None
