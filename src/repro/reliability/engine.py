"""The reliability engine: RBER sampling, read-retry ladder, retirement.

One engine instance owns the whole reliability state of a simulated
device:

* a per-physical-page error record ``(stored_errors, generation,
  written_at)`` tracking how many bit errors a page's cells hold, how
  many *unchecked* copy hops the data has survived, and when it was
  programmed (for retention aging);
* the seeded :class:`RberModel` that turns per-block wear + age into a
  raw bit-error rate, from which each read samples transient errors;
* the :class:`EccLadder` policy, executed here against the *real*
  simulated resources -- re-reads occupy the flash channel, decodes
  occupy the (possibly per-controller) ECC engine at escalating
  latency scales, and a failed ladder falls back to a RAID-style
  parity rebuild;
* the :class:`BadBlockManager` that remaps or retires blocks whose
  wear crosses their Gaussian P/E limit;
* the :class:`FaultInjector` handed to every flash controller for
  transient channel/die faults.

The copyback argument of the paper (Sec 4.2) falls out of
:meth:`ReliabilityEngine.commit_copy`: a *checked* GC copy passes an
ECC engine, so the destination page starts clean no matter what the
source accumulated; an *unchecked* legacy copyback bakes the source's
stored errors plus the fresh transient errors of this read into the
destination cells, one generation deeper.  ``survivors_ge2`` counts
commits carrying errors through two or more copy generations -- silent
corruption a later host read may no longer be able to correct.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, Optional, Tuple

from ..flash import PhysAddr
from .badblocks import BadBlockManager
from .config import ReliabilityConfig
from .faults import FaultInjector
from .ladder import EccLadder
from .rber import RberModel, poisson

__all__ = ["ReliabilityEngine"]

#: Per-page record: (stored bit errors, unchecked-copy generation,
#: program timestamp in us).
_PageState = Tuple[int, int, float]

_CLEAN: _PageState = (0, 0, 0.0)


class ReliabilityEngine:
    """Device-wide reliability state machine (one per SimulatedSSD)."""

    def __init__(self, sim, backend, blocks, config: ReliabilityConfig,
                 seed: int = 1):
        self.sim = sim
        self.backend = backend
        self.geometry = backend.geometry
        self.blocks = blocks
        self.config = config
        base_seed = (seed ^ config.seed_salt) & 0x7FFFFFFF
        self.rber_model = RberModel(
            base_rber=config.base_rber, growth=config.rber_growth,
            retention_per_ms=config.retention_per_ms,
            pe_mean=config.pe_mean, pe_sigma=config.pe_sigma,
            seed=base_seed,
        )
        self.ladder = EccLadder(
            correct_bits=config.ladder_correct_bits,
            latency_scales=config.ladder_latency_scales,
            raid_recovery=config.raid_recovery,
            raid_recovery_us=config.raid_recovery_us,
        )
        self.faults = FaultInjector(
            sim, channel_fault_rate=config.channel_fault_rate,
            die_fault_rate=config.die_fault_rate,
            timeout_us=config.fault_timeout_us,
            backoff=config.fault_backoff,
            max_retries=config.fault_max_retries,
            seed=base_seed + 1,
        )
        self.badblocks = BadBlockManager(
            self.geometry, blocks,
            spares_per_channel=config.spare_blocks_per_channel,
            srt_capacity=config.srt_capacity,
        )
        self._rng = random.Random(base_seed + 2)
        self._pages: Dict[int, _PageState] = {}
        self.datapath = None
        self._base_remapper = None

        # -- counters ------------------------------------------------------
        self.reads_checked = 0
        self.errors_seen = 0
        self.errors_corrected = 0
        self.ladder_retries = 0
        self.raid_recoveries = 0
        self.uncorrectable_pages = 0
        self.checked_copies = 0
        self.unchecked_copies = 0
        self.copy_errors_scrubbed = 0
        self.copy_errors_propagated = 0
        self.survivors_ge2 = 0
        self.max_generation = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, datapath) -> None:
        """Install this engine into *datapath* (idempotent-unsafe, once).

        Composes the bad-block remap *below* any existing remapper (the
        dynamic-superblock SRT layer), makes the datapath route reads
        through :meth:`post_read`, and hands the fault injector to every
        flash controller.
        """
        self.datapath = datapath
        base = datapath.remapper
        self._base_remapper = base
        if base is None:
            datapath.remapper = self.badblocks.resolve
        else:
            datapath.remapper = lambda addr: self.badblocks.resolve(base(addr))
        datapath.reliability = self
        if self.faults.enabled:
            for controller in datapath.controllers:
                controller.fault_injector = self.faults

    def _base_remap(self, addr: PhysAddr) -> PhysAddr:
        return self._base_remapper(addr) if self._base_remapper else addr

    # -- page state -------------------------------------------------------------

    def _page_index(self, addr: PhysAddr) -> int:
        return (self.geometry.block_index(addr) * self.geometry.pages_per_block
                + addr.page)

    def page_state(self, addr: PhysAddr) -> _PageState:
        """(stored_errors, generation, written_at) of a physical page."""
        return self._pages.get(self._page_index(addr), _CLEAN)

    def _sample_read_errors(self, addr: PhysAddr,
                            state: _PageState) -> int:
        """Stored plus freshly-sampled transient errors for one read."""
        stored, _generation, written_at = state
        block_index = self.geometry.block_index(addr)
        rber = self.rber_model.rber(
            block_index, self.backend.erase_count(addr),
            age_us=max(0.0, self.sim.now - written_at),
        )
        page_bits = self.geometry.page_size * 8
        return stored + poisson(self._rng, rber * page_bits)

    # -- read-verify path -----------------------------------------------------------

    def post_read(self, addr: PhysAddr, breakdown, priority: int = 0,
                  traffic_class: str = "io") -> Generator:
        """Generator: verify a page just read from *addr* (remapped).

        Runs the ECC read-retry ladder on the simulated resources.  Step
        0 is the normal in-path decode; every later step re-reads the
        array (shifted reference voltages -- transient errors resample)
        and pays a slower soft decode.  Returns the outcome string:
        ``"clean"`` / ``"corrected"`` / ``"raid"`` / ``"uncorrectable"``.
        """
        self.reads_checked += 1
        state = self.page_state(addr)
        errors = self._sample_read_errors(addr, state)
        self.errors_seen += errors
        engine = self.datapath.ecc_for(addr.channel)
        page_size = self.geometry.page_size
        for step in range(self.ladder.steps):
            if step > 0:
                self.ladder_retries += 1
                controller = self.datapath.controller_for(addr)
                yield from controller.read_page(addr, traffic_class,
                                                breakdown, priority)
                errors = self._sample_read_errors(addr, state)
            t0 = self.sim.now
            yield from engine.check(page_size, priority,
                                    scale=self.ladder.latency_scales[step])
            breakdown.add("ecc", self.sim.now - t0)
            if self.ladder.corrects(step, errors):
                if errors == 0:
                    return "clean"
                self.errors_corrected += errors
                if traffic_class == "gc":
                    self.copy_errors_scrubbed += errors
                return "corrected"
        if self.ladder.raid_recovery:
            self.raid_recoveries += 1
            t0 = self.sim.now
            if self.ladder.raid_recovery_us > 0:
                yield self.sim.timeout(self.ladder.raid_recovery_us)
            breakdown.add("other", self.sim.now - t0)
            return "raid"
        self.uncorrectable_pages += 1
        return "uncorrectable"

    # -- program / copy / erase hooks ----------------------------------------------

    def on_program(self, addr: PhysAddr) -> None:
        """A host (or flush) program wrote fresh, ECC-clean data."""
        self._pages[self._page_index(addr)] = (0, 0, self.sim.now)

    def commit_copy(self, src: PhysAddr, dst: PhysAddr, checked: bool,
                    outcome: Optional[str] = None) -> None:
        """Record the error outcome of one GC page copy (src/dst remapped).

        A *checked* copy went through an ECC engine in the copy path:
        whatever the source cells held, the destination starts clean
        (unless the page was outright uncorrectable, in which case the
        corruption is permanent and travels on).  An *unchecked* legacy
        copyback writes the raw read-out -- stored plus this read's
        transient errors -- one generation deeper.
        """
        src_state = self.page_state(src)
        stored, generation, _written_at = src_state
        dst_index = self._page_index(dst)
        if checked and outcome != "uncorrectable":
            self.checked_copies += 1
            if stored > 0:
                self.copy_errors_scrubbed += stored
            self._pages[dst_index] = (0, 0, self.sim.now)
            return
        self.unchecked_copies += 1
        errors = stored if checked else self._sample_read_errors(src, src_state)
        next_generation = generation + 1
        self._pages[dst_index] = (errors, next_generation, self.sim.now)
        if errors > 0:
            self.copy_errors_propagated += errors
            if next_generation >= 2:
                self.survivors_ge2 += 1
            if next_generation > self.max_generation:
                self.max_generation = next_generation

    def on_erase_block(self, addr: PhysAddr) -> None:
        """Erase wiped the physical block containing *addr* (remapped)."""
        base = (self.geometry.block_index(addr)
                * self.geometry.pages_per_block)
        for offset in range(self.geometry.pages_per_block):
            self._pages.pop(base + offset, None)

    # -- wear-out retirement ----------------------------------------------------------

    def after_erase(self, victim: PhysAddr) -> str:
        """Post-erase wear check for the FTL block at *victim* (logical).

        Resolves the position through the remap stack, compares the
        physical block's erase count against its Gaussian P/E limit,
        and on wear-out remaps the position onto a spare (or retires it
        for good).  Returns ``"ok"`` / ``"remapped"`` / ``"retired"``.
        """
        base_addr = self._base_remap(victim.block_addr())
        physical = self.badblocks.resolve(base_addr)
        block_index = self.geometry.block_index(physical)
        erase_count = self.backend.erase_count(physical)
        if not self.rber_model.is_dead(block_index, erase_count):
            return "ok"
        return self.badblocks.retire(base_addr,
                                     mark_bad_addr=victim.block_addr())

    # -- checkpointing ----------------------------------------------------------------

    _COUNTERS = (
        "reads_checked", "errors_seen", "errors_corrected",
        "ladder_retries", "raid_recoveries", "uncorrectable_pages",
        "checked_copies", "unchecked_copies", "copy_errors_scrubbed",
        "copy_errors_propagated", "survivors_ge2", "max_generation",
    )

    def state_dict(self) -> dict:
        """JSON-able checkpoint of the whole reliability state machine.

        Covers per-page error records, all counters, the transient-error
        RNG, the RBER model's wear-limit cache, the fault injector and
        the bad-block tables.  The datapath wiring (:meth:`attach`) is
        structural and re-established at rebuild, not snapshotted.
        """
        from ..sim import int_key_pairs, rng_state_dict

        return {
            "pages": int_key_pairs(self._pages, list),
            "counters": {name: getattr(self, name)
                         for name in self._COUNTERS},
            "rng": rng_state_dict(self._rng),
            "wear": self.rber_model.wear.state_dict(),
            "faults": self.faults.state_dict(),
            "badblocks": self.badblocks.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint (same config)."""
        from ..sim import pairs_to_int_dict, rng_load_state

        self._pages = pairs_to_int_dict(
            state["pages"],
            lambda rec: (int(rec[0]), int(rec[1]), float(rec[2])))
        for name in self._COUNTERS:
            setattr(self, name, int(state["counters"][name]))
        rng_load_state(self._rng, state["rng"])
        self.rber_model.wear.load_state(state["wear"])
        self.faults.load_state(state["faults"])
        self.badblocks.load_state(state["badblocks"])

    # -- reporting ---------------------------------------------------------------------

    def stats_dict(self) -> Dict[str, float]:
        """Flat counters for :class:`~repro.core.ssd.RunResult` extras."""
        return {
            "reads_checked": float(self.reads_checked),
            "errors_seen": float(self.errors_seen),
            "errors_corrected": float(self.errors_corrected),
            "ladder_retries": float(self.ladder_retries),
            "raid_recoveries": float(self.raid_recoveries),
            "uncorrectable_pages": float(self.uncorrectable_pages),
            "checked_copies": float(self.checked_copies),
            "unchecked_copies": float(self.unchecked_copies),
            "copy_errors_scrubbed": float(self.copy_errors_scrubbed),
            "copy_errors_propagated": float(self.copy_errors_propagated),
            "survivors_ge2": float(self.survivors_ge2),
            "max_generation": float(self.max_generation),
            "blocks_remapped": float(self.badblocks.remapped_blocks),
            "blocks_retired": float(self.badblocks.retired_blocks),
            "spares_remaining": float(self.badblocks.spares_remaining),
            "active_remaps": float(self.badblocks.active_remaps),
            "channel_faults": float(self.faults.channel_faults),
            "die_faults": float(self.faults.die_faults),
            "fault_retries": float(self.faults.retries),
            "fault_exhausted": float(self.faults.exhausted),
        }
