"""``repro profile``: cProfile harness over the bench workloads.

Profiles any workload from :mod:`repro.bench` under any kernel backend
and prints the top-N functions by cumulative time, with paths shortened
to the package so the table stays readable.  ``--svg`` additionally
renders a flamegraph-style icicle chart as a dependency-free SVG --
approximated from the deterministic cProfile call graph (cumulative
time apportioned down caller->callee edges), which is exact for the
tree-shaped call patterns the simulator hot path consists of and a
fallback, not a sampled flamegraph, where the graph has cycles.

Usage::

    python -m repro profile ssd_point                 # top 25, quick
    python -m repro profile ssd_point --full -n 40
    python -m repro profile fnoc_storm --backend legacy
    python -m repro profile ssd_point --svg flame.svg
"""

from __future__ import annotations

import argparse
import cProfile
import html
import pstats
import sys
from typing import Any, Dict, List, Optional, Tuple

from .bench import WORKLOADS

__all__ = ["run_profile", "top_table", "write_flamegraph_svg", "main"]

#: (file, line, name) function key used throughout pstats.
FuncKey = Tuple[str, int, str]


def run_profile(workload: str, quick: bool = True,
                backend: str = "pure") -> pstats.Stats:
    """Profile one bench workload; returns the collected stats."""
    fn = WORKLOADS[workload]
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn(quick, backend=backend)
    finally:
        profiler.disable()
    return pstats.Stats(profiler)


def _location(key: FuncKey) -> str:
    """Readable ``path:line(func)`` with the package prefix stripped."""
    filename, line, name = key
    for marker in ("/repro/", "\\repro\\"):
        index = filename.rfind(marker)
        if index >= 0:
            filename = "repro/" + filename[index + len(marker):]
            break
    if filename == "~":  # builtins have no file
        return name
    return f"{filename}:{line}({name})"


def top_table(stats: pstats.Stats, limit: int = 25) -> str:
    """Top-*limit* functions by cumulative time, as printable text."""
    entries = sorted(stats.stats.items(), key=lambda item: item[1][3],
                     reverse=True)[:limit]
    headers = ("cumtime", "tottime", "ncalls", "function")
    rows = []
    for key, (cc, nc, tt, ct, _callers) in entries:
        calls = str(nc) if nc == cc else f"{nc}/{cc}"
        rows.append((f"{ct:.3f}", f"{tt:.3f}", calls, _location(key)))
    widths = [max(len(headers[col]), *(len(row[col]) for row in rows))
              if rows else len(headers[col]) for col in range(4)]
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "-+-".join("-" * w for w in widths)]
    for row in rows:
        lines.append(" | ".join(cell.ljust(w)
                                for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _call_tree(stats: pstats.Stats) -> Tuple[Dict[FuncKey, List[
        Tuple[FuncKey, float]]], List[Tuple[FuncKey, float]]]:
    """``(children, roots)`` from the pstats call graph.

    ``children[f]`` lists ``(callee, seconds)`` -- the cumulative time a
    callee spent under calls *from f* (pstats records it per edge, so no
    estimation is needed).  Roots are functions nobody profiled calls.
    """
    children: Dict[FuncKey, List[Tuple[FuncKey, float]]] = {}
    called = set()
    for func, (_cc, _nc, _tt, _ct, callers) in stats.stats.items():
        for caller, edge in callers.items():
            children.setdefault(caller, []).append((func, edge[3]))
            called.add(func)
    roots = [(func, entry[3]) for func, entry in stats.stats.items()
             if func not in called]
    for bucket in children.values():
        bucket.sort(key=lambda item: item[1], reverse=True)
    roots.sort(key=lambda item: item[1], reverse=True)
    return children, roots


_ROW_H = 18
_MIN_W = 1.0  # px; thinner frames are dropped, not drawn illegibly


def _palette(name: str) -> str:
    # Deterministic warm color per function name (flamegraph idiom).
    seed = sum(ord(ch) for ch in name)
    return (f"rgb({205 + seed * 7 % 50},"
            f"{80 + seed * 11 % 110},{seed * 13 % 60})")


def write_flamegraph_svg(stats: pstats.Stats, path: str,
                         width: int = 1200, max_depth: int = 40) -> None:
    """Render an icicle chart of the call graph to *path*.

    Cycles (a function reached again under itself) are cut rather than
    unrolled, so recursive frames understate their subtree -- acceptable
    for a fallback visualization of a mostly tree-shaped DES hot path.
    """
    children, roots = _call_tree(stats)
    total = sum(seconds for _func, seconds in roots) or 1.0
    scale = width / total
    rects: List[str] = []

    def emit(func: FuncKey, seconds: float, x: float, depth: int,
             stack: frozenset) -> None:
        w = seconds * scale
        if w < _MIN_W or depth >= max_depth or func in stack:
            return
        label = _location(func)
        title = html.escape(f"{label} -- {seconds:.3f}s "
                            f"({seconds / total:.1%})")
        rects.append(
            f'<g><title>{title}</title>'
            f'<rect x="{x:.2f}" y="{depth * _ROW_H}" width="{w:.2f}" '
            f'height="{_ROW_H - 1}" fill="{_palette(func[2])}"/>'
            + (f'<text x="{x + 2:.2f}" y="{depth * _ROW_H + 13}" '
               f'font-size="11" font-family="monospace">'
               f'{html.escape(label[:max(1, int(w / 7))])}</text>'
               if w > 30 else "") + "</g>")
        child_x = x
        for callee, child_seconds in children.get(func, ()):
            # An edge cannot outweigh its parent frame; clamp defensively
            # (pstats rounds per edge).
            child_seconds = min(child_seconds, seconds)
            emit(callee, child_seconds, child_x, depth + 1,
                 stack | {func})
            child_x += child_seconds * scale
            if child_x > x + seconds * scale:
                break

    x = 0.0
    for func, seconds in roots:
        emit(func, seconds, x, 0, frozenset())
        x += seconds * scale
    height = (max_depth + 1) * _ROW_H
    svg = (f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
           f'height="{height}" font-family="monospace">'
           + "".join(rects) + "</svg>\n")
    with open(path, "w") as handle:
        handle.write(svg)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dssd profile",
        description="cProfile one bench workload and print hot functions",
    )
    parser.add_argument("workload", choices=sorted(WORKLOADS),
                        help="bench workload to profile")
    parser.add_argument("--backend",
                        choices=["auto", "pure", "fast", "legacy"],
                        default="pure",
                        help="kernel backend to profile (default pure; "
                             "compiled frames are invisible to cProfile, "
                             "so 'fast' mostly shows the interpreted rim)")
    parser.add_argument("--full", action="store_true",
                        help="full-size workload (default: quick)")
    parser.add_argument("-n", "--top", type=int, default=25, metavar="N",
                        help="rows in the cumulative-time table "
                             "(default 25)")
    parser.add_argument("--svg", metavar="FILE", default=None,
                        help="also write a flamegraph-style icicle SVG")
    parser.add_argument("--dump", metavar="FILE", default=None,
                        help="also dump raw pstats data for snakeviz/"
                             "pstats tooling")
    args = parser.parse_args(argv)

    stats = run_profile(args.workload, quick=not args.full,
                        backend=args.backend)
    print(f"[profile] {args.workload} "
          f"({'quick' if not args.full else 'full'}, "
          f"backend={args.backend})", file=sys.stderr)
    print(top_table(stats, args.top))
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"[profile] wrote {args.dump}", file=sys.stderr)
    if args.svg:
        write_flamegraph_svg(stats, args.svg)
        print(f"[profile] wrote {args.svg}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
