"""Dynamic superblock management: SRT/RBT, recycling, endurance, WAS."""

from .endurance import (
    POLICIES,
    EnduranceConfig,
    EnduranceResult,
    EnduranceSimulator,
    run_endurance,
)
from .live import LiveDynamicSuperblocks
from .manager import DynamicSuperblockManager
from .remap import SrtRemapper
from .tables import RecycleBlockTable, SuperblockRemapTable
from .was import WasConfig, WasResult, simulate_was

__all__ = [
    "DynamicSuperblockManager",
    "EnduranceConfig",
    "EnduranceResult",
    "EnduranceSimulator",
    "LiveDynamicSuperblocks",
    "POLICIES",
    "RecycleBlockTable",
    "run_endurance",
    "simulate_was",
    "SrtRemapper",
    "SuperblockRemapTable",
    "WasConfig",
    "WasResult",
]
