"""Block-wear endurance simulator for dynamic superblocks (Fig 14/16).

A fast, event-jumped wear simulation -- deliberately *not* the DES.  The
workload is the paper's: a continuous stream of large sequential writes
with wear-leveled allocation, so every alive superblock accumulates P/E
cycles uniformly.  Under uniform wear the next uncorrectable error is
simply the minimum remaining endurance over all alive sub-blocks, so the
simulator jumps from failure to failure instead of cycling page writes:
each iteration handles one block death, and total work is proportional
to the number of failures rather than the number of writes.

Policies (paper Sec 5):

* ``baseline``  -- static superblocks: first sub-block failure kills the
  whole superblock.
* ``recycled``  -- surviving sub-blocks of a dead superblock enter the
  per-channel RBT; later failures are remapped onto recycled blocks via
  the SRT so the superblock lives on.
* ``reserv``    -- recycled, plus ``reserve_fraction`` of superblocks is
  withheld up front to pre-populate the RBTs (delaying the *first* bad
  superblock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..flash.wear import PAPER_PE_MEAN, PAPER_PE_SIGMA
from .tables import RecycleBlockTable, SuperblockRemapTable

__all__ = ["EnduranceConfig", "EnduranceResult", "EnduranceSimulator",
           "POLICIES"]

POLICIES = ("baseline", "recycled", "reserv")


@dataclass
class EnduranceConfig:
    """Parameters of one endurance run."""

    n_superblocks: int = 512
    channels: int = 8
    pages_per_block: int = 32
    page_size: int = 16384
    pe_mean: float = PAPER_PE_MEAN
    pe_sigma: float = PAPER_PE_SIGMA
    policy: str = "baseline"
    reserve_fraction: float = 0.07      # paper: 7 % provisioned
    srt_capacity: Optional[int] = 1024  # entries per channel; None = inf
    stop_bad_fraction: float = 0.90     # run until 90 % superblocks bad
    seed: int = 1
    #: Optional ECC budget: a block is dead once its RBER (reliability
    #: layer's wear curve, ``rber_base * exp(rber_growth * pe/limit)``)
    #: crosses this value, which caps the Gaussian P/E draw.  ``None``
    #: keeps the raw draws (the paper's pure-wear model).
    uncorrectable_rber: Optional[float] = None
    rber_base: float = 1e-7
    rber_growth: float = 8.0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigError(f"unknown endurance policy {self.policy!r}")
        if self.uncorrectable_rber is not None:
            from ..reliability.rber import pe_fraction_at_rber

            # Raises ConfigError on bad values; result used in the sim.
            pe_fraction_at_rber(self.uncorrectable_rber, self.rber_base,
                                self.rber_growth)
        if self.n_superblocks < 2:
            raise ConfigError("need at least 2 superblocks")
        if not 0.0 <= self.reserve_fraction < 0.5:
            raise ConfigError(
                f"reserve_fraction out of [0, 0.5): {self.reserve_fraction}"
            )
        if not 0.0 < self.stop_bad_fraction <= 1.0:
            raise ConfigError(
                f"stop_bad_fraction out of (0,1]: {self.stop_bad_fraction}"
            )

    @property
    def superblock_bytes(self) -> int:
        """Bytes written per full superblock program cycle."""
        return self.channels * self.pages_per_block * self.page_size


@dataclass
class EnduranceResult:
    """Output of one endurance run."""

    config: EnduranceConfig
    #: Monotone curve: (total bytes written, bad superblock count).
    curve: List[Tuple[float, int]] = field(default_factory=list)
    total_bytes: float = 0.0
    remap_events: int = 0
    srt_rejections: int = 0
    #: Per-channel (event_index, active_entries) logs (Fig 16(b)).
    srt_occupancy: Dict[int, List[Tuple[int, int]]] = field(
        default_factory=dict)
    max_active_srt_entries: int = 0

    def bytes_until_bad(self, n_bad: int) -> Optional[float]:
        """Data written when the *n_bad*-th superblock died."""
        for total, bad in self.curve:
            if bad >= n_bad:
                return total
        return None

    def bytes_until_bad_fraction(self, fraction: float) -> Optional[float]:
        """Data written when *fraction* of superblocks had died."""
        threshold = max(1, int(self.config.n_superblocks * fraction))
        return self.bytes_until_bad(threshold)

    @property
    def first_bad_bytes(self) -> Optional[float]:
        """Data written at the first bad superblock."""
        return self.bytes_until_bad(1)


class EnduranceSimulator:
    """Jump-to-next-failure wear simulation over (superblock, channel)."""

    def __init__(self, config: EnduranceConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        total = config.n_superblocks
        reserved = 0
        if config.policy == "reserv":
            reserved = int(round(total * config.reserve_fraction))
            reserved = min(reserved, total - 1)
        self.visible = total - reserved
        self.reserved = reserved

        draws = rng.normal(config.pe_mean, config.pe_sigma,
                           size=(total, config.channels))
        if config.uncorrectable_rber is not None:
            from ..reliability.rber import pe_fraction_at_rber

            fraction = pe_fraction_at_rber(
                config.uncorrectable_rber, config.rber_base,
                config.rber_growth,
            )
            if fraction < 1.0:
                draws = np.floor(draws * fraction)
        self.limits = np.maximum(1, np.rint(draws)).astype(np.int64)
        self.wear = np.zeros_like(self.limits)
        self.alive = np.ones(self.visible, dtype=bool)

        self.rbt = [RecycleBlockTable(c) for c in range(config.channels)]
        self.srt = [SuperblockRemapTable(c, config.srt_capacity)
                    for c in range(config.channels)]
        if config.policy == "reserv":
            for sb in range(self.visible, total):
                for channel in range(config.channels):
                    self.rbt[channel].add(
                        (int(self.limits[sb, channel]), 0)
                    )

        self.result = EnduranceResult(config=config)
        self._bad = 0
        self._key_counter = 0

    # -- core loop -----------------------------------------------------------

    def run(self) -> EnduranceResult:
        """Advance failure-by-failure until the stop fraction is bad."""
        config = self.config
        stop_bad = int(np.ceil(self.visible * config.stop_bad_fraction))
        sb_bytes = float(config.superblock_bytes)
        total_bytes = 0.0
        guard = 0
        max_events = self.visible * config.channels * 4 + 16

        while self._bad < stop_bad and self.alive.any():
            guard += 1
            if guard > max_events:
                raise RuntimeError("endurance simulation failed to converge")
            remaining = self.limits[:self.visible] - self.wear[:self.visible]
            remaining = np.where(self.alive[:, None], remaining, np.iinfo(np.int64).max)
            flat = int(np.argmin(remaining))
            sb, channel = divmod(flat, config.channels)
            delta = int(remaining[sb, channel])
            if delta > 0:
                # Every alive superblock absorbs `delta` more P/E cycles.
                self.wear[:self.visible][self.alive] += delta
                total_bytes += delta * float(self.alive.sum()) * sb_bytes
            self._handle_failure(sb, channel)
            self.result.curve.append((total_bytes, self._bad))

        self.result.total_bytes = total_bytes
        self.result.srt_occupancy = {
            c: list(self.srt[c].occupancy_log)
            for c in range(config.channels)
        }
        self.result.srt_rejections = sum(t.rejected for t in self.srt)
        self.result.max_active_srt_entries = max(
            (t.active_entries for t in self.srt), default=0
        )
        return self.result

    # -- failure handling ----------------------------------------------------------

    def _handle_failure(self, sb: int, channel: int) -> None:
        policy = self.config.policy
        if policy == "baseline":
            self._kill_superblock(sb, recycle=False)
            return
        # recycled / reserv: try to remap onto a recycled block.
        replacement = self.rbt[channel].take()
        if replacement is not None:
            limit, wear = replacement
            self._key_counter += 1
            if self.srt[channel].insert(("dead", sb, self._key_counter),
                                        ("recycled", limit)):
                self.limits[sb, channel] = limit
                self.wear[sb, channel] = wear
                self.result.remap_events += 1
                return
        self._kill_superblock(sb, recycle=True)

    def _kill_superblock(self, sb: int, recycle: bool) -> None:
        self.alive[sb] = False
        self._bad += 1
        if not recycle:
            return
        for channel in range(self.config.channels):
            limit = int(self.limits[sb, channel])
            wear = int(self.wear[sb, channel])
            if wear < limit:
                self.rbt[channel].add((limit, wear))


def run_endurance(policy: str = "baseline", **kwargs) -> EnduranceResult:
    """Convenience: build and run one endurance simulation."""
    config = EnduranceConfig(policy=policy, **kwargs)
    return EnduranceSimulator(config).run()
