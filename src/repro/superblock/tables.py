"""Hardware tables inside the decoupled flash controller (paper Sec 5).

* :class:`RecycleBlockTable` (RBT) -- the per-controller "recycling bin"
  of good sub-blocks salvaged from dead superblocks (plus, for the
  reservation policy, pre-provisioned blocks).
* :class:`SuperblockRemapTable` (SRT) -- the per-controller remap of a
  dead sub-block's address onto a recycled block.  Entries are
  persistent for the life of the dynamic superblock, so the table's
  capacity bounds how many remaps a controller can hold (Fig 16).

Both tables are maintained *per decoupled controller* (per channel) and
are invisible to the FTL.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from ..errors import ConfigError, MappingError

__all__ = ["RecycleBlockTable", "SuperblockRemapTable"]


class RecycleBlockTable:
    """FIFO pool of recyclable blocks for one flash channel.

    Each entry is an opaque block descriptor chosen by the caller (the
    endurance simulator stores ``(limit, wear)`` pairs; the DES stores
    physical block addresses).
    """

    def __init__(self, channel: int):
        self.channel = channel
        self._entries: Deque = deque()
        self.total_added = 0
        self.total_taken = 0

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, block) -> None:
        """Deposit a recyclable block."""
        self._entries.append(block)
        self.total_added += 1

    def take(self):
        """Withdraw the oldest recyclable block, or None if empty."""
        if not self._entries:
            return None
        self.total_taken += 1
        return self._entries.popleft()

    def peek_all(self) -> List:
        """Snapshot of the pool (oldest first)."""
        return list(self._entries)

    # -- checkpointing ------------------------------------------------------

    def state_dict(self, encode=None) -> dict:
        """JSON-able checkpoint; *encode* maps opaque entries to JSON.

        Entries keep their FIFO order.  The default encoder passes
        entries through unchanged (fine for ints/strings); callers
        holding richer descriptors (e.g. physical addresses) supply an
        encoder.
        """
        encode = encode or (lambda entry: entry)
        return {"entries": [encode(entry) for entry in self._entries],
                "total_added": self.total_added,
                "total_taken": self.total_taken}

    def load_state(self, state: dict, decode=None) -> None:
        """Restore a :meth:`state_dict` checkpoint."""
        decode = decode or (lambda entry: entry)
        self._entries = deque(decode(entry) for entry in state["entries"])
        self.total_added = int(state["total_added"])
        self.total_taken = int(state["total_taken"])


class SuperblockRemapTable:
    """Bounded remap table: dead sub-block address -> recycled block.

    ``capacity`` is the number of entries the hardware provides (the
    paper's sweep: 64 .. 2048 entries, ~32 bits each).  ``capacity``
    of ``None`` models an infinite table (used to measure the active-
    entry demand curve, Fig 16(b)).
    """

    def __init__(self, channel: int, capacity: Optional[int] = 1024):
        if capacity is not None and capacity < 1:
            raise ConfigError(f"SRT capacity must be >= 1: {capacity}")
        self.channel = channel
        self.capacity = capacity
        self._map: Dict[Hashable, Hashable] = {}
        self.inserts = 0
        self.rejected = 0
        #: (event_index, active_entries) samples for Fig 16(b).
        self.occupancy_log: List[Tuple[int, int]] = []

    @property
    def active_entries(self) -> int:
        """Entries currently holding a remap."""
        return len(self._map)

    @property
    def is_full(self) -> bool:
        """Whether another insert would exceed capacity."""
        return (self.capacity is not None
                and len(self._map) >= self.capacity)

    def lookup(self, key: Hashable) -> Hashable:
        """Resolved address for *key* (identity when unmapped)."""
        return self._map.get(key, key)

    def insert(self, key: Hashable, target: Hashable) -> bool:
        """Record ``key -> target``; False if the table is full."""
        if key in self._map:
            raise MappingError(f"SRT already remaps {key!r}")
        if self.is_full:
            self.rejected += 1
            return False
        self._map[key] = target
        self.inserts += 1
        self.occupancy_log.append((self.inserts, len(self._map)))
        return True

    def remove(self, key: Hashable) -> None:
        """Drop a remap entry (when the dynamic superblock dies)."""
        self._map.pop(key, None)

    def entries(self) -> Dict[Hashable, Hashable]:
        """Copy of the live remap entries."""
        return dict(self._map)

    # -- checkpointing ------------------------------------------------------

    def state_dict(self, encode=None) -> dict:
        """JSON-able checkpoint; *encode* maps opaque keys/values to JSON.

        Remap entries are stored as ``[key, target]`` pairs in insertion
        order (dict order), so a restore reproduces the same iteration
        order.
        """
        encode = encode or (lambda entry: entry)
        return {"map": [[encode(key), encode(target)]
                        for key, target in self._map.items()],
                "inserts": self.inserts,
                "rejected": self.rejected,
                "occupancy_log": [[i, n] for i, n in self.occupancy_log]}

    def load_state(self, state: dict, decode=None) -> None:
        """Restore a :meth:`state_dict` checkpoint."""
        decode = decode or (lambda entry: entry)
        self._map = {decode(key): decode(target)
                     for key, target in state["map"]}
        self.inserts = int(state["inserts"])
        self.rejected = int(state["rejected"])
        self.occupancy_log = [(int(i), int(n))
                              for i, n in state["occupancy_log"]]
