"""WAS: Wear-Aware superblock Scheduling, the software baseline [40].

WAS lets the *FTL* regroup superblocks from whatever good blocks remain,
using per-block endurance knowledge gathered by periodically scanning
RBER (reading at least one page per block).  Endurance is therefore
bounded only by the per-channel supply of good blocks -- better than the
hardware recycling policies -- but the scans consume system-bus, DRAM,
and flash bandwidth (the Fig 14(c) overhead this repo reproduces in the
DES experiment).

The endurance side is modeled with the same jump-to-next-failure trick
as :mod:`repro.superblock.endurance`: under wear-leveled writes, blocks
in each channel die in ascending order of their sampled P/E limits, and
a superblock can be formed as long as every channel still has a good
block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..errors import ConfigError
from ..flash.wear import PAPER_PE_MEAN, PAPER_PE_SIGMA

__all__ = ["WasConfig", "WasResult", "simulate_was"]


@dataclass
class WasConfig:
    """Parameters of a WAS endurance run."""

    n_superblocks: int = 512
    channels: int = 8
    pages_per_block: int = 32
    page_size: int = 16384
    pe_mean: float = PAPER_PE_MEAN
    pe_sigma: float = PAPER_PE_SIGMA
    stop_bad_fraction: float = 0.90
    #: WAS complements superblock grouping with page-level wear leveling
    #: (Wang et al., DAC'19), which stretches each block's usable P/E
    #: budget; modeled as a multiplicative endurance gain.
    leveling_gain: float = 1.12
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_superblocks < 2:
            raise ConfigError("need at least 2 superblocks")
        if self.leveling_gain < 1.0:
            raise ConfigError(
                f"leveling_gain must be >= 1: {self.leveling_gain}"
            )

    @property
    def superblock_bytes(self) -> int:
        """Bytes per full superblock program cycle."""
        return self.channels * self.pages_per_block * self.page_size


@dataclass
class WasResult:
    """Endurance curve of a WAS run."""

    config: WasConfig
    curve: List[Tuple[float, int]] = field(default_factory=list)
    total_bytes: float = 0.0

    def bytes_until_bad(self, n_bad: int):
        """Data written when formable superblocks first dropped by n_bad."""
        for total, bad in self.curve:
            if bad >= n_bad:
                return total
        return None

    def bytes_until_bad_fraction(self, fraction: float):
        """Data written when *fraction* of superblocks became unformable."""
        threshold = max(1, int(self.config.n_superblocks * fraction))
        return self.bytes_until_bad(threshold)

    @property
    def first_bad_bytes(self):
        """Data written when the first superblock became unformable."""
        return self.bytes_until_bad(1)


def simulate_was(config: WasConfig = None, **kwargs) -> WasResult:
    """Run the WAS endurance model.

    Under wear leveling every good block in a channel carries the same
    wear, so channel *c* loses its *k*-th block when the cumulative
    cycles reach its *k*-th smallest limit.  The number of formable
    superblocks after *w* cycles is ``min_c (blocks_c alive at w)``; the
    result curve reports that count against bytes written, with bytes
    accumulated over the *formable* superblocks at each wear level.
    """
    config = config if config is not None else WasConfig(**kwargs)
    rng = np.random.default_rng(config.seed)
    limits = np.maximum(1, np.rint(
        rng.normal(config.pe_mean, config.pe_sigma,
                   size=(config.n_superblocks, config.channels))
        * config.leveling_gain
    )).astype(np.int64)
    # Sorted death times per channel.
    deaths = np.sort(limits, axis=0)

    result = WasResult(config=config)
    sb_bytes = float(config.superblock_bytes)
    total_bytes = 0.0
    alive = config.n_superblocks
    stop_alive = config.n_superblocks - int(
        np.ceil(config.n_superblocks * config.stop_bad_fraction)
    )
    wear = 0
    # Pointers into each channel's sorted death list.
    idx = np.zeros(config.channels, dtype=np.int64)

    while alive > stop_alive:
        # Next death across channels.
        next_deaths = [
            deaths[idx[c], c] if idx[c] < config.n_superblocks else np.iinfo(np.int64).max
            for c in range(config.channels)
        ]
        channel = int(np.argmin(next_deaths))
        death_wear = int(next_deaths[channel])
        if death_wear == np.iinfo(np.int64).max:
            break
        delta = death_wear - wear
        if delta > 0:
            total_bytes += delta * alive * sb_bytes
            wear = death_wear
        idx[channel] += 1
        # Formable superblocks = min over channels of surviving blocks.
        survivors = config.n_superblocks - idx
        new_alive = int(survivors.min())
        if new_alive < alive:
            alive = new_alive
            result.curve.append(
                (total_bytes, config.n_superblocks - alive)
            )
    result.total_bytes = total_bytes
    return result
