"""Live dynamic superblock management inside the DES (paper Sec 5).

Attaches the SRT/RBT machinery to a running :class:`SimulatedSSD`:

* superblocks group the same (way, die, plane, block) position across
  every channel;
* an injected uncorrectable error drives the paper's protocol -- the
  first failure retires the superblock (the FTL migrates its valid
  pages and marks the blocks bad) and stocks the recycle tables; later
  failures are healed invisibly: the controller copies the dying
  sub-block's pages onto a recycled block with *global copyback* and
  installs an SRT remap, so every future FTL access to that position is
  redirected in hardware;
* the remap layer chains into the architecture datapath's ``remapper``
  hook, exactly where the Fig 15 performance experiments plug in.

The remap entry is installed only after the recycling copy completes,
so concurrent host reads always resolve to a programmed block.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Set, Tuple

from ..errors import ConfigError, MappingError
from ..flash import PhysAddr
from .manager import DynamicSuperblockManager

__all__ = ["LiveDynamicSuperblocks"]

#: Sub-block position within one channel.
_Pos = Tuple[int, int, int, int]


class LiveDynamicSuperblocks:
    """SRT/RBT-backed address remapping bound to a simulated SSD."""

    def __init__(self, ssd, srt_capacity: Optional[int] = 1024,
                 reserved_superblocks: int = 0):
        geometry = ssd.config.geometry
        self.ssd = ssd
        self.geometry = geometry
        self.n_superblocks = (geometry.ways * geometry.dies
                              * geometry.planes * geometry.blocks_per_plane)
        if reserved_superblocks >= self.n_superblocks:
            raise ConfigError("reservation exceeds superblock count")
        self.manager = DynamicSuperblockManager(
            self.n_superblocks, geometry.channels,
            srt_capacity=srt_capacity,
            reserved_superblocks=reserved_superblocks,
        )
        # Remaps being copied: resolve to the OLD location until done.
        self._pending: Set[Tuple[int, int]] = set()
        self.recycle_copies = 0
        self.recycled_pages_copied = 0
        self.ftl_migrations = 0

        if ssd._prefilled:
            raise ConfigError(
                "attach LiveDynamicSuperblocks before the SSD prefills"
            )
        # Reserved superblocks are invisible to the FTL from day one.
        for sb in range(self.manager.visible, self.n_superblocks):
            for channel in range(geometry.channels):
                ssd.blocks.mark_bad(self.subblock_addr(sb, channel))

        self._chained = ssd.datapath.remapper
        ssd.datapath.remapper = self.remap

    # -- addressing ---------------------------------------------------------

    def superblock_of(self, addr: PhysAddr) -> int:
        """Superblock id of the block containing *addr*."""
        geometry = self.geometry
        index = addr.way
        index = index * geometry.dies + addr.die
        index = index * geometry.planes + addr.plane
        return index * geometry.blocks_per_plane + addr.block

    def subblock_addr(self, superblock: int, channel: int,
                      page: int = 0) -> PhysAddr:
        """Physical address of (superblock, channel), page 0 by default."""
        geometry = self.geometry
        index, block = divmod(superblock, geometry.blocks_per_plane)
        index, plane = divmod(index, geometry.planes)
        way, die = divmod(index, geometry.dies)
        return PhysAddr(channel, way, die, plane, block, page)

    def remap(self, addr: PhysAddr) -> PhysAddr:
        """The hardware SRT lookup applied to every flash access."""
        superblock = self.superblock_of(addr)
        key = (superblock, addr.channel)
        if key not in self._pending:
            target_sb, _ch = self.manager.resolve(superblock, addr.channel)
            if target_sb != superblock:
                addr = self.subblock_addr(target_sb, addr.channel,
                                          addr.page)
        if self._chained is not None:
            addr = self._chained(addr)
        return addr

    # -- failure protocol --------------------------------------------------------

    def inject_uncorrectable(self, superblock: int, channel: int):
        """Report an ECC-uncorrectable error; returns the handler process.

        The returned process completes once the protocol's data movement
        (recycling copyback, or FTL migration) has finished.
        """
        if superblock not in self.manager.alive:
            raise MappingError(f"superblock {superblock} is already dead")
        outcome = self.manager.on_uncorrectable(superblock, channel)
        if outcome == "remapped":
            key = (superblock, channel)
            self._pending.add(key)
            return self.ssd.sim.process(
                self._recycle_copy(key), name="recycle_copy"
            )
        return self.ssd.sim.process(
            self._ftl_migration(superblock), name="ftl_migration"
        )

    def _recycle_copy(self, key: Tuple[int, int]) -> Generator:
        """Global-copyback the dying sub-block onto its recycled block."""
        superblock, channel = key
        target_sb, _ch = self.manager.resolve(superblock, channel)
        old_block = self.subblock_addr(superblock, channel)
        new_block = self.subblock_addr(target_sb, channel)
        info = self.ssd.blocks.info(old_block)
        datapath = self.ssd.datapath
        backend = datapath.backend
        # The recycled block still holds its previous superblock's data:
        # erase it before the copyback stream programs it.
        yield from datapath.gc_erase(new_block, apply_remap=False)
        for offset in sorted(info.valid):
            src = old_block._replace(page=offset)
            dst = new_block._replace(page=offset)
            yield from datapath.gc_move(src, dst, apply_remap=False)
            self.recycled_pages_copied += 1
        # The recycled block now mirrors the dead one; activate the remap.
        backend.mark_block_programmed(new_block)
        self._pending.discard(key)
        self.recycle_copies += 1

    def _ftl_migration(self, superblock: int) -> Generator:
        """First-failure path: the FTL rescues the whole superblock."""
        geometry = self.geometry
        blocks = self.ssd.blocks
        mapping = self.ssd.mapping
        datapath = self.ssd.datapath
        for channel in range(geometry.channels):
            block_addr = self.subblock_addr(superblock, channel)
            # A GC worker may own the block right now; let it finish.
            while blocks.info(block_addr).state == "collecting":
                yield self.ssd.sim.timeout(50.0)
            for src in blocks.valid_pages_of(block_addr):
                src_ppn = geometry.ppn_of(src)
                if mapping.reverse_lookup(src_ppn) is None:
                    blocks.invalidate(src)
                    continue
                dst = blocks.allocate_page(for_gc=True)
                yield from datapath.gc_move(src, dst)
                if mapping.reverse_lookup(src_ppn) is not None:
                    mapping.move(src_ppn, geometry.ppn_of(dst))
                    blocks.commit_page(dst, valid=True)
                    blocks.invalidate(src)
                else:
                    blocks.commit_page(dst, valid=False)
                    blocks.invalidate(src)
            blocks.mark_bad(block_addr)
        self.ftl_migrations += 1

    # -- reporting -----------------------------------------------------------------

    @property
    def bad_superblocks(self) -> int:
        """Superblocks the FTL believes are dead."""
        return self.manager.bad_superblocks

    def stats(self) -> Dict[str, int]:
        """Counters for reports and tests."""
        return {
            "bad_superblocks": self.manager.bad_superblocks,
            "recycle_copies": self.recycle_copies,
            "recycled_pages_copied": self.recycled_pages_copied,
            "ftl_migrations": self.ftl_migrations,
            "srt_active": sum(t.active_entries for t in self.manager.srt),
            "rbt_available": sum(len(r) for r in self.manager.rbt),
        }
