"""Dynamic superblock manager: the paper's Fig 6 walk-through logic.

Tracks superblocks as one sub-block per channel and drives the SRT/RBT
protocol when uncorrectable errors are reported:

1. First failure with an empty RBT: the superblock is sacrificed -- the
   FTL is notified, and every *other* channel's still-good sub-block is
   deposited into that channel's RBT.
2. Later failure with a recycled block available: the controller remaps
   the dead sub-block onto the recycled block in its SRT, performs the
   internal copy via global copyback, and the FTL is never told.

The manager is deliberately independent of the DES so it can be driven
directly by tests and examples; the endurance simulator implements the
same protocol in vectorized form.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..errors import ConfigError, MappingError
from .tables import RecycleBlockTable, SuperblockRemapTable

__all__ = ["DynamicSuperblockManager", "SubBlock"]

#: A sub-block is identified by (superblock id, channel).
SubBlock = Tuple[int, int]


class DynamicSuperblockManager:
    """SRT/RBT bookkeeping over ``n_superblocks`` x ``channels``."""

    def __init__(self, n_superblocks: int, channels: int,
                 srt_capacity: Optional[int] = 1024,
                 reserved_superblocks: int = 0):
        if n_superblocks < 1 or channels < 1:
            raise ConfigError("need >= 1 superblock and channel")
        if reserved_superblocks >= n_superblocks:
            raise ConfigError("reservation must leave visible superblocks")
        self.n_superblocks = n_superblocks
        self.channels = channels
        self.visible = n_superblocks - reserved_superblocks
        self.rbt = [RecycleBlockTable(c) for c in range(channels)]
        self.srt = [SuperblockRemapTable(c, srt_capacity)
                    for c in range(channels)]
        self.alive: Set[int] = set(range(self.visible))
        self.dead_subblocks: Set[SubBlock] = set()
        self.ftl_notifications: List[int] = []
        self.copyback_requests: List[Tuple[SubBlock, SubBlock]] = []
        # Reserved superblocks pre-populate the RBTs (RESERV policy).
        for sb in range(self.visible, n_superblocks):
            for channel in range(channels):
                self.rbt[channel].add((sb, channel))

    @property
    def bad_superblocks(self) -> int:
        """Visible superblocks no longer usable."""
        return self.visible - len(self.alive)

    def resolve(self, superblock: int, channel: int) -> SubBlock:
        """Physical sub-block serving (superblock, channel) after remap."""
        return self.srt[channel].lookup((superblock, channel))

    def on_uncorrectable(self, superblock: int, channel: int) -> str:
        """Handle an ECC-uncorrectable report from one controller.

        Returns ``"remapped"`` when the superblock survives via a
        recycled block, or ``"superblock_dead"`` when it is retired
        (FTL notified, survivors recycled).
        """
        if superblock not in self.alive:
            raise MappingError(f"superblock {superblock} already dead")
        failed = self.resolve(superblock, channel)
        self.dead_subblocks.add(failed)
        replacement = self.rbt[channel].take()
        if replacement is not None:
            key = (superblock, channel)
            # A previous remap for this position must be superseded.
            self.srt[channel].remove(key)
            if self.srt[channel].insert(key, replacement):
                # Valid pages move dead -> recycled via global copyback.
                self.copyback_requests.append((failed, replacement))
                return "remapped"
            # SRT full: put the block back and retire the superblock.
            self.rbt[channel].add(replacement)
        self._retire(superblock)
        return "superblock_dead"

    def _retire(self, superblock: int) -> None:
        self.alive.discard(superblock)
        self.ftl_notifications.append(superblock)
        for channel in range(self.channels):
            sub = self.resolve(superblock, channel)
            self.srt[channel].remove((superblock, channel))
            if sub not in self.dead_subblocks:
                self.rbt[channel].add(sub)
