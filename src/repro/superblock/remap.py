"""SRT address-remap layer for the DES (Fig 15 performance experiments).

Dynamic superblocks remap dead sub-blocks onto recycled blocks *within
the same channel*.  The remapped block generally sits on a different
way/die/plane than the original, so accesses that used to spread across
planes can collide -- the performance cost the paper sweeps against SRT
size in Fig 15(a).

:class:`SrtRemapper` models a populated SRT as a random *pairwise swap*
of block positions within each channel.  Swaps keep the remap bijective
(no two logical blocks share a physical block), so the FTL's allocation
and NAND programming discipline remain valid with no reserved blocks.
The remapper plugs into the datapath's ``remapper`` hook and is applied
to every flash access.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..errors import ConfigError
from ..flash import FlashGeometry, PhysAddr

__all__ = ["SrtRemapper"]

#: Block position within a channel: (way, die, plane, block).
_BlockPos = Tuple[int, int, int, int]


class SrtRemapper:
    """Per-channel random block swaps emulating *n_entries* SRT remaps."""

    def __init__(self, geometry: FlashGeometry, n_entries: int,
                 seed: int = 1):
        if n_entries < 0:
            raise ConfigError(f"negative SRT entries: {n_entries}")
        self.geometry = geometry
        self.n_entries = n_entries
        self._map: Dict[Tuple[int, _BlockPos], _BlockPos] = {}
        rng = random.Random(seed)
        positions_per_channel = (
            geometry.ways * geometry.dies * geometry.planes
            * geometry.blocks_per_plane
        )
        per_channel = min(n_entries, positions_per_channel // 2)
        for channel in range(geometry.channels):
            chosen = rng.sample(range(positions_per_channel),
                                2 * per_channel)
            for a_index, b_index in zip(chosen[::2], chosen[1::2]):
                a = self._pos_of(a_index)
                b = self._pos_of(b_index)
                self._map[(channel, a)] = b
                self._map[(channel, b)] = a
        self.lookups = 0
        self.hits = 0

    def _pos_of(self, index: int) -> _BlockPos:
        geometry = self.geometry
        index, block = divmod(index, geometry.blocks_per_plane)
        index, plane = divmod(index, geometry.planes)
        way, die = divmod(index, geometry.dies)
        return (way, die, plane, block)

    @property
    def active_entries(self) -> int:
        """Number of remapped block positions (2 per swap, per channel)."""
        return len(self._map)

    def __call__(self, addr: PhysAddr) -> PhysAddr:
        """Resolve *addr* through the SRT (identity when unmapped)."""
        self.lookups += 1
        key = (addr.channel, (addr.way, addr.die, addr.plane, addr.block))
        target = self._map.get(key)
        if target is None:
            return addr
        self.hits += 1
        way, die, plane, block = target
        return PhysAddr(addr.channel, way, die, plane, block, addr.page)
