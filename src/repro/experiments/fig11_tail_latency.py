"""Fig 11: 99 % tail latency across trace workloads.

Compares Baseline, BW, PreemptiveGC (BW + preemption), TinyTail (BW +
partial GC) and dSSD_f on MSR-shaped traces, reporting per-trace p99
latency and the average improvement factors the paper headlines
(dSSD_f vs Baseline / TinyTail / PreemptiveGC).
"""

from __future__ import annotations

from typing import Dict, List

from ..core import ArchPreset
from ..workloads import make_msr_workload
from .common import bench_durations, format_table, run_arch
from .runner import PointSpec, run_points

__all__ = ["run", "trace_point", "FIG11_TRACES", "CONFIGS"]

FIG11_TRACES = ("prn_0", "proj_0", "usr_0", "hm_0", "src2_0", "mds_0",
                "rsrch_0", "wdev_0")

CONFIGS = (
    ("baseline", ArchPreset.BASELINE, {}),
    ("bw", ArchPreset.BW, {}),
    ("preemptive", ArchPreset.BW, {"gc_policy": "preemptive"}),
    ("tinytail", ArchPreset.BW, {"gc_policy": "tinytail"}),
    ("dssd_f", ArchPreset.DSSD_F, {}),
)


def trace_point(trace: str, arch: str, quick: bool,
                gc_policy: str = None) -> Dict[str, float]:
    """p99 latency for one (trace, config) pair."""
    windows = bench_durations(quick)
    overrides = {"gc_policy": gc_policy} if gc_policy else {}
    workload = make_msr_workload(trace, n_requests=1500, seed=8)
    _ssd, result = run_arch(arch, workload,
                            duration_us=windows["duration_us"],
                            warmup_us=windows["warmup_us"],
                            **overrides)
    return {"p99_us": result.io_latency.p99}


def run(quick: bool = True) -> Dict:
    """Run every (trace, config) pair; return p99 grids and ratios."""
    traces = FIG11_TRACES[:4] if quick else FIG11_TRACES
    specs = [
        PointSpec.from_callable(
            trace_point,
            {"trace": trace, "arch": arch.value, "quick": quick,
             "gc_policy": overrides.get("gc_policy")},
            key=f"fig11:{trace}/{label}")
        for trace in traces
        for label, arch, overrides in CONFIGS
    ]
    points = iter(run_points(specs))
    p99: Dict[str, Dict[str, float]] = {}
    for trace in traces:
        p99[trace] = {
            label: next(points)["p99_us"] for label, _a, _o in CONFIGS
        }

    rows: List[List] = [
        [trace] + [p99[trace][label] for label, _a, _o in CONFIGS]
        for trace in traces
    ]
    improvements = {}
    for label, _arch, _o in CONFIGS:
        if label == "dssd_f":
            continue
        ratios = [
            p99[t][label] / max(p99[t]["dssd_f"], 1e-9) for t in traces
        ]
        improvements[label] = sum(ratios) / len(ratios)
    rows.append(
        ["dSSD_f gain"] + [improvements.get(label, 1.0)
                           for label, _a, _o in CONFIGS]
    )
    table = format_table(
        ["trace"] + [label for label, _a, _o in CONFIGS],
        rows,
        title="Fig 11: 99% tail latency (us) per trace; last row = "
              "mean p99 ratio vs dSSD_f",
    )
    return {"p99": p99, "improvements": improvements, "table": table}


if __name__ == "__main__":
    print(run(quick=True)["table"])
