"""Fig 17: multi-tenant QoS isolation through the NVMe frontend.

A rate-limited, latency-sensitive *victim* (open-loop Poisson writer)
shares the device with an unthrottled closed-loop *aggressor* that
saturates the host link.  Three scenarios per (arch, arbiter) cell:

* ``solo``          -- the victim alone: its intrinsic latency floor;
* ``shared``        -- victim + aggressor with the victim's QoS policy
  active (token-bucket rate limit, WRR weight, urgent datapath
  priority).  Acceptance: victim p99 within 2x of its solo run while
  the aggressor still saturates -- under both RR and WRR arbitration;
* ``shared_noqos``  -- same pair but the victim carries no priority
  edge, demonstrating the interference QoS removes (its mean latency
  inflates ~5x behind the aggressor's bulk transfers).

The sweep runs each scenario on the conventional baseline and on
dSSD_f.  The window is sized below the GC trigger so the comparison
isolates frontend arbitration + datapath priority from GC effects
(the GC story is Figs 7-13).
"""

from __future__ import annotations

from typing import Dict, List

from ..core import build_ssd, sim_geometry
from ..host import QosPolicy, TenantSpec
from ..report import tenant_result_row
from ..workloads import SyntheticWorkload
from .common import bench_durations, format_table
from .runner import PointSpec, run_points

__all__ = ["run", "tenant_point", "ARCHS", "FIG17_ARBITERS", "SCENARIOS"]

ARCHS = ("baseline", "dssd_f")
FIG17_ARBITERS = ("rr", "wrr")
SCENARIOS = ("solo", "shared", "shared_noqos")

#: Victim: open-loop 16 KB writer, 20k IOPS offered, 25k IOPS bucket.
VICTIM_RATE_IOPS = 20_000.0
VICTIM_LIMIT_IOPS = 25_000.0
#: Aggressor: closed-loop 32 KB writer at QD 28 (saturates the link).
AGGRESSOR_QD = 28


def _tenant_specs(scenario: str) -> List[TenantSpec]:
    """The tenant mix of one scenario (built inside the worker)."""
    victim_priority = 4 if scenario == "shared_noqos" else 0
    tenants = [
        TenantSpec(
            name="victim",
            workload=SyntheticWorkload(pattern="rand_write", io_size=16384),
            driver="poisson",
            rate_iops=VICTIM_RATE_IOPS,
            qos=QosPolicy(rate_iops=VICTIM_LIMIT_IOPS, burst_ops=4.0,
                          weight=4, priority=victim_priority),
            seed=7,
        ),
    ]
    if scenario != "solo":
        tenants.append(TenantSpec(
            name="aggressor",
            workload=SyntheticWorkload(pattern="rand_write", io_size=32768),
            driver="closed",
            queue_depth=AGGRESSOR_QD,
            qos=QosPolicy(weight=1, priority=4),
            seed=11,
        ))
    return tenants


def tenant_point(arch: str, arbiter: str, scenario: str,
                 quick: bool) -> Dict:
    """Per-tenant metrics for one (arch, arbiter, scenario) cell."""
    windows = bench_durations(quick)
    # Prefill well below the GC trigger: the measured window exercises
    # the frontend and datapath, not garbage collection.
    ssd = build_ssd(arch, geometry=sim_geometry(), arbiter=arbiter,
                    prefill_fraction=0.5)
    result = ssd.run_tenants(_tenant_specs(scenario),
                             duration_us=windows["duration_us"],
                             warmup_us=windows["warmup_us"])
    return {
        "tenants": {t.name: tenant_result_row(t) for t in result.tenants},
        "device_bandwidth_MBps": result.device.io_bandwidth,
        "device_p99_us": result.device.io_latency.p99,
    }


def run(quick: bool = True) -> Dict:
    """Run the isolation sweep; return per-tenant rows, ratios, table."""
    specs = [
        PointSpec.from_callable(
            tenant_point,
            {"arch": arch, "arbiter": "rr", "scenario": "solo",
             "quick": quick},
            key=f"fig17:{arch}/solo")
        for arch in ARCHS
    ] + [
        PointSpec.from_callable(
            tenant_point,
            {"arch": arch, "arbiter": arbiter, "scenario": scenario,
             "quick": quick},
            key=f"fig17:{arch}/{arbiter}/{scenario}")
        for arch in ARCHS
        for arbiter in FIG17_ARBITERS
        for scenario in ("shared", "shared_noqos")
    ]
    points = iter(run_points(specs))
    # The solo floor is arbiter-independent (a lone queue sees every
    # policy behave identically), so it is computed once per arch.
    solo: Dict[str, Dict] = {arch: next(points) for arch in ARCHS}
    cells: Dict[tuple, Dict] = {}
    for arch in ARCHS:
        for arbiter in FIG17_ARBITERS:
            for scenario in ("shared", "shared_noqos"):
                cells[(arch, arbiter, scenario)] = next(points)

    tenant_rows: List[Dict] = []
    table_rows: List[List] = []
    isolation: Dict[str, Dict[str, float]] = {}
    for arch in ARCHS:
        solo_victim = solo[arch]["tenants"]["victim"]
        solo_p99 = solo_victim["latency_p99_us"]
        table_rows.append([arch, "rr", "solo", "victim",
                           solo_victim["iops"],
                           solo_victim["bandwidth_MBps"],
                           solo_victim["latency_mean_us"],
                           solo_p99, 1.0])
        tenant_rows.append(dict(solo_victim, arch=arch, scenario="solo"))
        isolation[arch] = {}
        for arbiter in FIG17_ARBITERS:
            for scenario in ("shared", "shared_noqos"):
                cell = cells[(arch, arbiter, scenario)]
                for name in ("victim", "aggressor"):
                    row = cell["tenants"][name]
                    ratio = (row["latency_p99_us"] / solo_p99
                             if name == "victim" and solo_p99 > 0 else None)
                    table_rows.append([
                        arch, arbiter, scenario, name,
                        row["iops"], row["bandwidth_MBps"],
                        row["latency_mean_us"], row["latency_p99_us"],
                        ratio if ratio is not None else "-",
                    ])
                    tenant_rows.append(dict(row, arch=arch,
                                            scenario=scenario))
                victim_row = cell["tenants"]["victim"]
                if scenario == "shared" and solo_p99 > 0:
                    isolation[arch][arbiter] = (
                        victim_row["latency_p99_us"] / solo_p99
                    )

    table = format_table(
        ["arch", "arbiter", "scenario", "tenant", "iops",
         "bw_MBps", "mean_us", "p99_us", "p99_vs_solo"],
        table_rows,
        title="Fig 17: multi-tenant isolation -- rate-limited victim vs "
              "saturating aggressor (p99_vs_solo <= 2 required with QoS)",
    )
    return {
        "solo": solo,
        "cells": {"/".join(k): v for k, v in cells.items()},
        "tenant_rows": tenant_rows,
        "isolation": isolation,
        "table": table,
    }


if __name__ == "__main__":
    print(run(quick=True)["table"])
