"""Shared experiment infrastructure: run helpers and table formatting.

Every ``figXX`` module exposes ``run(quick=True) -> dict`` returning the
figure's data series plus a human-readable ``"table"`` string.  Quick
mode shrinks durations so the benchmark suite stays tractable; full mode
(``--full`` on the CLI) runs longer for smoother numbers.  Shapes (who
wins, where curves saturate) are stable across both.

Internally each figure declares its sweep as a list of
:class:`~repro.experiments.runner.PointSpec` entries — picklable
``(function, params)`` descriptions of one simulation each — and hands
them to :func:`~repro.experiments.runner.run_points`, which fans them
out over worker processes and caches their results.  The helpers here
(:func:`run_arch`, :func:`steady_run`, :func:`gc_burst_run`) are the
building blocks those point functions call *inside* a worker; anything
they receive must be reconstructible from the spec's plain-data params
(e.g. :func:`decode_timing` turns ``"tlc"`` back into a timing object).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import ArchPreset, build_ssd, sim_geometry
from ..errors import ConfigError
from ..workloads import SyntheticWorkload

__all__ = [
    "ARCH_ORDER",
    "bench_durations",
    "decode_timing",
    "format_table",
    "gc_burst_run",
    "normalized",
    "run_arch",
    "steady_run",
]

#: Table 2 presentation order.
ARCH_ORDER = (ArchPreset.BASELINE, ArchPreset.BW, ArchPreset.DSSD,
              ArchPreset.DSSD_B, ArchPreset.DSSD_F)


def bench_durations(quick: bool) -> Dict[str, float]:
    """Run/warmup windows (us) for quick vs full mode."""
    if quick:
        return {"duration_us": 30_000.0, "warmup_us": 10_000.0}
    return {"duration_us": 80_000.0, "warmup_us": 30_000.0}


def run_arch(arch, workload, duration_us: float, warmup_us: float = 0.0,
             remapper=None, **overrides):
    """Build an SSD for *arch* (with overrides) and run *workload*."""
    overrides.setdefault("geometry", sim_geometry())
    ssd = build_ssd(arch, remapper=remapper, **overrides)
    return ssd, ssd.run(workload, duration_us=duration_us,
                        warmup_us=warmup_us)


def steady_run(arch, quick: bool = True, io_size: int = 32768,
               pattern: str = "seq_write", **overrides):
    """Standard steady-state write-pressure run (Fig 7/8 style)."""
    windows = bench_durations(quick)
    workload = SyntheticWorkload(pattern=pattern, io_size=io_size)
    return run_arch(arch, workload, **windows, **overrides)


def gc_burst_run(arch, quick: bool = True, **overrides):
    """A GC-only burst: heavy pre-invalidation, no host traffic.

    The device is prefilled below the GC trigger; a single episode runs
    to the stop threshold with no competing I/O, isolating the GC
    datapath (used by the fNoC sweeps, Fig 12/13).
    Returns ``(ssd, episode_dict)``.
    """
    overrides.setdefault(
        "geometry",
        sim_geometry(ways=4, planes=4, blocks_per_plane=16),
    )
    overrides.setdefault("prefill_fraction", 0.93)
    overrides.setdefault("gc_trigger_free_fraction", 0.10)
    overrides.setdefault("gc_stop_free_fraction", 0.16)
    ssd = build_ssd(arch, **overrides)
    workload = SyntheticWorkload(pattern="seq_write", limit=0)
    duration = 120_000.0 if quick else 600_000.0
    ssd.run(workload, duration_us=duration, trigger_gc=True)
    episodes = ssd.gc.stats.episode_log
    if episodes:
        episode = episodes[0]
    else:
        # Episode still running at cutoff: report the partial burst.
        episode = {
            "start": 0.0,
            "end": ssd.sim.now,
            "pages": ssd.gc.stats.pages_moved,
            "blocks": ssd.gc.stats.blocks_erased,
        }
    duration_us = max(episode["end"] - episode["start"], 1e-9)
    episode = dict(episode)
    episode["pages_per_us"] = episode["pages"] / duration_us
    episode["duration_us"] = duration_us
    return ssd, episode


def decode_timing(name: str):
    """Flash timing preset by spec name (``"ull"`` / ``"tlc"``).

    Point-spec params must be JSON-able, so specs carry the preset name
    and point functions decode it back to the timing object.
    """
    from ..flash import TLC_TIMING, ULL_TIMING

    presets = {"ull": ULL_TIMING, "tlc": TLC_TIMING}
    try:
        return presets[name]
    except KeyError:
        raise ConfigError(
            f"unknown timing preset {name!r}; available: {sorted(presets)}"
        )


def normalized(values: Sequence[float],
               base: Optional[float] = None) -> List[float]:
    """Values divided by *base* (default: the first value)."""
    reference = base if base is not None else values[0]
    if reference == 0:
        return [0.0 for _v in values]
    return [v / reference for v in values]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width ASCII table used by every experiment printout."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[col])),
            max((len(row[col]) for row in str_rows), default=0))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w)
                                for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
