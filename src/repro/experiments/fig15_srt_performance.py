"""Fig 15: performance cost of SRT remapping.

(a) Worst-case synthetic sweep: random READ and WRITE I/O on ULL- and
TLC-based devices as the number of populated SRT entries grows.  Remaps
scramble block positions within each channel, so accesses that used to
spread across planes collide -- write-heavy TLC suffers most (paper: up
to ~2x at 2k entries).

(b) Trace evaluation of the endurance-per-performance-overhead metric
(higher is better): RESERV's endurance gain divided by its latency
overhead, normalized to the baseline, split into read- and
write-intensive workload groups.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import ArchPreset, sim_geometry
from ..superblock import SrtRemapper, run_endurance
from ..workloads import READ_INTENSIVE, WRITE_INTENSIVE, make_msr_workload
from .common import bench_durations, decode_timing, format_table, run_arch
from .runner import PointSpec, run_points

__all__ = ["run", "remap_latency_point", "trace_latency_point",
           "endurance_gain_point", "SRT_ENTRY_COUNTS", "FIG15B_TRACES"]

SRT_ENTRY_COUNTS = (0, 16, 64, 256)

FIG15B_TRACES = ("usr_2", "hm_1", "prn_1", "web_0",     # read-intensive
                 "prn_0", "src1_2", "mds_0", "rsrch_0")  # write-intensive


def remap_latency_point(entries: int, timing: str, pattern: str,
                        quick: bool) -> Dict[str, float]:
    """Mean latency with *entries* populated SRT remaps (part a)."""
    flash_timing = decode_timing(timing)
    geometry = sim_geometry(page_size=flash_timing.page_size)
    remapper = SrtRemapper(geometry, entries, seed=13) if entries else None
    windows = bench_durations(quick)
    from ..workloads import SyntheticWorkload

    workload = SyntheticWorkload(pattern=pattern,
                                 io_size=flash_timing.page_size)
    _ssd, result = run_arch(ArchPreset.DSSD_F, workload,
                            duration_us=windows["duration_us"],
                            warmup_us=windows["warmup_us"],
                            geometry=geometry, timing=flash_timing,
                            remapper=remapper)
    return {"mean_us": result.io_latency.mean}


def trace_latency_point(trace: str, remap_entries: int,
                        quick: bool) -> Dict[str, float]:
    """Mean trace latency with/without the RESERV remapper (part b)."""
    windows = bench_durations(quick)
    geometry = sim_geometry()
    remapper = (SrtRemapper(geometry, remap_entries, seed=17)
                if remap_entries else None)
    workload = make_msr_workload(trace, n_requests=1200, seed=6)
    _ssd, result = run_arch(ArchPreset.DSSD_F, workload,
                            duration_us=windows["duration_us"],
                            warmup_us=windows["warmup_us"],
                            geometry=geometry, remapper=remapper)
    return {"mean_us": result.io_latency.mean}


def endurance_gain_point() -> Dict[str, float]:
    """RESERV's endurance gain over baseline (part b numerator)."""
    base = run_endurance(policy="baseline", n_superblocks=256, seed=5)
    reserv = run_endurance(policy="reserv", n_superblocks=256, seed=5)
    return {"gain": (reserv.bytes_until_bad_fraction(0.10)
                     / base.bytes_until_bad_fraction(0.10))}


_PART_A_CASES = (
    ("ULL/read", "ull", "rand_read"),
    ("ULL/write", "ull", "rand_write"),
    ("TLC/read", "tlc", "rand_read"),
    ("TLC/write", "tlc", "rand_write"),
)


def _part_a(quick: bool) -> Dict:
    counts = SRT_ENTRY_COUNTS[:3] if quick else SRT_ENTRY_COUNTS
    shown = _PART_A_CASES[:2] if quick else _PART_A_CASES
    specs = [
        PointSpec.from_callable(
            remap_latency_point,
            {"entries": entries, "timing": timing, "pattern": pattern,
             "quick": quick},
            key=f"fig15a:{label}/{entries}e")
        for label, timing, pattern in shown
        for entries in counts
    ]
    points = iter(run_points(specs))
    grid: Dict[str, List[float]] = {}
    for label, _timing, _pattern in shown:
        latencies = [next(points)["mean_us"] for _entries in counts]
        base = max(latencies[0], 1e-9)
        grid[label] = [lat / base for lat in latencies]
    rows = [[label] + values for label, values in grid.items()]
    table = format_table(
        ["case"] + [f"{n} entries" for n in counts],
        rows,
        title="Fig 15(a): normalized latency vs populated SRT entries",
    )
    return {"entries": list(counts), "normalized_latency": grid,
            "table": table}


def _part_b(quick: bool) -> Dict:
    """Endurance / performance-overhead metric per trace."""
    traces = FIG15B_TRACES[:4] if quick else FIG15B_TRACES
    specs = [PointSpec.from_callable(endurance_gain_point, {},
                                     key="fig15b:endurance_gain")]
    for trace in traces:
        for entries in (0, 64):
            specs.append(PointSpec.from_callable(
                trace_latency_point,
                {"trace": trace, "remap_entries": entries,
                 "quick": quick},
                key=f"fig15b:{trace}/{entries}e"))
    points = iter(run_points(specs))
    endurance_gain = next(points)["gain"]
    metric: Dict[str, float] = {}
    for trace in traces:
        base_lat = next(points)["mean_us"]
        reserv_lat = next(points)["mean_us"]
        overhead = reserv_lat / max(base_lat, 1e-9)
        metric[trace] = endurance_gain / max(overhead, 1e-9)
    read_group = [metric[t] for t in traces if t in READ_INTENSIVE]
    write_group = [metric[t] for t in traces if t in WRITE_INTENSIVE]
    rows = [[t, metric[t],
             "read" if t in READ_INTENSIVE else "write"]
            for t in traces]
    if read_group:
        rows.append(["MEAN(read-intensive)",
                     sum(read_group) / len(read_group), ""])
    if write_group:
        rows.append(["MEAN(write-intensive)",
                     sum(write_group) / len(write_group), ""])
    table = format_table(
        ["trace", "endurance/overhead vs base", "group"],
        rows,
        title="Fig 15(b): normalized endurance-per-overhead (>1 means "
              "dSSD wins)",
    )
    return {"metric": metric, "endurance_gain": endurance_gain,
            "table": table}


def run(quick: bool = True) -> Dict:
    """Both panels."""
    a = _part_a(quick)
    b = _part_b(quick)
    return {"part_a": a, "part_b": b,
            "table": a["table"] + "\n\n" + b["table"]}


if __name__ == "__main__":
    print(run(quick=True)["table"])
