"""Fig 2: GC interference with I/O on a conventional SSD.

Reproduces the motivation experiment: a baseline SSD under sequential
writes at QD 64, low-bandwidth (4 KB, one plane per access) versus
high-bandwidth (32 KB, all planes via multi-plane-equivalent striping).
Reports the per-millisecond I/O bandwidth timeline, the system-bus
utilization split by traffic class, and the GC episode windows --
showing the bandwidth collapse while GC shares the front-end.
"""

from __future__ import annotations

from typing import Dict

from ..core import ArchPreset
from ..workloads import SyntheticWorkload
from .common import bench_durations, format_table, run_arch
from .runner import PointSpec, run_points

__all__ = ["run", "scenario_point"]


def scenario_point(io_size: int, quick: bool) -> Dict:
    """One motivation scenario (Baseline, one I/O size): timelines + GC."""
    windows = bench_durations(quick)
    workload = SyntheticWorkload(pattern="seq_write", io_size=io_size)
    ssd, result = run_arch(ArchPreset.BASELINE, workload,
                           duration_us=windows["duration_us"],
                           warmup_us=0.0)
    times, rates = result.bandwidth_timeline
    episodes = [(e["start"], e["end"]) for e in ssd.gc.stats.episode_log]
    if ssd.gc.active and ssd.gc._episode_start is not None:
        episodes.append((ssd.gc._episode_start, ssd.sim.now))

    def in_gc(t: float) -> bool:
        return any(start <= t < end for start, end in episodes)

    gc_rates = [r for t, r in zip(times, rates) if in_gc(t)]
    quiet_rates = [r for t, r in zip(times, rates) if not in_gc(t)]
    return {
        "io_size": io_size,
        "timeline": (times, rates),
        "bus_io_timeline": result.bus_io_timeline,
        "bus_gc_timeline": result.bus_gc_timeline,
        "gc_windows": episodes,
        "bw_during_gc": (sum(gc_rates) / len(gc_rates)) if gc_rates else 0.0,
        "bw_quiet": (sum(quiet_rates) / len(quiet_rates))
                    if quiet_rates else 0.0,
        "bus_io_utilization": result.bus_io_utilization,
        "bus_gc_utilization": result.bus_gc_utilization,
    }


def run(quick: bool = True) -> Dict:
    """Run both scenarios; returns series plus a summary table."""
    specs = [
        PointSpec.from_callable(scenario_point,
                                {"io_size": io_size, "quick": quick},
                                key=f"fig2:{label}")
        for label, io_size in (("low", 4096), ("high", 32768))
    ]
    low, high = run_points(specs)
    rows = []
    for label, sc in (("low (4KB)", low), ("high (32KB)", high)):
        drop = 0.0
        if sc["bw_quiet"] > 0:
            drop = 1.0 - sc["bw_during_gc"] / sc["bw_quiet"]
        rows.append([
            label,
            sc["bw_quiet"],
            sc["bw_during_gc"],
            drop * 100.0,
            sc["bus_io_utilization"],
            sc["bus_gc_utilization"],
            len(sc["gc_windows"]),
        ])
    table = format_table(
        ["scenario", "IO MB/s (quiet)", "IO MB/s (GC)", "drop %",
         "bus util (io)", "bus util (gc)", "GC episodes"],
        rows,
        title="Fig 2: I/O bandwidth and bus utilization during GC "
              "(Baseline)",
    )
    return {"low": low, "high": high, "table": table}


if __name__ == "__main__":
    print(run(quick=True)["table"])
