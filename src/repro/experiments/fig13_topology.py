"""Fig 13: fNoC topology and router-buffer sensitivity.

(a) 1-D mesh vs ring vs crossbar at *equal bisection bandwidth*: ring
channels are half as wide as mesh channels (twice as many cross the
cut), so serialization hurts it; the mesh approaches the crossbar once
bandwidth is sufficient.

(b) Router input-buffer depth at scarce vs ample bandwidth: buffers
matter only when the fabric is the bottleneck.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import ArchPreset
from ..noc import Crossbar, Mesh1D, Ring
from .common import format_table, gc_burst_run
from .runner import PointSpec, run_points

__all__ = ["run", "topo_point", "BISECTIONS", "BUFFER_DEPTHS"]

#: Bisection bandwidths in bytes/us (0.5 .. 4 GB/s).
BISECTIONS = (500.0, 1000.0, 2000.0, 4000.0)
#: 4 KiB pages packetize to 17 flits: depths below that force wormhole
#: coupling between hops; deeper buffers absorb whole packets.
BUFFER_DEPTHS = (2, 8, 24, 64)

_TOPOLOGIES = {"mesh1d": Mesh1D, "ring": Ring, "crossbar": Crossbar}


def topo_point(topology: str, bisection: float, quick: bool,
               buffer_flits: int = 16) -> Dict[str, float]:
    """GC burst rate for one (topology, bisection, buffer) fabric."""
    channel_bw = _TOPOLOGIES[topology](8).channel_bandwidth_for_bisection(
        bisection
    )
    _ssd, episode = gc_burst_run(
        ArchPreset.DSSD_F, quick=quick,
        fnoc_topology=topology,
        fnoc_channel_bw=channel_bw,
        fnoc_buffer_flits=buffer_flits,
    )
    return {"pages_per_us": episode["pages_per_us"]}


def _spec(topology, bisection, quick, buffer_flits=16) -> PointSpec:
    return PointSpec.from_callable(
        topo_point,
        {"topology": topology, "bisection": bisection, "quick": quick,
         "buffer_flits": buffer_flits},
        key=f"fig13:{topology}/Bb{bisection:g}/{buffer_flits}fl")


def run(quick: bool = True) -> Dict:
    """Topology and buffer sweeps; returns pages/us grids."""
    bisections = BISECTIONS[:3] if quick else BISECTIONS
    depths = BUFFER_DEPTHS[:3] if quick else BUFFER_DEPTHS
    buffer_cases = (("scarce", 500.0), ("ample", 4000.0))
    specs = [
        _spec(topology, b, quick)
        for topology in _TOPOLOGIES for b in bisections
    ] + [
        _spec("mesh1d", bisection, quick, buffer_flits=depth)
        for _label, bisection in buffer_cases for depth in depths
    ]
    points = iter(run_points(specs))

    part_a: Dict[str, List[float]] = {}
    for topology in _TOPOLOGIES:
        part_a[topology] = [
            next(points)["pages_per_us"] for _b in bisections
        ]
    part_b: Dict[str, Dict[int, float]] = {}
    for label, _bisection in buffer_cases:
        part_b[label] = {
            depth: next(points)["pages_per_us"] for depth in depths
        }

    rows_a = [
        [topology] + part_a[topology] for topology in _TOPOLOGIES
    ]
    table_a = format_table(
        ["topology"] + [f"Bb={b / 1000:.1f}GB/s" for b in bisections],
        rows_a,
        title="Fig 13(a): GC pages/us at equal bisection bandwidth",
    )
    rows_b = [
        [label] + [part_b[label][d] for d in depths]
        for label in part_b
    ]
    table_b = format_table(
        ["bandwidth"] + [f"{d} flits" for d in depths],
        rows_b,
        title="Fig 13(b): GC pages/us vs router buffer depth (mesh)",
    )
    return {"topologies": part_a, "buffers": part_b,
            "bisections": list(bisections),
            "table": table_a + "\n\n" + table_b}


if __name__ == "__main__":
    print(run(quick=True)["table"])
