"""Fig 9: latency breakdown versus plane count for I/O and copyback.

Write-through I/O (so request latency reflects the flash path) and GC
page-move latency, decomposed into per-resource contention/service time,
as the number of planes per die grows from 1 to 8.  The paper's shape:
more planes shift contention from the flash chip to the buses; the
Baseline keeps a growing system-bus component that dSSD_f eliminates,
replaced by a smaller fNoC component.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import ArchPreset, sim_geometry
from .common import format_table, steady_run
from .runner import PointSpec, run_points

__all__ = ["run", "breakdown_point", "PLANE_COUNTS"]

PLANE_COUNTS = (1, 2, 4, 8)

_SHOWN = ("flash_chip", "flash_bus", "system_bus", "dram", "ecc", "fnoc")


def breakdown_point(arch: str, planes: int, quick: bool) -> Dict:
    """I/O and copyback latency breakdowns at one plane count."""
    geometry = sim_geometry(planes=planes)
    _ssd, result = steady_run(
        arch, quick=quick, geometry=geometry,
        write_policy="writethrough",
    )
    return {
        "io": result.io_breakdown.as_dict(),
        "copyback": result.gc_breakdown.as_dict(),
    }


def run(quick: bool = True) -> Dict:
    """Sweep plane counts on Baseline and dSSD_f; return breakdowns."""
    sweep = [(arch, planes)
             for arch in (ArchPreset.BASELINE, ArchPreset.DSSD_F)
             for planes in PLANE_COUNTS]
    specs = [
        PointSpec.from_callable(
            breakdown_point,
            {"arch": arch.value, "planes": planes, "quick": quick},
            key=f"fig9:{arch.value}/p{planes}")
        for arch, planes in sweep
    ]
    data: Dict[str, Dict] = {"io": {}, "copyback": {}}
    rows_io: List[List] = []
    rows_cb: List[List] = []
    for (arch, planes), point in zip(sweep, run_points(specs)):
        io_bd = point["io"]
        cb_bd = point["copyback"]
        key = f"{arch.value}/p{planes}"
        data["io"][key] = io_bd
        data["copyback"][key] = cb_bd
        rows_io.append([arch.value, planes]
                       + [io_bd[c] for c in _SHOWN])
        rows_cb.append([arch.value, planes]
                       + [cb_bd[c] for c in _SHOWN])
    headers = ["arch", "planes"] + list(_SHOWN)
    table = (
        format_table(headers, rows_io,
                     title="Fig 9(a): I/O latency breakdown (us)")
        + "\n\n"
        + format_table(headers, rows_cb,
                       title="Fig 9(b): copyback latency breakdown (us)")
    )
    data["table"] = table
    return data


if __name__ == "__main__":
    print(run(quick=True)["table"])
