"""Fig 16: SRT sizing.

(a) Endurance improvement versus SRT capacity for different device
sizes (superblock counts): larger devices need more entries before the
benefit saturates, and saturation lands near ~1k entries per controller
for the paper's configuration.

(b) Active SRT entries versus remap events with an unbounded table:
occupancy climbs while static superblocks remain and then plateaus --
the demand curve that justifies the ~1k-entry hardware budget.
"""

from __future__ import annotations

from typing import Dict, List

from ..superblock import run_endurance
from .common import format_table
from .runner import PointSpec, run_points

__all__ = ["run", "capacity_point", "occupancy_point",
           "SRT_CAPACITIES", "DEVICE_SIZES"]

SRT_CAPACITIES = (8, 32, 128, 512, None)
DEVICE_SIZES = (256, 512, 1024)


def capacity_point(policy: str, n_superblocks: int, srt_capacity: int,
                   threshold: float, seed: int = 5) -> Dict:
    """Lifetime at one (policy, device size, SRT capacity) corner."""
    result = run_endurance(policy=policy, n_superblocks=n_superblocks,
                           srt_capacity=srt_capacity, seed=seed)
    return {"until_bytes": result.bytes_until_bad_fraction(threshold)}


def occupancy_point(policy: str, n_superblocks: int,
                    seed: int = 5) -> Dict:
    """Channel-0 SRT occupancy log with an unbounded table (part b)."""
    result = run_endurance(policy=policy, srt_capacity=None,
                           n_superblocks=n_superblocks, seed=seed)
    return {
        "occupancy": [[event, active]
                      for event, active in result.srt_occupancy[0]],
        "max_active": result.max_active_srt_entries,
    }


def run(quick: bool = True) -> Dict:
    """Capacity x device-size sweep plus the occupancy curve."""
    sizes = DEVICE_SIZES[:2] if quick else DEVICE_SIZES
    threshold = 0.30
    specs = []
    for n_superblocks in sizes:
        specs.append(PointSpec.from_callable(
            capacity_point,
            {"policy": "baseline", "n_superblocks": n_superblocks,
             "srt_capacity": 1024, "threshold": threshold},
            key=f"fig16a:base/{n_superblocks}sb"))
        for capacity in SRT_CAPACITIES:
            specs.append(PointSpec.from_callable(
                capacity_point,
                {"policy": "recycled", "n_superblocks": n_superblocks,
                 "srt_capacity": capacity, "threshold": threshold},
                key=f"fig16a:recycled/{n_superblocks}sb/"
                    f"{capacity or 'inf'}e"))
    specs += [
        PointSpec.from_callable(
            occupancy_point,
            {"policy": policy, "n_superblocks": sizes[-1]},
            key=f"fig16b:{policy}")
        for policy in ("recycled", "reserv")
    ]
    points = iter(run_points(specs))

    grid: Dict[int, List[float]] = {}
    for n_superblocks in sizes:
        base_until = next(points)["until_bytes"]
        grid[n_superblocks] = [
            next(points)["until_bytes"] / base_until
            for _capacity in SRT_CAPACITIES
        ]
    rows_a = [
        [f"{n} superblocks"] + grid[n] for n in sizes
    ]
    headers = ["device"] + [
        "inf" if c is None else f"{c} entries" for c in SRT_CAPACITIES
    ]
    table_a = format_table(
        headers, rows_a,
        title="Fig 16(a): endurance improvement vs SRT capacity",
    )

    # (b) occupancy with an infinite SRT.
    recycled = next(points)
    reserv = next(points)
    occupancy = recycled["occupancy"]
    occupancy_reserv = reserv["occupancy"]
    sample = occupancy[:: max(1, len(occupancy) // 8)]
    rows_b = [[event, active] for event, active in sample]
    table_b = format_table(
        ["remap events", "active SRT entries"],
        rows_b,
        title="Fig 16(b): active entries vs remap events (RECYCLED, "
              "channel 0); plateau = table demand",
    )
    return {
        "grid": grid,
        "capacities": list(SRT_CAPACITIES),
        "occupancy_recycled": occupancy,
        "occupancy_reserv": occupancy_reserv,
        "max_active_recycled": recycled["max_active"],
        "max_active_reserv": reserv["max_active"],
        "table": table_a + "\n\n" + table_b,
    }


if __name__ == "__main__":
    print(run(quick=True)["table"])
