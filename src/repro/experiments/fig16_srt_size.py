"""Fig 16: SRT sizing.

(a) Endurance improvement versus SRT capacity for different device
sizes (superblock counts): larger devices need more entries before the
benefit saturates, and saturation lands near ~1k entries per controller
for the paper's configuration.

(b) Active SRT entries versus remap events with an unbounded table:
occupancy climbs while static superblocks remain and then plateaus --
the demand curve that justifies the ~1k-entry hardware budget.
"""

from __future__ import annotations

from typing import Dict, List

from ..superblock import run_endurance
from .common import format_table

__all__ = ["run", "SRT_CAPACITIES", "DEVICE_SIZES"]

SRT_CAPACITIES = (8, 32, 128, 512, None)
DEVICE_SIZES = (256, 512, 1024)


def run(quick: bool = True) -> Dict:
    """Capacity x device-size sweep plus the occupancy curve."""
    sizes = DEVICE_SIZES[:2] if quick else DEVICE_SIZES
    threshold = 0.30
    grid: Dict[int, List[float]] = {}
    for n_superblocks in sizes:
        base = run_endurance(policy="baseline",
                             n_superblocks=n_superblocks, seed=5)
        base_until = base.bytes_until_bad_fraction(threshold)
        row = []
        for capacity in SRT_CAPACITIES:
            result = run_endurance(policy="recycled",
                                   n_superblocks=n_superblocks,
                                   srt_capacity=capacity, seed=5)
            row.append(result.bytes_until_bad_fraction(threshold)
                       / base_until)
        grid[n_superblocks] = row
    rows_a = [
        [f"{n} superblocks"] + grid[n] for n in sizes
    ]
    headers = ["device"] + [
        "inf" if c is None else f"{c} entries" for c in SRT_CAPACITIES
    ]
    table_a = format_table(
        headers, rows_a,
        title="Fig 16(a): endurance improvement vs SRT capacity",
    )

    # (b) occupancy with an infinite SRT.
    result = run_endurance(policy="recycled", srt_capacity=None,
                           n_superblocks=sizes[-1], seed=5)
    occupancy = result.srt_occupancy[0]
    reserv = run_endurance(policy="reserv", srt_capacity=None,
                           n_superblocks=sizes[-1], seed=5)
    occupancy_reserv = reserv.srt_occupancy[0]
    sample = occupancy[:: max(1, len(occupancy) // 8)]
    rows_b = [[event, active] for event, active in sample]
    table_b = format_table(
        ["remap events", "active SRT entries"],
        rows_b,
        title="Fig 16(b): active entries vs remap events (RECYCLED, "
              "channel 0); plateau = table demand",
    )
    return {
        "grid": grid,
        "capacities": list(SRT_CAPACITIES),
        "occupancy_recycled": occupancy,
        "occupancy_reserv": occupancy_reserv,
        "max_active_recycled": result.max_active_srt_entries,
        "max_active_reserv": reserv.max_active_srt_entries,
        "table": table_a + "\n\n" + table_b,
    }


if __name__ == "__main__":
    print(run(quick=True)["table"])
