"""Fig 10: DRAM-cached I/O under GC, and per-workload average latency.

(a) 100 % DRAM-hit I/O while a GC burst runs: the I/O path only needs
the system bus and DRAM, so any slowdown is pure front-end interference
from GC -- which the decoupled architectures remove.  Reports achieved
I/O bandwidth and p99 tail latency per architecture.

(b) Average I/O latency over trace workloads for Baseline, BW, TinyTail
(BW + partial GC) and dSSD_f.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import ArchPreset
from ..workloads import SyntheticWorkload, make_msr_workload
from .common import ARCH_ORDER, bench_durations, format_table, run_arch
from .runner import PointSpec, run_points

__all__ = ["run", "dram_hit_point", "trace_point", "FIG10B_TRACES"]

FIG10B_TRACES = ("prn_0", "usr_0", "hm_0", "usr_2", "proj_0", "web_0")


def dram_hit_point(arch: str, quick: bool) -> Dict[str, float]:
    """100 % DRAM-hit I/O while a GC burst runs (part a)."""
    windows = bench_durations(quick)
    workload = SyntheticWorkload(pattern="seq_write", io_size=32768,
                                 dram_hit_fraction=1.0)
    # Prefill below the trigger so a GC burst starts immediately and
    # keeps running against pre-invalidated blocks.
    _ssd, result = run_arch(arch, workload,
                            duration_us=windows["duration_us"],
                            warmup_us=windows["warmup_us"] / 2.0,
                            prefill_fraction=0.93)
    return {
        "io_bandwidth": result.io_bandwidth,
        "p99_us": result.io_latency.p99,
        "mean_us": result.io_latency.mean,
        "gc_pages": result.gc.pages_moved,
    }


def trace_point(trace: str, arch: str, quick: bool,
                gc_policy: str = None) -> Dict[str, float]:
    """Mean I/O latency for one (trace, config) pair (part b)."""
    windows = bench_durations(quick)
    overrides = {"gc_policy": gc_policy} if gc_policy else {}
    workload = make_msr_workload(trace, n_requests=1500, seed=4)
    _ssd, result = run_arch(arch, workload,
                            duration_us=windows["duration_us"],
                            warmup_us=windows["warmup_us"],
                            **overrides)
    return {"mean_us": result.io_latency.mean}


def run(quick: bool = True) -> Dict:
    """Run part (a) across architectures and part (b) across traces."""
    configs = (
        ("baseline", ArchPreset.BASELINE, None),
        ("bw", ArchPreset.BW, None),
        ("tinytail", ArchPreset.BW, "tinytail"),
        ("dssd_f", ArchPreset.DSSD_F, None),
    )
    specs = [
        PointSpec.from_callable(dram_hit_point,
                                {"arch": arch.value, "quick": quick},
                                key=f"fig10a:{arch.value}")
        for arch in ARCH_ORDER
    ] + [
        PointSpec.from_callable(
            trace_point,
            {"trace": trace, "arch": arch.value, "quick": quick,
             "gc_policy": policy},
            key=f"fig10b:{trace}/{label}")
        for trace in FIG10B_TRACES
        for label, arch, policy in configs
    ]
    points = iter(run_points(specs))

    part_a: Dict[str, Dict[str, float]] = {}
    rows_a: List[List] = []
    for arch in ARCH_ORDER:
        point = next(points)
        part_a[arch.value] = point
        rows_a.append([arch.value, point["io_bandwidth"],
                       point["mean_us"], point["p99_us"]])
    base_p99 = max(part_a["baseline"]["p99_us"], 1e-9)
    for row, arch in zip(rows_a, ARCH_ORDER):
        row.append(base_p99 / max(part_a[arch.value]["p99_us"], 1e-9))
    table_a = format_table(
        ["arch", "IO MB/s", "mean us", "p99 us", "tail gain vs base"],
        rows_a,
        title="Fig 10(a): 100% DRAM-hit I/O during GC",
    )

    part_b: Dict[str, Dict[str, float]] = {}
    for trace in FIG10B_TRACES:
        part_b[trace] = {
            label: next(points)["mean_us"] for label, _a, _p in configs
        }
    rows_b = [
        [trace] + [part_b[trace][label] for label, _a, _p in configs]
        for trace in FIG10B_TRACES
    ]
    means = [
        sum(part_b[t][label] for t in FIG10B_TRACES) / len(FIG10B_TRACES)
        for label, _a, _p in configs
    ]
    rows_b.append(["MEAN"] + means)
    table_b = format_table(
        ["trace"] + [label for label, _a, _p in configs],
        rows_b,
        title="Fig 10(b): average I/O latency (us) per workload",
    )
    return {"part_a": part_a, "part_b": part_b,
            "table": table_a + "\n\n" + table_b}


if __name__ == "__main__":
    print(run(quick=True)["table"])
