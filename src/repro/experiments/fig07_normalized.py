"""Fig 7: normalized I/O and GC performance across Table 2 architectures.

(a) Steady-state write pressure with continuous GC: I/O bandwidth and
GC service rate, both normalized to Baseline, for Baseline / BW / dSSD /
dSSD_b / dSSD_f at equal total on-chip bandwidth.

(b) I/O system-bus utilization during GC for the two extremes the paper
plots: all-hit ("DRAM Write") and all-miss ("Flash Write") I/O.
"""

from __future__ import annotations

from typing import Dict

from ..workloads import SyntheticWorkload
from .common import ARCH_ORDER, bench_durations, format_table, run_arch, \
    steady_run
from .runner import PointSpec, run_points

__all__ = ["run", "steady_point", "bus_util_point"]


def steady_point(arch: str, quick: bool) -> Dict[str, float]:
    """Steady-state contention metrics for one architecture."""
    _ssd, result = steady_run(arch, quick=quick)
    return {
        "io_bandwidth": result.io_bandwidth,
        "gc_move_latency_us": result.extras["gc_move_latency_us"],
        "p99_us": result.io_latency.p99,
    }


def bus_util_point(arch: str, dram_hit: float, quick: bool) -> Dict:
    """I/O system-bus utilization for one (arch, DRAM-hit) case."""
    windows = bench_durations(quick)
    workload = SyntheticWorkload(pattern="seq_write", io_size=32768,
                                 dram_hit_fraction=dram_hit)
    _ssd, result = run_arch(arch, workload, **windows)
    return {"bus_io_utilization": result.bus_io_utilization}


def run(quick: bool = True) -> Dict:
    """Run the five architectures; returns normalized metrics.

    Both metrics come from the steady-state contention run: I/O
    bandwidth, and GC performance as the *inverse of the mean GC
    page-move service latency* -- the rate at which the architecture
    can execute one internal copy while competing with host I/O.
    (Raw pages-moved rates are equilibrium-coupled to I/O speed and
    victim validity, so they do not isolate the datapath.)
    """
    archs = list(ARCH_ORDER)
    cases = (("dram_write", 1.0), ("flash_write", 0.0))
    specs = [
        PointSpec.from_callable(steady_point,
                                {"arch": arch.value, "quick": quick},
                                key=f"fig7a:{arch.value}")
        for arch in archs
    ] + [
        PointSpec.from_callable(
            bus_util_point,
            {"arch": arch.value, "dram_hit": hit, "quick": quick},
            key=f"fig7b:{arch.value}/{case}")
        for arch in archs for case, hit in cases
    ]
    points = run_points(specs)
    steady = dict(zip((a.value for a in archs), points[:len(archs)]))

    io_bw = {}
    gc_rate = {}
    gc_move_latency = {}
    p99 = {}
    for arch in archs:
        point = steady[arch.value]
        io_bw[arch.value] = point["io_bandwidth"]
        move = max(point["gc_move_latency_us"], 1e-9)
        gc_move_latency[arch.value] = move
        gc_rate[arch.value] = 1.0 / move
        p99[arch.value] = point["p99_us"]

    base_io = io_bw["baseline"]
    base_gc = max(gc_rate["baseline"], 1e-12)
    rows = [
        [arch.value,
         io_bw[arch.value] / base_io,
         gc_rate[arch.value] / base_gc,
         gc_move_latency[arch.value],
         p99[arch.value]]
        for arch in archs
    ]
    table_a = format_table(
        ["arch", "norm IO bw", "norm GC perf", "GC move us", "p99 us"],
        rows,
        title="Fig 7(a): normalized I/O and GC performance "
              "(GC perf = 1/mean move latency)",
    )

    # (b) I/O bus utilization during GC, DRAM-hit vs flash-write I/O.
    util_points = iter(points[len(archs):])
    util = {}
    for arch in archs:
        per_case = {}
        for case, _hit in cases:
            per_case[case] = next(util_points)["bus_io_utilization"]
        util[arch.value] = per_case
    rows_b = [
        [arch.value,
         util[arch.value]["dram_write"],
         util[arch.value]["flash_write"]]
        for arch in archs
    ]
    table_b = format_table(
        ["arch", "bus util (DRAM write)", "bus util (flash write)"],
        rows_b,
        title="Fig 7(b): I/O system-bus utilization during GC",
    )
    return {
        "io_bandwidth": io_bw,
        "gc_rate": gc_rate,
        "gc_move_latency_us": gc_move_latency,
        "p99_us": p99,
        "bus_io_utilization": util,
        "table": table_a + "\n\n" + table_b,
    }


if __name__ == "__main__":
    print(run(quick=True)["table"])
