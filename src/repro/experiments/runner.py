"""Parallel experiment runner: point specs, worker pools, result cache.

Every paper figure is a sweep over **independent** simulation points —
(architecture, workload, overrides) combinations whose results are
combined into tables only after all points exist.  This module turns
that independence into wall-clock speed and incremental iteration:

**Point specs.**  A :class:`PointSpec` is a picklable, JSON-able
description of one simulation point: a dotted ``"module:function"``
path (``fn``) plus a mapping of keyword arguments (``params``).  The
referenced *point function* must be a module-level callable that
accepts ``**params`` and returns a plain-data dict (numbers, strings,
lists, dicts — nothing that cannot survive a JSON round trip).  Each
``figXX`` module declares its sweep as a list of specs and hands them
to :func:`run_points` instead of looping inline.

**Execution.**  :func:`run_points` fans the specs out over a
``multiprocessing`` pool (``jobs`` workers, default taken from the
active :class:`RunnerConfig`).  ``jobs=1`` is a deterministic serial
fallback that never touches ``multiprocessing``.  Results are returned
in spec order regardless of completion order, and every result — cached
or freshly computed, serial or parallel — is passed through a JSON
round trip so the assembled tables are byte-identical across modes.

**Result cache.**  Results are content-addressed under
:func:`cache_dir` (``~/.cache/repro-dssd/`` by default, overridable via
``REPRO_DSSD_CACHE_DIR``; ``REPRO_DSSD_CACHE=0`` force-disables).  The
key is the SHA-256 of the canonical JSON of ``(schema, package version,
fn, params)`` — change *any* override, duration, seed, or the package
version and the key changes; nothing else is consulted.  Corrupt or
mismatched entries are deleted and recomputed, never propagated.  The
cache stores **point** results, not figure tables, so iterating on one
figure's assembly logic reuses every already-simulated point.

**Metrics.**  A :class:`RunnerMetrics` (built on
:class:`~repro.sim.stats.LatencyStats` and
:class:`~repro.sim.stats.Counter`) accumulates per-point wall time,
cache hit/miss counts, and worker-pool utilization; ``cli.py`` prints
its one-line summary after each figure and ``report.py`` can flatten it
into CSV rows.

Typical use::

    from repro.experiments import runner

    specs = [runner.PointSpec.from_callable(my_point, {"x": x})
             for x in sweep]
    with runner.configured(jobs=8, cache=True):
        results = runner.run_points(specs)
"""

from __future__ import annotations

import hashlib
import importlib
import json
import multiprocessing
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from .. import __version__
from ..errors import ConfigError
from ..sim.stats import Counter, LatencyStats

__all__ = [
    "CACHE_SCHEMA",
    "PointSpec",
    "RunnerConfig",
    "RunnerMetrics",
    "active_config",
    "cache_dir",
    "clear_cache",
    "configured",
    "default_jobs",
    "run_points",
]

#: Bump when the cache entry layout changes; old entries stop matching.
CACHE_SCHEMA = 1


# ---------------------------------------------------------------------------
# Point specs


@dataclass(frozen=True)
class PointSpec:
    """One independent simulation point of a figure's sweep.

    ``fn`` is a ``"package.module:function"`` path to a module-level
    point function; ``params`` are its keyword arguments and must be
    JSON-able (the cache key is derived from them).  ``key`` is a
    human-readable label for progress lines — it does not affect the
    cache key or the result.
    """

    fn: str
    params: Mapping[str, Any] = field(default_factory=dict)
    key: str = ""

    @classmethod
    def from_callable(cls, func: Callable, params: Optional[Mapping] = None,
                      key: str = "") -> "PointSpec":
        """Spec for a module-level *func* (resolved back by import path)."""
        return cls(fn=f"{func.__module__}:{func.__qualname__}",
                   params=dict(params or {}), key=key)

    @property
    def label(self) -> str:
        """Progress label: the explicit key, else the function name."""
        return self.key or self.fn.rsplit(":", 1)[-1]

    def cache_key(self) -> str:
        """Stable content hash identifying this point's result."""
        payload = _canonical({
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "fn": self.fn,
            "params": dict(self.params),
        })
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def resolve(self) -> Callable:
        """Import and return the point function behind ``fn``."""
        module_name, _, func_name = self.fn.partition(":")
        if not module_name or not func_name:
            raise ConfigError(
                f"point fn must be 'module:function', got {self.fn!r}"
            )
        module = importlib.import_module(module_name)
        func = module
        for part in func_name.split("."):
            func = getattr(func, part)
        if not callable(func):
            raise ConfigError(f"point fn {self.fn!r} is not callable")
        return func


def _canonical(obj: Any) -> str:
    """Deterministic JSON rendering used for hashing."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _normalize(result: Any) -> Any:
    """JSON round trip: what a cache hit would return.

    Applied to *every* result (fresh or cached, serial or parallel) so
    tables assembled downstream are byte-identical across modes.
    """
    return json.loads(json.dumps(result))


# ---------------------------------------------------------------------------
# Metrics


class RunnerMetrics:
    """Harness-level counters: cache traffic, point wall times, pool use.

    Wall times accumulate in a :class:`~repro.sim.stats.LatencyStats`
    (seconds, not simulated microseconds) and cache/point counts in a
    :class:`~repro.sim.stats.Counter`, so the reporting primitives are
    shared with the simulator's own measurements.
    """

    def __init__(self) -> None:
        self.counters = Counter()
        self.point_wall_s = LatencyStats("point_wall_s")
        self.batch_wall_s = 0.0
        self.busy_s = 0.0
        self.max_jobs = 0

    def record_hit(self) -> None:
        """One point served from the result cache."""
        self.counters.incr("cache_hits")
        self.counters.incr("points")

    def record_computed(self, elapsed_s: float) -> None:
        """One point actually simulated, taking *elapsed_s* seconds."""
        self.counters.incr("cache_misses")
        self.counters.incr("points")
        self.point_wall_s.add(elapsed_s)
        self.busy_s += elapsed_s

    def record_batch(self, wall_s: float, jobs: int) -> None:
        """One :func:`run_points` compute phase finished."""
        self.counters.incr("batches")
        self.batch_wall_s += wall_s
        self.max_jobs = max(self.max_jobs, jobs)

    @property
    def points(self) -> int:
        """Total points requested (hits + misses)."""
        return int(self.counters.get("points"))

    @property
    def cache_hits(self) -> int:
        """Points served from cache."""
        return int(self.counters.get("cache_hits"))

    @property
    def cache_misses(self) -> int:
        """Points actually simulated."""
        return int(self.counters.get("cache_misses"))

    @property
    def utilization(self) -> float:
        """Fraction of the worker-pool's capacity spent simulating.

        ``busy / (wall * jobs)``: 1.0 means every worker was busy for
        the whole compute phase; low values mean stragglers or tiny
        sweeps.  0.0 when nothing was computed.
        """
        if self.batch_wall_s <= 0 or self.max_jobs <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.batch_wall_s * self.max_jobs))

    def merge(self, other: "RunnerMetrics") -> None:
        """Fold *other*'s counts into this accumulator."""
        self.counters.merge(other.counters)
        self.point_wall_s.merge(other.point_wall_s)
        self.batch_wall_s += other.batch_wall_s
        self.busy_s += other.busy_s
        self.max_jobs = max(self.max_jobs, other.max_jobs)

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline harness metrics."""
        return {
            "points": float(self.points),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "wall_s": self.batch_wall_s,
            "busy_s": self.busy_s,
            "jobs": float(self.max_jobs),
            "utilization": self.utilization,
            "point_mean_s": self.point_wall_s.mean,
            "point_max_s": self.point_wall_s.max,
        }

    def format_line(self) -> str:
        """One-line human summary for the CLI."""
        if self.points == 0:
            return "0 points"
        line = (f"{self.points} points: {self.cache_misses} computed, "
                f"{self.cache_hits} cached")
        if self.cache_misses:
            line += (f"; wall {self.batch_wall_s:.1f}s, busy "
                     f"{self.busy_s:.1f}s on {self.max_jobs} worker"
                     f"{'s' if self.max_jobs != 1 else ''} "
                     f"({self.utilization * 100.0:.0f}% util)")
        return line


# ---------------------------------------------------------------------------
# Runner configuration (what the CLI sets, what figures inherit)


def default_jobs() -> int:
    """Worker count when none is configured: every CPU core."""
    return os.cpu_count() or 1


@dataclass
class RunnerConfig:
    """Active harness settings inherited by :func:`run_points`.

    ``figXX.run()`` keeps its ``run(quick=True)`` signature; the CLI
    (or a test) scopes jobs/cache/progress around it with
    :func:`configured` instead of threading arguments through every
    module.
    """

    jobs: int = 1
    cache: bool = False
    progress: bool = False
    metrics: Optional[RunnerMetrics] = None


_ACTIVE = RunnerConfig()


def active_config() -> RunnerConfig:
    """The currently-scoped :class:`RunnerConfig`."""
    return _ACTIVE


@contextmanager
def configured(jobs: Optional[int] = None, cache: Optional[bool] = None,
               progress: Optional[bool] = None,
               metrics: Optional[RunnerMetrics] = None):
    """Scope harness settings for the duration of a ``with`` block.

    Unspecified fields keep their surrounding values, so nested scopes
    compose (e.g. a test forcing ``cache=False`` inside a configured
    CLI run).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = replace(
        previous,
        **{name: value for name, value in (
            ("jobs", jobs), ("cache", cache), ("progress", progress),
            ("metrics", metrics)) if value is not None},
    )
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


# ---------------------------------------------------------------------------
# Result cache


def cache_dir() -> Path:
    """Cache root: ``$REPRO_DSSD_CACHE_DIR``, else XDG, else ``~/.cache``."""
    override = os.environ.get("REPRO_DSSD_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-dssd"


def _cache_enabled(flag: bool) -> bool:
    """``REPRO_DSSD_CACHE=0`` force-disables caching (e.g. in CI)."""
    if os.environ.get("REPRO_DSSD_CACHE", "") == "0":
        return False
    return flag


def _cache_path(key: str) -> Path:
    return cache_dir() / key[:2] / f"{key}.json"


def _cache_load(spec: PointSpec) -> Optional[Any]:
    """Cached result for *spec*, or None.

    Any unreadable, unparsable, or mismatched entry (truncated write,
    hash collision, stale schema) is deleted and treated as a miss.
    """
    path = _cache_path(spec.cache_key())
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        if (entry["fn"] != spec.fn
                or entry["params"] != _normalize(dict(spec.params))):
            raise ValueError("cache entry does not match spec")
        return entry["result"]
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError):
        try:
            path.unlink()
        except OSError:
            pass
        return None


def _cache_store(spec: PointSpec, result: Any, elapsed_s: float) -> None:
    """Atomically persist one point result (best effort: IO errors pass)."""
    path = _cache_path(spec.cache_key())
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({
                "fn": spec.fn,
                "params": _normalize(dict(spec.params)),
                "result": result,
                "elapsed_s": elapsed_s,
                "version": __version__,
            }, handle)
        os.replace(tmp, path)
    except OSError:
        pass


def clear_cache() -> int:
    """Delete every cached point result; returns the number removed."""
    removed = 0
    root = cache_dir()
    if not root.is_dir():
        return 0
    for path in root.glob("*/*.json"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


# ---------------------------------------------------------------------------
# Execution


def _execute(spec: PointSpec):
    """Worker body: resolve, run, normalize, time one point."""
    func = spec.resolve()
    started = time.perf_counter()
    result = _normalize(func(**dict(spec.params)))
    return result, time.perf_counter() - started


def _pool_task(payload):
    """Top-level (picklable) pool entry: ``(index, spec) -> (index, ...)``."""
    index, spec = payload
    result, elapsed = _execute(spec)
    return index, result, elapsed


def _progress(message: str, enabled: bool) -> None:
    if enabled:
        print(message, file=sys.stderr, flush=True)


def run_points(specs: Sequence[PointSpec], *, jobs: Optional[int] = None,
               cache: Optional[bool] = None,
               progress: Optional[bool] = None,
               metrics: Optional[RunnerMetrics] = None) -> List[Any]:
    """Execute every spec; return results **in spec order**.

    Arguments left as ``None`` inherit the active :class:`RunnerConfig`
    (see :func:`configured`).  Cached points never enter the pool; with
    one pending point or ``jobs=1`` execution is plain serial in this
    process, which is the deterministic reference mode.
    """
    config = active_config()
    jobs = config.jobs if jobs is None else jobs
    jobs = default_jobs() if not jobs or jobs < 1 else jobs
    use_cache = _cache_enabled(config.cache if cache is None else cache)
    show = config.progress if progress is None else progress
    metrics = config.metrics if metrics is None else metrics
    metrics = metrics if metrics is not None else RunnerMetrics()

    results: List[Any] = [None] * len(specs)
    pending: List[int] = []
    for index, spec in enumerate(specs):
        hit = _cache_load(spec) if use_cache else None
        if hit is not None:
            results[index] = hit
            metrics.record_hit()
            _progress(f"  [{index + 1}/{len(specs)}] {spec.label}: cached",
                      show)
        else:
            pending.append(index)

    if not pending:
        return results

    started = time.perf_counter()
    workers = min(jobs, len(pending))

    def _finish(index: int, result: Any, elapsed: float, done: int) -> None:
        results[index] = result
        metrics.record_computed(elapsed)
        if use_cache:
            _cache_store(specs[index], result, elapsed)
        _progress(f"  [{done}/{len(pending)}] {specs[index].label}: "
                  f"{elapsed:.1f}s", show)

    if workers <= 1:
        for done, index in enumerate(pending, start=1):
            result, elapsed = _execute(specs[index])
            _finish(index, result, elapsed, done)
    else:
        payloads = [(index, specs[index]) for index in pending]
        with multiprocessing.Pool(processes=workers) as pool:
            done = 0
            for index, result, elapsed in pool.imap_unordered(
                    _pool_task, payloads):
                done += 1
                _finish(index, result, elapsed, done)
    metrics.record_batch(time.perf_counter() - started, workers)
    return results
