"""Reliability sweep: the copyback argument, quantified (paper Sec 4.2).

The paper bars legacy copyback from conventional SSDs because the page
never passes an ECC engine: bit errors accumulated in the source cells
are rewritten verbatim, and after a couple of GC generations the error
count can exceed what the host-read ECC can correct.  The decoupled
SSD's *global copyback* routes every GC copy through the controller's
integrated ECC engine, so errors are scrubbed at each hop.

This sweep runs an overwrite-heavy workload on a small worn device at
several injected RBER levels under three datapath configurations:

* ``baseline``      -- conventional SSD, GC copies cross the front-end
  ECC (always checked);
* ``dssd``          -- decoupled global copyback through the
  per-controller ECC (checked in the back-end);
* ``legacy``        -- decoupled copyback with ``copyback_ecc=False``:
  the unchecked legacy command the paper rules out.

Headline metric: ``survivors_ge2`` -- GC copies that carried bit errors
through **two or more** unchecked generations (silent corruption).  It
is zero whenever an ECC engine sits in the copy path and grows with
RBER under legacy copyback, while ``scrubbed`` shows the checked paths
catching and correcting the same error stream.  The run also exercises
wear-out retirement (spare remap + hard retirement) and transient
channel/die fault retries.

Deterministic under the fixed seed: all reliability draws come from
seeded streams consumed in simulation event order, so serial, parallel,
and cached executions produce byte-identical tables.
"""

from __future__ import annotations

from typing import Dict, List

from ..workloads import SyntheticWorkload
from .common import format_table
from .runner import PointSpec, run_points

__all__ = ["run", "reliability_point", "CONFIGS", "RBER_LEVELS"]

#: (label, arch, copyback_ecc) rows of the comparison.
CONFIGS = (
    ("baseline", "baseline", True),
    ("dssd", "dssd_f", True),
    ("legacy", "dssd_f", False),
)

#: Injected fresh-block RBER levels (errors/bit/read).
RBER_LEVELS = (1e-5, 1e-4, 1e-3)

_SEED = 11


def reliability_point(arch: str, copyback_ecc: bool, base_rber: float,
                      quick: bool) -> Dict[str, float]:
    """One device life under error injection; reliability counters."""
    from ..core import build_ssd, sim_geometry
    from ..reliability import ReliabilityConfig

    # A small, hot device: few blocks and a 50% working set keep GC (and
    # therefore copyback generations) churning, and low P/E limits let
    # wear-out retirement trigger within the window.
    geometry = sim_geometry(channels=4, ways=2, planes=2,
                            blocks_per_plane=12, pages_per_block=16)
    rel = ReliabilityConfig(
        base_rber=base_rber,
        rber_growth=8.0,
        pe_mean=4.0,
        pe_sigma=1.0,
        spare_blocks_per_channel=2,
        channel_fault_rate=1e-3,
        die_fault_rate=1e-3,
    )
    ssd = build_ssd(arch, geometry=geometry, reliability=rel,
                    copyback_ecc=copyback_ecc, seed=_SEED)
    workload = SyntheticWorkload(pattern="rand_write",
                                 working_set_fraction=0.5)
    duration = 60_000.0 if quick else 150_000.0
    result = ssd.run(workload, duration_us=duration,
                     warmup_us=duration / 4)
    extras = result.extras
    return {
        "io_mean_us": result.io_latency.mean,
        "gc_pages": float(result.gc.pages_moved),
        "checked_copies": extras["rel_checked_copies"],
        "unchecked_copies": extras["rel_unchecked_copies"],
        "scrubbed": extras["rel_copy_errors_scrubbed"],
        "propagated": extras["rel_copy_errors_propagated"],
        "survivors_ge2": extras["rel_survivors_ge2"],
        "max_generation": extras["rel_max_generation"],
        "corrected": extras["rel_errors_corrected"],
        "ladder_retries": extras["rel_ladder_retries"],
        "raid_recoveries": extras["rel_raid_recoveries"],
        "uncorrectable": extras["rel_uncorrectable_pages"],
        "blocks_remapped": extras["rel_blocks_remapped"],
        "blocks_retired": extras["rel_blocks_retired"],
        "fault_retries": extras["rel_fault_retries"],
    }


def run(quick: bool = True) -> Dict:
    """The full sweep: 3 configurations x len(RBER_LEVELS)."""
    specs = [
        PointSpec.from_callable(
            reliability_point,
            {"arch": arch, "copyback_ecc": checked, "base_rber": rber,
             "quick": quick},
            key=f"rel:{label}/rber{rber:g}",
        )
        for label, arch, checked in CONFIGS
        for rber in RBER_LEVELS
    ]
    points = iter(run_points(specs))
    by_config: Dict[str, List[Dict[str, float]]] = {}
    for label, _arch, _checked in CONFIGS:
        by_config[label] = [next(points) for _rber in RBER_LEVELS]

    corruption_rows = []
    wear_rows = []
    for label, _arch, _checked in CONFIGS:
        for rber, point in zip(RBER_LEVELS, by_config[label]):
            corruption_rows.append([
                label, f"{rber:g}",
                point["unchecked_copies"],
                point["propagated"],
                point["survivors_ge2"],
                point["max_generation"],
                point["scrubbed"],
                point["corrected"],
            ])
            wear_rows.append([
                label, f"{rber:g}",
                point["ladder_retries"],
                point["raid_recoveries"],
                point["uncorrectable"],
                point["blocks_remapped"],
                point["blocks_retired"],
                point["fault_retries"],
                point["io_mean_us"],
            ])
    corruption_table = format_table(
        ["config", "rber", "unchecked", "errs propagated",
         "survivors >=2 gen", "max gen", "errs scrubbed", "errs corrected"],
        corruption_rows,
        title=("Copyback error propagation: unchecked legacy copyback vs "
               "ECC-checked GC copies"),
    )
    wear_table = format_table(
        ["config", "rber", "ladder retries", "raid", "uncorrectable",
         "remapped", "retired", "fault retries", "io mean (us)"],
        wear_rows,
        title=("Wear-out handling: read-retry ladder, RAID rebuilds, "
               "bad-block retirement, transient fault retries"),
    )
    # The paper's claim, as data: with any ECC engine in the copy path
    # corruption never survives a second generation; without one it does.
    legacy_survivors = sum(p["survivors_ge2"] for p in by_config["legacy"])
    checked_survivors = sum(
        p["survivors_ge2"]
        for label in ("baseline", "dssd")
        for p in by_config[label]
    )
    return {
        "configs": [label for label, _a, _c in CONFIGS],
        "rber_levels": list(RBER_LEVELS),
        "points": by_config,
        "legacy_survivors_ge2": legacy_survivors,
        "checked_survivors_ge2": checked_survivors,
        "table": corruption_table + "\n\n" + wear_table,
    }


if __name__ == "__main__":
    print(run(quick=True)["table"])
