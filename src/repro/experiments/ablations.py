"""Design-choice ablations beyond the paper's figures.

DESIGN.md calls out four knobs worth isolating:

* **dBUF depth** -- how much decoupled staging the copyback pipeline
  needs before the fabric (not the buffer) limits GC;
* **GC pipeline depth** -- PaGC's per-plane burst width;
* **write-buffer size** -- how much DRAM staging absorbs GC-induced
  stalls before tail latency explodes;
* **copyback ECC** -- the legacy unchecked copyback vs the paper's
  checked global copyback (speed of skipping ECC vs silent error
  propagation, counted);
* **2-D mesh** -- the paper's open question: at 16 controllers, does a
  2-D mesh beat the 1-D mesh at equal bisection bandwidth?
"""

from __future__ import annotations

from typing import Dict, List

from ..core import ArchPreset, sim_geometry
from ..noc import Mesh1D, Mesh2D
from .common import format_table, gc_burst_run, steady_run

__all__ = ["run", "DBUF_SIZES", "PIPELINE_DEPTHS", "BUFFER_SIZES"]

DBUF_SIZES = (4, 8, 16, 64)
PIPELINE_DEPTHS = (1, 2, 4, 8)
BUFFER_SIZES = (256, 1024, 4096)


def _dbuf_sweep(quick: bool) -> Dict:
    sizes = DBUF_SIZES[:3] if quick else DBUF_SIZES
    perf = [
        gc_burst_run(ArchPreset.DSSD_F, quick=quick,
                     dbuf_pages=size)[1]["pages_per_us"]
        for size in sizes
    ]
    table = format_table(
        ["metric"] + [f"{s} pages" for s in sizes],
        [["GC pages/us"] + perf],
        title="Ablation: dBUF depth (dSSD_f GC burst)",
    )
    return {"sizes": list(sizes), "pages_per_us": perf, "table": table}


def _pipeline_sweep(quick: bool) -> Dict:
    depths = PIPELINE_DEPTHS[:3] if quick else PIPELINE_DEPTHS
    perf = [
        gc_burst_run(ArchPreset.BASELINE, quick=quick,
                     gc_pipeline_depth=depth)[1]["pages_per_us"]
        for depth in depths
    ]
    table = format_table(
        ["metric"] + [f"depth {d}" for d in depths],
        [["GC pages/us"] + perf],
        title="Ablation: GC pipeline depth (Baseline GC burst)",
    )
    return {"depths": list(depths), "pages_per_us": perf, "table": table}


def _write_buffer_sweep(quick: bool) -> Dict:
    sizes = BUFFER_SIZES[:2] if quick else BUFFER_SIZES
    rows: List[List] = []
    p99s = []
    for pages in sizes:
        _ssd, result = steady_run(ArchPreset.BASELINE, quick=quick,
                                  write_buffer_pages=pages)
        p99s.append(result.io_latency.p99)
        rows.append([f"{pages} pages", result.io_bandwidth,
                     result.io_latency.mean, result.io_latency.p99])
    table = format_table(
        ["buffer", "IO MB/s", "mean us", "p99 us"],
        rows,
        title="Ablation: DRAM write-buffer size (Baseline)",
    )
    return {"sizes": list(sizes), "p99_us": p99s, "table": table}


def _copyback_ecc(quick: bool) -> Dict:
    checked_ssd, checked = gc_burst_run(ArchPreset.DSSD_F, quick=quick,
                                        copyback_ecc=True)
    legacy_ssd, legacy = gc_burst_run(ArchPreset.DSSD_F, quick=quick,
                                      copyback_ecc=False)
    rows = [
        ["checked (this work)", checked["pages_per_us"],
         checked_ssd.datapath.unchecked_copies],
        ["legacy (no ECC)", legacy["pages_per_us"],
         legacy_ssd.datapath.unchecked_copies],
    ]
    table = format_table(
        ["copyback mode", "GC pages/us", "unchecked copies"],
        rows,
        title="Ablation: checked global copyback vs legacy copyback",
    )
    return {
        "checked_pages_per_us": checked["pages_per_us"],
        "legacy_pages_per_us": legacy["pages_per_us"],
        "legacy_unchecked": legacy_ssd.datapath.unchecked_copies,
        "table": table,
    }


def _mesh2d(quick: bool) -> Dict:
    """The paper's open topology question, at 16 controllers."""
    geometry = sim_geometry(channels=16, ways=2, planes=4,
                            blocks_per_plane=12)
    bisection = 2000.0
    perf = {}
    for name, topo_cls in (("mesh1d", Mesh1D), ("mesh2d", Mesh2D)):
        channel_bw = topo_cls(16).channel_bandwidth_for_bisection(bisection)
        _ssd, episode = gc_burst_run(
            ArchPreset.DSSD_F, quick=quick, geometry=geometry,
            fnoc_topology=name, fnoc_channel_bw=channel_bw,
        )
        perf[name] = episode["pages_per_us"]
    table = format_table(
        ["topology", "GC pages/us"],
        [[name, value] for name, value in perf.items()],
        title="Ablation: 1-D vs 2-D mesh at 16 controllers, equal "
              "bisection",
    )
    return {"perf": perf, "table": table}


def run(quick: bool = True) -> Dict:
    """All ablations."""
    parts = {
        "dbuf": _dbuf_sweep(quick),
        "pipeline": _pipeline_sweep(quick),
        "write_buffer": _write_buffer_sweep(quick),
        "copyback_ecc": _copyback_ecc(quick),
        "mesh2d": _mesh2d(quick),
    }
    parts["table"] = "\n\n".join(p["table"] for p in parts.values())
    return parts


if __name__ == "__main__":
    print(run(quick=True)["table"])
