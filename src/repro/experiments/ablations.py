"""Design-choice ablations beyond the paper's figures.

DESIGN.md calls out four knobs worth isolating:

* **dBUF depth** -- how much decoupled staging the copyback pipeline
  needs before the fabric (not the buffer) limits GC;
* **GC pipeline depth** -- PaGC's per-plane burst width;
* **write-buffer size** -- how much DRAM staging absorbs GC-induced
  stalls before tail latency explodes;
* **copyback ECC** -- the legacy unchecked copyback vs the paper's
  checked global copyback (speed of skipping ECC vs silent error
  propagation, counted);
* **2-D mesh** -- the paper's open question: at 16 controllers, does a
  2-D mesh beat the 1-D mesh at equal bisection bandwidth?
"""

from __future__ import annotations

from typing import Dict, List

from ..core import ArchPreset, sim_geometry
from ..noc import Mesh1D, Mesh2D
from .common import format_table, gc_burst_run, steady_run
from .runner import PointSpec, run_points

__all__ = ["run", "dbuf_point", "pipeline_point", "write_buffer_point",
           "copyback_point", "mesh_point", "DBUF_SIZES",
           "PIPELINE_DEPTHS", "BUFFER_SIZES"]

DBUF_SIZES = (4, 8, 16, 64)
PIPELINE_DEPTHS = (1, 2, 4, 8)
BUFFER_SIZES = (256, 1024, 4096)


def dbuf_point(size: int, quick: bool) -> Dict[str, float]:
    """GC burst rate at one dBUF depth."""
    _ssd, episode = gc_burst_run(ArchPreset.DSSD_F, quick=quick,
                                 dbuf_pages=size)
    return {"pages_per_us": episode["pages_per_us"]}


def pipeline_point(depth: int, quick: bool) -> Dict[str, float]:
    """Baseline GC burst rate at one PaGC pipeline depth."""
    _ssd, episode = gc_burst_run(ArchPreset.BASELINE, quick=quick,
                                 gc_pipeline_depth=depth)
    return {"pages_per_us": episode["pages_per_us"]}


def write_buffer_point(pages: int, quick: bool) -> Dict[str, float]:
    """Steady-state metrics at one DRAM write-buffer size."""
    _ssd, result = steady_run(ArchPreset.BASELINE, quick=quick,
                              write_buffer_pages=pages)
    return {"io_bandwidth": result.io_bandwidth,
            "mean_us": result.io_latency.mean,
            "p99_us": result.io_latency.p99}


def copyback_point(checked: bool, quick: bool) -> Dict[str, float]:
    """Checked vs legacy copyback: burst rate + unchecked-page count."""
    ssd, episode = gc_burst_run(ArchPreset.DSSD_F, quick=quick,
                                copyback_ecc=checked)
    return {"pages_per_us": episode["pages_per_us"],
            "unchecked": ssd.datapath.unchecked_copies}


def mesh_point(topology: str, quick: bool) -> Dict[str, float]:
    """1-D vs 2-D mesh at 16 controllers, equal bisection bandwidth."""
    geometry = sim_geometry(channels=16, ways=2, planes=4,
                            blocks_per_plane=12)
    bisection = 2000.0
    topo_cls = {"mesh1d": Mesh1D, "mesh2d": Mesh2D}[topology]
    channel_bw = topo_cls(16).channel_bandwidth_for_bisection(bisection)
    _ssd, episode = gc_burst_run(
        ArchPreset.DSSD_F, quick=quick, geometry=geometry,
        fnoc_topology=topology, fnoc_channel_bw=channel_bw,
    )
    return {"pages_per_us": episode["pages_per_us"]}


def _dbuf_sweep(sizes, perf: List[float]) -> Dict:
    table = format_table(
        ["metric"] + [f"{s} pages" for s in sizes],
        [["GC pages/us"] + perf],
        title="Ablation: dBUF depth (dSSD_f GC burst)",
    )
    return {"sizes": list(sizes), "pages_per_us": perf, "table": table}


def _pipeline_sweep(depths, perf: List[float]) -> Dict:
    table = format_table(
        ["metric"] + [f"depth {d}" for d in depths],
        [["GC pages/us"] + perf],
        title="Ablation: GC pipeline depth (Baseline GC burst)",
    )
    return {"depths": list(depths), "pages_per_us": perf, "table": table}


def _write_buffer_sweep(sizes, points: List[Dict]) -> Dict:
    rows: List[List] = []
    p99s = []
    for pages, point in zip(sizes, points):
        p99s.append(point["p99_us"])
        rows.append([f"{pages} pages", point["io_bandwidth"],
                     point["mean_us"], point["p99_us"]])
    table = format_table(
        ["buffer", "IO MB/s", "mean us", "p99 us"],
        rows,
        title="Ablation: DRAM write-buffer size (Baseline)",
    )
    return {"sizes": list(sizes), "p99_us": p99s, "table": table}


def _copyback_ecc(checked: Dict, legacy: Dict) -> Dict:
    rows = [
        ["checked (this work)", checked["pages_per_us"],
         checked["unchecked"]],
        ["legacy (no ECC)", legacy["pages_per_us"],
         legacy["unchecked"]],
    ]
    table = format_table(
        ["copyback mode", "GC pages/us", "unchecked copies"],
        rows,
        title="Ablation: checked global copyback vs legacy copyback",
    )
    return {
        "checked_pages_per_us": checked["pages_per_us"],
        "legacy_pages_per_us": legacy["pages_per_us"],
        "legacy_unchecked": legacy["unchecked"],
        "table": table,
    }


def _mesh2d(perf: Dict[str, float]) -> Dict:
    """The paper's open topology question, at 16 controllers."""
    table = format_table(
        ["topology", "GC pages/us"],
        [[name, value] for name, value in perf.items()],
        title="Ablation: 1-D vs 2-D mesh at 16 controllers, equal "
              "bisection",
    )
    return {"perf": perf, "table": table}


def run(quick: bool = True) -> Dict:
    """All ablations."""
    dbuf_sizes = DBUF_SIZES[:3] if quick else DBUF_SIZES
    depths = PIPELINE_DEPTHS[:3] if quick else PIPELINE_DEPTHS
    buffer_sizes = BUFFER_SIZES[:2] if quick else BUFFER_SIZES
    meshes = ("mesh1d", "mesh2d")
    specs = (
        [PointSpec.from_callable(dbuf_point,
                                 {"size": size, "quick": quick},
                                 key=f"ablations:dbuf/{size}")
         for size in dbuf_sizes]
        + [PointSpec.from_callable(pipeline_point,
                                   {"depth": depth, "quick": quick},
                                   key=f"ablations:pipeline/{depth}")
           for depth in depths]
        + [PointSpec.from_callable(write_buffer_point,
                                   {"pages": pages, "quick": quick},
                                   key=f"ablations:wbuf/{pages}")
           for pages in buffer_sizes]
        + [PointSpec.from_callable(copyback_point,
                                   {"checked": checked, "quick": quick},
                                   key=f"ablations:copyback/"
                                       f"{'ecc' if checked else 'legacy'}")
           for checked in (True, False)]
        + [PointSpec.from_callable(mesh_point,
                                   {"topology": topology, "quick": quick},
                                   key=f"ablations:{topology}")
           for topology in meshes]
    )
    points = iter(run_points(specs))
    parts = {
        "dbuf": _dbuf_sweep(
            dbuf_sizes,
            [next(points)["pages_per_us"] for _s in dbuf_sizes]),
        "pipeline": _pipeline_sweep(
            depths, [next(points)["pages_per_us"] for _d in depths]),
        "write_buffer": _write_buffer_sweep(
            buffer_sizes, [next(points) for _p in buffer_sizes]),
        "copyback_ecc": _copyback_ecc(next(points), next(points)),
        "mesh2d": _mesh2d(
            {topology: next(points)["pages_per_us"]
             for topology in meshes}),
    }
    parts["table"] = "\n\n".join(p["table"] for p in parts.values())
    return parts


if __name__ == "__main__":
    print(run(quick=True)["table"])
