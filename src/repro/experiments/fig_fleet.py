"""Fleet experiment: sharded multi-device simulation with aged devices.

Not a paper figure -- the paper evaluates one device at a time -- but
the natural deployment question its disaggregated-SSD story raises:
what do the *fleet-level* tails look like when tenant streams spread
over many devices of mixed architecture and mixed age?  The experiment
instantiates a heterogeneous fleet (architectures cycle through
baseline / dSSD / dSSD_b / dSSD_f, wear cycles through fresh to 80 %
of the P/E budget), places two tenant streams per device on average via
consistent hashing, and reports per-device rows plus the fleet
aggregate whose p99/p999 are exact percentiles over the union of all
per-device latency samples.

Each device shard restores from a cached aged snapshot (see
:mod:`repro.fleet`), so re-running the experiment with more devices
only ages the recipes it has not seen.  Tables are byte-identical for
any ``--jobs`` value.
"""

from __future__ import annotations

from typing import Dict

from ..fleet import (DeviceSpec, FleetSpec, TenantStream, run_fleet,
                     shard_point)
from ..sim import LatencyStats
from .common import format_table

__all__ = ["run", "fleet_point", "fleet_spec", "ARCH_CYCLE", "AGE_CYCLE"]

#: Architectures round-robined across the fleet's devices.
ARCH_CYCLE = ("baseline", "dssd", "dssd_b", "dssd_f")
#: Pre-aged wear states (fraction of the P/E budget already consumed).
AGE_CYCLE = (0.0, 0.3, 0.6, 0.8)
#: Tenant stream shapes round-robined across the tenant population.
_TENANT_SHAPES = (
    {"pattern": "mixed", "io_size": 4096, "read_fraction": 0.5},
    {"pattern": "rand_read", "io_size": 8192, "read_fraction": 1.0},
    {"pattern": "rand_write", "io_size": 16384, "read_fraction": 0.0},
    {"pattern": "seq_read", "io_size": 65536, "read_fraction": 1.0},
)


def fleet_spec(devices: int = 16, quick: bool = True) -> FleetSpec:
    """The experiment's fleet: *devices* SSDs, ``2 x devices`` tenants."""
    device_specs = [
        DeviceSpec(
            device_id=f"ssd{index:02d}",
            arch=ARCH_CYCLE[index % len(ARCH_CYCLE)],
            age_pe_fraction=AGE_CYCLE[index % len(AGE_CYCLE)],
            seed=17 + index,
            overrides={"prefill_fraction": 0.5},
        )
        for index in range(devices)
    ]
    tenants = [
        TenantStream(
            name=f"tenant{index:02d}",
            queue_depth=4,
            seed=101 + index,
            **_TENANT_SHAPES[index % len(_TENANT_SHAPES)],
        )
        for index in range(2 * devices)
    ]
    duration_us = 2_000.0 if quick else 10_000.0
    return FleetSpec(devices=device_specs, tenants=tenants,
                     duration_us=duration_us)


def fleet_point(**params) -> Dict:
    """One device shard (module-level so cache keys bind here).

    Thin veneer over :func:`repro.fleet.shard_point`; exists so this
    experiment follows the harness convention that every sweep module
    declares its own picklable ``*_point`` function.
    """
    return shard_point(**params)


def run(quick: bool = True, devices: int = 16) -> Dict:
    """Run the fleet; return placement, per-device rows, fleet summary."""
    spec = fleet_spec(devices=devices, quick=quick)
    result = run_fleet(spec, point=fleet_point)
    by_id = {device.device_id: device for device in spec.devices}

    rows = []
    for shard in result["shards"]:
        device = by_id[shard["device_id"]]
        latency = LatencyStats.from_state(shard["io_latency"])
        rows.append([
            shard["device_id"], device.arch,
            f"{device.age_pe_fraction:.1f}",
            len(shard["tenant_names"]),
            int(shard["requests_completed"]),
            shard["io_bandwidth_MBps"],
            latency.p99,
        ])
    fleet = result["fleet"]
    rows.append([
        "FLEET", f"{fleet['active_devices']}/{fleet['devices']} active",
        "-", fleet["tenants"], fleet["requests_completed"],
        fleet["aggregate_bandwidth_MBps"], fleet["io_p99_us"],
    ])
    table = format_table(
        ["device", "arch", "age_pe", "tenants", "requests", "bw_MBps",
         "p99_us"],
        rows,
        title=(f"Fleet: {devices} aged heterogeneous devices -- "
               f"fleet p99={fleet['io_p99_us']:.1f}us "
               f"p999={fleet['io_p999_us']:.1f}us"),
    )
    return {
        "spec": {"devices": devices,
                 "duration_us": spec.duration_us,
                 "tenants": len(spec.tenants)},
        "placement": result["placement"],
        "shards": result["shards"],
        "fleet": fleet,
        "table": table,
    }


if __name__ == "__main__":
    print(run(quick=True)["table"])
