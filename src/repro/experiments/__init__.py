"""Experiment harness: one module per paper figure/table.

Each module exposes ``run(quick=True) -> dict`` (data series plus a
rendered ``"table"``).  ``EXPERIMENTS`` maps CLI names to modules.

Sweeps execute through :mod:`repro.experiments.runner`: every module
declares its independent simulation points as picklable
:class:`~repro.experiments.runner.PointSpec` entries, and
:func:`~repro.experiments.runner.run_points` fans them out over worker
processes with a content-addressed result cache.  Scope parallelism,
caching, and metrics around ``run()`` with
:func:`~repro.experiments.runner.configured`.
"""

from . import runner
from . import (
    ablations,
    fig02_motivation,
    fig07_normalized,
    fig08_bandwidth_sweep,
    fig09_latency_breakdown,
    fig10_dram_hit,
    fig11_tail_latency,
    fig12_noc_bandwidth,
    fig13_topology,
    fig14_lifetime,
    fig15_srt_performance,
    fig16_srt_size,
    fig17_multitenant,
    fig_fleet,
    fig_reliability,
    table3_qualitative,
)
from .common import ARCH_ORDER, format_table, gc_burst_run, steady_run
from .runner import (
    PointSpec,
    RunnerMetrics,
    configured,
    run_points,
)

EXPERIMENTS = {
    "fig2": fig02_motivation,
    "fig7": fig07_normalized,
    "fig8": fig08_bandwidth_sweep,
    "fig9": fig09_latency_breakdown,
    "fig10": fig10_dram_hit,
    "fig11": fig11_tail_latency,
    "fig12": fig12_noc_bandwidth,
    "fig13": fig13_topology,
    "fig14": fig14_lifetime,
    "fig15": fig15_srt_performance,
    "fig16": fig16_srt_size,
    "fig17": fig17_multitenant,
    "table3": table3_qualitative,
    "ablations": ablations,
    "reliability": fig_reliability,
    "fleet": fig_fleet,
}

__all__ = [
    "ARCH_ORDER",
    "EXPERIMENTS",
    "PointSpec",
    "RunnerMetrics",
    "configured",
    "format_table",
    "gc_burst_run",
    "run_points",
    "runner",
    "steady_run",
]
