"""Fig 8: sensitivity to on-chip bandwidth (x1.25 .. x4).

Sweeps the total on-chip bandwidth factor for the BW architecture
(everything into the system bus) and for dSSD_f (baseline bus + an fNoC
whose bisection carries the extra), on the low-bandwidth (4 KB) and
high-bandwidth (32 KB) inputs.  All results are normalized to the x1
Baseline.  The paper's shape: extra bandwidth barely helps the low
scenario; in the high scenario decoupling beats widening the bus.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import ArchPreset
from .common import format_table, steady_run
from .runner import PointSpec, run_points

__all__ = ["run", "metrics_point", "FACTORS"]

FACTORS = (1.25, 1.5, 2.0, 3.0, 4.0)


def metrics_point(arch: str, factor: float, io_size: int, quick: bool,
                  fnoc_channel_bw: float = None) -> Dict[str, float]:
    """I/O bandwidth and GC page rate at one on-chip bandwidth factor."""
    overrides = {}
    if fnoc_channel_bw is not None:
        overrides["fnoc_channel_bw"] = fnoc_channel_bw
    _ssd, result = steady_run(arch, quick=quick, io_size=io_size,
                              onchip_bw_factor=factor, **overrides)
    window = max(result.duration_us, 1e-9)
    return {
        "io": result.io_bandwidth,
        "gc": result.extras["gc_pages_in_window"] / window,
    }


def _spec(arch, factor, io_size, quick, label, **extra) -> PointSpec:
    params = {"arch": arch.value, "factor": factor, "io_size": io_size,
              "quick": quick}
    params.update(extra)
    return PointSpec.from_callable(
        metrics_point, params, key=f"fig8:{label}/x{factor}/{arch.value}")


def run(quick: bool = True) -> Dict:
    """Sweep factors; returns normalized curves per scenario."""
    scenarios = (("low", 4096), ("high", 32768))
    specs: List[PointSpec] = []
    for label, io_size in scenarios:
        specs.append(_spec(ArchPreset.BASELINE, 1.0, io_size, quick, label))
        for factor in FACTORS:
            specs.append(_spec(ArchPreset.BW, factor, io_size, quick,
                               label))
            # dSSD_f spends the extra budget on the fabric bisection.
            extra = 8000.0 * (factor - 1.0)
            specs.append(_spec(ArchPreset.DSSD_F, factor, io_size, quick,
                               label,
                               fnoc_channel_bw=max(extra / 2.0, 250.0)))
    points = iter(run_points(specs))

    data: Dict[str, Dict] = {}
    tables: List[str] = []
    for label, _io_size in scenarios:
        base = next(points)
        rows = []
        series = {"factors": list(FACTORS), "bw": [], "dssd_f": []}
        for factor in FACTORS:
            bw = next(points)
            dssd_f = next(points)
            bw_norm = {k: bw[k] / max(base[k], 1e-12) for k in bw}
            df_norm = {k: dssd_f[k] / max(base[k], 1e-12) for k in dssd_f}
            series["bw"].append(bw_norm)
            series["dssd_f"].append(df_norm)
            rows.append([f"x{factor}", bw_norm["io"], bw_norm["gc"],
                         df_norm["io"], df_norm["gc"]])
        data[label] = series
        tables.append(format_table(
            ["factor", "BW io", "BW gc", "dSSD_f io", "dSSD_f gc"],
            rows,
            title=f"Fig 8({'a' if label == 'low' else 'b'}): {label}-"
                  "bandwidth flash, normalized to Baseline x1",
        ))
    data["table"] = "\n\n".join(tables)
    return data


if __name__ == "__main__":
    print(run(quick=True)["table"])
