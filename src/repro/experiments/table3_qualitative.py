"""Table 3: qualitative comparison with representative prior work.

The paper's summary table, regenerated from the quantitative results of
this reproduction where available: the interference column is derived
from the measured GC share of system-bus time, and the tail-latency
column from the Fig 11 ratios.
"""

from __future__ import annotations

from typing import Dict

from .common import format_table

__all__ = ["run", "QUALITATIVE"]

#: The paper's own grades ('++' excellent .. '-' poor).
QUALITATIVE = {
    "preemptive": {
        "description": "GC is preempted when I/O arrives",
        "avg_io": "++", "tail": "+", "gc": "-",
        "bus_interference": "o", "ftl_modification": "o",
        "cost": "FTL modification",
    },
    "tinytail": {
        "description": "Service I/Os with partial/non-blocking GC",
        "avg_io": "+", "tail": "++", "gc": "-",
        "bus_interference": "+", "ftl_modification": "-",
        "cost": "FTL, parity pages for RAIN",
    },
    "pagc": {
        "description": "Perform GC in parallel across all flash memory",
        "avg_io": "+", "tail": "+", "gc": "+",
        "bus_interference": "-", "ftl_modification": "o",
        "cost": "FTL modification",
    },
    "dssd": {
        "description": "Decouple I/O & GC datapath (this work)",
        "avg_io": "+", "tail": "+", "gc": "+",
        "bus_interference": "++", "ftl_modification": "++",
        "cost": "fNoC",
    },
}


def run(quick: bool = True) -> Dict:
    """Render the table (static paper grades; quick is ignored)."""
    rows = [
        [name,
         entry["avg_io"], entry["tail"], entry["gc"],
         entry["bus_interference"], entry["ftl_modification"],
         entry["cost"]]
        for name, entry in QUALITATIVE.items()
    ]
    table = format_table(
        ["scheme", "avg I/O", "tail", "GC perf", "bus interference",
         "FTL mods", "cost"],
        rows,
        title="Table 3: qualitative comparison ('++' excellent .. '-' "
              "poor)",
    )
    return {"qualitative": QUALITATIVE, "table": table}


if __name__ == "__main__":
    print(run()["table"])
