"""Fig 12: GC performance versus router channel bandwidth.

Sweeps the fNoC router-channel to flash-channel bandwidth ratio while
(a) scaling the number of flash channels (more channels need more
fabric bandwidth before GC saturates) and (b) scaling the number of
ways per channel at 8 channels (saturation stays near ratio x2
regardless).  GC performance is measured with an isolated GC burst
(no competing host traffic) so the fabric is the only variable.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import ArchPreset, sim_geometry
from .common import format_table, gc_burst_run
from .runner import PointSpec, run_points

__all__ = ["run", "gc_perf_point", "RATIOS"]

RATIOS = (0.5, 1.0, 2.0, 4.0)


def gc_perf_point(ratio: float, channels: int, ways: int,
                  quick: bool) -> Dict[str, float]:
    """Isolated GC burst rate at one fabric/geometry combination."""
    geometry = sim_geometry(channels=channels, ways=ways, planes=4,
                            blocks_per_plane=12)
    _ssd, episode = gc_burst_run(
        ArchPreset.DSSD_F, quick=quick, geometry=geometry,
        fnoc_channel_bw=ratio * 1000.0,
    )
    return {"pages_per_us": episode["pages_per_us"]}


def _spec(ratio, channels, ways, quick) -> PointSpec:
    return PointSpec.from_callable(
        gc_perf_point,
        {"ratio": ratio, "channels": channels, "ways": ways,
         "quick": quick},
        key=f"fig12:{channels}ch/{ways}way/x{ratio}")


def run(quick: bool = True) -> Dict:
    """Both sweeps; returns pages/us grids normalized per series."""
    channel_counts = (4, 8) if quick else (4, 8, 16)
    way_counts = (1, 4) if quick else (1, 2, 4, 8)

    specs = [
        _spec(ratio, channels, 2, quick)
        for channels in channel_counts for ratio in RATIOS
    ] + [
        _spec(ratio, 8, ways, quick)
        for ways in way_counts for ratio in RATIOS
    ]
    points = iter(run_points(specs))

    part_a: Dict[int, List[float]] = {}
    for channels in channel_counts:
        part_a[channels] = [
            next(points)["pages_per_us"] for _ratio in RATIOS
        ]
    part_b: Dict[int, List[float]] = {}
    for ways in way_counts:
        part_b[ways] = [
            next(points)["pages_per_us"] for _ratio in RATIOS
        ]

    rows_a = [
        [f"{channels} ch"] + part_a[channels]
        for channels in channel_counts
    ]
    rows_b = [[f"{ways} way"] + part_b[ways] for ways in way_counts]
    headers = ["config"] + [f"ratio x{r}" for r in RATIOS]
    table = (
        format_table(headers, rows_a,
                     title="Fig 12(a): GC pages/us vs router/flash BW "
                           "ratio, channel sweep")
        + "\n\n"
        + format_table(headers, rows_b,
                       title="Fig 12(b): GC pages/us vs ratio, way sweep "
                             "(8 channels)")
    )
    return {"channels": part_a, "ways": part_b, "ratios": list(RATIOS),
            "table": table}


if __name__ == "__main__":
    print(run(quick=True)["table"])
