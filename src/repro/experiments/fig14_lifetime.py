"""Fig 14: SSD lifetime from dynamic superblock management.

(a) Bad superblocks versus data written for BASELINE / RECYCLED /
RESERV under a continuous 128 KB write stream (endurance simulator).
(b) Endurance improvement versus block-wear variation (sigma sweep),
including the WAS software baseline.
(c) WAS's scan overhead in the DES: average I/O latency as the number
of blocks whose RBER must be read out per epoch grows.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import ArchPreset, sim_geometry
from ..superblock import run_endurance, simulate_was
from ..workloads import SyntheticWorkload
from .common import bench_durations, format_table

__all__ = ["run", "SIGMAS", "SCAN_BLOCK_COUNTS"]

SIGMAS = (300.0, 600.0, 826.9, 1200.0)
SCAN_BLOCK_COUNTS = (0, 2048, 8192, 32768)

_ENDURANCE_KW = dict(n_superblocks=512, channels=8, seed=3)


def _part_a() -> Dict:
    results = {
        policy: run_endurance(policy=policy, **_ENDURANCE_KW)
        for policy in ("baseline", "recycled", "reserv")
    }
    base = results["baseline"]
    rows: List[List] = []
    threshold = 0.10
    for policy, result in results.items():
        until = result.bytes_until_bad_fraction(threshold)
        rows.append([
            policy.upper(),
            result.first_bad_bytes / 1e12,
            until / 1e12,
            until / base.bytes_until_bad_fraction(threshold),
            result.remap_events,
        ])
    table = format_table(
        ["policy", "first bad (TB)", "until 10% bad (TB)",
         "endurance vs base", "remaps"],
        rows,
        title="Fig 14(a): lifetime under a continuous 128K write stream",
    )
    return {
        "curves": {p: r.curve for p, r in results.items()},
        "rows": rows,
        "table": table,
    }


def _part_b() -> Dict:
    threshold = 0.10
    series: Dict[str, List[float]] = {"recycled": [], "reserv": [],
                                      "was": []}
    for sigma in SIGMAS:
        base = run_endurance(policy="baseline", pe_sigma=sigma,
                             **_ENDURANCE_KW)
        base_until = base.bytes_until_bad_fraction(threshold)
        for policy in ("recycled", "reserv"):
            result = run_endurance(policy=policy, pe_sigma=sigma,
                                   **_ENDURANCE_KW)
            series[policy].append(
                result.bytes_until_bad_fraction(threshold) / base_until
            )
        was = simulate_was(pe_sigma=sigma, **_ENDURANCE_KW)
        series["was"].append(
            was.bytes_until_bad_fraction(threshold) / base_until
        )
    rows = [
        [name] + values for name, values in series.items()
    ]
    table = format_table(
        ["policy"] + [f"sigma={s:g}" for s in SIGMAS],
        rows,
        title="Fig 14(b): endurance improvement vs wear variation",
    )
    return {"series": series, "sigmas": list(SIGMAS), "table": table}


def _part_c(quick: bool) -> Dict:
    """WAS RBER scans steal front-end bandwidth from host I/O."""
    windows = bench_durations(quick)
    scan_counts = SCAN_BLOCK_COUNTS[:3] if quick else SCAN_BLOCK_COUNTS
    latencies: List[float] = []
    for n_blocks in scan_counts:
        workload = SyntheticWorkload(pattern="seq_write", io_size=32768)
        geometry = sim_geometry()
        latency, _result = _build_with_scan(workload, geometry, n_blocks,
                                            windows)
        latencies.append(latency)
    rows = [["avg IO latency (us)"] + latencies]
    norm = [lat / max(latencies[0], 1e-9) for lat in latencies]
    rows.append(["normalized"] + norm)
    table = format_table(
        ["metric"] + [f"{n} blocks" for n in scan_counts],
        rows,
        title="Fig 14(c): I/O latency overhead of WAS RBER scans",
    )
    return {"scan_counts": list(scan_counts), "latency_us": latencies,
            "normalized": norm, "table": table}


def _build_with_scan(workload, geometry, n_blocks, windows):
    """Run a baseline SSD with a background WAS scan process."""
    from ..controller import Breakdown
    from ..core import build_ssd

    # Write-through keeps each request's latency on the shared bus and
    # flash path (write-back's buffer equilibrium would mask the scan
    # contention the paper measures).
    ssd = build_ssd(ArchPreset.BASELINE, geometry=geometry,
                    write_policy="writethrough")
    ssd.prefill()
    if n_blocks > 0:
        # WAS re-scans every block's RBER once per epoch.  The epoch is
        # a free parameter of WAS; 10 ms keeps the scan stream a real
        # contender for the shared front-end, matching the up-to-2x
        # degradation the paper reports at large block counts.
        epoch_us = 10_000.0
        gap = max(epoch_us / n_blocks, 0.05)
        mapped = []
        for ppn in range(0, geometry.pages_total,
                         geometry.pages_per_block):
            if ssd.mapping.reverse_lookup(ppn) is not None:
                mapped.append(geometry.addr_of(ppn))
            if len(mapped) >= 512:
                break

        from repro.sim import TokenPool

        outstanding = TokenPool(ssd.sim, 256, name="scan_window")

        def read_one(addr):
            # GC may have moved/erased this page since the scan list was
            # built; WAS would simply sample another live page.
            ppn = geometry.ppn_of(addr)
            if ssd.mapping.reverse_lookup(ppn) is not None:
                breakdown = Breakdown()
                yield from ssd.datapath.io_read_flash(addr, breakdown)
            outstanding.release(1)

        def scanner():
            index = 0
            while True:
                # Issue at the epoch rate with a bounded in-flight window
                # (the FTL's scan queue), not one-at-a-time.
                yield outstanding.acquire(1)
                addr = mapped[index % len(mapped)]
                index += 1
                ssd.sim.process(read_one(addr), name="was_scan_read")
                yield ssd.sim.timeout(gap)

        if mapped:
            ssd.sim.process(scanner(), name="was_scan")
    result = ssd.run(workload, duration_us=windows["duration_us"],
                     warmup_us=windows["warmup_us"])
    return result.io_latency.mean, result


def run(quick: bool = True) -> Dict:
    """All three panels."""
    a = _part_a()
    b = _part_b()
    c = _part_c(quick)
    return {
        "part_a": a,
        "part_b": b,
        "part_c": c,
        "table": "\n\n".join([a["table"], b["table"], c["table"]]),
    }


if __name__ == "__main__":
    print(run(quick=True)["table"])
