"""Fig 14: SSD lifetime from dynamic superblock management.

(a) Bad superblocks versus data written for BASELINE / RECYCLED /
RESERV under a continuous 128 KB write stream (endurance simulator).
(b) Endurance improvement versus block-wear variation (sigma sweep),
including the WAS software baseline.
(c) WAS's scan overhead in the DES: average I/O latency as the number
of blocks whose RBER must be read out per epoch grows.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import ArchPreset, sim_geometry
from ..superblock import run_endurance, simulate_was
from ..workloads import SyntheticWorkload
from .common import bench_durations, format_table
from .runner import PointSpec, run_points

__all__ = ["run", "endurance_point", "was_point", "scan_point",
           "SIGMAS", "SCAN_BLOCK_COUNTS"]

SIGMAS = (300.0, 600.0, 826.9, 1200.0)
SCAN_BLOCK_COUNTS = (0, 2048, 8192, 32768)

_ENDURANCE_KW = dict(n_superblocks=512, channels=8, seed=3)

_THRESHOLD = 0.10


def endurance_point(policy: str, pe_sigma: float = None,
                    with_curve: bool = False) -> Dict:
    """One endurance simulation: lifetime summary (and bad-block curve)."""
    kwargs = dict(_ENDURANCE_KW)
    if pe_sigma is not None:
        kwargs["pe_sigma"] = pe_sigma
    result = run_endurance(policy=policy, **kwargs)
    point = {
        "first_bad_bytes": result.first_bad_bytes,
        "until_bytes": result.bytes_until_bad_fraction(_THRESHOLD),
        "remap_events": result.remap_events,
    }
    if with_curve:
        point["curve"] = [[written, bad] for written, bad in result.curve]
    return point


def was_point(pe_sigma: float) -> Dict:
    """The WAS software baseline's lifetime at one wear variation."""
    was = simulate_was(pe_sigma=pe_sigma, **_ENDURANCE_KW)
    return {"until_bytes": was.bytes_until_bad_fraction(_THRESHOLD)}


def scan_point(n_blocks: int, quick: bool) -> Dict[str, float]:
    """Mean I/O latency with one WAS RBER-scan intensity (part c)."""
    windows = bench_durations(quick)
    workload = SyntheticWorkload(pattern="seq_write", io_size=32768)
    geometry = sim_geometry()
    latency, _result = _build_with_scan(workload, geometry, n_blocks,
                                        windows)
    return {"mean_latency_us": latency}


def _part_a(points: Dict[str, Dict]) -> Dict:
    base = points["baseline"]
    rows: List[List] = []
    for policy, point in points.items():
        rows.append([
            policy.upper(),
            point["first_bad_bytes"] / 1e12,
            point["until_bytes"] / 1e12,
            point["until_bytes"] / base["until_bytes"],
            point["remap_events"],
        ])
    table = format_table(
        ["policy", "first bad (TB)", "until 10% bad (TB)",
         "endurance vs base", "remaps"],
        rows,
        title="Fig 14(a): lifetime under a continuous 128K write stream",
    )
    return {
        "curves": {p: point["curve"] for p, point in points.items()},
        "rows": rows,
        "table": table,
    }


def _part_b(per_sigma: List[Dict[str, Dict]]) -> Dict:
    series: Dict[str, List[float]] = {"recycled": [], "reserv": [],
                                      "was": []}
    for points in per_sigma:
        base_until = points["baseline"]["until_bytes"]
        for policy in ("recycled", "reserv", "was"):
            series[policy].append(
                points[policy]["until_bytes"] / base_until
            )
    rows = [
        [name] + values for name, values in series.items()
    ]
    table = format_table(
        ["policy"] + [f"sigma={s:g}" for s in SIGMAS],
        rows,
        title="Fig 14(b): endurance improvement vs wear variation",
    )
    return {"series": series, "sigmas": list(SIGMAS), "table": table}


def _part_c(scan_counts, latencies: List[float]) -> Dict:
    """WAS RBER scans steal front-end bandwidth from host I/O."""
    rows = [["avg IO latency (us)"] + latencies]
    norm = [lat / max(latencies[0], 1e-9) for lat in latencies]
    rows.append(["normalized"] + norm)
    table = format_table(
        ["metric"] + [f"{n} blocks" for n in scan_counts],
        rows,
        title="Fig 14(c): I/O latency overhead of WAS RBER scans",
    )
    return {"scan_counts": list(scan_counts), "latency_us": latencies,
            "normalized": norm, "table": table}


def _build_with_scan(workload, geometry, n_blocks, windows):
    """Run a baseline SSD with a background WAS scan process."""
    from ..controller import Breakdown
    from ..core import build_ssd

    # Write-through keeps each request's latency on the shared bus and
    # flash path (write-back's buffer equilibrium would mask the scan
    # contention the paper measures).
    ssd = build_ssd(ArchPreset.BASELINE, geometry=geometry,
                    write_policy="writethrough")
    ssd.prefill()
    if n_blocks > 0:
        # WAS re-scans every block's RBER once per epoch.  The epoch is
        # a free parameter of WAS; 10 ms keeps the scan stream a real
        # contender for the shared front-end, matching the up-to-2x
        # degradation the paper reports at large block counts.
        epoch_us = 10_000.0
        gap = max(epoch_us / n_blocks, 0.05)
        mapped = []
        for ppn in range(0, geometry.pages_total,
                         geometry.pages_per_block):
            if ssd.mapping.reverse_lookup(ppn) is not None:
                mapped.append(geometry.addr_of(ppn))
            if len(mapped) >= 512:
                break

        outstanding = ssd.sim.token_pool(256, name="scan_window")

        def read_one(addr):
            # GC may have moved/erased this page since the scan list was
            # built; WAS would simply sample another live page.
            ppn = geometry.ppn_of(addr)
            if ssd.mapping.reverse_lookup(ppn) is not None:
                breakdown = Breakdown()
                yield from ssd.datapath.io_read_flash(addr, breakdown)
            outstanding.release(1)

        def scanner():
            index = 0
            while True:
                # Issue at the epoch rate with a bounded in-flight window
                # (the FTL's scan queue), not one-at-a-time.
                yield outstanding.acquire(1)
                addr = mapped[index % len(mapped)]
                index += 1
                ssd.sim.process(read_one(addr), name="was_scan_read")
                yield ssd.sim.timeout(gap)

        if mapped:
            ssd.sim.process(scanner(), name="was_scan")
    result = ssd.run(workload, duration_us=windows["duration_us"],
                     warmup_us=windows["warmup_us"])
    return result.io_latency.mean, result


def run(quick: bool = True) -> Dict:
    """All three panels."""
    policies_a = ("baseline", "recycled", "reserv")
    policies_b = ("baseline", "recycled", "reserv")
    scan_counts = SCAN_BLOCK_COUNTS[:3] if quick else SCAN_BLOCK_COUNTS
    specs = [
        PointSpec.from_callable(endurance_point,
                                {"policy": policy, "with_curve": True},
                                key=f"fig14a:{policy}")
        for policy in policies_a
    ] + [
        spec
        for sigma in SIGMAS
        for spec in (
            [PointSpec.from_callable(
                endurance_point, {"policy": policy, "pe_sigma": sigma},
                key=f"fig14b:{policy}/s{sigma:g}")
             for policy in policies_b]
            + [PointSpec.from_callable(was_point, {"pe_sigma": sigma},
                                       key=f"fig14b:was/s{sigma:g}")]
        )
    ] + [
        PointSpec.from_callable(scan_point,
                                {"n_blocks": n_blocks, "quick": quick},
                                key=f"fig14c:{n_blocks}blk")
        for n_blocks in scan_counts
    ]
    points = iter(run_points(specs))

    a = _part_a({policy: next(points) for policy in policies_a})
    per_sigma = []
    for _sigma in SIGMAS:
        by_policy = {policy: next(points) for policy in policies_b}
        by_policy["was"] = next(points)
        per_sigma.append(by_policy)
    b = _part_b(per_sigma)
    c = _part_c(scan_counts,
                [next(points)["mean_latency_us"] for _n in scan_counts])
    return {
        "part_a": a,
        "part_b": b,
        "part_c": c,
        "table": "\n\n".join([a["table"], b["table"], c["table"]]),
    }


if __name__ == "__main__":
    print(run(quick=True)["table"])
