"""Command-line entry point: run any paper experiment.

Usage::

    python -m repro fig7            # quick mode
    python -m repro fig11 --full    # longer, smoother run
    python -m repro all             # every experiment, quick mode
    repro-dssd fig14                # console-script alias
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import EXPERIMENTS

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the requested experiment(s), print tables."""
    parser = argparse.ArgumentParser(
        prog="repro-dssd",
        description="Decoupled SSD (ISCA'23) reproduction experiments",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="paper figure/table to regenerate",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="longer simulation windows (slower, smoother numbers)",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        module = EXPERIMENTS[name]
        started = time.time()
        result = module.run(quick=not args.full)
        elapsed = time.time() - started
        print(f"=== {name} ({module.__name__.rsplit('.', 1)[-1]}, "
              f"{elapsed:.1f}s) ===")
        print(result["table"])
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
