"""Command-line entry point: run any paper experiment.

Usage::

    python -m repro fig7                 # quick mode, parallel workers
    python -m repro fig11 --full         # longer, smoother run
    python -m repro all                  # every experiment, quick mode
    python -m repro all --jobs 4         # cap the worker pool at 4
    python -m repro fig12 --jobs 1       # deterministic serial run
    python -m repro fig8 --no-cache      # ignore + bypass cached points
    python -m repro fig13 --progress     # per-point progress on stderr
    repro-dssd fig14                     # console-script alias
    python -m repro fleet --devices 16   # sharded fleet with aged devices
    python -m repro bench                # kernel perf suite -> BENCH_kernel.json
    python -m repro bench --quick --check BENCH_kernel.json   # CI perf gate
    python -m repro fuzz --smoke         # coverage-guided fuzzer, CI gate
    python -m repro fuzz repro case.json # replay a minimized fuzz repro
    python -m repro profile ssd_point    # cProfile a bench workload
    python -m repro profile ssd_point --svg flame.svg   # + icicle chart

Sweep points fan out over ``--jobs`` worker processes (default: every
CPU core) and completed points are cached under ``~/.cache/repro-dssd/``
so re-running a figure only simulates what changed.  Tables printed to
stdout are byte-identical for any ``--jobs`` value and for cached vs
fresh runs; the harness summary (points computed/cached, wall time,
worker utilization) goes to stderr so it never perturbs the tables.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from .experiments import EXPERIMENTS
from .experiments.runner import RunnerMetrics, configured, default_jobs

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the requested experiment(s), print tables."""
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "fuzz":
        # The fuzzer has its own option surface; hand off before the
        # experiment parser can reject its flags.
        from .fuzz.cli import main as fuzz_main
        return fuzz_main(raw[1:])
    if raw and raw[0] == "profile":
        # Same hand-off pattern: the profiler's flags are its own.
        from .profile import main as profile_main
        return profile_main(raw[1:])

    parser = argparse.ArgumentParser(
        prog="repro-dssd",
        description="Decoupled SSD (ISCA'23) reproduction experiments",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "bench"],
        help="paper figure/table to regenerate, 'bench' for the "
             "hot-path benchmark suite, or 'fuzz' for the workload "
             "fuzzer (see 'fuzz --help')",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="longer simulation windows (slower, smoother numbers)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker processes for independent sweep points "
             f"(default: all {default_jobs()} CPU cores; "
             "1 = deterministic serial fallback)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the point-result cache "
             "(~/.cache/repro-dssd, override with REPRO_DSSD_CACHE_DIR)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per completed sweep point to stderr",
    )
    parser.add_argument(
        "--devices", type=int, default=16, metavar="N",
        help="fleet: number of simulated SSD shards (default 16; "
             "ignored by other experiments)",
    )
    parser.add_argument(
        "--backend", choices=["auto", "pure", "fast", "legacy"],
        default=None,
        help="DES kernel backend (default: auto — compiled twin when "
             "installed, else pure Python). Results are byte-identical "
             "across backends; only speed differs. Exported as "
             "REPRO_DSSD_BACKEND so worker processes inherit it.",
    )
    bench_group = parser.add_argument_group(
        "bench options", "only used with the 'bench' experiment")
    bench_group.add_argument(
        "--quick", action="store_true",
        help="bench: smaller workloads and fewer repeats (CI smoke mode)",
    )
    bench_group.add_argument(
        "--output", metavar="FILE", default=None,
        help="bench: where to write the JSON report "
             "(default: BENCH_kernel.json)",
    )
    bench_group.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="bench: fail if events/sec regresses below BASELINE "
             "by more than --tolerance",
    )
    bench_group.add_argument(
        "--tolerance", type=float, default=0.30, metavar="FRAC",
        help="bench: allowed fractional regression vs the baseline "
             "(default 0.30)",
    )
    bench_group.add_argument(
        "--repeats", type=int, default=None, metavar="N",
        help="bench: best-of-N wall-time measurement "
             "(default: 3, or 2 with --quick)",
    )
    bench_group.add_argument(
        "--no-history", action="store_true",
        help="bench: do not append full runs to benchmarks/history.jsonl",
    )
    args = parser.parse_args(argv)

    if args.backend is not None:
        # Through the environment rather than plumbed per-config: the
        # multiprocessing runner's workers re-build SSDConfig from point
        # specs, and "auto" resolution consults this variable there too.
        os.environ["REPRO_DSSD_BACKEND"] = args.backend

    if args.experiment == "bench":
        from .bench import BENCH_FILE, main as bench_main
        return bench_main(
            quick=args.quick,
            output=args.output if args.output is not None else BENCH_FILE,
            check=args.check,
            tolerance=args.tolerance,
            repeats=args.repeats,
            history=not args.no_history,
        )

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    jobs = args.jobs if args.jobs and args.jobs > 0 else default_jobs()
    total = RunnerMetrics()
    for name in names:
        module = EXPERIMENTS[name]
        metrics = RunnerMetrics()
        started = time.time()
        with configured(jobs=jobs, cache=not args.no_cache,
                        progress=args.progress, metrics=metrics):
            if name == "fleet":
                result = module.run(quick=not args.full,
                                    devices=args.devices)
            else:
                result = module.run(quick=not args.full)
        elapsed = time.time() - started
        print(f"=== {name} ({module.__name__.rsplit('.', 1)[-1]}, "
              f"{elapsed:.1f}s) ===")
        print(result["table"])
        print()
        if metrics.points:
            print(f"[{name}] {metrics.format_line()}", file=sys.stderr)
        total.merge(metrics)
    if len(names) > 1 and total.points:
        print(f"[all] {total.format_line()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
