"""dSSD reproduction library.

Reproduces "Decoupled SSD: Rethinking SSD Architecture through
Network-based Flash Controllers" (ISCA 2023): an event-driven SSD model
with a flash-controller network-on-chip (fNoC), global copyback, and
dynamic superblock management.

Quickstart::

    from repro import build_ssd, ArchPreset
    from repro.workloads import SyntheticWorkload

    ssd = build_ssd(ArchPreset.DSSD_F)
    workload = SyntheticWorkload(pattern="seq_write", io_size=4096)
    result = ssd.run(workload, duration_us=50_000)
    print(result.io_latency.p99)
"""

__version__ = "1.1.0"

from .errors import (
    AddressError,
    ConfigError,
    FlashError,
    MappingError,
    ReproError,
    SnapshotError,
    UncorrectableError,
)

__all__ = [
    "AddressError",
    "ConfigError",
    "FlashError",
    "MappingError",
    "ReproError",
    "SnapshotError",
    "UncorrectableError",
    "__version__",
    "build_ssd",
    "ArchPreset",
]


def __getattr__(name):
    """Lazily expose the high-level API to keep import cost low."""
    if name in ("build_ssd", "ArchPreset", "SSDConfig", "SimulatedSSD",
                "RunResult", "MultiTenantResult", "TenantResult"):
        from . import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
