"""Synthetic workload generators (paper Sec 6.1 synthetic inputs).

A workload is an object the run harness drives in closed loop: after
``bind()`` it produces one :class:`~repro.ftl.IoRequest` per
``next_request()`` call until exhausted (or forever).

Patterns:

* ``seq_write`` / ``seq_read``   -- ascending LPNs, wrapping;
* ``rand_write`` / ``rand_read`` -- uniform random LPNs;
* ``mixed``                      -- random, read with ``read_fraction``.

``io_size`` bytes are converted to whole pages at bind time; 4 KB
models the paper's "low bandwidth" input (one plane utilized) and
32-128 KB the "high bandwidth" multi-plane input.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import ConfigError
from ..ftl import READ, WRITE, IoRequest

__all__ = ["SyntheticWorkload", "PATTERNS"]

PATTERNS = ("seq_write", "seq_read", "rand_write", "rand_read", "mixed")


class SyntheticWorkload:
    """Closed-loop synthetic request stream."""

    def __init__(self, pattern: str = "seq_write", io_size: int = 4096,
                 read_fraction: float = 0.5, dram_hit_fraction: float = 0.0,
                 working_set_fraction: float = 1.0,
                 limit: Optional[int] = None):
        if pattern not in PATTERNS:
            raise ConfigError(f"unknown pattern {pattern!r}")
        if io_size < 1:
            raise ConfigError(f"io_size must be >= 1 byte: {io_size}")
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigError(f"read_fraction out of [0,1]: {read_fraction}")
        if not 0.0 <= dram_hit_fraction <= 1.0:
            raise ConfigError(
                f"dram_hit_fraction out of [0,1]: {dram_hit_fraction}"
            )
        if not 0.0 < working_set_fraction <= 1.0:
            raise ConfigError(
                f"working_set_fraction out of (0,1]: {working_set_fraction}"
            )
        self.pattern = pattern
        self.io_size = io_size
        self.read_fraction = read_fraction
        self.dram_hit_fraction = dram_hit_fraction
        self.working_set_fraction = working_set_fraction
        self.limit = limit
        self._rng: Optional[random.Random] = None
        self._space = 0
        self._pages_per_io = 1
        self._cursor = 0
        self._issued = 0

    def bind(self, lpn_space: int, page_size: int, seed: int) -> None:
        """Attach to a device: learn its LPN space and page size."""
        if lpn_space < 1:
            raise ConfigError(f"lpn_space must be >= 1: {lpn_space}")
        self._rng = random.Random(seed ^ 0x5EED)
        self._pages_per_io = max(1, self.io_size // page_size)
        self._space = max(
            self._pages_per_io,
            int(lpn_space * self.working_set_fraction),
        )
        self._cursor = 0
        self._issued = 0

    def next_request(self) -> Optional[IoRequest]:
        """The next request, or None once the limit is reached."""
        if self._rng is None:
            raise ConfigError("workload not bound; call bind() first")
        if self.limit is not None and self._issued >= self.limit:
            return None
        self._issued += 1
        op = self._pick_op()
        lpn = self._pick_lpn()
        dram_hit = (self.dram_hit_fraction > 0.0
                    and self._rng.random() < self.dram_hit_fraction)
        return IoRequest(op=op, lpn=lpn, n_pages=self._pages_per_io,
                         dram_hit=dram_hit)

    def _pick_op(self) -> str:
        if self.pattern in ("seq_write", "rand_write"):
            return WRITE
        if self.pattern in ("seq_read", "rand_read"):
            return READ
        return READ if self._rng.random() < self.read_fraction else WRITE

    def _pick_lpn(self) -> int:
        span = self._space - self._pages_per_io + 1
        if self.pattern in ("seq_write", "seq_read"):
            lpn = self._cursor
            self._cursor += self._pages_per_io
            if self._cursor + self._pages_per_io > self._space:
                self._cursor = 0
            return lpn
        return self._rng.randrange(span)
