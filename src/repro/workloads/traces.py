"""Trace-format workloads.

:class:`TraceRecord` is one logged I/O; :class:`TraceWorkload` replays a
record list in closed loop (arrival times, if present, are ignored --
the paper drives the device at QD 64).  A tiny CSV parser reads the
standard ``timestamp,op,offset_bytes,size_bytes`` format so real traces
can be dropped in where available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..errors import ConfigError
from ..ftl import READ, WRITE, IoRequest

__all__ = ["TraceRecord", "TraceWorkload", "parse_csv_trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry, page-granular."""

    op: str
    lpn: int
    n_pages: int
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in (READ, WRITE):
            raise ConfigError(f"bad trace op {self.op!r}")
        if self.lpn < 0 or self.n_pages < 1:
            raise ConfigError(
                f"bad trace extent lpn={self.lpn} n={self.n_pages}"
            )


def parse_csv_trace(lines: Iterable[str], page_size: int) -> List[TraceRecord]:
    """Parse ``timestamp,op,offset_bytes,size_bytes`` CSV lines.

    ``op`` accepts ``R``/``W`` (any case) or ``read``/``write``.  Blank
    lines and ``#`` comments are skipped.  Offsets/sizes are converted
    to page-granular extents (rounded outward).
    """
    records = []
    for line_no, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(",")
        if len(fields) < 4:
            raise ConfigError(f"trace line {line_no}: expected 4 fields")
        timestamp = float(fields[0])
        op_raw = fields[1].strip().lower()
        if op_raw in ("r", "read"):
            op = READ
        elif op_raw in ("w", "write"):
            op = WRITE
        else:
            raise ConfigError(f"trace line {line_no}: bad op {fields[1]!r}")
        offset = int(fields[2])
        size = int(fields[3])
        if size < 1:
            raise ConfigError(f"trace line {line_no}: size must be >= 1")
        first_page = offset // page_size
        last_page = (offset + size - 1) // page_size
        records.append(TraceRecord(op=op, lpn=first_page,
                                   n_pages=last_page - first_page + 1,
                                   timestamp=timestamp))
    return records


class TraceWorkload:
    """Closed-loop replay of a record list, LPNs wrapped into the device."""

    def __init__(self, records: Sequence[TraceRecord], name: str = "trace",
                 repeat: bool = False,
                 dram_hit_fraction: float = 0.0):
        if not records:
            raise ConfigError("empty trace")
        if not 0.0 <= dram_hit_fraction <= 1.0:
            raise ConfigError(
                f"dram_hit_fraction out of [0,1]: {dram_hit_fraction}"
            )
        self.records = list(records)
        self.name = name
        self.repeat = repeat
        self.dram_hit_fraction = dram_hit_fraction
        self._index = 0
        self._space = 0
        self._hit_counter = 0.0

    def bind(self, lpn_space: int, page_size: int, seed: int) -> None:
        """Attach to a device; LPNs are wrapped modulo its space."""
        if lpn_space < 1:
            raise ConfigError(f"lpn_space must be >= 1: {lpn_space}")
        self._space = lpn_space
        self._index = 0
        self._hit_counter = 0.0

    def next_request(self) -> Optional[IoRequest]:
        """Next record as a request, or None when the trace ends."""
        if self._space < 1:
            raise ConfigError("workload not bound; call bind() first")
        if self._index >= len(self.records):
            if not self.repeat:
                return None
            self._index = 0
        record = self.records[self._index]
        self._index += 1
        n_pages = min(record.n_pages, self._space)
        lpn = record.lpn % max(1, self._space - n_pages + 1)
        # Deterministic striding keeps the hit ratio exact.
        self._hit_counter += self.dram_hit_fraction
        dram_hit = self._hit_counter >= 1.0
        if dram_hit:
            self._hit_counter -= 1.0
        return IoRequest(op=record.op, lpn=lpn, n_pages=n_pages,
                         dram_hit=dram_hit)

    def peek_timestamp(self) -> Optional[float]:
        """Timestamp of the record :meth:`next_request` will replay next.

        Returns ``None`` once the trace is exhausted (and ``repeat`` is
        off).  Open-loop trace replay drivers use this to pace arrivals
        on the recorded timestamps; with ``repeat=True`` the timestamps
        restart from the first record each pass, so replay pacing is
        only meaningful for non-repeating traces.
        """
        if self._index >= len(self.records):
            if not self.repeat:
                return None
            return self.records[0].timestamp
        return self.records[self._index].timestamp

    @property
    def read_fraction(self) -> float:
        """Fraction of records that are reads."""
        reads = sum(1 for r in self.records if r.op == READ)
        return reads / len(self.records)
