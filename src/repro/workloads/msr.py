"""MSR-Cambridge-shaped synthetic traces.

The paper evaluates on MSR Cambridge block traces (via TraceTracker
[23]): prn_0, usr_2, hm_1, src1_2, and so on.  Those trace files are
not redistributable, so this module synthesizes request streams whose
first-order statistics -- read/write mix, request-size distribution,
sequentiality, and working-set footprint -- match the published
characterizations of each trace.  The figures only use the traces as
read/write-mix and burstiness stimuli, so these synthetic stand-ins
exercise the identical code paths (see DESIGN.md, substitutions).

Profiles are approximate by construction; absolute latencies will not
match the originals, but the read-heavy / write-heavy contrast the
paper plots is preserved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigError
from ..ftl import READ, WRITE
from .traces import TraceRecord, TraceWorkload

__all__ = ["TraceProfile", "MSR_PROFILES", "synthesize_trace",
           "make_msr_workload", "READ_INTENSIVE", "WRITE_INTENSIVE"]


@dataclass(frozen=True)
class TraceProfile:
    """First-order statistics of one MSR volume."""

    name: str
    read_fraction: float
    #: (size_in_4k_pages, weight) choices.
    size_mix: Tuple[Tuple[int, float], ...]
    sequential_fraction: float
    working_set_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError(f"{self.name}: bad read_fraction")
        if not self.size_mix:
            raise ConfigError(f"{self.name}: empty size mix")

    @property
    def is_read_intensive(self) -> bool:
        """Paper Fig 15(b) split: read- versus write-intensive."""
        return self.read_fraction >= 0.5


def _profile(name, read, sizes, seq, ws) -> TraceProfile:
    return TraceProfile(name, read, tuple(sizes), seq, ws)


#: Approximate first-order statistics for the MSR Cambridge volumes the
#: paper uses, from the published trace characterizations.
MSR_PROFILES: Dict[str, TraceProfile] = {
    profile.name: profile
    for profile in (
        _profile("prn_0", 0.11, [(1, 0.4), (2, 0.3), (4, 0.2), (16, 0.1)], 0.35, 0.30),
        _profile("prn_1", 0.75, [(1, 0.3), (2, 0.3), (4, 0.3), (8, 0.1)], 0.40, 0.45),
        _profile("proj_0", 0.12, [(1, 0.3), (2, 0.2), (8, 0.3), (32, 0.2)], 0.60, 0.25),
        _profile("proj_1", 0.89, [(4, 0.4), (8, 0.3), (16, 0.3)], 0.70, 0.50),
        _profile("usr_0", 0.40, [(1, 0.5), (2, 0.3), (4, 0.2)], 0.30, 0.35),
        _profile("usr_1", 0.91, [(4, 0.3), (8, 0.4), (16, 0.3)], 0.55, 0.55),
        _profile("usr_2", 0.81, [(2, 0.3), (4, 0.4), (8, 0.3)], 0.45, 0.50),
        _profile("hm_0", 0.35, [(1, 0.5), (2, 0.3), (4, 0.2)], 0.25, 0.30),
        _profile("hm_1", 0.95, [(1, 0.3), (2, 0.4), (4, 0.3)], 0.35, 0.40),
        _profile("src1_2", 0.25, [(8, 0.3), (16, 0.4), (32, 0.3)], 0.65, 0.30),
        _profile("src2_0", 0.11, [(1, 0.5), (2, 0.3), (4, 0.2)], 0.30, 0.25),
        _profile("mds_0", 0.12, [(1, 0.4), (2, 0.3), (4, 0.3)], 0.35, 0.25),
        _profile("rsrch_0", 0.09, [(1, 0.5), (2, 0.3), (4, 0.2)], 0.25, 0.20),
        _profile("stg_0", 0.15, [(1, 0.4), (2, 0.3), (8, 0.3)], 0.40, 0.25),
        _profile("ts_0", 0.18, [(1, 0.5), (2, 0.3), (4, 0.2)], 0.30, 0.25),
        _profile("wdev_0", 0.20, [(1, 0.5), (2, 0.3), (4, 0.2)], 0.30, 0.25),
        _profile("web_0", 0.46, [(1, 0.3), (2, 0.3), (4, 0.2), (8, 0.2)], 0.40, 0.35),
    )
}

#: Fig 15(b) grouping.
READ_INTENSIVE = tuple(sorted(
    name for name, p in MSR_PROFILES.items() if p.is_read_intensive
))
WRITE_INTENSIVE = tuple(sorted(
    name for name, p in MSR_PROFILES.items() if not p.is_read_intensive
))


def synthesize_trace(profile: TraceProfile, n_requests: int,
                     address_pages: int = 1 << 20,
                     seed: int = 1) -> List[TraceRecord]:
    """Generate a record list matching *profile*'s statistics.

    Sequential runs continue the previous extent; random accesses land
    uniformly in the profile's working set.  The stream is reproducible
    for a given seed.
    """
    if n_requests < 1:
        raise ConfigError(f"n_requests must be >= 1: {n_requests}")
    rng = random.Random(seed ^ hash(profile.name) & 0xFFFF)
    sizes = [s for s, _w in profile.size_mix]
    weights = [w for _s, w in profile.size_mix]
    working_set = max(64, int(address_pages * profile.working_set_fraction))
    records: List[TraceRecord] = []
    cursor = 0
    for index in range(n_requests):
        op = READ if rng.random() < profile.read_fraction else WRITE
        n_pages = rng.choices(sizes, weights)[0]
        if records and rng.random() < profile.sequential_fraction:
            lpn = cursor
        else:
            lpn = rng.randrange(working_set)
        cursor = (lpn + n_pages) % working_set
        records.append(TraceRecord(op=op, lpn=lpn, n_pages=n_pages,
                                   timestamp=float(index)))
    return records


def make_msr_workload(name: str, n_requests: int = 2000, seed: int = 1,
                      repeat: bool = True,
                      dram_hit_fraction: float = 0.0) -> TraceWorkload:
    """Build a closed-loop workload for one named MSR volume."""
    try:
        profile = MSR_PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown trace {name!r}; available: {sorted(MSR_PROFILES)}"
        )
    records = synthesize_trace(profile, n_requests, seed=seed)
    return TraceWorkload(records, name=name, repeat=repeat,
                         dram_hit_fraction=dram_hit_fraction)
