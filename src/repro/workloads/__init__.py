"""Workload generators: synthetic patterns and MSR-shaped traces."""

from .msr import (
    MSR_PROFILES,
    READ_INTENSIVE,
    WRITE_INTENSIVE,
    TraceProfile,
    make_msr_workload,
    synthesize_trace,
)
from .synthetic import PATTERNS, SyntheticWorkload
from .traces import TraceRecord, TraceWorkload, parse_csv_trace

__all__ = [
    "make_msr_workload",
    "MSR_PROFILES",
    "parse_csv_trace",
    "PATTERNS",
    "READ_INTENSIVE",
    "SyntheticWorkload",
    "synthesize_trace",
    "TraceProfile",
    "TraceRecord",
    "TraceWorkload",
    "WRITE_INTENSIVE",
]
